#!/usr/bin/env sh
# Tier-1 gate: formatting, lints, build, full test suite.
# Fully offline — the workspace vendors its few dependencies as path crates,
# so no step here touches the network.
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace --offline

echo "==> cargo test"
cargo test -q --workspace --offline

echo "==> fault-injection smoke (seeded plan, degraded run must exit 0)"
# Seed 42 injects at least one fault across the suite (pinned by the
# seeded_plan_injects_somewhere_across_a_suite unit test). The degraded run
# must still exit 0 and its JSON must carry a populated failures section.
smoke_out=$(RESTUNE_CACHE_DIR="$(mktemp -d)" \
    ./target/release/suite_check -n 20000 --faults 42 --timeout 60 --json)
echo "$smoke_out" | grep -q '"failures"' || {
    echo "fault smoke: no failures section in --json output" >&2
    exit 1
}
echo "$smoke_out" | grep -q '"injected"' || {
    echo "fault smoke: seeded plan injected nothing" >&2
    exit 1
}

echo "==> kernel bench smoke (--test mode + BENCH_kernel.json schema)"
# The kernel bench in --test mode runs each benchmark body once on shrunk
# workloads and still writes its JSON document (to a scratch path here, so
# the committed full-scale BENCH_kernel.json is not overwritten). The
# validator guards the schema only — numbers vary by machine, the shape
# must not.
smoke_json="$(mktemp -d)/BENCH_kernel.json"
RESTUNE_BENCH_OUT="$smoke_json" cargo bench -q --bench kernel --offline -- --test
python3 - "$smoke_json" BENCH_kernel.json <<'EOF'
import json, sys
for path in sys.argv[1:]:
    with open(path) as f:
        doc = json.load(f)
    assert doc.get("schema") == "restune-kernel-bench-v1", \
        f"{path}: schema drift: {doc.get('schema')!r}"
    for key in ("mode", "batch_size", "benchmarks", "table3_suite"):
        assert key in doc, f"{path}: missing top-level key {key!r}"
    assert doc["benchmarks"], f"{path}: no benchmark rows"
    for row in doc["benchmarks"]:
        for key in ("name", "path", "instructions_per_run", "runs", "cycles",
                    "wall_seconds", "ns_per_cycle", "cycles_per_second"):
            assert key in row, f"{path}: benchmark row missing {key!r}"
    suite = doc["table3_suite"]
    for key in ("apps", "instructions_per_app",
                "fused_wall_seconds", "fused_cycles_per_second",
                "reference_wall_seconds", "reference_cycles_per_second",
                "speedup_cycles_per_second"):
        assert key in suite, f"{path}: table3_suite missing {key!r}"
    print(f"{path}: schema ok ({doc['mode']} mode)")
EOF

echo "==> tier-1 green"
