#!/usr/bin/env sh
# Tier-1 gate: formatting, lints, build, full test suite.
# Fully offline — the workspace vendors its few dependencies as path crates,
# so no step here touches the network.
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace --offline

echo "==> cargo test"
cargo test -q --workspace --offline

echo "==> fault-injection smoke (seeded plan, degraded run must exit 0)"
# Seed 42 injects at least one fault across the suite (pinned by the
# seeded_plan_injects_somewhere_across_a_suite unit test). The degraded run
# must still exit 0 and its JSON must carry a populated failures section.
smoke_out=$(RESTUNE_CACHE_DIR="$(mktemp -d)" \
    ./target/release/suite_check -n 20000 --faults 42 --timeout 60 --json)
echo "$smoke_out" | grep -q '"failures"' || {
    echo "fault smoke: no failures section in --json output" >&2
    exit 1
}
echo "$smoke_out" | grep -q '"injected"' || {
    echo "fault smoke: seeded plan injected nothing" >&2
    exit 1
}

echo "==> tier-1 green"
