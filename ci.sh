#!/usr/bin/env sh
# Tier-1 gate: formatting, lints, build, full test suite.
# Fully offline — the workspace vendors its few dependencies as path crates,
# so no step here touches the network.
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace --offline

echo "==> cargo test"
cargo test -q --workspace --offline

echo "==> tier-1 green"
