#!/usr/bin/env sh
# Tier-1 gate: formatting, lints, build, full test suite.
# Fully offline — the workspace vendors its few dependencies as path crates,
# so no step here touches the network.
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace --offline

echo "==> cargo test"
cargo test -q --workspace --offline

echo "==> RISC-V conformance tier (explicit rerun of the frontend gate)"
# Already part of the workspace test run above; rerun by name so a frontend
# regression is unmistakable in the CI log rather than buried in the suite.
cargo test -q --offline --test riscv_frontend

echo "==> corpus smoke (RV32IM corpus on both engine paths, bit-identical)"
# The corpus apps are assembled from source and executed at harness start,
# then run through the noise model on the fused kernel (default) and the
# per-cycle reference loop (RESTUNE_KERNEL=off). Every deterministic report
# section must be bit-identical across the two engine paths; run_metrics
# carries wall times and is excluded.
corpus_dir=$(mktemp -d)
RESTUNE_CACHE_DIR="$(mktemp -d)" \
    ./target/release/table3_riscv -n 20000 --json > "$corpus_dir/fused.json"
RESTUNE_CACHE_DIR="$(mktemp -d)" RESTUNE_KERNEL=off \
    ./target/release/table3_riscv -n 20000 --json > "$corpus_dir/reference.json"
python3 - "$corpus_dir/fused.json" "$corpus_dir/reference.json" <<'EOF'
import json, sys
fused, reference = (json.load(open(p)) for p in sys.argv[1:])
apps = [r["app"] for r in fused["programs"]]
assert len(apps) >= 2, f"corpus smoke: expected several corpus apps, got {apps}"
for section in ("programs", "table3_riscv", "techniques", "outcomes"):
    assert fused[section] == reference[section], \
        f"corpus smoke: section {section!r} differs between engine paths"
viol = {r["app"]: r["violation_cycles"] for r in fused["run_metrics"]}
assert viol.get("resonance", 0) > 0, \
    f"corpus smoke: resonance must violate on the base machine: {viol}"
assert all(v == 0 for a, v in viol.items() if a != "resonance"), \
    f"corpus smoke: only resonance may violate on the base machine: {viol}"
print(f"corpus ok: {len(apps)} programs bit-identical across engine paths")
EOF

echo "==> fault-injection smoke (seeded plan, degraded run must exit 0)"
# Seed 42 injects at least one fault across the suite (pinned by the
# seeded_plan_injects_somewhere_across_a_suite unit test). The degraded run
# must still exit 0 and its JSON must carry a populated failures section.
smoke_out=$(RESTUNE_CACHE_DIR="$(mktemp -d)" \
    ./target/release/suite_check -n 20000 --faults 42 --timeout 60 --json)
echo "$smoke_out" | grep -q '"failures"' || {
    echo "fault smoke: no failures section in --json output" >&2
    exit 1
}
echo "$smoke_out" | grep -q '"injected"' || {
    echo "fault smoke: seeded plan injected nothing" >&2
    exit 1
}

echo "==> chaos smoke (process isolation: abort + SIGKILL workers, bit-exact resume)"
# Two workers die hard — one aborts, one SIGKILLs itself. Under
# RESTUNE_ISOLATION=process the suite must contain both crashes to their
# slots and exit 0 (the plan is enabled, so the failures are the
# experiment). A second invocation against the same cache dir resumes the
# checkpoint, heals the crashed applications, and must be bit-identical to
# an uninterrupted reference run against a fresh cache.
chaos_dir=$(mktemp -d)
ref_dir=$(mktemp -d)
RESTUNE_CACHE_DIR="$chaos_dir" RESTUNE_ISOLATION=process \
    ./target/release/suite_check -n 20000 --timeout 60 --resume --json \
    --fault mcf=abort --fault swim=kill > "$chaos_dir/chaos.json"
RESTUNE_CACHE_DIR="$chaos_dir" RESTUNE_ISOLATION=process \
    ./target/release/suite_check -n 20000 --timeout 60 --resume --json \
    > "$chaos_dir/resumed.json"
RESTUNE_CACHE_DIR="$ref_dir" \
    ./target/release/suite_check -n 20000 --timeout 60 --resume --json \
    > "$ref_dir/reference.json"
python3 - "$chaos_dir/chaos.json" "$chaos_dir/resumed.json" "$ref_dir/reference.json" <<'EOF'
import json, sys
chaos, resumed, reference = (json.load(open(p)) for p in sys.argv[1:])
failed = [r for r in chaos["failures"] if r["event"] == "failed"]
assert failed, "chaos run recorded no terminal failures"
assert {r["app"] for r in failed} == {"mcf", "swim"}, failed
assert {r["kind"] for r in failed} == {"crash"}, failed
surviving = {r["app"] for r in chaos["suite_check"]}
assert surviving, "every other application must still complete"
assert not {"mcf", "swim"} & surviving, surviving
assert not [r for r in resumed["failures"] if r["event"] == "failed"], \
    "the resumed run must heal the crashed applications"
replays = sum(1 for r in resumed["run_metrics"] if r["replayed"])
assert replays, "the resumed run must replay checkpointed applications"
assert resumed["suite_check"] == reference["suite_check"], \
    "resumed suite must be bit-identical to an uninterrupted reference"
print(f"chaos ok: {len(failed)} contained crashes, {replays} replayed rows")
EOF

echo "==> trace smoke (traced suite bit-identical, schema-valid, windows present)"
# A traced run must be pure observation: the "suite_check" section (the
# deterministic simulation results) must be bit-identical to an untraced
# reference. run_metrics wall-time fields differ between ANY two runs, so
# the comparison targets the simulation section only. The trace itself must
# pass trace_report --check (the schema gate) and carry waveform windows —
# at this budget the base machine violates, so windows are guaranteed.
trace_dir=$(mktemp -d)
RESTUNE_CACHE_DIR="$(mktemp -d)" \
    ./target/release/suite_check -n 20000 --timeout 60 --json \
    --trace-out "$trace_dir/trace.jsonl" > "$trace_dir/traced.json"
RESTUNE_CACHE_DIR="$(mktemp -d)" \
    ./target/release/suite_check -n 20000 --timeout 60 --json \
    > "$trace_dir/reference.json"
./target/release/trace_report --check "$trace_dir/trace.jsonl" > /dev/null
python3 - "$trace_dir/traced.json" "$trace_dir/reference.json" "$trace_dir/trace.jsonl" <<'EOF'
import json, sys
traced, reference = (json.load(open(p)) for p in sys.argv[1:3])
assert traced["suite_check"] == reference["suite_check"], \
    "tracing changed simulation results"
kinds = set()
with open(sys.argv[3]) as f:
    lines = [json.loads(l) for l in f if l.strip()]
assert lines, "traced run emitted no events"
kinds = {l["kind"] for l in lines}
for k in ("suite-start", "run-start", "violation", "waveform", "run-end",
          "suite-end", "counter"):
    assert k in kinds, f"trace missing {k!r} events: {sorted(kinds)}"
windows = [l for l in lines if l["kind"] == "waveform"]
assert all(l["samples"] for l in windows), "empty waveform window"
counters = {l["name"]: l["value"] for l in lines if l["kind"] == "counter"}
assert counters.get("engine.lane_runs", 0) > 0, \
    f"lane pack not exercised: engine.lane_runs absent or zero in {counters}"
print(f"trace ok: {len(lines)} events, {len(windows)} waveform windows, "
      f"{counters['engine.lane_runs']} lane-packed runs")
EOF

echo "==> kernel bench smoke (--test mode + BENCH_kernel.json schema)"
# The kernel bench in --test mode runs each benchmark body once on shrunk
# workloads and still writes its JSON document (to a scratch path here, so
# the committed full-scale BENCH_kernel.json is not overwritten). The
# validator guards the schema only — numbers vary by machine, the shape
# must not.
smoke_json="$(mktemp -d)/BENCH_kernel.json"
RESTUNE_BENCH_OUT="$smoke_json" cargo bench -q --bench kernel --offline -- --test
python3 - "$smoke_json" BENCH_kernel.json <<'EOF'
import json, sys
for path in sys.argv[1:]:
    with open(path) as f:
        doc = json.load(f)
    assert doc.get("schema") == "restune-kernel-bench-v2", \
        f"{path}: schema drift: {doc.get('schema')!r}"
    for key in ("mode", "batch_size", "lane_width", "benchmarks", "table3_suite"):
        assert key in doc, f"{path}: missing top-level key {key!r}"
    assert doc["benchmarks"], f"{path}: no benchmark rows"
    for row in doc["benchmarks"]:
        for key in ("name", "path", "instructions_per_run", "runs", "cycles",
                    "wall_seconds", "ns_per_cycle", "cycles_per_second"):
            assert key in row, f"{path}: benchmark row missing {key!r}"
    suite = doc["table3_suite"]
    for key in ("apps", "instructions_per_app",
                "fused_wall_seconds", "fused_cycles_per_second",
                "reference_wall_seconds", "reference_cycles_per_second",
                "lanes_wall_seconds", "lanes_cycles_per_second", "lane_width",
                "speedup_cycles_per_second", "speedup_lanes_vs_fused",
                "speedup_lanes_vs_reference"):
        assert key in suite, f"{path}: table3_suite missing {key!r}"
    print(f"{path}: schema ok ({doc['mode']} mode)")
EOF

echo "==> server smoke (restuned: chaos tenants, SIGTERM drain, cache resume)"
# A restuned server with seeded network-fault injection armed serves two
# healthy tenants and two deliberately misbehaving ones concurrently; every
# tenant's deterministic sections must come out bit-identical to in-process
# references. Then SIGTERM lands under load: the server must drain and exit
# 0, and a restart over the same cache directory must serve the persisted
# results back (cache hits, not recomputation).
srv_dir=$(mktemp -d)
sock="$srv_dir/restuned.sock"
RESTUNE_CACHE_DIR="$srv_dir/cache" \
    ./target/release/restuned --socket "$sock" --faults 7 \
    2> "$srv_dir/restuned.log" &
srv_pid=$!
for _ in $(seq 50); do [ -S "$sock" ] && break; sleep 0.1; done
[ -S "$sock" ] || { echo "server smoke: restuned did not bind" >&2; exit 1; }

RESTUNE_CACHE_DIR="$(mktemp -d)" \
    ./target/release/suite_check -n 20000 --json > "$srv_dir/ref_suite.json"
RESTUNE_CACHE_DIR="$(mktemp -d)" \
    ./target/release/table3_tuning -n 8000 --json > "$srv_dir/ref_table3.json"

RESTUNE_CACHE_DIR="$(mktemp -d)" \
    ./target/release/suite_check -n 20000 --json --connect "$sock" \
    > "$srv_dir/thin_suite.json" &
healthy_a=$!
RESTUNE_CACHE_DIR="$(mktemp -d)" \
    ./target/release/table3_tuning -n 8000 --json --connect "$sock" \
    > "$srv_dir/thin_table3.json" &
healthy_b=$!
RESTUNE_NET_FAULT=disconnect:5 RESTUNE_CACHE_DIR="$(mktemp -d)" \
    ./target/release/suite_check -n 20000 --json --connect "$sock" \
    > "$srv_dir/fault_disconnect.json" &
chaos_a=$!
RESTUNE_NET_FAULT=truncate:3 RESTUNE_CACHE_DIR="$(mktemp -d)" \
    ./target/release/suite_check -n 20000 --json --connect "$sock" \
    > "$srv_dir/fault_truncate.json" &
chaos_b=$!
for pid in $healthy_a $healthy_b $chaos_a $chaos_b; do
    wait "$pid" || { echo "server smoke: a tenant exited non-zero" >&2; exit 1; }
done
python3 - "$srv_dir" <<'EOF'
import json, sys
d = sys.argv[1]
load = lambda name: json.load(open(f"{d}/{name}.json"))
ref_suite, ref_table3 = load("ref_suite"), load("ref_table3")
for name in ("thin_suite", "fault_disconnect", "fault_truncate"):
    doc = load(name)
    assert doc["suite_check"] == ref_suite["suite_check"], \
        f"{name}: thin-client suite diverged from the in-process reference"
thin3 = load("thin_table3")
for section in ("table3", "outcomes"):
    assert thin3[section] == ref_table3[section], \
        f"thin_table3: section {section!r} diverged from the reference"
print("server smoke: 4 tenants bit-identical to in-process references")
EOF

# SIGTERM under load: a fresh tenant is mid-suite when the signal lands.
# The server drains (finishing and persisting what was admitted) and must
# exit 0; the interrupted tenant may fail and that is fine — its completed
# jobs live on in the cache.
RESTUNE_CACHE_DIR="$(mktemp -d)" \
    ./target/release/suite_check -n 20000 --json --connect "$sock" \
    > /dev/null 2>&1 &
load_pid=$!
sleep 1
kill -TERM "$srv_pid"
srv_status=0
wait "$srv_pid" || srv_status=$?
[ "$srv_status" -eq 0 ] || {
    echo "server smoke: SIGTERM drain exited $srv_status" >&2
    exit 1
}
grep -q 'restuned: drained' "$srv_dir/restuned.log" || {
    echo "server smoke: no drain summary in the server log" >&2
    exit 1
}
wait "$load_pid" || true

RESTUNE_CACHE_DIR="$srv_dir/cache" \
    ./target/release/restuned --socket "$sock" \
    2> "$srv_dir/restuned2.log" &
srv_pid=$!
for _ in $(seq 50); do [ -S "$sock" ] && break; sleep 0.1; done
RESTUNE_CACHE_DIR="$(mktemp -d)" \
    ./target/release/suite_check -n 20000 --json --connect "$sock" \
    > "$srv_dir/resumed.json"
kill -TERM "$srv_pid"
srv_status=0
wait "$srv_pid" || srv_status=$?
[ "$srv_status" -eq 0 ] || {
    echo "server smoke: restarted server drain exited $srv_status" >&2
    exit 1
}
python3 - "$srv_dir" <<'EOF'
import json, re, sys
d = sys.argv[1]
resumed = json.load(open(f"{d}/resumed.json"))
reference = json.load(open(f"{d}/ref_suite.json"))
assert resumed["suite_check"] == reference["suite_check"], \
    "post-restart suite diverged from the in-process reference"
log = open(f"{d}/restuned2.log").read()
m = re.search(r"cache_hits=(\d+)", log)
assert m, f"no drain summary in the restarted server log:\n{log}"
assert int(m.group(1)) > 0, \
    "the restarted server recomputed everything instead of serving its persisted cache"
print(f"server smoke: restart served {m.group(1)} cache hits after SIGTERM drain")
EOF

echo "==> mesh chaos smoke (3-host shard mesh: kill -KILL + restart, bit-identical)"
# Three fault-seeded restuned hosts behind one comma-separated --connect
# list. A healthy traced run first learns which host owns the most jobs
# under rendezvous sharding (the per-host mesh counters), then that host is
# SIGKILLed just as a fresh tenant starts and restarted mid-suite. The
# tenant's report must come out bit-identical to the in-process reference,
# and the trace must prove failover actually happened (mesh.reroutes > 0).
mesh_dir=$(mktemp -d)
m0="$mesh_dir/host0.sock"
m1="$mesh_dir/host1.sock"
m2="$mesh_dir/host2.sock"
RESTUNE_CACHE_DIR="$mesh_dir/cache0" ./target/release/restuned --socket "$m0" \
    --faults 7 --mesh-peer "$m1" --mesh-peer "$m2" 2> "$mesh_dir/host0.log" &
mesh_pid0=$!
RESTUNE_CACHE_DIR="$mesh_dir/cache1" ./target/release/restuned --socket "$m1" \
    --faults 8 --mesh-peer "$m0" --mesh-peer "$m2" 2> "$mesh_dir/host1.log" &
mesh_pid1=$!
RESTUNE_CACHE_DIR="$mesh_dir/cache2" ./target/release/restuned --socket "$m2" \
    --faults 9 --mesh-peer "$m0" --mesh-peer "$m1" 2> "$mesh_dir/host2.log" &
mesh_pid2=$!
for _ in $(seq 50); do
    [ -S "$m0" ] && [ -S "$m1" ] && [ -S "$m2" ] && break
    sleep 0.1
done
[ -S "$m0" ] && [ -S "$m1" ] && [ -S "$m2" ] || {
    echo "mesh smoke: a restuned host did not bind" >&2; exit 1; }

RESTUNE_CACHE_DIR="$(mktemp -d)" \
    ./target/release/suite_check -n 20000 --json > "$mesh_dir/reference.json"
RESTUNE_CACHE_DIR="$(mktemp -d)" \
    ./target/release/suite_check -n 20000 --json --connect "$m0,$m1,$m2" \
    --trace-out "$mesh_dir/healthy.jsonl" > "$mesh_dir/healthy.json"
./target/release/trace_report --check "$mesh_dir/healthy.jsonl" > /dev/null
victim=$(python3 - "$mesh_dir/healthy.jsonl" <<'EOF'
import json, sys
jobs = {}
for line in open(sys.argv[1]):
    if not line.strip():
        continue
    e = json.loads(line)
    if e.get("kind") == "counter" and e.get("name", "").startswith("mesh.host") \
            and e["name"].endswith(".jobs"):
        host = int(e["name"][len("mesh.host"):-len(".jobs")])
        jobs[host] = jobs.get(host, 0) + int(e["value"])
assert jobs, "healthy mesh run recorded no per-host job counters"
print(max(jobs, key=lambda h: jobs[h]))
EOF
)
case "$victim" in
    0) victim_pid=$mesh_pid0; victim_sock=$m0; victim_seed=7 ;;
    1) victim_pid=$mesh_pid1; victim_sock=$m1; victim_seed=8 ;;
    2) victim_pid=$mesh_pid2; victim_sock=$m2; victim_seed=9 ;;
    *) echo "mesh smoke: bogus victim index '$victim'" >&2; exit 1 ;;
esac

RESTUNE_CACHE_DIR="$(mktemp -d)" \
    ./target/release/suite_check -n 20000 --json --connect "$m0,$m1,$m2" \
    --trace-out "$mesh_dir/chaos.jsonl" > "$mesh_dir/chaos.json" &
tenant_pid=$!
kill -KILL "$victim_pid"
wait "$victim_pid" 2>/dev/null || true
sleep 0.5
RESTUNE_CACHE_DIR="$mesh_dir/cache$victim" ./target/release/restuned \
    --socket "$victim_sock" --faults "$victim_seed" \
    2> "$mesh_dir/host$victim.restart.log" &
restarted_pid=$!
wait "$tenant_pid" || { echo "mesh smoke: tenant exited non-zero" >&2; exit 1; }
./target/release/trace_report --check "$mesh_dir/chaos.jsonl" > /dev/null
python3 - "$mesh_dir" <<'EOF'
import json, sys
d = sys.argv[1]
reference = json.load(open(f"{d}/reference.json"))
for name in ("healthy", "chaos"):
    doc = json.load(open(f"{d}/{name}.json"))
    assert doc["suite_check"] == reference["suite_check"], \
        f"{name}: mesh suite diverged from the in-process reference"
reroutes = 0
for line in open(f"{d}/chaos.jsonl"):
    if not line.strip():
        continue
    e = json.loads(line)
    if e.get("kind") == "counter" and e.get("name") == "mesh.reroutes":
        reroutes += int(e["value"])
assert reroutes > 0, "a SIGKILLed home host must force failover reroutes"
print(f"mesh smoke: kill+restart bit-identical, {reroutes} failover reroutes")
EOF
case "$victim" in
    0) mesh_pid0=$restarted_pid ;;
    1) mesh_pid1=$restarted_pid ;;
    2) mesh_pid2=$restarted_pid ;;
esac
for pid in $mesh_pid0 $mesh_pid1 $mesh_pid2; do
    kill -TERM "$pid"
    wait "$pid" || { echo "mesh smoke: a host failed to drain" >&2; exit 1; }
done
grep -q 'probes=' "$mesh_dir"/host*.log || {
    echo "mesh smoke: drain summary lost its probes counter" >&2; exit 1; }

echo "==> sweep smoke (grid sweep: store sharing, frontier byte-identity, mesh)"
# The same small grid runs once per execution path against fresh caches —
# lane-parallel, serial (RESTUNE_LANES=1), and through a restuned host
# (--connect; the scaled-PDN points fall back to local execution by design)
# — and the Pareto frontier must come out byte-identical from all three.
# A repeat run over the first cache must then serve every previously
# computed run from the content-addressed store (hits == runs in the
# --json store section), reproducing the frontier without simulating.
# The sweep trace must pass the trace_report --check schema gate, which
# validates the sweep-point / frontier-point / sweep-end event shapes.
sweep_dir=$(mktemp -d)
sweep_grid="--grid pdn=1.0,1.5 --grid tuning=75,100"
RESTUNE_CACHE_DIR="$sweep_dir/lanes" ./target/release/sweep -n 8000 \
    $sweep_grid --json --trace-out "$sweep_dir/sweep.jsonl" \
    > "$sweep_dir/lanes.json"
./target/release/trace_report --check "$sweep_dir/sweep.jsonl" > /dev/null
RESTUNE_CACHE_DIR="$sweep_dir/serial" RESTUNE_LANES=1 ./target/release/sweep \
    -n 8000 $sweep_grid --json > "$sweep_dir/serial.json"
sweep_sock="$sweep_dir/restuned.sock"
RESTUNE_CACHE_DIR="$sweep_dir/server-cache" \
    ./target/release/restuned --socket "$sweep_sock" \
    2> "$sweep_dir/restuned.log" &
sweep_srv=$!
for _ in $(seq 50); do [ -S "$sweep_sock" ] && break; sleep 0.1; done
[ -S "$sweep_sock" ] || { echo "sweep smoke: restuned did not bind" >&2; exit 1; }
RESTUNE_CACHE_DIR="$sweep_dir/mesh" ./target/release/sweep -n 8000 \
    $sweep_grid --json --connect "$sweep_sock" > "$sweep_dir/mesh.json"
kill -TERM "$sweep_srv"
wait "$sweep_srv" || { echo "sweep smoke: restuned failed to drain" >&2; exit 1; }
RESTUNE_CACHE_DIR="$sweep_dir/lanes" ./target/release/sweep -n 8000 \
    $sweep_grid --json > "$sweep_dir/replay.json"
python3 - "$sweep_dir" <<'EOF'
import json, sys
d = sys.argv[1]
load = lambda name: json.load(open(f"{d}/{name}.json"))
lanes, serial, mesh, replay = (load(n) for n in ("lanes", "serial", "mesh", "replay"))
for name, doc in (("serial", serial), ("mesh", mesh), ("replay", replay)):
    assert doc["frontier"] == lanes["frontier"], \
        f"{name}: Pareto frontier diverged from the lane-parallel run"
    assert doc["sweep"] == lanes["sweep"], \
        f"{name}: sweep points diverged from the lane-parallel run"
assert lanes["frontier"], "sweep produced an empty frontier"
store = replay["store"][0]
assert store["store_hits"] == store["runs"] and store["store_misses"] == 0, \
    f"replay must serve every run from the store: {store}"
first_store = lanes["store"][0]
assert first_store["store_hits"] == 0, \
    f"a fresh cache cannot hit the store: {first_store}"
kinds = {json.loads(l)["kind"] for l in open(f"{d}/sweep.jsonl") if l.strip()}
for k in ("sweep-start", "sweep-point", "frontier-point", "sweep-end"):
    assert k in kinds, f"sweep trace missing {k!r} events: {sorted(kinds)}"
print(f"sweep ok: {len(lanes['sweep'])} points, {len(lanes['frontier'])} on the "
      f"frontier, byte-identical across lanes/serial/mesh, "
      f"{store['store_hits']} store-served on replay")
EOF

echo "==> tier-1 green"
