//! Quickstart: the whole pipeline in sixty lines.
//!
//! Builds the paper's power supply, inspects its resonance, then runs the
//! `parser` workload on the simulated processor with and without resonance
//! tuning and reports violations, slowdown, and energy-delay.
//!
//! Run with: `cargo run --release --example quickstart`

use restune::{run, RelativeOutcome, SimConfig, Technique, TuningConfig};
use rlc::units::Hertz;
use rlc::SupplyParams;
use workloads::spec2k;

fn main() {
    // 1. The power-distribution network of the paper's Table 1:
    //    375 µΩ / 1.69 pH / 1500 nF at 1.0 V, ±5 % noise margin.
    let supply = SupplyParams::isca04_table1();
    let clock = Hertz::from_giga(10.0);
    println!(
        "resonant frequency: {:.1} MHz",
        supply.resonant_frequency().hertz() / 1e6
    );
    println!("quality factor Q:   {:.2}", supply.quality_factor());
    let (lo, hi) = supply.resonance_band_cycles(clock).expect("valid clock");
    println!(
        "resonance band:     {}–{} cycle periods at 10 GHz",
        lo.count(),
        hi.count()
    );

    // 2. A workload with resonant behavior: parser (Figure 4's subject).
    let parser = spec2k::by_name("parser").expect("parser is in the suite");
    let sim = SimConfig::isca04(150_000);

    // 3. Base machine: noise-margin violations allowed.
    let base = run(&parser, &Technique::Base, &sim);
    println!(
        "\nbase machine:    {} cycles, IPC {:.2}, {} violation cycles (worst {:+.1} mV)",
        base.cycles,
        base.ipc,
        base.violation_cycles,
        base.worst_noise.volts() * 1e3
    );

    // 4. Resonance tuning with a 100-cycle initial response time.
    let tuning = Technique::Tuning(TuningConfig::isca04_table1(100));
    let tuned = run(&parser, &tuning, &sim);
    println!(
        "resonance tuning: {} cycles, IPC {:.2}, {} violation cycles",
        tuned.cycles, tuned.ipc, tuned.violation_cycles
    );
    println!(
        "                  {:.1} % of cycles in first-level response, {:.2} % in second-level",
        tuned.first_level_fraction() * 100.0,
        tuned.second_level_fraction() * 100.0
    );

    // 5. The cost of violation-free operation.
    let cost = RelativeOutcome::new(&base, &tuned);
    println!(
        "\ncost of tuning:  {:.1} % slowdown, {:.1} % energy-delay increase",
        (cost.slowdown - 1.0) * 100.0,
        (cost.relative_energy_delay - 1.0) * 100.0
    );
    println!(
        "violations eliminated: {} → {}",
        base.violation_cycles, tuned.violation_cycles
    );
}
