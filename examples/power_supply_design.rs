//! Power-supply design-space exploration.
//!
//! Sweeps the on-die decoupling-capacitance budget and the supply impedance
//! around the paper's Table 1 design point, showing how the resonant
//! frequency, quality factor, resonance band, and the calibrated
//! resonance-tuning parameters (variation threshold, repetition tolerance)
//! move — the analysis a packaging team would run before picking tuning
//! parameters for a new part.
//!
//! Run with: `cargo run --release --example power_supply_design`

use rlc::units::{Amps, Farads, Henries, Hertz, Ohms, Volts};
use rlc::{calibrate, SupplyParams};

fn describe(label: &str, params: &SupplyParams, clock: Hertz) {
    let f = params.resonant_frequency().hertz() / 1e6;
    let q = params.quality_factor();
    print!("{label:26} f_res = {f:6.1} MHz  Q = {q:5.2}");
    match params.resonance_band_cycles(clock) {
        Ok((lo, hi)) => print!("  band = {:>3}-{:<3} cycles", lo.count(), hi.count()),
        Err(e) => print!("  band: {e}"),
    }
    match calibrate(params, clock, Amps::new(70.0)) {
        Ok(cal) => println!(
            "  M = {:4.1} A  tolerance = {} half-waves",
            cal.variation_threshold.amps(),
            cal.max_repetition_tolerance
        ),
        Err(_) => println!("  (supply never violates: tuning unnecessary)"),
    }
}

fn main() {
    let clock = Hertz::from_giga(10.0);
    let base_r = Ohms::from_micro(375.0);
    let base_l = Henries::from_pico(1.69);
    let base_c = Farads::from_nano(1500.0);
    let vdd = Volts::new(1.0);
    let margin = Volts::new(0.05);

    println!("=== Decoupling-capacitance sweep (R = 375 µΩ, L = 1.69 pH) ===");
    println!("More d-cap lowers the resonant frequency and raises Q — more cycles");
    println!("to react, but resonant energy is stored more efficiently:\n");
    for nf in [500.0, 1000.0, 1500.0, 3000.0, 6000.0] {
        let p = SupplyParams::new(base_r, base_l, Farads::from_nano(nf), vdd, margin)
            .expect("sweep stays underdamped");
        describe(&format!("C = {nf:6.0} nF"), &p, clock);
    }

    println!("\n=== Supply-impedance sweep (L = 1.69 pH, C = 1500 nF) ===");
    println!("Lower R is where scaling pushes designs — and it raises Q, making");
    println!("the inductive-noise problem worse:\n");
    for micro_ohms in [188.0, 375.0, 750.0, 1500.0] {
        let p = SupplyParams::new(Ohms::from_micro(micro_ohms), base_l, base_c, vdd, margin)
            .expect("sweep stays underdamped");
        describe(&format!("R = {micro_ohms:6.0} µΩ"), &p, clock);
    }

    println!("\n=== Technology-scaling trend (Section 3.2 of the paper) ===");
    println!("C grows with integration while L stays fixed: the resonant period in");
    println!("cycles grows every generation, giving resonance tuning more time:\n");
    for (gen, nf, ghz) in [
        ("today", 500.0, 5.0),
        ("paper design", 1500.0, 10.0),
        ("+2 gens", 4000.0, 16.0),
    ] {
        let p = SupplyParams::new(base_r, base_l, Farads::from_nano(nf), vdd, margin)
            .expect("scaling stays underdamped");
        let period = p
            .resonant_period_cycles(Hertz::from_giga(ghz))
            .expect("period is resolvable");
        println!(
            "{gen:13} C = {nf:5.0} nF @ {ghz:4.1} GHz: resonant period = {period}, quarter period = {} cycles to react",
            period.count() / 4
        );
    }
}
