//! Detector playground: feed hand-crafted current waveforms to the
//! resonance detector and watch what it does (and, just as important, what
//! it does *not* do).
//!
//! Demonstrates the paper's two key observations:
//! 1. only variations *inside the resonance band* matter — off-band waves
//!    of the same magnitude are ignored;
//! 2. only *repeated* variations matter — isolated steps never chain into
//!    a resonant event count worth reacting to.
//!
//! Run with: `cargo run --release --example detector_playground`

use restune::{EventDetector, TuningConfig};
use rlc::units::{Amps, Cycles, Hertz};
use rlc::{simulate_waveform, PeriodicWave, Shape, SupplyParams};

/// Runs a waveform through both the physical supply and the architectural
/// detector, reporting the max event count and whether the margin was hit.
fn scenario(label: &str, wave: &dyn rlc::Waveform, cycles: u64) {
    let params = SupplyParams::isca04_table1();
    let clock = Hertz::from_giga(10.0);
    let trace = simulate_waveform(&params, clock, wave, Cycles::new(cycles));

    let mut detector = EventDetector::new(TuningConfig::isca04_table1(100));
    let mut max_count = 0;
    let mut events = 0;
    for i in &trace.current {
        if let Some(ev) = detector.observe(i.amps().round() as i64) {
            events += 1;
            max_count = max_count.max(ev.count);
        }
    }
    println!(
        "{label:44} events = {events:3}  max count = {max_count}  worst = {:+6.1} mV  violated = {}",
        trace.worst_noise.volts() * 1e3,
        trace.violated(),
    );
}

fn main() {
    println!("Table 1 supply: resonance band 84–119 cycles, threshold 32 A, tolerance 4.\n");
    let mid = Amps::new(70.0);
    let forever = Cycles::new(u64::MAX);
    let zero = Cycles::new(0);

    println!("--- observation 1: only the resonance band matters ---");
    for (label, period) in [
        ("40 A square @ 30-cycle period (off band)", 30),
        ("40 A square @ 100-cycle period (resonant)", 100),
        ("40 A square @ 118-cycle period (band edge)", 118),
        ("40 A square @ 240-cycle period (off band)", 240),
    ] {
        let wave = PeriodicWave::sustained_square(mid, Amps::new(40.0), Cycles::new(period));
        scenario(label, &wave, 3_000);
    }

    println!("\n--- observation 2: only repetition matters ---");
    let step = move |c: Cycles| {
        if c.count() < 1_500 {
            mid
        } else {
            Amps::new(100.0)
        }
    };
    scenario("isolated 30 A step (no repetition)", &step, 3_000);
    let two_pulses = PeriodicWave::new(
        Shape::Square,
        mid,
        Amps::new(40.0),
        Cycles::new(100),
        Cycles::new(500),
        Cycles::new(700),
    );
    scenario("two resonant periods, then quiet", &two_pulses, 3_000);
    let sustained = PeriodicWave::new(
        Shape::Square,
        mid,
        Amps::new(40.0),
        Cycles::new(100),
        Cycles::new(500),
        forever,
    );
    scenario("sustained resonant wave", &sustained, 3_000);

    println!("\n--- magnitude still gates everything ---");
    for p2p in [10.0, 14.0, 24.0, 40.0] {
        let wave = PeriodicWave::new(
            Shape::Square,
            mid,
            Amps::new(p2p),
            Cycles::new(100),
            zero,
            forever,
        );
        scenario(
            &format!("{p2p:4.0} A square @ resonant period"),
            &wave,
            4_000,
        );
    }
    println!("\n(The detector reacts to the sustained in-band waves that actually build");
    println!("toward violations, and stays quiet for off-band, isolated, or small ones.)");
}
