//! Side-by-side technique comparison on a handful of applications.
//!
//! Runs base, resonance tuning, the voltage-sensor technique of [10]
//! (realistic noise/delay point), and pipeline damping [14] on three
//! representative workloads — a heavy violator (swim), a mild violator
//! (parser), and a clean high-ILP app (fma3d) — and prints violations,
//! slowdown, and energy-delay per technique.
//!
//! Run with: `cargo run --release --example compare_techniques`

use restune::{
    run, DampingConfig, RelativeOutcome, SensorConfig, SimConfig, Technique, TuningConfig,
};
use workloads::spec2k;

fn main() {
    let sim = SimConfig::isca04(120_000);
    let techniques: Vec<(&str, Technique)> = vec![
        (
            "resonance tuning (100cy)",
            Technique::Tuning(TuningConfig::isca04_table1(100)),
        ),
        (
            "sensor [10] 20/10/5",
            Technique::Sensor(SensorConfig::table4(20.0, 10.0, 5)),
        ),
        (
            "damping [14] δ=0.5",
            Technique::Damping(DampingConfig::isca04_table5(0.5)),
        ),
    ];

    for app in ["swim", "parser", "fma3d"] {
        let profile = spec2k::by_name(app).expect("app is in the suite");
        let base = run(&profile, &Technique::Base, &sim);
        println!(
            "=== {app} === base: IPC {:.2}, {} violation cycles (worst {:+.1} mV)",
            base.ipc,
            base.violation_cycles,
            base.worst_noise.volts() * 1e3
        );
        for (name, technique) in &techniques {
            let r = run(&profile, technique, &sim);
            let cost = RelativeOutcome::new(&base, &r);
            println!(
                "  {name:26} violations {:5}  slowdown {:5.1} %  energy-delay {:5.1} %",
                r.violation_cycles,
                (cost.slowdown - 1.0) * 100.0,
                (cost.relative_energy_delay - 1.0) * 100.0
            );
        }
        println!();
    }
    println!("Resonance tuning eliminates violations at a fraction of the cost of the");
    println!("magnitude-based schemes — and costs nearly nothing on clean applications.");
}
