//! Anatomy of a workload's current: where the amps go, and where in the
//! frequency spectrum they land.
//!
//! Uses the power model's per-structure breakdown and the Goertzel spectrum
//! analyzer to dissect one violating and one clean application — the
//! characterization step that motivates resonance tuning in the first
//! place: the two apps draw *similar average current*, but only one puts
//! its variation inside the resonance band.
//!
//! Run with: `cargo run --release --example current_anatomy`

use cpusim::{Cpu, CpuConfig, PipelineControls};
use powermodel::{PowerConfig, PowerModel};
use rlc::units::{Amps, Hertz};
use rlc::{band_power, resonance_band_ratio, SupplyParams};
use workloads::{spec2k, stream::warm_caches, StreamGen};

const CYCLES: u64 = 60_000;
const CLOCK: Hertz = Hertz::new(10e9);

struct Anatomy {
    mean: f64,
    breakdown_means: [(String, f64); 6],
    band_ratio: f64,
    band_power: f64,
}

fn dissect(app: &str) -> Anatomy {
    let profile = spec2k::by_name(app).expect("app is in the suite");
    let mut cpu = Cpu::new(CpuConfig::isca04_table1(), StreamGen::new(profile));
    warm_caches(&mut cpu);
    let mut model = PowerModel::new(PowerConfig::isca04_table1(), CpuConfig::isca04_table1());

    let mut trace: Vec<Amps> = Vec::with_capacity(CYCLES as usize);
    let mut sums = [0.0f64; 6];
    for _ in 0..CYCLES {
        let ev = cpu.tick(PipelineControls::free());
        let b = model.breakdown_for(&ev);
        trace.push(b.total);
        sums[0] += b.fetch.amps() + b.dispatch.amps() + b.commit.amps();
        sums[1] += b.window.amps() + b.regfile.amps() + b.result_bus.amps();
        sums[2] += b.int_alu.amps() + b.int_mul.amps();
        sums[3] += b.fp.amps();
        sums[4] += b.l1i.amps() + b.l1d.amps();
        sums[5] += b.l2.amps() + b.mem_bus.amps();
    }
    let n = CYCLES as f64;
    let labels = [
        "frontend+commit",
        "window+regfile+bus",
        "integer units",
        "fp units",
        "L1 caches",
        "L2+memory",
    ];
    let supply = SupplyParams::isca04_table1();
    let (lo, hi) = supply.resonance_band();
    Anatomy {
        mean: trace.iter().map(|a| a.amps()).sum::<f64>() / n,
        breakdown_means: std::array::from_fn(|i| (labels[i].to_string(), sums[i] / n)),
        band_ratio: resonance_band_ratio(&trace, CLOCK, &supply),
        band_power: band_power(&trace, CLOCK, lo, hi, 9),
    }
}

fn main() {
    println!("=== Current anatomy: swim (violating) vs eon (clean) ===\n");
    for app in ["swim", "eon"] {
        let a = dissect(app);
        println!(
            "{app}: mean current {:.1} A (35 A idle floor + dynamic):",
            a.mean
        );
        for (label, amps) in &a.breakdown_means {
            let bar = "#".repeat((amps * 4.0).round() as usize);
            println!("  {label:20} {amps:5.2} A {bar}");
        }
        println!(
            "  resonance-band power {:.2} A² — {:.0}× the equal-width band above it\n",
            a.band_power, a.band_ratio
        );
    }
    println!("Similar averages and similar per-structure splits — the difference that");
    println!("matters for reliability is *where in frequency* the variation sits, which");
    println!("is exactly the quantity resonance tuning detects and steers.");
}
