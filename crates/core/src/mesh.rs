//! Shard-aware multi-host mesh routing for the thin client, plus the
//! deterministic chaos conductor that torments it in tests.
//!
//! A comma-separated `--connect` list arms a [`Mesh`]: one
//! [`crate::client::Core`] per `restuned` host, with
//!
//! * **rendezvous sharding** — every job hashes its fingerprint against
//!   each host's *canonicalized endpoint string* ([`rendezvous_order`],
//!   [`shard_keys`]); the highest score is the job's home host, so the
//!   persisted cross-tenant result cache shards with the work and a
//!   resend lands where the cached row lives. Because scores key on the
//!   endpoint itself (not its position in the list), reordering a
//!   `--connect` list never reassigns a shard — cache affinity survives
//!   config edits that merely permute the same hosts;
//! * **circuit breaking** — a per-host closed → open → half-open state
//!   machine: consecutive host-down failures open the breaker, an open
//!   breaker rejects routing until its cooldown elapses, then one probe
//!   frame decides between closing it and re-opening with a doubled
//!   cooldown. Probe acks carry the host's generation tag, so a restarted
//!   host is recognized (and rejoins cleanly) in one round trip;
//! * **failover rerouting** — a request whose home host is down, open, or
//!   partitioned walks the rendezvous order to the next host. The resend
//!   is idempotent: replies are cache-keyed by job fingerprint, so
//!   whichever host runs the job produces bit-identical rows;
//! * **observability** — `mesh.reroutes`, `mesh.breaker_opens`,
//!   `mesh.probe_successes`, `mesh.probe_failures`, `mesh.host_restarts`,
//!   and per-host `mesh.host{i}.jobs` / `mesh.host{i}.failures` counters,
//!   plus `mesh-reroute` / `mesh-breaker` trace events.
//!
//! The [`ChaosConductor`] executes a seeded
//! [`crate::fault::ChaosSchedule`] against real in-process [`Server`]s:
//! kills (abrupt stop), drains (the SIGTERM path), restarts (same endpoint
//! and cache, fresh generation), stalls (worker pool wedged for a window),
//! and partition windows (the mesh routes around a host, then heals). The
//! chaos test tier asserts that every schedule in a seeded family yields
//! suite reports byte-identical to a single healthy in-process run.

use std::io;
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

use std::sync::Arc;

use workloads::WorkloadProfile;

use crate::client::{self, Core, HostAttempt};
use crate::fault::{ChaosSchedule, ChaosStep, FailureKind, FaultSpec};
use crate::server::{Endpoint, Server, ServerConfig};
use crate::sim::{InstrumentedRun, SimConfig, Technique};
use crate::wire;

/// Consecutive host-down failures that open a host's breaker.
const OPEN_AFTER: u32 = 2;
/// First open-state cooldown; doubles on every failed probe.
const BASE_COOLDOWN: Duration = Duration::from_millis(150);
/// Cooldown growth cap.
const MAX_COOLDOWN: Duration = Duration::from_secs(2);
/// How long a half-open probe waits for its ack.
const PROBE_TIMEOUT: Duration = Duration::from_millis(500);
/// Per-host reconnect budget when the mesh has somewhere else to go;
/// failing over beats a long per-host retry ladder.
const MESH_RECONNECTS: u32 = 2;
/// Full routing passes over the host list before the request gives up.
const MAX_PASSES: u32 = 8;

/// Rendezvous ("highest random weight") order of host indices for one job
/// fingerprint: every host is scored by hashing `(fingerprint, shard
/// key)` — the shard key being the host's canonicalized endpoint string
/// (see [`shard_keys`]) — and the hosts are returned best score first.
/// Deterministic, uniform, and minimally disruptive: removing one host
/// only moves the jobs that lived there, and because the key is the
/// endpoint rather than the list position, permuting the `--connect`
/// list leaves every assignment where it was.
pub fn rendezvous_order(fingerprint: u64, keys: &[String]) -> Vec<usize> {
    let mut scored: Vec<(u64, usize)> = keys
        .iter()
        .enumerate()
        .map(|(index, key)| {
            let mut bytes = Vec::with_capacity(8 + key.len());
            bytes.extend_from_slice(&fingerprint.to_le_bytes());
            bytes.extend_from_slice(key.as_bytes());
            (crate::engine::fnv1a(&bytes), index)
        })
        .collect();
    scored.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    scored.into_iter().map(|(_, index)| index).collect()
}

/// The canonical shard key of every endpoint in a comma-separated
/// `--connect` list: each entry trimmed, then parsed and re-rendered
/// through [`Endpoint`]'s display form — so an endpoint scores the same
/// however it was spelled or positioned in the list. Exposed so tests
/// and tools can predict routing.
pub fn shard_keys(connect: &str) -> Vec<String> {
    connect
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|raw| Endpoint::parse(raw).to_string())
        .collect()
}

/// The shard key the mesh routes on: exactly the job fingerprint that
/// names the job in every result cache. Exposed so tests and tools can
/// predict which host a job prefers.
pub fn job_shard(
    profile: &WorkloadProfile,
    technique: &Technique,
    sim: &SimConfig,
    specs: &[FaultSpec],
) -> u64 {
    wire::job_fingerprint(profile, technique, sim, specs)
}

/// The circuit-breaker state of one host.
#[derive(Debug, Clone, Copy)]
enum Breaker {
    /// Routing normally; `failures` consecutive host-down events so far.
    Closed { failures: u32 },
    /// Rejecting routes until `since + cooldown`, then half-open: the next
    /// route attempt probes instead of sending a job.
    Open { since: Instant, cooldown: Duration },
}

struct HostState {
    breaker: Breaker,
    /// A chaos-conductor partition window: the host is unroutable until
    /// this instant, independent of breaker state.
    partition_until: Option<Instant>,
    /// The last generation observed from this host (0 = none yet).
    last_generation: u64,
}

/// One mesh host: its connection core plus routing state.
struct Host {
    index: usize,
    core: Arc<Core>,
    state: Mutex<HostState>,
}

/// What the router should do with a host right now.
enum Route {
    /// Send the job.
    Go,
    /// Open breaker past its cooldown: probe first.
    Probe,
    /// Unroutable (partitioned, or open and cooling down).
    Skip,
}

impl Host {
    fn new(index: usize, endpoint: Endpoint) -> Host {
        Host {
            index,
            core: Core::new(endpoint),
            state: Mutex::new(HostState {
                breaker: Breaker::Closed { failures: 0 },
                partition_until: None,
                last_generation: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HostState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn route(&self) -> Route {
        let mut state = self.lock();
        if let Some(until) = state.partition_until {
            if Instant::now() < until {
                return Route::Skip;
            }
            state.partition_until = None; // window over: heal
        }
        match state.breaker {
            Breaker::Closed { .. } => Route::Go,
            Breaker::Open { since, cooldown } => {
                if since.elapsed() >= cooldown {
                    Route::Probe
                } else {
                    Route::Skip
                }
            }
        }
    }

    /// Records the generation seen on a successful exchange; counts a
    /// restart when it changed.
    fn observe_generation(&self, state: &mut HostState, generation: u64) {
        if generation == 0 {
            return;
        }
        if state.last_generation != 0 && state.last_generation != generation {
            crate::obs::counter_add("mesh.host_restarts", 1);
            crate::obs::Event::engine("mesh-breaker")
                .u64_field("host", self.index as u64)
                .str_field("state", "rejoined")
                .emit();
        }
        state.last_generation = generation;
    }

    fn on_success(&self) {
        let mut state = self.lock();
        if matches!(state.breaker, Breaker::Open { .. }) {
            crate::obs::Event::engine("mesh-breaker")
                .u64_field("host", self.index as u64)
                .str_field("state", "closed")
                .emit();
        }
        state.breaker = Breaker::Closed { failures: 0 };
        let generation = self.core.host_generation();
        self.observe_generation(&mut state, generation);
    }

    fn on_failure(&self) {
        let mut state = self.lock();
        state.breaker = match state.breaker {
            Breaker::Closed { failures } => {
                let failures = failures + 1;
                if failures >= OPEN_AFTER {
                    crate::obs::counter_add("mesh.breaker_opens", 1);
                    crate::obs::Event::engine("mesh-breaker")
                        .u64_field("host", self.index as u64)
                        .str_field("state", "open")
                        .emit();
                    Breaker::Open {
                        since: Instant::now(),
                        cooldown: BASE_COOLDOWN,
                    }
                } else {
                    Breaker::Closed { failures }
                }
            }
            // A failure while open (a failed half-open job send) re-arms
            // the window with a doubled cooldown.
            Breaker::Open { cooldown, .. } => Breaker::Open {
                since: Instant::now(),
                cooldown: (cooldown * 2).min(MAX_COOLDOWN),
            },
        };
    }

    /// The half-open transition: one probe frame decides. A success closes
    /// the breaker (and notices a restart via the generation in the ack);
    /// a failure re-opens it with a doubled cooldown.
    fn probe(&self) -> bool {
        match client::probe_host(&self.core, PROBE_TIMEOUT) {
            Some(generation) => {
                crate::obs::counter_add("mesh.probe_successes", 1);
                let mut state = self.lock();
                state.breaker = Breaker::Closed { failures: 0 };
                self.observe_generation(&mut state, generation);
                drop(state);
                crate::obs::Event::engine("mesh-breaker")
                    .u64_field("host", self.index as u64)
                    .str_field("state", "closed")
                    .emit();
                true
            }
            None => {
                crate::obs::counter_add("mesh.probe_failures", 1);
                let mut state = self.lock();
                state.breaker = match state.breaker {
                    Breaker::Open { cooldown, .. } => Breaker::Open {
                        since: Instant::now(),
                        cooldown: (cooldown * 2).min(MAX_COOLDOWN),
                    },
                    Breaker::Closed { .. } => Breaker::Open {
                        since: Instant::now(),
                        cooldown: BASE_COOLDOWN,
                    },
                };
                false
            }
        }
    }
}

/// A shard-aware routing layer over N suite-server hosts. Built by
/// [`crate::set_connect`] from a comma-separated endpoint list; a
/// single-endpoint list behaves exactly like the classic thin client
/// (same reconnect budget, same error surface).
pub struct Mesh {
    hosts: Vec<Host>,
    /// Canonical endpoint strings, index-aligned with `hosts` — the HRW
    /// shard keys (see [`shard_keys`]).
    keys: Vec<String>,
}

impl std::fmt::Debug for Mesh {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Mesh({} hosts)", self.hosts.len())
    }
}

impl Mesh {
    /// Parses a comma-separated endpoint list and eagerly dials every
    /// host. A single-host mesh propagates its connect error (fail fast,
    /// exactly like the classic client); a multi-host mesh tolerates
    /// unreachable hosts — their breakers start open — as long as at
    /// least one host answers.
    pub(crate) fn connect(raw: &str) -> io::Result<Mesh> {
        let endpoints: Vec<&str> = raw
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        if endpoints.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "empty --connect endpoint list",
            ));
        }
        let hosts: Vec<Host> = endpoints
            .iter()
            .enumerate()
            .map(|(index, raw)| Host::new(index, Endpoint::parse(raw)))
            .collect();
        let keys = shard_keys(raw);
        let mut reachable = 0usize;
        let mut last_err: Option<io::Error> = None;
        for (host, endpoint) in hosts.iter().zip(&endpoints) {
            match client::ensure_connected(&host.core) {
                Ok(_) => {
                    host.on_success();
                    reachable += 1;
                }
                Err(e) => {
                    crate::obs::warn(
                        "mesh",
                        &format!(
                            "host {} ({endpoint}) unreachable at connect: {e}",
                            host.index
                        ),
                    );
                    let mut state = host.lock();
                    state.breaker = Breaker::Open {
                        since: Instant::now(),
                        cooldown: BASE_COOLDOWN,
                    };
                    drop(state);
                    crate::obs::counter_add("mesh.breaker_opens", 1);
                    last_err = Some(e);
                }
            }
        }
        if reachable == 0 {
            return Err(last_err.expect("at least one endpoint was dialed"));
        }
        Ok(Mesh { hosts, keys })
    }

    /// The number of hosts in the mesh (including currently-broken ones).
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// Marks `host` unroutable for `window` and severs its current
    /// connection — the chaos conductor's partition primitive. The window
    /// heals by itself; no state survives it (the breaker is untouched).
    pub(crate) fn partition(&self, host: usize, window: Duration) {
        let Some(host) = self.hosts.get(host) else {
            return;
        };
        host.lock().partition_until = Some(Instant::now() + window);
        client::sever(&host.core);
        crate::obs::Event::engine("mesh-breaker")
            .u64_field("host", host.index as u64)
            .str_field("state", "partitioned")
            .emit();
    }

    /// Tears down every host core (see [`crate::clear_connect`]).
    pub(crate) fn teardown(&self) {
        for host in &self.hosts {
            client::teardown_core(&host.core);
        }
    }

    /// Routes one job: rendezvous order, breaker gates, probe-on-half-open,
    /// failover on host-down, bounded passes with backoff in between.
    pub(crate) fn request(
        &self,
        profile: &WorkloadProfile,
        technique: &Technique,
        sim: &SimConfig,
        specs: &[FaultSpec],
        timeout: Option<Duration>,
    ) -> Result<InstrumentedRun, (FailureKind, String)> {
        let fingerprint = wire::job_fingerprint(profile, technique, sim, specs);
        let job = wire::encode_job(profile, technique, sim, specs, timeout, fingerprint);
        let want_obs = crate::obs::trace_enabled();
        // The overall patience budget: generous multiples of the job's own
        // deadline (the server needs time to queue, run, and retry),
        // bounded even when the job has none.
        let patience = timeout
            .map(|t| t * 4 + Duration::from_secs(120))
            .unwrap_or(client::NO_DEADLINE_BUDGET);
        let started = Instant::now();
        let mut busy_spent = Duration::ZERO;
        let order = rendezvous_order(fingerprint, &self.keys);
        let single = self.hosts.len() == 1;
        let budget = if single {
            client::MAX_RECONNECTS
        } else {
            MESH_RECONNECTS
        };
        let mut last_down = String::from("no routable host");
        let mut pass: u32 = 0;
        loop {
            for (rank, &index) in order.iter().enumerate() {
                let host = &self.hosts[index];
                match host.route() {
                    Route::Skip => continue,
                    Route::Probe => {
                        if !host.probe() {
                            continue;
                        }
                    }
                    Route::Go => {}
                }
                if rank > 0 {
                    crate::obs::counter_add("mesh.reroutes", 1);
                    crate::obs::Event::engine("mesh-reroute")
                        .u64_field("host", index as u64)
                        .u64_field("preferred", order[0] as u64)
                        .emit();
                }
                match client::host_request(
                    &host.core,
                    &job,
                    profile.name,
                    want_obs,
                    budget,
                    started,
                    patience,
                    &mut busy_spent,
                ) {
                    HostAttempt::Reply(outcome) => {
                        host.on_success();
                        crate::obs::counter_add(&format!("mesh.host{index}.jobs"), 1);
                        return outcome;
                    }
                    HostAttempt::Down(message) => {
                        host.on_failure();
                        crate::obs::counter_add(&format!("mesh.host{index}.failures"), 1);
                        // The classic single-host client surfaces its
                        // transport error immediately; a mesh keeps
                        // walking the order.
                        if single {
                            return Err((FailureKind::Transport, message));
                        }
                        last_down = message;
                    }
                }
            }
            pass += 1;
            if pass >= MAX_PASSES {
                return Err((
                    FailureKind::Transport,
                    format!(
                        "all {} mesh hosts unavailable after {pass} passes: {last_down}",
                        self.hosts.len()
                    ),
                ));
            }
            if crate::isolation::shutdown_requested() {
                return Err((
                    FailureKind::Interrupted,
                    "shutdown signal received; remote attempt abandoned".to_string(),
                ));
            }
            if started.elapsed() > patience {
                return Err((
                    FailureKind::Transport,
                    format!("no server reply within the {patience:?} request budget"),
                ));
            }
            // Every host skipped or down this pass: wait out the shortest
            // plausible recovery (a breaker cooldown) and try again.
            std::thread::sleep(client::backoff(pass.saturating_sub(1)));
        }
    }
}

/// Marks `host` of the active `--connect` mesh unroutable for `window`
/// (and severs its connection). `false` when no mesh route is armed or
/// the index is out of range. This is the partition-window primitive the
/// chaos conductor — or an external test harness — drives.
pub fn partition_host(host: usize, window: Duration) -> bool {
    let Some(mesh) = client::active_mesh() else {
        return false;
    };
    if host >= mesh.host_count() {
        return false;
    }
    mesh.partition(host, window);
    true
}

// ---------------------------------------------------------------------------
// Chaos conductor
// ---------------------------------------------------------------------------

/// One conducted host: where it listens, how to (re)start it, and the
/// running server when it is up.
struct ChaosHost {
    endpoint: Endpoint,
    cfg: ServerConfig,
    server: Option<Server>,
}

/// Executes a deterministic [`ChaosSchedule`] against a set of in-process
/// [`Server`] hosts. Two drive modes:
///
/// * [`ChaosConductor::step`] applies the next step immediately — the test
///   harness interleaves steps with suite batches, so counter assertions
///   are deterministic;
/// * [`ChaosConductor::run_with_delays`] honors the schedule's seeded
///   delays on the calling thread — spawn it on a worker for wall-clock
///   chaos under live traffic.
pub struct ChaosConductor {
    hosts: Vec<ChaosHost>,
    schedule: ChaosSchedule,
    cursor: usize,
}

impl std::fmt::Debug for ChaosConductor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ChaosConductor({} hosts, step {}/{})",
            self.hosts.len(),
            self.cursor,
            self.schedule.steps.len()
        )
    }
}

impl ChaosConductor {
    /// Starts one server per `(endpoint, config)` pair and arms the
    /// schedule. Hosts are addressed by their index in this list — the
    /// same order the client's `--connect` list must use.
    pub fn start(
        hosts: Vec<(Endpoint, ServerConfig)>,
        schedule: ChaosSchedule,
    ) -> io::Result<ChaosConductor> {
        let hosts = hosts
            .into_iter()
            .map(|(endpoint, cfg)| {
                let server = Server::start(endpoint.clone(), cfg.clone())?;
                Ok(ChaosHost {
                    endpoint,
                    cfg,
                    server: Some(server),
                })
            })
            .collect::<io::Result<Vec<_>>>()?;
        Ok(ChaosConductor {
            hosts,
            schedule,
            cursor: 0,
        })
    }

    /// Steps remaining in the schedule.
    pub fn remaining(&self) -> usize {
        self.schedule.steps.len() - self.cursor
    }

    /// Applies the next step immediately (ignoring its seeded delay) and
    /// returns it; `None` when the schedule is exhausted.
    pub fn step(&mut self) -> Option<ChaosStep> {
        let (_, step) = self.schedule.steps.get(self.cursor)?.clone();
        self.cursor += 1;
        self.apply(&step);
        Some(step)
    }

    /// Plays the rest of the schedule on the calling thread, sleeping out
    /// each step's seeded delay first.
    pub fn run_with_delays(&mut self) {
        while self.cursor < self.schedule.steps.len() {
            let (delay_ms, step) = self.schedule.steps[self.cursor].clone();
            self.cursor += 1;
            std::thread::sleep(Duration::from_millis(delay_ms));
            self.apply(&step);
        }
    }

    /// Whether `host` currently has a running server.
    pub fn is_up(&self, host: usize) -> bool {
        self.hosts
            .get(host)
            .map(|h| h.server.is_some())
            .unwrap_or(false)
    }

    fn apply(&mut self, step: &ChaosStep) {
        crate::obs::counter_add("mesh.chaos_steps", 1);
        crate::obs::Event::engine("chaos-step")
            .str_field("class", step.class())
            .u64_field("host", step.host() as u64)
            .emit();
        match *step {
            ChaosStep::Kill { host } => {
                if let Some(h) = self.hosts.get_mut(host) {
                    // Dropping without drain is the abrupt-stop path:
                    // connections cut, queue discarded, like SIGKILL
                    // minus the process boundary.
                    drop(h.server.take());
                }
            }
            ChaosStep::Drain { host } => {
                if let Some(h) = self.hosts.get_mut(host) {
                    if let Some(server) = h.server.take() {
                        let _ = server.drain_and_stop();
                    }
                }
            }
            ChaosStep::Restart { host } => {
                if let Some(h) = self.hosts.get_mut(host) {
                    if h.server.is_none() {
                        match Server::start(h.endpoint.clone(), h.cfg.clone()) {
                            Ok(server) => h.server = Some(server),
                            Err(e) => crate::obs::warn(
                                "mesh",
                                &format!("chaos restart of host {host} failed: {e}"),
                            ),
                        }
                    }
                }
            }
            ChaosStep::Stall { host, millis } => {
                if let Some(h) = self.hosts.get_mut(host) {
                    if let Some(server) = &h.server {
                        server.stall_for(Duration::from_millis(millis));
                    }
                }
            }
            ChaosStep::Partition { host, millis } => {
                partition_host(host, Duration::from_millis(millis));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("/tmp/restuned-{i}.sock")).collect()
    }

    #[test]
    fn rendezvous_is_deterministic_and_complete() {
        for fp in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            let order = rendezvous_order(fp, &keys(5));
            assert_eq!(order.len(), 5);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3, 4], "a permutation");
            assert_eq!(order, rendezvous_order(fp, &keys(5)), "stable");
        }
        assert_eq!(rendezvous_order(42, &keys(1)), vec![0]);
        assert!(rendezvous_order(42, &keys(0)).is_empty());
    }

    #[test]
    fn rendezvous_spreads_jobs_and_moves_minimally() {
        // Over many fingerprints, every host of 3 gets a meaningful share.
        let hosts = keys(3);
        let mut share = [0usize; 3];
        for fp in 0..600u64 {
            share[rendezvous_order(crate::engine::fnv1a(&fp.to_le_bytes()), &hosts)[0]] += 1;
        }
        for (host, n) in share.iter().enumerate() {
            assert!(
                *n > 100,
                "host {host} got {n}/600 jobs; rendezvous should spread"
            );
        }
        // Removing the last host only moves jobs that lived there: every
        // fingerprint whose 3-host winner is 0 or 1 keeps it under 2 hosts.
        for fp in 0..600u64 {
            let fp = crate::engine::fnv1a(&fp.to_le_bytes());
            let with3 = rendezvous_order(fp, &hosts)[0];
            if with3 < 2 {
                assert_eq!(
                    rendezvous_order(fp, &hosts[..2])[0],
                    with3,
                    "minimal disruption"
                );
            }
        }
    }

    #[test]
    fn rendezvous_shards_identically_under_list_permutation() {
        // The regression this keying fixed: a permuted `--connect` list
        // must send every fingerprint to the same *endpoint*, because the
        // endpoint string — not the list position — is the shard key.
        let list_a = "/tmp/a.sock, /tmp/b.sock,tcp:127.0.0.1:7070";
        let list_b = "tcp:127.0.0.1:7070,/tmp/a.sock , /tmp/b.sock";
        let keys_a = shard_keys(list_a);
        let keys_b = shard_keys(list_b);
        for fp in 0..500u64 {
            let fp = crate::engine::fnv1a(&fp.to_le_bytes());
            let winner_a = &keys_a[rendezvous_order(fp, &keys_a)[0]];
            let winner_b = &keys_b[rendezvous_order(fp, &keys_b)[0]];
            assert_eq!(winner_a, winner_b, "fp {fp:016x} moved under permutation");
            // The whole failover order is permutation-invariant too.
            let order_a: Vec<&String> = rendezvous_order(fp, &keys_a)
                .into_iter()
                .map(|i| &keys_a[i])
                .collect();
            let order_b: Vec<&String> = rendezvous_order(fp, &keys_b)
                .into_iter()
                .map(|i| &keys_b[i])
                .collect();
            assert_eq!(order_a, order_b);
        }
    }

    #[test]
    fn shard_keys_canonicalize_spelling() {
        assert_eq!(
            shard_keys(" /tmp/x.sock ,tcp:h:1,, /tmp/y.sock"),
            vec!["/tmp/x.sock", "tcp:h:1", "/tmp/y.sock"]
        );
    }

    #[test]
    fn seeded_schedules_cover_all_three_templates() {
        let classes = |seed: u64| -> Vec<&'static str> {
            ChaosSchedule::seeded(seed, 3)
                .steps
                .iter()
                .map(|(_, s)| s.class())
                .collect()
        };
        assert_eq!(classes(42), vec!["chaos-kill", "chaos-restart"]);
        assert_eq!(classes(40), vec!["chaos-drain", "chaos-restart"]);
        assert_eq!(classes(41), vec!["chaos-partition", "chaos-stall"]);
        // Deterministic: the same seed always yields the same schedule.
        assert_eq!(ChaosSchedule::seeded(42, 3), ChaosSchedule::seeded(42, 3));
        // Every step targets a real host.
        for seed in 0..30u64 {
            for (_, step) in ChaosSchedule::seeded(seed, 3).steps {
                assert!(step.host() < 3, "seed {seed}: {step:?}");
            }
        }
    }
}
