//! **Resonance tuning**: architectural detection and prevention of
//! inductive (di/dt) noise — a from-scratch Rust reproduction of Powell &
//! Vijaykumar, *Exploiting Resonant Behavior to Reduce Inductive Noise*
//! (ISCA 2004).
//!
//! Inductive noise arises when processor current variations excite the
//! resonant RLC loop of the power-distribution network; repeated variations
//! at frequencies inside the supply's *resonance band* build supply-voltage
//! glitches beyond the noise margin. Rather than bounding the *magnitude*
//! of variations (as prior schemes did), resonance tuning changes their
//! *frequency*: it detects *nascent, repeated* resonant behavior by sensing
//! processor current, and steers the pipeline away from the band with a
//! gentle first-level response (reduced issue width and cache ports),
//! backed by a guaranteed second-level response (stall with medium-current
//! phantom operations).
//!
//! # Crate layout
//!
//! * [`detector`] — the current-history register, band-wide quarter-period
//!   adders, high-low/low-high event histories, and the resonant event
//!   count (paper Section 3.1);
//! * [`ResonanceTuner`] — the two-level response controller (Section 3.2);
//! * [`baselines`] — the compared prior techniques: voltage-threshold
//!   sensing (\[10\]) and pipeline damping (\[14\]);
//! * [`sim`] — the integrated CPU + power + supply simulation loop
//!   (Section 4 methodology);
//! * [`kernel`] — the fused batched hot-path engine behind `sim` (flat
//!   current buffers, batched supply flushes, shared workload decode),
//!   bit-exact with the per-cycle reference loop;
//! * [`experiment`] — suite drivers that regenerate the paper's Tables 2–5
//!   and Figures 3–5;
//! * [`engine`] — the suite execution engine: bounded worker-pool
//!   scheduling, memoized + recorded base runs, structured run metrics;
//! * [`metrics`] — slowdown / energy-delay accounting and per-run
//!   observability rows.
//!
//! # Quick start
//!
//! ```
//! use restune::{run, SimConfig, Technique, TuningConfig};
//! use workloads::spec2k;
//!
//! let sim = SimConfig::isca04(20_000); // 20k instructions per run
//! let app = spec2k::by_name("parser").expect("parser is in the suite");
//!
//! let base = run(&app, &Technique::Base, &sim);
//! let tuned = run(&app, &Technique::Tuning(TuningConfig::isca04_table1(100)), &sim);
//!
//! // Tuning trades a little performance for violation-free operation.
//! assert!(tuned.cycles >= base.cycles);
//! assert!(tuned.violation_cycles <= base.violation_cycles);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod baselines;
pub mod client;
pub mod config;
pub mod detector;
pub mod engine;
mod envcfg;
pub mod experiment;
pub mod fault;
pub mod isolation;
pub mod kernel;
pub mod lanes;
pub mod mesh;
pub mod metrics;
pub mod obs;
pub mod response;
pub mod server;
pub mod sim;
pub mod sweep;
pub mod testenv;
mod wire;

pub use analysis::{analyze, GuaranteeReport};
pub use baselines::{DampingConfig, PipelineDamping, SensorConfig, VoltageSensor};
pub use client::{clear_connect, connect_active, set_connect, set_net_faults};
pub use config::{RunPolicy, SupervisorConfig, TuningConfig};
pub use detector::{EventDetector, Polarity, ResonantEvent, WaveletConfig, WaveletDetector};
pub use engine::{
    cached_base_suite, cached_base_suite_supervised, cached_corpus_base_suite,
    cached_corpus_base_suite_supervised, run_suite_supervised, try_run_suite, CacheStats,
    SuiteError, SuiteRun, SupervisedSuite,
};
pub use fault::{
    parse_net_faults, AppFailure, ChaosSchedule, ChaosStep, FailureKind, FailureReport, FaultPlan,
    FaultSpec, NetFaultSpec, StorageFault, StorageIncident,
};
pub use isolation::{
    install_signal_handlers, isolation_mode, maybe_run_worker, shutdown_requested, IsolationMode,
};
pub use kernel::{run_on_path, run_with_batch, EnginePath};
pub use lanes::{lane_count, run_suite_lanes, DEFAULT_LANES};
pub use mesh::{job_shard, partition_host, rendezvous_order, shard_keys, ChaosConductor, Mesh};
pub use metrics::{RelativeOutcome, RunMetrics, Summary};
pub use obs::{CycleTracer, Event, JsonValue, TraceBuffer, TraceSink};
pub use response::{ResonanceTuner, ResponseLevel, ResponseStats};
pub use server::{Endpoint, Server, ServerConfig, ServerStats};
pub use sim::{
    run, run_instrumented, run_observed, run_supervised, CycleRecord, InstrumentedRun,
    PhaseTimings, SimConfig, SimResult, Technique,
};
pub use sweep::{
    run_key, run_sweep, sim_for, EvictStats, GridSpec, RunStore, SensorPoint, SweepOutcome,
    SweepPoint, WorkloadClass,
};
