//! Suite-level experiment drivers: run the 26-application suite under a
//! technique (on the bounded worker pool of [`crate::engine`]) and build
//! the rows of the paper's tables.

use workloads::{spec2k, WorkloadProfile};

use crate::baselines::{DampingConfig, SensorConfig};
use crate::config::TuningConfig;
use crate::engine::{cached_base_suite, try_run_suite};
use crate::metrics::{RelativeOutcome, Summary};
use crate::sim::{SimConfig, SimResult, Technique};

/// Runs every profile under `technique` on the engine's bounded worker
/// pool, returning results in suite order.
///
/// # Panics
///
/// Panics with the failing application's name if any run panics. Use
/// [`crate::engine::try_run_suite`] to handle that case, or to also get
/// per-run metrics.
pub fn run_suite(
    profiles: &[WorkloadProfile],
    technique: &Technique,
    sim: &SimConfig,
) -> Vec<SimResult> {
    match try_run_suite(profiles, technique, sim) {
        Ok(suite) => suite.results,
        Err(e) => panic!("{e}"),
    }
}

/// Runs the full 26-app suite on the base machine.
///
/// Base runs are memoized per configuration ([`cached_base_suite`]): every
/// table and figure driver in one process shares a single simulation, and a
/// recorded baseline under `target/restune-cache/` spares later processes
/// the cold run.
pub fn run_base_suite(sim: &SimConfig) -> Vec<SimResult> {
    cached_base_suite(sim).results.clone()
}

/// Pairs base and technique suite results into per-app outcomes.
///
/// # Panics
///
/// Panics if the slices have different lengths or misaligned apps.
pub fn compare_suites(base: &[SimResult], technique: &[SimResult]) -> Vec<RelativeOutcome> {
    assert_eq!(base.len(), technique.len(), "suite size mismatch");
    base.iter()
        .zip(technique)
        .map(|(b, t)| RelativeOutcome::new(b, t))
        .collect()
}

/// One row of Table 2: an application's base-machine classification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Row {
    /// Application name.
    pub app: &'static str,
    /// The paper's classification for the real benchmark.
    pub paper_violating: bool,
    /// Measured IPC.
    pub ipc: f64,
    /// Measured fraction of cycles in violation.
    pub violation_fraction: f64,
}

/// Reproduces Table 2: classify every application by base-machine
/// violations.
pub fn table2(sim: &SimConfig) -> Vec<Table2Row> {
    let profiles = spec2k::all();
    run_base_suite(sim)
        .into_iter()
        .zip(&profiles)
        .map(|(r, p)| Table2Row {
            app: r.app,
            paper_violating: p.paper_violating,
            ipc: r.ipc,
            violation_fraction: r.violation_fraction(),
        })
        .collect()
}

/// One row of Table 3: resonance tuning at one initial response time.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// Initial response time in cycles.
    pub initial_response_time: u32,
    /// Suite summary (first/second-level fractions, slowdowns, ED).
    pub summary: Summary,
    /// Per-app outcomes backing the summary.
    pub outcomes: Vec<RelativeOutcome>,
}

/// Reproduces Table 3: sweep the initial response time.
pub fn table3(sim: &SimConfig, response_times: &[u32], base: &[SimResult]) -> Vec<Table3Row> {
    let profiles = spec2k::all();
    response_times
        .iter()
        .map(|&t| {
            let technique = Technique::Tuning(TuningConfig::isca04_table1(t));
            let results = run_suite(&profiles, &technique, sim);
            let outcomes = compare_suites(base, &results);
            Table3Row {
                initial_response_time: t,
                summary: Summary::from_outcomes(&outcomes),
                outcomes,
            }
        })
        .collect()
}

/// One row of Table 4: the voltage-sensor technique of \[10\] at one
/// threshold/noise/delay point.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4Row {
    /// Sensor configuration (threshold, noise, delay).
    pub config: SensorConfig,
    /// Suite summary.
    pub summary: Summary,
    /// Per-app outcomes backing the summary.
    pub outcomes: Vec<RelativeOutcome>,
}

/// Reproduces Table 4: sweep the sensor technique's threshold, noise, and
/// delay.
pub fn table4(sim: &SimConfig, configs: &[SensorConfig], base: &[SimResult]) -> Vec<Table4Row> {
    let profiles = spec2k::all();
    configs
        .iter()
        .map(|&config| {
            let results = run_suite(&profiles, &Technique::Sensor(config), sim);
            let outcomes = compare_suites(base, &results);
            Table4Row {
                config,
                summary: Summary::from_outcomes(&outcomes),
                outcomes,
            }
        })
        .collect()
}

/// One row of Table 5: pipeline damping at one δ.
#[derive(Debug, Clone, PartialEq)]
pub struct Table5Row {
    /// δ relative to the resonant current variation threshold.
    pub delta_relative: f64,
    /// Suite summary.
    pub summary: Summary,
    /// Per-app outcomes backing the summary.
    pub outcomes: Vec<RelativeOutcome>,
}

/// Reproduces Table 5: sweep δ.
pub fn table5(sim: &SimConfig, deltas: &[f64], base: &[SimResult]) -> Vec<Table5Row> {
    let profiles = spec2k::all();
    deltas
        .iter()
        .map(|&d| {
            let technique = Technique::Damping(DampingConfig::isca04_table5(d));
            let results = run_suite(&profiles, &technique, sim);
            let outcomes = compare_suites(base, &results);
            Table5Row {
                delta_relative: d,
                summary: Summary::from_outcomes(&outcomes),
                outcomes,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::run;

    fn quick_sim() -> SimConfig {
        SimConfig::isca04(20_000)
    }

    #[test]
    fn suite_runs_in_order() {
        let profiles: Vec<_> = spec2k::all().into_iter().take(4).collect();
        let results = run_suite(&profiles, &Technique::Base, &quick_sim());
        assert_eq!(results.len(), 4);
        for (r, p) in results.iter().zip(&profiles) {
            assert_eq!(r.app, p.name);
            assert!(r.committed >= 20_000 && r.committed < 20_000 + 8);
        }
    }

    #[test]
    fn parallel_suite_matches_serial() {
        let profiles: Vec<_> = spec2k::all().into_iter().take(3).collect();
        let parallel = run_suite(&profiles, &Technique::Base, &quick_sim());
        let serial: Vec<_> = profiles
            .iter()
            .map(|p| run(p, &Technique::Base, &quick_sim()))
            .collect();
        assert_eq!(parallel, serial, "threading must not affect determinism");
    }

    #[test]
    fn compare_suites_aligns_apps() {
        let profiles: Vec<_> = spec2k::all().into_iter().take(2).collect();
        let base = run_suite(&profiles, &Technique::Base, &quick_sim());
        let tech = run_suite(
            &profiles,
            &Technique::Tuning(TuningConfig::isca04_table1(100)),
            &quick_sim(),
        );
        let outcomes = compare_suites(&base, &tech);
        assert_eq!(outcomes.len(), 2);
        for o in &outcomes {
            assert!(
                o.slowdown >= 1.0 - 1e-9,
                "{}: slowdown {}",
                o.app,
                o.slowdown
            );
        }
    }
}
