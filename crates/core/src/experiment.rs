//! Suite-level experiment drivers: run the 26-application suite under a
//! technique (on the bounded worker pool of [`crate::engine`]) and build
//! the rows of the paper's tables.

use workloads::{corpus, spec2k, WorkloadProfile};

use crate::baselines::{DampingConfig, SensorConfig};
use crate::config::{RunPolicy, TuningConfig};
use crate::engine::{
    cached_base_suite, cached_base_suite_supervised, cached_corpus_base_suite,
    cached_corpus_base_suite_supervised, run_suite_supervised, try_run_suite, SupervisedSuite,
};
use crate::fault::FailureReport;
use crate::metrics::{RelativeOutcome, Summary};
use crate::sim::{SimConfig, SimResult, Technique};

/// Runs every profile under `technique` on the engine's bounded worker
/// pool, returning results in suite order.
///
/// # Panics
///
/// Panics with the failing application's name if any run panics. Use
/// [`crate::engine::try_run_suite`] to handle that case, or to also get
/// per-run metrics.
pub fn run_suite(
    profiles: &[WorkloadProfile],
    technique: &Technique,
    sim: &SimConfig,
) -> Vec<SimResult> {
    match try_run_suite(profiles, technique, sim) {
        Ok(suite) => suite.results,
        Err(e) => panic!("{e}"),
    }
}

/// Runs the full 26-app suite on the base machine.
///
/// Base runs are memoized per configuration ([`cached_base_suite`]): every
/// table and figure driver in one process shares a single simulation, and a
/// recorded baseline under `target/restune-cache/` spares later processes
/// the cold run.
pub fn run_base_suite(sim: &SimConfig) -> Vec<SimResult> {
    cached_base_suite(sim).results.clone()
}

/// [`run_base_suite`] for the RISC-V corpus suite (memoized and recorded
/// through [`cached_corpus_base_suite`], like the synthetic suite).
pub fn run_corpus_base_suite(sim: &SimConfig) -> Vec<SimResult> {
    cached_corpus_base_suite(sim).results.clone()
}

/// Pairs base and technique suite results into per-app outcomes.
///
/// # Panics
///
/// Panics if the slices have different lengths or misaligned apps.
pub fn compare_suites(base: &[SimResult], technique: &[SimResult]) -> Vec<RelativeOutcome> {
    assert_eq!(base.len(), technique.len(), "suite size mismatch");
    base.iter()
        .zip(technique)
        .map(|(b, t)| RelativeOutcome::new(b, t))
        .collect()
}

/// Runs the suite under the policy's supervision and fault plan, labelling
/// the failure report with `scope` (a design-point label such as
/// `tuning-100`).
pub fn run_suite_policed(
    profiles: &[WorkloadProfile],
    technique: &Technique,
    sim: &SimConfig,
    policy: &RunPolicy,
    scope: &str,
) -> SupervisedSuite {
    let mut suite =
        run_suite_supervised(profiles, technique, sim, &policy.supervisor, &policy.plan);
    suite.report.scope = scope.to_string();
    suite
}

/// The base suite under supervision: storage faults are applied to the
/// recorded baseline, damaged files are recovered by re-simulating, and a
/// failing application degrades its slot rather than the whole suite.
///
/// With an inert policy this is bit-identical to [`run_base_suite`].
pub fn base_suite_supervised(sim: &SimConfig, policy: &RunPolicy) -> SupervisedSuite {
    cached_base_suite_supervised(sim, &policy.supervisor, &policy.plan)
}

/// [`base_suite_supervised`] for the RISC-V corpus suite.
pub fn corpus_base_suite_supervised(sim: &SimConfig, policy: &RunPolicy) -> SupervisedSuite {
    cached_corpus_base_suite_supervised(sim, &policy.supervisor, &policy.plan)
}

/// Pairs the applications that succeeded in *both* supervised suites into
/// per-app outcomes, skipping any slot that failed on either side — the
/// degraded analogue of [`compare_suites`].
///
/// # Panics
///
/// Panics if the suites have different lengths.
pub fn paired_outcomes(
    base: &SupervisedSuite,
    technique: &SupervisedSuite,
) -> Vec<RelativeOutcome> {
    assert_eq!(
        base.outcomes.len(),
        technique.outcomes.len(),
        "suite size mismatch"
    );
    base.outcomes
        .iter()
        .zip(&technique.outcomes)
        .filter_map(|(b, t)| match (b, t) {
            (Ok(b), Ok(t)) if b.app == t.app => Some(RelativeOutcome::new(b, t)),
            _ => None,
        })
        .collect()
}

/// One row of Table 2: an application's base-machine classification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Row {
    /// Application name.
    pub app: &'static str,
    /// The paper's classification for the real benchmark.
    pub paper_violating: bool,
    /// Measured IPC.
    pub ipc: f64,
    /// Measured fraction of cycles in violation.
    pub violation_fraction: f64,
}

/// Reproduces Table 2: classify every application by base-machine
/// violations.
pub fn table2(sim: &SimConfig) -> Vec<Table2Row> {
    let profiles = spec2k::all();
    run_base_suite(sim)
        .into_iter()
        .zip(&profiles)
        .map(|(r, p)| Table2Row {
            app: r.app,
            paper_violating: p.paper_violating,
            ipc: r.ipc,
            violation_fraction: r.violation_fraction(),
        })
        .collect()
}

/// One row of Table 3: resonance tuning at one initial response time.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// Initial response time in cycles.
    pub initial_response_time: u32,
    /// Suite summary (first/second-level fractions, slowdowns, ED).
    pub summary: Summary,
    /// Per-app outcomes backing the summary.
    pub outcomes: Vec<RelativeOutcome>,
}

/// Reproduces Table 3: sweep the initial response time.
pub fn table3(sim: &SimConfig, response_times: &[u32], base: &[SimResult]) -> Vec<Table3Row> {
    table3_for(sim, &spec2k::all(), response_times, base)
}

/// Table 3 over the RISC-V corpus: the same response-time sweep, with each
/// design point executing the real programs' lowered traces instead of the
/// synthetic streams. `base` must come from [`run_corpus_base_suite`].
pub fn table3_riscv(sim: &SimConfig, response_times: &[u32], base: &[SimResult]) -> Vec<Table3Row> {
    table3_for(sim, &corpus::all(), response_times, base)
}

fn table3_for(
    sim: &SimConfig,
    profiles: &[WorkloadProfile],
    response_times: &[u32],
    base: &[SimResult],
) -> Vec<Table3Row> {
    response_times
        .iter()
        .map(|&t| {
            let technique = Technique::Tuning(TuningConfig::isca04_table1(t));
            let results = run_suite(profiles, &technique, sim);
            let outcomes = compare_suites(base, &results);
            Table3Row {
                initial_response_time: t,
                summary: Summary::from_outcomes(&outcomes),
                outcomes,
            }
        })
        .collect()
}

/// One row of Table 4: the voltage-sensor technique of \[10\] at one
/// threshold/noise/delay point.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4Row {
    /// Sensor configuration (threshold, noise, delay).
    pub config: SensorConfig,
    /// Suite summary.
    pub summary: Summary,
    /// Per-app outcomes backing the summary.
    pub outcomes: Vec<RelativeOutcome>,
}

/// Reproduces Table 4: sweep the sensor technique's threshold, noise, and
/// delay.
pub fn table4(sim: &SimConfig, configs: &[SensorConfig], base: &[SimResult]) -> Vec<Table4Row> {
    let profiles = spec2k::all();
    configs
        .iter()
        .map(|&config| {
            let results = run_suite(&profiles, &Technique::Sensor(config), sim);
            let outcomes = compare_suites(base, &results);
            Table4Row {
                config,
                summary: Summary::from_outcomes(&outcomes),
                outcomes,
            }
        })
        .collect()
}

/// One row of Table 5: pipeline damping at one δ.
#[derive(Debug, Clone, PartialEq)]
pub struct Table5Row {
    /// δ relative to the resonant current variation threshold.
    pub delta_relative: f64,
    /// Suite summary.
    pub summary: Summary,
    /// Per-app outcomes backing the summary.
    pub outcomes: Vec<RelativeOutcome>,
}

/// Reproduces Table 5: sweep δ.
pub fn table5(sim: &SimConfig, deltas: &[f64], base: &[SimResult]) -> Vec<Table5Row> {
    let profiles = spec2k::all();
    deltas
        .iter()
        .map(|&d| {
            let technique = Technique::Damping(DampingConfig::isca04_table5(d));
            let results = run_suite(&profiles, &technique, sim);
            let outcomes = compare_suites(base, &results);
            Table5Row {
                delta_relative: d,
                summary: Summary::from_outcomes(&outcomes),
                outcomes,
            }
        })
        .collect()
}

/// Builds the Table 2 rows a supervised base suite can still support: one
/// row per *successful* application (a failed slot simply has no row).
pub fn table2_from_supervised(base: &SupervisedSuite) -> Vec<Table2Row> {
    base.outcomes
        .iter()
        .zip(&spec2k::all())
        .filter_map(|(outcome, p)| {
            outcome.as_ref().ok().map(|r| Table2Row {
                app: r.app,
                paper_violating: p.paper_violating,
                ipc: r.ipc,
                violation_fraction: r.violation_fraction(),
            })
        })
        .collect()
}

/// Supervised Table 3: each response-time design point runs under the
/// policy; a row covers the apps that succeeded in both that point and the
/// base suite, and a design point with no surviving pairs yields no row.
/// One scope-labelled [`FailureReport`] is returned per design point.
pub fn table3_supervised(
    sim: &SimConfig,
    response_times: &[u32],
    base: &SupervisedSuite,
    policy: &RunPolicy,
) -> (Vec<Table3Row>, Vec<FailureReport>) {
    table3_supervised_for(sim, &spec2k::all(), response_times, base, policy)
}

/// Supervised [`table3_riscv`] (see [`table3_supervised`] for the
/// degradation rules). `base` must come from
/// [`corpus_base_suite_supervised`].
pub fn table3_riscv_supervised(
    sim: &SimConfig,
    response_times: &[u32],
    base: &SupervisedSuite,
    policy: &RunPolicy,
) -> (Vec<Table3Row>, Vec<FailureReport>) {
    table3_supervised_for(sim, &corpus::all(), response_times, base, policy)
}

fn table3_supervised_for(
    sim: &SimConfig,
    profiles: &[WorkloadProfile],
    response_times: &[u32],
    base: &SupervisedSuite,
    policy: &RunPolicy,
) -> (Vec<Table3Row>, Vec<FailureReport>) {
    let mut rows = Vec::new();
    let mut reports = Vec::new();
    for &t in response_times {
        let technique = Technique::Tuning(TuningConfig::isca04_table1(t));
        let suite = run_suite_policed(profiles, &technique, sim, policy, &format!("tuning-{t}"));
        let outcomes = paired_outcomes(base, &suite);
        if !outcomes.is_empty() {
            rows.push(Table3Row {
                initial_response_time: t,
                summary: Summary::from_outcomes(&outcomes),
                outcomes,
            });
        }
        reports.push(suite.report);
    }
    (rows, reports)
}

/// Supervised Table 4 (see [`table3_supervised`] for the degradation
/// rules).
pub fn table4_supervised(
    sim: &SimConfig,
    configs: &[SensorConfig],
    base: &SupervisedSuite,
    policy: &RunPolicy,
) -> (Vec<Table4Row>, Vec<FailureReport>) {
    let profiles = spec2k::all();
    let mut rows = Vec::new();
    let mut reports = Vec::new();
    for &config in configs {
        let scope = format!(
            "sensor-{:.0}mV-{:.0}mV-{}cy",
            config.target_threshold.volts() * 1e3,
            config.sensor_noise_pp.volts() * 1e3,
            config.delay_cycles
        );
        let suite = run_suite_policed(&profiles, &Technique::Sensor(config), sim, policy, &scope);
        let outcomes = paired_outcomes(base, &suite);
        if !outcomes.is_empty() {
            rows.push(Table4Row {
                config,
                summary: Summary::from_outcomes(&outcomes),
                outcomes,
            });
        }
        reports.push(suite.report);
    }
    (rows, reports)
}

/// Supervised Table 5 (see [`table3_supervised`] for the degradation
/// rules).
pub fn table5_supervised(
    sim: &SimConfig,
    deltas: &[f64],
    base: &SupervisedSuite,
    policy: &RunPolicy,
) -> (Vec<Table5Row>, Vec<FailureReport>) {
    let profiles = spec2k::all();
    let mut rows = Vec::new();
    let mut reports = Vec::new();
    for &d in deltas {
        let technique = Technique::Damping(DampingConfig::isca04_table5(d));
        let suite = run_suite_policed(&profiles, &technique, sim, policy, &format!("damping-{d}"));
        let outcomes = paired_outcomes(base, &suite);
        if !outcomes.is_empty() {
            rows.push(Table5Row {
                delta_relative: d,
                summary: Summary::from_outcomes(&outcomes),
                outcomes,
            });
        }
        reports.push(suite.report);
    }
    (rows, reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::run;

    fn quick_sim() -> SimConfig {
        SimConfig::isca04(20_000)
    }

    #[test]
    fn suite_runs_in_order() {
        let profiles: Vec<_> = spec2k::all().into_iter().take(4).collect();
        let results = run_suite(&profiles, &Technique::Base, &quick_sim());
        assert_eq!(results.len(), 4);
        for (r, p) in results.iter().zip(&profiles) {
            assert_eq!(r.app, p.name);
            assert!(r.committed >= 20_000 && r.committed < 20_000 + 8);
        }
    }

    #[test]
    fn parallel_suite_matches_serial() {
        let profiles: Vec<_> = spec2k::all().into_iter().take(3).collect();
        let parallel = run_suite(&profiles, &Technique::Base, &quick_sim());
        let serial: Vec<_> = profiles
            .iter()
            .map(|p| run(p, &Technique::Base, &quick_sim()))
            .collect();
        assert_eq!(parallel, serial, "threading must not affect determinism");
    }

    #[test]
    fn compare_suites_aligns_apps() {
        let profiles: Vec<_> = spec2k::all().into_iter().take(2).collect();
        let base = run_suite(&profiles, &Technique::Base, &quick_sim());
        let tech = run_suite(
            &profiles,
            &Technique::Tuning(TuningConfig::isca04_table1(100)),
            &quick_sim(),
        );
        let outcomes = compare_suites(&base, &tech);
        assert_eq!(outcomes.len(), 2);
        for o in &outcomes {
            assert!(
                o.slowdown >= 1.0 - 1e-9,
                "{}: slowdown {}",
                o.app,
                o.slowdown
            );
        }
    }

    #[test]
    fn inert_policy_pairs_exactly_like_compare_suites() {
        let profiles: Vec<_> = spec2k::all().into_iter().take(3).collect();
        let sim = quick_sim();
        let technique = Technique::Tuning(TuningConfig::isca04_table1(100));
        let policy = RunPolicy::none();

        let base_sup = run_suite_policed(&profiles, &Technique::Base, &sim, &policy, "base");
        let tech_sup = run_suite_policed(&profiles, &technique, &sim, &policy, "tuning-100");
        assert!(base_sup.report.is_empty() && tech_sup.report.is_empty());

        let base = run_suite(&profiles, &Technique::Base, &sim);
        let tech = run_suite(&profiles, &technique, &sim);
        assert_eq!(
            paired_outcomes(&base_sup, &tech_sup),
            compare_suites(&base, &tech),
            "inert supervision must be the identity"
        );
    }

    #[test]
    fn paired_outcomes_skip_apps_that_failed_either_side() {
        use crate::fault::{FaultPlan, FaultSpec};

        let profiles: Vec<_> = spec2k::all().into_iter().take(3).collect();
        let victim = profiles[2].name;
        let sim = quick_sim();
        let clean = RunPolicy::none();
        let faulty = RunPolicy {
            plan: FaultPlan::none().with_persistent_fault(victim, FaultSpec::WorkerPanic),
            ..RunPolicy::none()
        };

        let base = run_suite_policed(&profiles, &Technique::Base, &sim, &clean, "base");
        let technique = Technique::Tuning(TuningConfig::isca04_table1(100));
        let tech = run_suite_policed(&profiles, &technique, &sim, &faulty, "tuning-100");

        let outcomes = paired_outcomes(&base, &tech);
        assert_eq!(outcomes.len(), 2, "the failed app must be dropped");
        assert!(outcomes.iter().all(|o| o.app != victim));
        assert_eq!(tech.report.failures.len(), 1);
        assert_eq!(tech.report.scope, "tuning-100");
    }
}
