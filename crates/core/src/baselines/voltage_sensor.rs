//! The voltage-threshold technique of Joseph, Brooks & Martonosi (HPCA'03)
//! — reference \[10\] of the paper.
//!
//! The technique senses the supply voltage directly: when the deviation
//! exceeds a threshold on the *high* side (current dropped, voltage
//! overshooting), it phantom-fires the L1 caches and functional units to
//! pull current up; on the *low* side (current spiked, voltage sagging), it
//! stops fetch and issue. Following the paper's evaluation, the model
//! includes peak-to-peak sensor noise and a sensing-to-actuation delay —
//! the two practical effects that dominate the technique's cost.

use cpusim::{PhantomLevel, PipelineControls};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rlc::units::Volts;

/// Configuration of the voltage-sensor technique.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorConfig {
    /// Target detection threshold (volts of deviation from nominal).
    pub target_threshold: Volts,
    /// Peak-to-peak sensor noise (volts). The *actual* threshold is the
    /// target minus half the noise, as in the paper's Table 4.
    pub sensor_noise_pp: Volts,
    /// Cycles between a supply-voltage excursion and the response.
    pub delay_cycles: u32,
    /// Minimum cycles a response stays engaged once triggered (debounce).
    pub min_response_cycles: u32,
    /// RNG seed for the sensor-noise sequence.
    pub noise_seed: u64,
}

impl SensorConfig {
    /// One row of the paper's Table 4: `(threshold mV, noise mV, delay)`.
    pub fn table4(threshold_mv: f64, noise_mv: f64, delay: u32) -> Self {
        Self {
            target_threshold: Volts::new(threshold_mv * 1e-3),
            sensor_noise_pp: Volts::new(noise_mv * 1e-3),
            delay_cycles: delay,
            min_response_cycles: 4,
            noise_seed: 0xB0_1DFACE,
        }
    }

    /// The effective threshold after subtracting half the sensor noise
    /// (the paper's "actual threshold" column).
    pub fn actual_threshold(&self) -> Volts {
        Volts::new(self.target_threshold.volts() - self.sensor_noise_pp.volts() / 2.0)
    }
}

/// Which response the sensor technique has engaged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SensorResponse {
    None,
    /// Voltage too high → phantom-fire caches and FUs (raise current).
    PhantomFire,
    /// Voltage too low → stop fetch and issue (drop current).
    Throttle,
}

/// The voltage-sensor controller. Feed it the per-cycle supply-voltage
/// deviation; it returns pipeline controls.
#[derive(Debug, Clone)]
pub struct VoltageSensor {
    config: SensorConfig,
    rng: StdRng,
    /// Delay line of sensed (noisy) voltages.
    delay_line: std::collections::VecDeque<f64>,
    response: SensorResponse,
    response_remaining: u32,
    response_cycles: u64,
    engagements: u64,
}

impl VoltageSensor {
    /// Creates a controller.
    ///
    /// # Panics
    ///
    /// Panics if the actual threshold (target − noise/2) is not positive.
    pub fn new(config: SensorConfig) -> Self {
        assert!(
            config.actual_threshold().volts() > 0.0,
            "sensor noise swallows the detection threshold entirely"
        );
        Self {
            rng: StdRng::seed_from_u64(config.noise_seed),
            delay_line: std::collections::VecDeque::with_capacity(config.delay_cycles as usize + 1),
            config,
            response: SensorResponse::None,
            response_remaining: 0,
            response_cycles: 0,
            engagements: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SensorConfig {
        &self.config
    }

    /// Total cycles spent in (either) response.
    pub fn response_cycles(&self) -> u64 {
        self.response_cycles
    }

    /// Total response engagements (rising edges).
    pub fn engagements(&self) -> u64 {
        self.engagements
    }

    /// Advances one cycle with the given true supply-voltage deviation and
    /// returns the controls to apply this cycle.
    pub fn tick(&mut self, noise_voltage: Volts) -> PipelineControls {
        // Sensor reading: true voltage plus uniform noise, delayed.
        let noise_amp = self.config.sensor_noise_pp.volts() / 2.0;
        let sensed = noise_voltage.volts()
            + if noise_amp > 0.0 {
                self.rng.gen_range(-noise_amp..=noise_amp)
            } else {
                0.0
            };
        self.delay_line.push_back(sensed);
        if self.delay_line.len() <= self.config.delay_cycles as usize {
            return PipelineControls::free();
        }
        let observed = self
            .delay_line
            .pop_front()
            .expect("delay line is non-empty");

        // The deployed threshold is lowered by half the sensor noise so
        // that true excursions are still caught despite the noise — which
        // is exactly why noisy sensors raise false alarms (Table 4).
        let thr = self.config.actual_threshold().volts();
        let new_response = if observed > thr {
            Some(SensorResponse::PhantomFire)
        } else if observed < -thr {
            Some(SensorResponse::Throttle)
        } else {
            None
        };

        match new_response {
            Some(r) => {
                if self.response == SensorResponse::None {
                    self.engagements += 1;
                }
                self.response = r;
                self.response_remaining = self.config.min_response_cycles;
            }
            None => {
                if self.response_remaining > 0 {
                    self.response_remaining -= 1;
                } else {
                    self.response = SensorResponse::None;
                }
            }
        }

        match self.response {
            SensorResponse::None => PipelineControls::free(),
            SensorResponse::PhantomFire => {
                self.response_cycles += 1;
                PipelineControls {
                    phantom: Some(PhantomLevel::High),
                    ..PipelineControls::default()
                }
            }
            SensorResponse::Throttle => {
                self.response_cycles += 1;
                PipelineControls {
                    stall_issue: true,
                    stall_fetch: true,
                    ..PipelineControls::default()
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sensor(threshold_mv: f64, noise_mv: f64, delay: u32) -> VoltageSensor {
        VoltageSensor::new(SensorConfig::table4(threshold_mv, noise_mv, delay))
    }

    #[test]
    fn quiet_voltage_means_no_response() {
        let mut s = sensor(30.0, 0.0, 0);
        for _ in 0..1000 {
            let c = s.tick(Volts::new(0.001));
            assert!(!c.is_restricted());
        }
        assert_eq!(s.response_cycles(), 0);
    }

    #[test]
    fn high_voltage_phantom_fires() {
        let mut s = sensor(30.0, 0.0, 0);
        let c = s.tick(Volts::new(0.040));
        assert_eq!(c.phantom, Some(PhantomLevel::High));
        assert!(!c.stall_issue);
    }

    #[test]
    fn low_voltage_throttles() {
        let mut s = sensor(30.0, 0.0, 0);
        let c = s.tick(Volts::new(-0.040));
        assert!(c.stall_issue && c.stall_fetch);
        assert!(c.phantom.is_none());
    }

    #[test]
    fn delay_shifts_the_response() {
        let mut s = sensor(30.0, 0.0, 5);
        // A 1-cycle spike: the response must appear exactly 5 cycles later.
        let mut engaged_at = None;
        for c in 0..20u32 {
            let v = if c == 0 { 0.040 } else { 0.0 };
            let controls = s.tick(Volts::new(v));
            if controls.is_restricted() && engaged_at.is_none() {
                engaged_at = Some(c);
            }
        }
        assert_eq!(engaged_at, Some(5));
    }

    #[test]
    fn sensor_noise_causes_false_alarms() {
        // True voltage well inside the window, but 15 mV of noise on a
        // 20 mV threshold trips responses spuriously.
        let mut clean = sensor(20.0, 0.0, 0);
        let mut noisy = sensor(20.0, 15.0, 0);
        for c in 0..20_000u64 {
            // Benign 12 mV ripple.
            let v = Volts::new(0.012 * ((c as f64) * 0.05).sin());
            let _ = clean.tick(v);
            let _ = noisy.tick(v);
        }
        assert_eq!(
            clean.response_cycles(),
            0,
            "clean sensor must not react to 12 mV ripple"
        );
        assert!(
            noisy.response_cycles() > 0,
            "noisy sensor should raise false alarms on benign ripple"
        );
    }

    #[test]
    fn min_response_duration_debounces() {
        let mut s = sensor(30.0, 0.0, 0);
        let _ = s.tick(Volts::new(0.040));
        let mut engaged = 1;
        for _ in 0..10 {
            if s.tick(Volts::new(0.0)).is_restricted() {
                engaged += 1;
            }
        }
        assert!(
            engaged >= 4,
            "response persists for the debounce window, got {engaged}"
        );
        assert!(engaged < 10, "response must eventually release");
    }

    #[test]
    fn actual_threshold_subtracts_half_noise() {
        let c = SensorConfig::table4(30.0, 15.0, 0);
        assert!((c.actual_threshold().volts() - 0.0225).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "swallows")]
    fn noise_exceeding_threshold_panics() {
        let _ = VoltageSensor::new(SensorConfig::table4(10.0, 25.0, 0));
    }
}
