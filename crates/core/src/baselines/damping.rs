//! Pipeline damping (Powell & Vijaykumar, ISCA'03) — reference \[14\] of the
//! paper.
//!
//! Damping bounds the worst-case variation of *estimated* chip current over
//! a resonant period to δ, using a-priori per-instruction-class current
//! estimates at issue. Our implementation enforces, each cycle, that the
//! estimated issued current keeps the max−min spread of the trailing
//! half-period window within δ: the upper bound (window min + δ) throttles
//! issue (the frontend-damping issue constraint), and the lower bound
//! (window max − δ) pads with phantom operations. Current may still drift,
//! but no faster than δ per half period — variation at resonant timescales
//! is bounded. As the paper notes, damping addresses only the resonant
//! frequency; covering the whole band requires tightening δ, which is how
//! Table 5's δ = 1, 0.5, 0.25 sweep arises.

use cpusim::{apriori_issue_current, CycleEvents, OpClass, PhantomLevel, PipelineControls};
use rlc::units::Amps;
use std::collections::VecDeque;

/// Configuration of pipeline damping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DampingConfig {
    /// Worst-case allowed current variation over a resonant period (δ).
    pub delta: Amps,
    /// The damping window: half the resonant period (50 cycles in Table 1).
    pub window: u32,
    /// Idle-floor current used when converting the window mean to an
    /// absolute phantom floor (the chip's idle current, 35 A).
    pub idle_current: Amps,
}

impl DampingConfig {
    /// Damping at the paper's Table 1 machine with δ expressed relative to
    /// the 32 A resonant current variation threshold (Table 5 uses 1, 0.5,
    /// and 0.25).
    pub fn isca04_table5(delta_relative: f64) -> Self {
        Self {
            delta: Amps::new(32.0 * delta_relative),
            window: 50,
            idle_current: Amps::new(35.0),
        }
    }
}

/// Cycles over which the raw per-cycle estimate is boxcar-smoothed before
/// entering the damping window. Damping targets variation at *resonant*
/// timescales (~100 cycles); single-cycle issue bubbles are content at
/// clock-rate frequencies that the supply absorbs, and reacting to them
/// would throttle far beyond the technique's intent.
const SMOOTH: usize = 16;

/// The pipeline-damping controller. It watches the *issued* instruction
/// stream (via [`CycleEvents`]) to maintain its estimated-current window,
/// and emits per-cycle issue-current caps and phantom floors.
#[derive(Debug, Clone)]
pub struct PipelineDamping {
    config: DampingConfig,
    /// Raw estimates of the last [`SMOOTH`] cycles (pre-filter).
    recent: VecDeque<f64>,
    /// Smoothed estimated current for each of the last `window` cycles.
    history: VecDeque<f64>,
    throttled_cycles: u64,
    padded_cycles: u64,
}

impl PipelineDamping {
    /// Creates a damping controller.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive δ or a zero window.
    pub fn new(config: DampingConfig) -> Self {
        assert!(config.delta.amps() > 0.0, "delta must be positive");
        assert!(config.window > 0, "damping window must be nonzero");
        Self {
            recent: VecDeque::with_capacity(SMOOTH + 1),
            history: VecDeque::with_capacity(config.window as usize + 1),
            config,
            throttled_cycles: 0,
            padded_cycles: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DampingConfig {
        &self.config
    }

    /// Cycles in which the issue cap was binding (issue was throttled).
    pub fn throttled_cycles(&self) -> u64 {
        self.throttled_cycles
    }

    /// Cycles in which phantom padding was required.
    pub fn padded_cycles(&self) -> u64 {
        self.padded_cycles
    }

    /// The a-priori estimated current of the instructions issued in `ev`.
    pub fn estimated_issue_current(ev: &CycleEvents) -> f64 {
        OpClass::ALL
            .iter()
            .map(|&op| ev.issued_of(op) as f64 * apriori_issue_current(op))
            .sum()
    }

    /// Computes the controls for the *next* cycle from the events of the
    /// cycle just completed.
    pub fn tick(&mut self, ev: &CycleEvents) -> PipelineControls {
        let issued = Self::estimated_issue_current(ev);
        self.recent.push_back(issued);
        if self.recent.len() > SMOOTH {
            self.recent.pop_front();
        }
        let smoothed = self.recent.iter().sum::<f64>() / self.recent.len() as f64;
        self.history.push_back(smoothed);
        if self.history.len() > self.config.window as usize {
            self.history.pop_front();
        }
        if self.history.len() < self.config.window as usize {
            // Window not yet full ("always-on" damping still needs one
            // window of warmup before its bounds are meaningful).
            return PipelineControls::free();
        }
        let w_min = self.history.iter().cloned().fold(f64::MAX, f64::min);
        let w_max = self.history.iter().cloned().fold(f64::MIN, f64::max);
        let delta = self.config.delta.amps();
        // Keep the window's spread within δ; when the window itself already
        // exceeds δ (transient), at least do not widen it further. The
        // fall-side bound is looser (2δ): resonant build-up needs repeated
        // *rises*, which the cap bounds tightly, while phantom-padding every
        // stall would burn energy out of proportion to its noise benefit.
        let cap = (w_min + delta).max(w_max - delta);
        let floor = (w_max - 2.0 * delta).max(0.0);

        if smoothed > cap {
            self.throttled_cycles += 1;
        }
        let mut controls = PipelineControls {
            issue_current_cap: Some(cap),
            ..PipelineControls::default()
        };
        if smoothed < floor {
            self.padded_cycles += 1;
            // Pad with phantoms up to the floor: the floor is estimated
            // dynamic issue current (calibrated in chip amps); the absolute
            // chip floor adds the idle current.
            let target = (self.config.idle_current.amps() + floor).round();
            controls.phantom = Some(PhantomLevel::Floor(target.clamp(0.0, 255.0) as u8));
        }
        controls
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events_with_issue(int_alu: u32) -> CycleEvents {
        let mut ev = CycleEvents::default();
        ev.issued[OpClass::IntAlu.index()] = int_alu;
        ev
    }

    #[test]
    fn steady_issue_is_unthrottled() {
        let mut d = PipelineDamping::new(DampingConfig::isca04_table5(1.0));
        for _ in 0..500 {
            let c = d.tick(&events_with_issue(4));
            if c.issue_current_cap.is_some() {
                // Steady 16 A of estimated issue: window spread is 0, so
                // cap = 16 + 32 and floor = 0: neither binds.
                assert!(c.phantom.is_none());
            }
        }
        assert_eq!(d.throttled_cycles(), 0);
        assert_eq!(d.padded_cycles(), 0);
    }

    #[test]
    fn estimated_current_uses_apriori_table() {
        let mut ev = CycleEvents::default();
        ev.issued[OpClass::IntAlu.index()] = 2; // 2 × 6.0 A
        ev.issued[OpClass::Load.index()] = 1; // 12.0 A
        ev.issued[OpClass::FpMul.index()] = 1; // 15.0 A
        let est = PipelineDamping::estimated_issue_current(&ev);
        assert!((est - 39.0).abs() < 1e-12, "estimate = {est}");
    }

    #[test]
    fn burst_after_idle_is_throttled() {
        let mut d = PipelineDamping::new(DampingConfig::isca04_table5(0.25));
        // 50 idle cycles, then a burst: the cap binds.
        for _ in 0..60 {
            let _ = d.tick(&CycleEvents::default());
        }
        // A sustained burst: the smoothed estimate rises past the cap.
        let mut c = d.tick(&events_with_issue(8));
        for _ in 0..SMOOTH {
            c = d.tick(&events_with_issue(8));
        }
        assert!(c.issue_current_cap.expect("window warm") < 48.0);
        assert!(d.throttled_cycles() >= 1);
    }

    #[test]
    fn idle_after_burst_is_padded() {
        let mut d = PipelineDamping::new(DampingConfig::isca04_table5(0.25));
        for _ in 0..60 {
            let _ = d.tick(&events_with_issue(8)); // steady 8 A
        }
        // A sustained idle stretch: the smoothed estimate falls below the
        // fall-side floor.
        let mut c = d.tick(&CycleEvents::default());
        for _ in 0..SMOOTH {
            c = d.tick(&CycleEvents::default());
        }
        assert!(
            matches!(c.phantom, Some(PhantomLevel::Floor(_))),
            "drop below floor must phantom-pad, got {c:?}"
        );
        assert!(d.padded_cycles() >= 1);
    }

    #[test]
    fn tighter_delta_throttles_more() {
        let run = |rel: f64| -> u64 {
            let mut d = PipelineDamping::new(DampingConfig::isca04_table5(rel));
            for c in 0..2000u64 {
                // Alternating 50-cycle bursts and idles (resonant shape).
                let ev = if (c / 50) % 2 == 0 {
                    events_with_issue(8)
                } else {
                    CycleEvents::default()
                };
                let _ = d.tick(&ev);
            }
            d.throttled_cycles() + d.padded_cycles()
        };
        let loose = run(1.0);
        let tight = run(0.25);
        assert!(
            tight > loose,
            "tight δ ({tight}) must bind more than loose ({loose})"
        );
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn zero_delta_panics() {
        let _ = PipelineDamping::new(DampingConfig {
            delta: Amps::new(0.0),
            window: 50,
            idle_current: Amps::new(35.0),
        });
    }
}
