//! The two previously proposed techniques the paper compares against:
//! voltage-threshold sensing (\[10\], Joseph/Brooks/Martonosi HPCA'03) and
//! pipeline damping (\[14\], Powell/Vijaykumar ISCA'03).

mod damping;
mod voltage_sensor;

pub use damping::{DampingConfig, PipelineDamping};
pub use voltage_sensor::{SensorConfig, VoltageSensor};
