//! Analytic guarantee analysis for a tuning configuration
//! (Sections 2.1.3 and 3.2).
//!
//! The second-level response guarantees noise-margin avoidance only while
//! in-band current variations stay small enough that violations need more
//! repetitions than the second-level threshold. This module computes that
//! boundary in closed form from second-order circuit theory:
//!
//! * a square wave of peak-to-peak `ΔI` at the resonant frequency drives a
//!   steady-state voltage amplitude `A_ss ≈ (2/π)·ΔI·|Z(f₀)|`;
//! * the envelope builds as `A_ss·(1 − e^(−π·n/(2Q)))` after `n` half
//!   waves;
//! * a violation needs the envelope to cross the noise margin.
//!
//! From these, [`analyze`] reports how many half waves each variation size
//! tolerates, the largest variation the configured thresholds can
//! *guarantee* against, and the response-time slack the paper's "gentle
//! reaction suffices" argument rests on.

use rlc::impedance_at;
use rlc::units::{Amps, Cycles, Hertz, Volts};
use rlc::SupplyParams;

use crate::config::TuningConfig;

/// The analytic guarantee report for one supply + tuning configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuaranteeReport {
    /// Resonant period in cycles.
    pub resonant_period: Cycles,
    /// Impedance magnitude at the resonant frequency.
    pub peak_impedance_ohms: f64,
    /// Half waves of the maximum variation needed to violate (`None` if
    /// even sustained excitation stays within the margin).
    pub half_waves_to_violation: Option<u32>,
    /// The largest peak-to-peak variation for which violations need strictly
    /// more half waves than the second-level threshold — the boundary of
    /// the configuration's guaranteed regime.
    pub guaranteed_variation: Amps,
    /// Cycles between the second-level trigger and the earliest possible
    /// violation of the maximum variation (the response-time budget). Zero
    /// when the variation violates at or before the trigger.
    pub response_budget_cycles: u64,
}

/// Steady-state voltage amplitude of a square-wave excitation of
/// peak-to-peak `p2p` at the supply's resonant frequency (fundamental-only
/// approximation; harmonics fall outside the band).
pub fn steady_state_amplitude(supply: &SupplyParams, p2p: Amps) -> Volts {
    let z = impedance_at(supply, supply.resonant_frequency()).magnitude();
    Volts::new(2.0 / std::f64::consts::PI * p2p.amps() * z)
}

/// The envelope fraction reached after `n` half waves of sustained resonant
/// excitation: `1 − e^(−π·n/(2Q))`.
pub fn envelope_after(supply: &SupplyParams, half_waves: u32) -> f64 {
    1.0 - (-std::f64::consts::PI * half_waves as f64 / (2.0 * supply.quality_factor())).exp()
}

/// Half waves of a `p2p` square wave at resonance needed to cross the noise
/// margin (`None` if its steady state stays inside the margin).
pub fn half_waves_to_violation(supply: &SupplyParams, p2p: Amps) -> Option<u32> {
    let a_ss = steady_state_amplitude(supply, p2p).volts();
    let margin = supply.noise_margin().volts();
    if a_ss <= margin {
        return None;
    }
    // Solve 1 − e^(−π n / 2Q) > margin / A_ss.
    let q = supply.quality_factor();
    let x = 1.0 - margin / a_ss;
    let n = -(2.0 * q / std::f64::consts::PI) * x.ln();
    Some(n.ceil().max(1.0) as u32)
}

/// The largest peak-to-peak variation whose violations need strictly more
/// half waves than `threshold_half_waves` (binary search to 0.1 A).
pub fn guaranteed_variation(supply: &SupplyParams, threshold_half_waves: u32) -> Amps {
    let mut lo = 0.0; // safe
    let mut hi = 1000.0; // unsafe for any real machine
    while hi - lo > 0.1 {
        let mid = 0.5 * (lo + hi);
        let safe = match half_waves_to_violation(supply, Amps::new(mid)) {
            None => true,
            Some(n) => n > threshold_half_waves,
        };
        if safe {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Amps::new(lo)
}

/// Runs the full analysis for a supply, clock, configuration, and the
/// machine's maximum possible current variation.
///
/// # Errors
///
/// Propagates period-resolution failures from the supply.
pub fn analyze(
    supply: &SupplyParams,
    clock: Hertz,
    config: &TuningConfig,
    max_variation: Amps,
) -> Result<GuaranteeReport, rlc::RlcError> {
    let resonant_period = supply.resonant_period_cycles(clock)?;
    let n_violate = half_waves_to_violation(supply, max_variation);
    let budget = match n_violate {
        None => u64::MAX,
        Some(n) => {
            let slack_half_waves = n.saturating_sub(config.second_level_threshold);
            slack_half_waves as u64 * resonant_period.count() / 2
        }
    };
    Ok(GuaranteeReport {
        resonant_period,
        peak_impedance_ohms: impedance_at(supply, supply.resonant_frequency()).magnitude(),
        half_waves_to_violation: n_violate,
        guaranteed_variation: guaranteed_variation(supply, config.second_level_threshold),
        response_budget_cycles: budget,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlc::calibrate::{repetitions_to_violation, sustained_wave_violates};

    const GHZ10: Hertz = Hertz::new(10e9);

    fn table1() -> SupplyParams {
        SupplyParams::isca04_table1()
    }

    #[test]
    fn analytic_half_waves_match_circuit_simulation() {
        // The closed-form repetition count agrees with the Heun-integrated
        // circuit within one half wave across the interesting range.
        let p = table1();
        for p2p in [34.0, 40.0, 50.0, 70.0] {
            let analytic = half_waves_to_violation(&p, Amps::new(p2p))
                .unwrap_or_else(|| panic!("{p2p} A should violate"));
            let simulated = repetitions_to_violation(&p, GHZ10, Amps::new(p2p), 40)
                .unwrap_or_else(|| panic!("{p2p} A should violate in simulation"));
            assert!(
                analytic.abs_diff(simulated) <= 1,
                "{p2p} A: analytic {analytic} vs simulated {simulated}"
            );
        }
    }

    #[test]
    fn small_variations_never_violate_analytically() {
        let p = table1();
        assert_eq!(half_waves_to_violation(&p, Amps::new(10.0)), None);
        // And the circuit agrees.
        assert!(!sustained_wave_violates(
            &p,
            GHZ10,
            Amps::new(10.0),
            Cycles::new(100)
        ));
    }

    #[test]
    fn guaranteed_variation_boundary_is_consistent() {
        // At the boundary, violations need > threshold half waves; just
        // above it, they need ≤ threshold.
        let p = table1();
        let g = guaranteed_variation(&p, 3);
        let below = half_waves_to_violation(&p, Amps::new(g.amps() - 0.5));
        let above = half_waves_to_violation(&p, Amps::new(g.amps() + 0.5));
        if let Some(n) = below {
            assert!(
                n > 3,
                "below boundary must tolerate > 3 half waves, got {n}"
            );
        }
        assert!(above.expect("above boundary must violate") <= 3 + 1);
    }

    #[test]
    fn table1_guaranteed_regime_matches_papers_threshold() {
        // With the second level at count 3, square waves up to ~30 A are
        // guaranteed — right at the paper's 32 A resonant current variation
        // threshold with its repetition tolerance of 4. (Real program
        // waveforms couple less perfectly than ideal squares, which is the
        // extra slack the evaluation rides on.)
        let p = table1();
        let g = guaranteed_variation(&p, 3);
        assert!(
            (26.0..36.0).contains(&g.amps()),
            "guaranteed variation {g} should sit near the paper's 32 A threshold"
        );
    }

    #[test]
    fn report_has_positive_budget_inside_the_guarantee() {
        let p = table1();
        let config = TuningConfig::isca04_table1(100);
        let r = analyze(&p, GHZ10, &config, Amps::new(30.0)).unwrap();
        assert_eq!(r.resonant_period, Cycles::new(100));
        assert!(r.half_waves_to_violation.unwrap() >= 4);
        assert!(
            r.response_budget_cycles >= 50,
            "budget {} should exceed a half period",
            r.response_budget_cycles
        );
    }

    #[test]
    fn report_flags_zero_budget_beyond_the_guarantee() {
        // At the machine's full 70 A swing, violations arrive by the
        // second-level trigger: the budget collapses — the regime where the
        // paper's parameters stop guaranteeing (EXPERIMENTS.md, deviation 1).
        let p = table1();
        let config = TuningConfig::isca04_table1(100);
        let r = analyze(&p, GHZ10, &config, Amps::new(70.0)).unwrap();
        assert!(r.half_waves_to_violation.unwrap() <= 3);
        assert_eq!(r.response_budget_cycles, 0);
    }

    #[test]
    fn envelope_is_monotone_and_saturating() {
        let p = table1();
        let mut last = 0.0;
        for n in 1..20 {
            let e = envelope_after(&p, n);
            assert!(e > last, "envelope must grow");
            assert!(e < 1.0 + 1e-12);
            last = e;
        }
        assert!(last > 0.99, "envelope saturates near 1");
    }
}
