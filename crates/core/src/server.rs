//! The multi-tenant suite server behind the `restuned` binary: a
//! long-running process that accepts suite jobs over a unix socket (or TCP
//! behind the `tcp:` endpoint prefix), schedules them fairly across
//! tenants onto a supervised worker pool, and serves repeated work from a
//! shared content-keyed result cache.
//!
//! The robustness surface is the point of this module:
//!
//! * **bounded admission** — a queue limit enforced at request time; an
//!   over-limit request is rejected with an explicit retry-after frame
//!   ([`crate::wire::KIND_BUSY`]), never buffered without bound;
//! * **per-request deadlines** — a job's own deadline (or the server
//!   default) propagates into the same watchdog the in-process engine
//!   uses, so no tenant can pin a worker forever;
//! * **fair scheduling** — tenants take round-robin turns: one queued job
//!   per turn, so a tenant with a deep queue cannot starve the others;
//! * **per-client fault containment** — a torn frame, a slow-loris write,
//!   or a protocol violation kills *that connection only* (the strict
//!   [`crate::wire::StreamDecoder`] treats any malformed byte as a
//!   violation); every other tenant is unaffected;
//! * **graceful drain** — [`Server::drain_and_stop`] stops admitting,
//!   finishes queued and in-flight jobs (each completed job lands in the
//!   persistent result cache), then closes; a SIGTERM'd `restuned` does
//!   exactly this, so a restarted server resumes from the cache;
//! * **crash-consistent result cache** — completed jobs persist as
//!   CRC-trailed rows written with the engine's atomic-write discipline,
//!   so the same fingerprint is never simulated twice, across tenants
//!   *and* across server restarts.
//!
//! Seeded *network* fault injection (`ServerConfig::net_fault_seed`,
//! `restuned --faults`) arms a deterministic subset of accepted
//! connections with [`crate::fault::NetFaultSpec`] plans — the server
//! deliberately misbehaves toward those clients (truncated frames,
//! mid-stream disconnects) so reconnect-resume is exercised end to end.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::fault::{FailureKind, NetFaultRuntime};
use crate::wire;

// ---------------------------------------------------------------------------
// Endpoints and sockets
// ---------------------------------------------------------------------------

/// Where a suite server listens (or a client connects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A unix-domain socket at the given filesystem path.
    Unix(PathBuf),
    /// A TCP `host:port` address (written as `tcp:host:port`).
    Tcp(String),
}

impl Endpoint {
    /// Parses an endpoint string: a `tcp:` prefix selects TCP, anything
    /// else is a unix socket path.
    pub fn parse(raw: &str) -> Endpoint {
        match raw.strip_prefix("tcp:") {
            Some(addr) => Endpoint::Tcp(addr.to_string()),
            None => Endpoint::Unix(PathBuf::from(raw)),
        }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Unix(path) => write!(f, "{}", path.display()),
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
        }
    }
}

/// One connected stream, unix or TCP, behind a uniform surface.
#[derive(Debug)]
pub(crate) enum Sock {
    /// A unix-domain stream.
    #[cfg(unix)]
    Unix(UnixStream),
    /// A TCP stream.
    Tcp(TcpStream),
}

impl Sock {
    pub(crate) fn connect(endpoint: &Endpoint) -> io::Result<Sock> {
        match endpoint {
            #[cfg(unix)]
            Endpoint::Unix(path) => Ok(Sock::Unix(UnixStream::connect(path)?)),
            #[cfg(not(unix))]
            Endpoint::Unix(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix-domain sockets are unavailable on this platform",
            )),
            Endpoint::Tcp(addr) => Ok(Sock::Tcp(TcpStream::connect(addr)?)),
        }
    }

    pub(crate) fn try_clone(&self) -> io::Result<Sock> {
        match self {
            #[cfg(unix)]
            Sock::Unix(s) => Ok(Sock::Unix(s.try_clone()?)),
            Sock::Tcp(s) => Ok(Sock::Tcp(s.try_clone()?)),
        }
    }

    pub(crate) fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            #[cfg(unix)]
            Sock::Unix(s) => s.set_read_timeout(timeout),
            Sock::Tcp(s) => s.set_read_timeout(timeout),
        }
    }

    /// Hard-closes both directions; a blocked reader on a clone of this
    /// socket wakes with EOF. Errors are ignored — the socket may already
    /// be gone, which is the state this call wants anyway.
    pub(crate) fn shutdown(&self) {
        match self {
            #[cfg(unix)]
            Sock::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            Sock::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

impl Read for Sock {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            #[cfg(unix)]
            Sock::Unix(s) => s.read(buf),
            Sock::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Sock {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            #[cfg(unix)]
            Sock::Unix(s) => s.write(buf),
            Sock::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            #[cfg(unix)]
            Sock::Unix(s) => s.flush(),
            Sock::Tcp(s) => s.flush(),
        }
    }
}

/// The write half of one framed connection, shared between the threads
/// that may send on it (reader replies, worker replies, heartbeats). All
/// outgoing frames pass through the per-connection [`NetFaultRuntime`], so
/// an armed network fault plan perturbs real traffic.
pub(crate) struct FramedConn {
    pub(crate) id: u64,
    sock: Mutex<Sock>,
    faults: Mutex<NetFaultRuntime>,
    alive: AtomicBool,
}

impl std::fmt::Debug for FramedConn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FramedConn(#{}, alive={})", self.id, self.is_alive())
    }
}

impl FramedConn {
    pub(crate) fn new(id: u64, sock: Sock, faults: NetFaultRuntime) -> Self {
        Self {
            id,
            sock: Mutex::new(sock),
            faults: Mutex::new(faults),
            alive: AtomicBool::new(true),
        }
    }

    pub(crate) fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Relaxed)
    }

    /// Marks the connection dead and hard-closes the socket, waking any
    /// blocked reader on a clone with EOF. Idempotent.
    pub(crate) fn shutdown(&self) {
        self.alive.store(false, Ordering::Relaxed);
        self.sock
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .shutdown();
    }

    /// Writes one frame, routed through the connection's network-fault
    /// plan. Any write error (including an injected truncation or drop)
    /// kills the connection.
    pub(crate) fn write_frame(&self, kind: u8, payload: &[u8]) -> io::Result<()> {
        if !self.is_alive() {
            return Err(io::Error::new(
                io::ErrorKind::NotConnected,
                "connection is closed",
            ));
        }
        let frame = wire::encode_frame(kind, payload);
        let action = {
            let mut faults = self.faults.lock().unwrap_or_else(PoisonError::into_inner);
            if faults.is_armed() {
                faults.on_frame()
            } else {
                crate::fault::NetAction::Pass
            }
        };
        let mut sock = self.sock.lock().unwrap_or_else(PoisonError::into_inner);
        use crate::fault::NetAction;
        let result = match action {
            NetAction::Pass => sock.write_all(&frame).and_then(|()| sock.flush()),
            NetAction::Stall { millis } => {
                // Slow-loris: the first half lands, then nothing for the
                // stall, then the rest. Holding the sock lock for the
                // duration is deliberate — a real dripping peer blocks
                // everything behind it on this stream too.
                let half = frame.len() / 2;
                sock.write_all(&frame[..half])
                    .and_then(|()| sock.flush())
                    .and_then(|()| {
                        std::thread::sleep(Duration::from_millis(millis));
                        sock.write_all(&frame[half..])
                    })
                    .and_then(|()| sock.flush())
            }
            NetAction::Truncate => {
                let _ = sock.write_all(&frame[..frame.len() / 2]);
                let _ = sock.flush();
                Err(io::Error::new(
                    io::ErrorKind::ConnectionAborted,
                    "injected frame truncation",
                ))
            }
            NetAction::Drop => Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "injected disconnect",
            )),
        };
        if result.is_err() {
            self.alive.store(false, Ordering::Relaxed);
            sock.shutdown();
        }
        result
    }
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Tunables for a [`Server`]. [`ServerConfig::from_env`] reads the
/// `RESTUNE_SERVER_*` knobs through the shared warn-once env parser.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum queued (admitted but not yet running) jobs across all
    /// tenants; requests beyond it are rejected with a busy frame.
    pub queue_limit: usize,
    /// Maximum simultaneously connected clients; connections beyond it are
    /// refused at accept time.
    pub max_clients: usize,
    /// Watchdog deadline applied to jobs that carry none of their own.
    pub default_deadline: Option<Duration>,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// How long a connection may hold an incomplete frame before it is
    /// killed as a slow-loris writer.
    pub frame_timeout: Duration,
    /// The retry-after hint carried by busy (admission-rejected) frames.
    pub retry_after: Duration,
    /// When set, arms deterministic per-connection network fault plans
    /// (see [`crate::fault::NetFaultSpec`]) on a seeded subset of accepted
    /// connections.
    pub net_fault_seed: Option<u64>,
    /// Result-cache directory override; defaults to the engine's baseline
    /// cache directory.
    pub cache_dir: Option<PathBuf>,
    /// Host generation tag announced in the hello frame on every accepted
    /// connection. `None` derives a fresh tag per [`Server::start`], so a
    /// restarted host is distinguishable from the process it replaced.
    pub generation: Option<u64>,
    /// Mesh-peer endpoints advertised in the hello frame (the `restuned`
    /// `--mesh-peer` flag); informational for clients building a host list.
    pub mesh_peers: Vec<String>,
}

/// Default bound on queued jobs.
const DEFAULT_QUEUE_LIMIT: usize = 256;
/// Default bound on simultaneous clients.
const DEFAULT_MAX_CLIENTS: usize = 64;
/// Default per-request watchdog deadline in seconds.
const DEFAULT_DEADLINE_SECS: f64 = 120.0;

impl ServerConfig {
    /// Builds a configuration from the environment: `RESTUNE_SERVER_QUEUE`
    /// (default 256), `RESTUNE_SERVER_CLIENTS` (default 64),
    /// `RESTUNE_SERVER_DEADLINE` seconds (default 120), and
    /// `RESTUNE_WORKERS` (default: available parallelism) — each through
    /// the shared warn-once parser, so an invalid value warns exactly once
    /// and falls back.
    pub fn from_env() -> Self {
        let queue_limit = crate::envcfg::positive_usize(
            "RESTUNE_SERVER_QUEUE",
            "server",
            "the default queue limit (256)",
        )
        .unwrap_or(DEFAULT_QUEUE_LIMIT);
        let max_clients = crate::envcfg::positive_usize(
            "RESTUNE_SERVER_CLIENTS",
            "server",
            "the default client limit (64)",
        )
        .unwrap_or(DEFAULT_MAX_CLIENTS);
        let deadline = crate::envcfg::positive_f64(
            "RESTUNE_SERVER_DEADLINE",
            "server",
            "the default request deadline (120s)",
        )
        .unwrap_or(DEFAULT_DEADLINE_SECS);
        let workers =
            crate::envcfg::positive_usize("RESTUNE_WORKERS", "server", "available parallelism")
                .unwrap_or_else(|| {
                    std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1)
                });
        Self {
            queue_limit,
            max_clients,
            default_deadline: Some(Duration::from_secs_f64(deadline)),
            workers,
            frame_timeout: Duration::from_secs(5),
            retry_after: Duration::from_millis(100),
            net_fault_seed: None,
            cache_dir: None,
            generation: None,
            mesh_peers: Vec::new(),
        }
    }
}

/// Derives a fresh host generation: wall time mixed with the process id and
/// a process-wide counter, so two starts — across processes *or* within one
/// test process — never collide in practice.
fn fresh_generation() -> u64 {
    static STARTS: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let start = STARTS.fetch_add(1, Ordering::Relaxed);
    crate::engine::fnv1a(format!("gen|{nanos}|{}|{start}", std::process::id()).as_bytes())
}

// ---------------------------------------------------------------------------
// Shared result cache
// ---------------------------------------------------------------------------

/// Header line of the persistent result-cache file. v2 added the job
/// identity string to every row, so a 64-bit fingerprint collision is
/// detected instead of silently serving another job's result; v1 files
/// are discarded (cheap — each row is one re-simulated run).
const CACHE_HEADER: &str = "restune-server-cache v2";

fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len() / 2)
        .map(|i| u8::from_str_radix(&s[2 * i..2 * i + 2], 16).ok())
        .collect()
}

/// The shared cross-tenant result cache: fingerprint → (job identity,
/// encoded result payload), persisted as a CRC-trailed row file with the
/// engine's atomic-write discipline. The same job — across tenants,
/// connections, and server restarts — is simulated exactly once. The
/// identity string is verified on every read so a fingerprint collision
/// degrades to a miss, never a wrong result.
struct ResultCache {
    rows: HashMap<u64, (String, Vec<u8>)>,
    order: Vec<u64>,
    path: Option<PathBuf>,
    write_warned: bool,
}

impl ResultCache {
    fn load(path: Option<PathBuf>) -> Self {
        let mut cache = Self {
            rows: HashMap::new(),
            order: Vec::new(),
            path,
            write_warned: false,
        };
        let Some(path) = cache.path.clone() else {
            return cache;
        };
        let Ok(text) = std::fs::read_to_string(&path) else {
            return cache; // no file yet: an empty cache
        };
        let mut lines = text.lines();
        if lines.next() != Some(CACHE_HEADER) {
            crate::obs::warn(
                "server",
                &format!(
                    "{}: unrecognized cache header; starting empty",
                    path.display()
                ),
            );
            return cache;
        }
        for line in lines {
            match crate::engine::split_crc_line(line) {
                None => break,                // torn tail: keep the verified prefix
                Some((_, false)) => continue, // damaged row: skip it
                Some((core, true)) => {
                    let Some((fp, identity, payload)) = Self::parse_row(core) else {
                        continue;
                    };
                    if cache.rows.insert(fp, (identity, payload)).is_none() {
                        cache.order.push(fp);
                    }
                }
            }
        }
        cache
    }

    fn parse_row(core: &str) -> Option<(u64, String, Vec<u8>)> {
        let mut fields = core.split('\t');
        let fp_field = fields.next()?;
        let fp = u64::from_str_radix(fp_field.strip_prefix("fp=")?, 16).ok()?;
        // The identity is hex-encoded so its Debug rendering can never
        // smuggle a tab or newline into the row format.
        let identity = String::from_utf8(hex_decode(fields.next()?)?).ok()?;
        let payload = hex_decode(fields.next()?)?;
        fields.next().is_none().then_some((fp, identity, payload))
    }

    /// Looks up `fingerprint`, verifying that the stored row was produced
    /// by a job with the same full identity. A mismatch — a 64-bit
    /// collision — is reported and treated as a miss.
    fn get(&self, fingerprint: u64, identity: &str) -> Option<Vec<u8>> {
        let (stored, payload) = self.rows.get(&fingerprint)?;
        if stored != identity {
            crate::obs::counter_add("server.identity_mismatches", 1);
            crate::obs::warn(
                "server",
                &format!(
                    "fingerprint collision on {fingerprint:016x}: cached identity \
                     '{stored}' != requested '{identity}'; treating as a miss"
                ),
            );
            return None;
        }
        Some(payload.clone())
    }

    /// Inserts and persists. First write wins — a fingerprint fully
    /// determines its result, so a duplicate store is a concurrent worker
    /// finishing the same job, not new information. A persistence failure
    /// degrades to in-memory caching (warned once): results stay correct,
    /// restarts lose them.
    fn store(&mut self, fingerprint: u64, identity: &str, payload: Vec<u8>) {
        if self.rows.contains_key(&fingerprint) {
            return;
        }
        self.rows
            .insert(fingerprint, (identity.to_string(), payload));
        self.order.push(fingerprint);
        let Some(path) = self.path.clone() else {
            return;
        };
        let mut text = String::from(CACHE_HEADER);
        text.push('\n');
        for fp in &self.order {
            let (identity, payload) = &self.rows[fp];
            let core = format!(
                "fp={fp:016x}\t{}\t{}",
                hex_encode(identity.as_bytes()),
                hex_encode(payload)
            );
            text.push_str(&crate::engine::crc_line(&core));
            text.push('\n');
        }
        if let Err(e) = crate::engine::atomic_write(&path, text.as_bytes()) {
            if !self.write_warned {
                self.write_warned = true;
                crate::obs::warn(
                    "server",
                    &format!(
                        "{}: result-cache write failed ({e}); caching in memory only",
                        path.display()
                    ),
                );
            }
        }
    }

    fn len(&self) -> usize {
        self.rows.len()
    }
}

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

/// One admitted job waiting for (or holding) a worker.
struct PendingJob {
    conn: Arc<FramedConn>,
    req_id: u64,
    want_obs: bool,
    job: wire::Job,
}

/// Round-robin tenant scheduler state. `rr` holds each tenant with a
/// non-empty queue exactly once; a worker pops the front tenant, takes one
/// job, and re-queues the tenant behind everyone else.
#[derive(Default)]
struct Sched {
    queues: HashMap<u64, VecDeque<PendingJob>>,
    rr: VecDeque<u64>,
    queued: usize,
    in_flight: usize,
    cancelled: HashSet<(u64, u64)>,
}

impl Sched {
    fn push(&mut self, job: PendingJob) {
        let conn_id = job.conn.id;
        let queue = self.queues.entry(conn_id).or_default();
        if queue.is_empty() {
            self.rr.push_back(conn_id);
        }
        queue.push_back(job);
        self.queued += 1;
    }

    fn pop(&mut self) -> Option<PendingJob> {
        while let Some(conn_id) = self.rr.pop_front() {
            let Some(queue) = self.queues.get_mut(&conn_id) else {
                continue; // tenant disconnected since it was queued
            };
            let Some(job) = queue.pop_front() else {
                self.queues.remove(&conn_id);
                continue;
            };
            self.queued -= 1;
            if queue.is_empty() {
                self.queues.remove(&conn_id);
            } else {
                self.rr.push_back(conn_id);
            }
            return Some(job);
        }
        None
    }

    fn drop_tenant(&mut self, conn_id: u64) {
        if let Some(queue) = self.queues.remove(&conn_id) {
            self.queued -= queue.len();
        }
        self.rr.retain(|id| *id != conn_id);
        self.cancelled.retain(|(cid, _)| *cid != conn_id);
    }
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    jobs_run: AtomicU64,
    job_failures: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    busy_rejections: AtomicU64,
    protocol_errors: AtomicU64,
    slow_loris_kills: AtomicU64,
    cancelled: AtomicU64,
    probes: AtomicU64,
}

/// A snapshot of a server's lifetime counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted (including ones since closed).
    pub connections: u64,
    /// Jobs executed (cache hits excluded).
    pub jobs_run: u64,
    /// Executed jobs that ended in a classified failure.
    pub job_failures: u64,
    /// Requests served from the shared result cache.
    pub cache_hits: u64,
    /// Requests that had to simulate.
    pub cache_misses: u64,
    /// Requests rejected with a busy frame (admission or drain).
    pub busy_rejections: u64,
    /// Connections killed for protocol violations (torn or malformed
    /// frames, unexpected kinds).
    pub protocol_errors: u64,
    /// Connections killed for holding a partial frame past the frame
    /// timeout.
    pub slow_loris_kills: u64,
    /// Jobs cancelled by their tenant before execution.
    pub cancelled: u64,
    /// Circuit-breaker probe frames answered.
    pub probes: u64,
}

// ---------------------------------------------------------------------------
// Listener
// ---------------------------------------------------------------------------

enum Listener {
    #[cfg(unix)]
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn bind(endpoint: &Endpoint) -> io::Result<Listener> {
        match endpoint {
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                // A stale socket file from a crashed predecessor would make
                // bind fail; remove it. A *live* predecessor is not
                // detected — last binder wins, as with any pidfile-less
                // daemon.
                let _ = std::fs::remove_file(path);
                if let Some(dir) = path.parent() {
                    if !dir.as_os_str().is_empty() {
                        std::fs::create_dir_all(dir)?;
                    }
                }
                let listener = UnixListener::bind(path)?;
                listener.set_nonblocking(true)?;
                Ok(Listener::Unix(listener))
            }
            #[cfg(not(unix))]
            Endpoint::Unix(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix-domain sockets are unavailable on this platform",
            )),
            Endpoint::Tcp(addr) => {
                let listener = TcpListener::bind(addr)?;
                listener.set_nonblocking(true)?;
                Ok(Listener::Tcp(listener))
            }
        }
    }

    /// Non-blocking accept: `Ok(None)` when no connection is pending.
    fn accept(&self) -> io::Result<Option<Sock>> {
        let result = match self {
            #[cfg(unix)]
            Listener::Unix(l) => l.accept().map(|(s, _)| Sock::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Sock::Tcp(s)),
        };
        match result {
            Ok(sock) => Ok(Some(sock)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }
}

// ---------------------------------------------------------------------------
// The server
// ---------------------------------------------------------------------------

struct Shared {
    cfg: ServerConfig,
    sched: Mutex<Sched>,
    work_ready: Condvar,
    draining: AtomicBool,
    stopping: AtomicBool,
    stalled: AtomicBool,
    conns: Mutex<HashMap<u64, Arc<FramedConn>>>,
    readers: Mutex<Vec<JoinHandle<()>>>,
    cache: Mutex<ResultCache>,
    counters: Counters,
    next_conn_id: AtomicU64,
    generation: u64,
}

impl Shared {
    fn stopping(&self) -> bool {
        self.stopping.load(Ordering::Relaxed)
    }

    fn draining(&self) -> bool {
        self.draining.load(Ordering::Relaxed)
    }

    fn stalled(&self) -> bool {
        self.stalled.load(Ordering::Relaxed)
    }

    fn count(&self, counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// A running suite server. Start one with [`Server::start`], stop it with
/// [`Server::drain_and_stop`]; dropping it without draining performs an
/// abrupt (but non-blocking-safe) stop.
pub struct Server {
    shared: Arc<Shared>,
    endpoint: Endpoint,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    stopped: bool,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Server({})", self.endpoint)
    }
}

impl Server {
    /// Binds `endpoint`, loads the persistent result cache, and spawns the
    /// accept loop and worker pool.
    pub fn start(endpoint: Endpoint, cfg: ServerConfig) -> io::Result<Server> {
        let listener = Listener::bind(&endpoint)?;
        let cache_path = cfg
            .cache_dir
            .clone()
            .unwrap_or_else(crate::engine::baseline_cache_dir)
            .join("server")
            .join("results.tsv");
        let cache = ResultCache::load(Some(cache_path));
        if cache.len() > 0 {
            crate::obs::counter_add("server.cache_loaded_rows", cache.len() as u64);
        }
        let workers_wanted = cfg.workers.max(1);
        let generation = cfg.generation.unwrap_or_else(fresh_generation);
        let shared = Arc::new(Shared {
            cfg,
            sched: Mutex::new(Sched::default()),
            work_ready: Condvar::new(),
            draining: AtomicBool::new(false),
            stopping: AtomicBool::new(false),
            stalled: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            readers: Mutex::new(Vec::new()),
            cache: Mutex::new(cache),
            counters: Counters::default(),
            next_conn_id: AtomicU64::new(1),
            generation,
        });
        let workers = (0..workers_wanted)
            .map(|_| {
                let shared = shared.clone();
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let accept = {
            let shared = shared.clone();
            std::thread::spawn(move || accept_loop(&shared, listener))
        };
        Ok(Server {
            shared,
            endpoint,
            accept: Some(accept),
            workers,
            stopped: false,
        })
    }

    /// The endpoint this server is listening on.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// The host generation tag announced to every connecting client.
    pub fn generation(&self) -> u64 {
        self.shared.generation
    }

    /// Pauses (`true`) or resumes (`false`) the worker pool. A stalled host
    /// keeps accepting and queueing requests but executes nothing — the
    /// chaos conductor uses this to model a wedged-but-connected host.
    /// Admission control still applies, so a long stall degrades into busy
    /// frames rather than unbounded queueing.
    pub fn set_stalled(&self, stalled: bool) {
        self.shared.stalled.store(stalled, Ordering::Relaxed);
        if !stalled {
            self.shared.work_ready.notify_all();
        }
    }

    /// Stalls the worker pool for `window`, then resumes it from a helper
    /// thread. The chaos conductor's bounded-stall primitive: the window
    /// heals by itself even if the conductor is dropped meanwhile.
    pub fn stall_for(&self, window: Duration) {
        self.shared.stalled.store(true, Ordering::Relaxed);
        let shared = self.shared.clone();
        std::thread::spawn(move || {
            std::thread::sleep(window);
            shared.stalled.store(false, Ordering::Relaxed);
            shared.work_ready.notify_all();
        });
    }

    /// Stops admitting new requests: from here on every request is
    /// answered with a busy frame and new connections are refused. Queued
    /// and in-flight jobs keep running.
    pub fn begin_drain(&self) {
        self.shared.draining.store(true, Ordering::Relaxed);
        // A stalled host must still be able to finish its queue and leave.
        self.shared.stalled.store(false, Ordering::Relaxed);
        self.shared.work_ready.notify_all();
    }

    /// A snapshot of the lifetime counters.
    pub fn stats(&self) -> ServerStats {
        let c = &self.shared.counters;
        let get = |a: &AtomicU64| a.load(Ordering::Relaxed);
        ServerStats {
            connections: get(&c.connections),
            jobs_run: get(&c.jobs_run),
            job_failures: get(&c.job_failures),
            cache_hits: get(&c.cache_hits),
            cache_misses: get(&c.cache_misses),
            busy_rejections: get(&c.busy_rejections),
            protocol_errors: get(&c.protocol_errors),
            slow_loris_kills: get(&c.slow_loris_kills),
            cancelled: get(&c.cancelled),
            probes: get(&c.probes),
        }
    }

    /// Graceful shutdown: drain admissions, let queued and in-flight jobs
    /// finish (every completed job is already persisted in the result
    /// cache), then stop every thread, close every connection, and remove
    /// the unix socket file. Returns the final counters.
    pub fn drain_and_stop(mut self) -> ServerStats {
        self.begin_drain();
        loop {
            {
                let sched = self
                    .shared
                    .sched
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                if sched.queued == 0 && sched.in_flight == 0 {
                    break;
                }
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        self.stop_threads();
        self.stopped = true;
        self.stats()
    }

    fn stop_threads(&mut self) {
        self.shared.stopping.store(true, Ordering::Relaxed);
        self.shared.draining.store(true, Ordering::Relaxed);
        self.shared.stalled.store(false, Ordering::Relaxed);
        self.shared.work_ready.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let conns: Vec<_> = self
            .shared
            .conns
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain()
            .map(|(_, conn)| conn)
            .collect();
        for conn in conns {
            conn.shutdown();
        }
        let readers: Vec<_> = self
            .shared
            .readers
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain(..)
            .collect();
        for reader in readers {
            let _ = reader.join();
        }
        if let Endpoint::Unix(path) = &self.endpoint {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if !self.stopped {
            self.stop_threads();
        }
    }
}

// ---------------------------------------------------------------------------
// Accept loop
// ---------------------------------------------------------------------------

fn accept_loop(shared: &Arc<Shared>, listener: Listener) {
    loop {
        if shared.stopping() {
            return;
        }
        let sock = match listener.accept() {
            Ok(Some(sock)) => sock,
            Ok(None) => {
                std::thread::sleep(Duration::from_millis(25));
                continue;
            }
            Err(_) => {
                std::thread::sleep(Duration::from_millis(25));
                continue;
            }
        };
        if shared.draining() {
            // Drain refuses new connections outright: a fast EOF tells the
            // client to fail over (or fail fast) instead of queueing behind
            // a server that is on its way out.
            sock.shutdown();
            continue;
        }
        let over_limit = {
            let conns = shared.conns.lock().unwrap_or_else(PoisonError::into_inner);
            conns.len() >= shared.cfg.max_clients
        };
        if over_limit {
            // Best-effort busy frame (request id 0: no request exists yet),
            // then close. The client treats EOF the same way.
            let mut sock = sock;
            let busy = wire::encode_frame(
                wire::KIND_BUSY,
                &wire::encode_busy(0, shared.cfg.retry_after),
            );
            let _ = sock.write_all(&busy);
            let _ = sock.flush();
            sock.shutdown();
            shared.count(&shared.counters.busy_rejections);
            continue;
        }
        let Ok(reader_sock) = sock.try_clone() else {
            sock.shutdown();
            continue;
        };
        let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
        let faults = match shared.cfg.net_fault_seed {
            Some(seed) => crate::fault::seeded_net_faults(seed, conn_id),
            None => Vec::new(),
        };
        if !faults.is_empty() {
            crate::obs::warn(
                "server",
                &format!(
                    "connection #{conn_id}: armed injected net faults {:?}",
                    faults.iter().map(|f| f.class()).collect::<Vec<_>>()
                ),
            );
        }
        let conn = Arc::new(FramedConn::new(conn_id, sock, NetFaultRuntime::new(faults)));
        shared
            .conns
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(conn_id, conn.clone());
        shared.count(&shared.counters.connections);
        // First frame on every connection: the host generation (so a mesh
        // client can tell a restart from a reconnect) plus advertised peers.
        // It passes through the net-fault plan like any other frame — a
        // torn hello kills this connection, which is exactly what a client
        // dialing a faulty host should observe.
        let _ = conn.write_frame(
            wire::KIND_HELLO,
            &wire::encode_hello(shared.generation, &shared.cfg.mesh_peers),
        );
        let shared2 = shared.clone();
        let handle = std::thread::spawn(move || reader_loop(&shared2, &conn, reader_sock));
        shared
            .readers
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(handle);
    }
}

// ---------------------------------------------------------------------------
// Per-connection reader
// ---------------------------------------------------------------------------

/// Why a reader gave up on its connection (observability only).
enum ConnDeath {
    Eof,
    IoError,
    Protocol,
    SlowLoris,
    Stopping,
}

fn reader_loop(shared: &Arc<Shared>, conn: &Arc<FramedConn>, mut sock: Sock) {
    let _ = sock.set_read_timeout(Some(Duration::from_millis(100)));
    let mut decoder = wire::StreamDecoder::new();
    let mut partial_since: Option<Instant> = None;
    let mut buf = [0u8; 16 * 1024];
    let death = 'conn: loop {
        if shared.stopping() || !conn.is_alive() {
            break ConnDeath::Stopping;
        }
        // The slow-loris check runs every iteration, not only on a read
        // timeout: a peer dripping one byte per poll interval never *hits*
        // the timeout branch, yet holds a partial frame forever.
        if let Some(since) = partial_since {
            if since.elapsed() > shared.cfg.frame_timeout {
                break ConnDeath::SlowLoris;
            }
        }
        match sock.read(&mut buf) {
            Ok(0) => break ConnDeath::Eof,
            Ok(n) => {
                decoder.extend(&buf[..n]);
                loop {
                    match decoder.next_frame() {
                        Ok(Some((kind, payload))) => {
                            if !handle_frame(shared, conn, kind, &payload) {
                                break 'conn ConnDeath::Protocol;
                            }
                        }
                        Ok(None) => break,
                        Err(violation) => {
                            crate::obs::warn(
                                "server",
                                &format!("connection #{}: {violation}", conn.id),
                            );
                            break 'conn ConnDeath::Protocol;
                        }
                    }
                }
                partial_since = if decoder.has_partial() {
                    partial_since.or_else(|| Some(Instant::now()))
                } else {
                    None
                };
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                continue;
            }
            Err(_) => break ConnDeath::IoError,
        }
    };
    match death {
        ConnDeath::Protocol => shared.count(&shared.counters.protocol_errors),
        ConnDeath::SlowLoris => {
            crate::obs::warn(
                "server",
                &format!(
                    "connection #{}: partial frame older than {:?}; killing slow-loris writer",
                    conn.id, shared.cfg.frame_timeout
                ),
            );
            shared.count(&shared.counters.slow_loris_kills);
        }
        ConnDeath::Eof | ConnDeath::IoError | ConnDeath::Stopping => {}
    }
    // Containment boundary: everything this tenant still had queued dies
    // with the connection; in-flight jobs finish (their results are cached
    // for the tenant's reconnect) and their reply writes fail silently.
    conn.shutdown();
    shared
        .conns
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .remove(&conn.id);
    shared
        .sched
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .drop_tenant(conn.id);
}

/// Handles one decoded frame; `false` kills the connection as a protocol
/// violation.
fn handle_frame(shared: &Arc<Shared>, conn: &Arc<FramedConn>, kind: u8, payload: &[u8]) -> bool {
    match kind {
        wire::KIND_HEARTBEAT => true,
        wire::KIND_PROBE => {
            let Some(nonce) = wire::decode_probe(payload) else {
                return false;
            };
            shared.count(&shared.counters.probes);
            // Answered from the reader thread, never queued: a probe's job
            // is to measure liveness, not worker capacity. Answering while
            // draining is deliberate — the host is alive, merely leaving.
            let _ = conn.write_frame(
                wire::KIND_PROBE_ACK,
                &wire::encode_probe_ack(nonce, shared.generation),
            );
            true
        }
        wire::KIND_CANCEL => {
            let Some(req_id) = wire::decode_cancel(payload) else {
                return false;
            };
            shared
                .sched
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .cancelled
                .insert((conn.id, req_id));
            true
        }
        wire::KIND_REQUEST => {
            let Some((req_id, want_obs, job_bytes)) = wire::decode_request(payload) else {
                return false; // the request frame itself is malformed
            };
            let busy = |r: &Arc<FramedConn>| {
                shared.count(&shared.counters.busy_rejections);
                let _ = r.write_frame(
                    wire::KIND_BUSY,
                    &wire::encode_busy(req_id, shared.cfg.retry_after),
                );
            };
            if shared.draining() || shared.stopping() {
                busy(conn);
                return true;
            }
            // A request that decodes as a frame but whose *job* does not
            // decode is this tenant's own malformed content: it gets a
            // classified failure reply, not a connection kill.
            let Some(job) = wire::decode_job(job_bytes) else {
                let reply = wire::encode_reply(
                    req_id,
                    false,
                    &Err((
                        FailureKind::Transport,
                        "job payload failed to decode".to_string(),
                    )),
                );
                let _ = conn.write_frame(wire::KIND_REPLY, &reply);
                return true;
            };
            let decoded_fp =
                wire::job_fingerprint(&job.profile, &job.technique, &job.sim, &job.specs);
            if decoded_fp != job.fingerprint {
                let reply = wire::encode_reply(
                    req_id,
                    false,
                    &Err((
                        FailureKind::Transport,
                        format!(
                            "job fingerprint mismatch (frame {:016x}, decoded {decoded_fp:016x}): \
                             wire codec drift",
                            job.fingerprint
                        ),
                    )),
                );
                let _ = conn.write_frame(wire::KIND_REPLY, &reply);
                return true;
            }
            // Cache hit: served straight from the reader thread — a cached
            // row costs no worker and no queue slot.
            let identity = wire::job_identity(&job.profile, &job.technique, &job.sim, &job.specs);
            let cached = shared
                .cache
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .get(decoded_fp, &identity);
            if let Some(payload) = cached {
                shared.count(&shared.counters.cache_hits);
                let reply = wire::encode_reply_from_result_payload(req_id, true, &payload);
                let _ = conn.write_frame(wire::KIND_REPLY, &reply);
                return true;
            }
            let admitted = {
                let mut sched = shared.sched.lock().unwrap_or_else(PoisonError::into_inner);
                if sched.queued >= shared.cfg.queue_limit {
                    false
                } else {
                    sched.push(PendingJob {
                        conn: conn.clone(),
                        req_id,
                        want_obs,
                        job,
                    });
                    true
                }
            };
            if admitted {
                shared.work_ready.notify_one();
            } else {
                busy(conn);
            }
            true
        }
        // A socket peer speaking job/result/failure/obs frames (or any
        // unknown kind) at the server is out of protocol.
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut sched = shared.sched.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if !shared.stalled() {
                    if let Some(job) = sched.pop() {
                        sched.in_flight += 1;
                        break Some(job);
                    }
                }
                if shared.stopping() {
                    break None;
                }
                sched = shared
                    .work_ready
                    .wait_timeout(sched, Duration::from_millis(100))
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
        };
        let Some(job) = job else { return };
        run_job(shared, &job);
        shared
            .sched
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .in_flight -= 1;
    }
}

fn run_job(shared: &Arc<Shared>, job: &PendingJob) {
    let was_cancelled = shared
        .sched
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .cancelled
        .remove(&(job.conn.id, job.req_id));
    if was_cancelled {
        shared.count(&shared.counters.cancelled);
        let reply = wire::encode_reply(
            job.req_id,
            false,
            &Err((
                FailureKind::Interrupted,
                "cancelled by the client".to_string(),
            )),
        );
        let _ = job.conn.write_frame(wire::KIND_REPLY, &reply);
        return;
    }
    // Re-check the cache: another tenant may have computed this
    // fingerprint while the job sat in the queue.
    let fingerprint = job.job.fingerprint;
    let identity = wire::job_identity(
        &job.job.profile,
        &job.job.technique,
        &job.job.sim,
        &job.job.specs,
    );
    let cached = shared
        .cache
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .get(fingerprint, &identity);
    if let Some(payload) = cached {
        shared.count(&shared.counters.cache_hits);
        let reply = wire::encode_reply_from_result_payload(job.req_id, true, &payload);
        let _ = job.conn.write_frame(wire::KIND_REPLY, &reply);
        return;
    }
    shared.count(&shared.counters.cache_misses);
    let deadline = job.job.deadline.or(shared.cfg.default_deadline);
    let outcome = if job.want_obs {
        // Stream the job's observability events home as raw obs frames.
        // The relay only engages on the process tier (a worker child
        // forwards its buffered trace); the in-process tier has no
        // per-job event capture to steal, so the client then simply
        // receives no streamed events.
        let conn = job.conn.clone();
        let forward = move |payload: &[u8]| {
            let _ = conn.write_frame(wire::KIND_OBS, payload);
        };
        crate::engine::execute_attempt(
            &job.job.profile,
            &job.job.technique,
            &job.job.sim,
            &job.job.specs,
            deadline,
            true,
            &crate::isolation::ObsRouting::Relay(&forward),
        )
    } else {
        crate::engine::execute_attempt(
            &job.job.profile,
            &job.job.technique,
            &job.job.sim,
            &job.job.specs,
            deadline,
            true,
            &crate::isolation::ObsRouting::Absorb,
        )
    };
    shared.count(&shared.counters.jobs_run);
    if let Ok(inst) = &outcome {
        shared
            .cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .store(fingerprint, &identity, wire::encode_result(inst));
    } else {
        // Failures are never cached: a timeout under one tenant's deadline
        // must not poison another tenant's retry.
        shared.count(&shared.counters.job_failures);
    }
    let reply = wire::encode_reply(job.req_id, false, &outcome);
    let _ = job.conn.write_frame(wire::KIND_REPLY, &reply);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testenv::with_env;

    #[test]
    fn endpoint_parses_unix_paths_and_tcp_prefix() {
        assert_eq!(
            Endpoint::parse("/tmp/restuned.sock"),
            Endpoint::Unix(PathBuf::from("/tmp/restuned.sock"))
        );
        assert_eq!(
            Endpoint::parse("tcp:127.0.0.1:7777"),
            Endpoint::Tcp("127.0.0.1:7777".to_string())
        );
        assert_eq!(Endpoint::parse("tcp:host:1").to_string(), "tcp:host:1");
    }

    #[test]
    fn config_reads_the_server_knobs_through_envcfg() {
        let cfg = with_env(
            &[
                ("RESTUNE_SERVER_QUEUE", Some("7")),
                ("RESTUNE_SERVER_CLIENTS", Some("3")),
                ("RESTUNE_SERVER_DEADLINE", Some("1.5")),
                ("RESTUNE_WORKERS", Some("2")),
            ],
            ServerConfig::from_env,
        );
        assert_eq!(cfg.queue_limit, 7);
        assert_eq!(cfg.max_clients, 3);
        assert_eq!(cfg.default_deadline, Some(Duration::from_secs_f64(1.5)));
        assert_eq!(cfg.workers, 2);

        let cfg = with_env(
            &[
                ("RESTUNE_SERVER_QUEUE", None),
                ("RESTUNE_SERVER_CLIENTS", None),
                ("RESTUNE_SERVER_DEADLINE", None),
            ],
            ServerConfig::from_env,
        );
        assert_eq!(cfg.queue_limit, DEFAULT_QUEUE_LIMIT);
        assert_eq!(cfg.max_clients, DEFAULT_MAX_CLIENTS);
        assert_eq!(
            cfg.default_deadline,
            Some(Duration::from_secs_f64(DEFAULT_DEADLINE_SECS))
        );
    }

    #[test]
    fn result_cache_round_trips_and_survives_damage() {
        let dir = std::env::temp_dir().join(format!(
            "restune-server-cache-test-{}-{:x}",
            std::process::id(),
            crate::engine::suite_fingerprint(
                &[],
                &crate::sim::Technique::Base,
                &crate::sim::SimConfig::isca04(1),
                &crate::fault::FaultPlan::none(),
            )
        ));
        let path = dir.join("results.tsv");
        let mut cache = ResultCache::load(Some(path.clone()));
        assert_eq!(cache.len(), 0);
        cache.store(0xAB, "job-a", vec![1, 2, 3]);
        cache.store(0xCD, "job-b", vec![4, 5]);
        cache.store(0xAB, "job-a", vec![9, 9]); // duplicate: first write wins
        let reloaded = ResultCache::load(Some(path.clone()));
        assert_eq!(reloaded.get(0xAB, "job-a"), Some(vec![1, 2, 3]));
        assert_eq!(reloaded.get(0xCD, "job-b"), Some(vec![4, 5]));
        // A fingerprint collision — same fp, different job identity — must
        // be a miss, never the other job's bytes.
        assert_eq!(reloaded.get(0xAB, "job-z"), None);

        // Damage one row's CRC: that row is skipped, the rest load.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        let last = lines.len() - 1;
        let flipped = match lines[last].pop() {
            Some('0') => '1',
            _ => '0',
        };
        lines[last].push(flipped);
        std::fs::write(&path, lines.join("\n")).unwrap();
        let damaged = ResultCache::load(Some(path.clone()));
        assert_eq!(damaged.get(0xAB, "job-a"), Some(vec![1, 2, 3]));
        assert_eq!(damaged.get(0xCD, "job-b"), None, "damaged row is skipped");

        // A torn tail (no CRC trailer at all) stops the scan there.
        std::fs::write(
            &path,
            format!(
                "{CACHE_HEADER}\n{}\nfp=00000000000000ff\t6a\t0102",
                lines[1]
            ),
        )
        .unwrap();
        let torn = ResultCache::load(Some(path.clone()));
        assert_eq!(torn.len(), 1, "verified prefix only");

        // A v1 file (no identity column) is discarded wholesale.
        std::fs::write(
            &path,
            format!(
                "restune-server-cache v1\n{}\n",
                crate::engine::crc_line(&format!("fp={:016x}\t010203", 0xABu64))
            ),
        )
        .unwrap();
        let v1 = ResultCache::load(Some(path.clone()));
        assert_eq!(v1.len(), 0, "v1 rows carry no identity; start empty");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn round_robin_scheduler_is_fair_and_drops_tenants() {
        let sock_pair = || {
            // The scheduler never touches the socket; a connected pair from
            // a throwaway listener keeps the types honest.
            FramedConn::new(0, fake_sock(), NetFaultRuntime::new(Vec::new()))
        };
        let conn_a = Arc::new(FramedConn {
            id: 1,
            ..sock_pair()
        });
        let conn_b = Arc::new(FramedConn {
            id: 2,
            ..sock_pair()
        });
        let job = |conn: &Arc<FramedConn>, req_id: u64| PendingJob {
            conn: conn.clone(),
            req_id,
            want_obs: false,
            job: wire::decode_job(&wire::encode_job(
                &workloads::spec2k::all()[0],
                &crate::sim::Technique::Base,
                &crate::sim::SimConfig::isca04(100),
                &[],
                None,
                wire::job_fingerprint(
                    &workloads::spec2k::all()[0],
                    &crate::sim::Technique::Base,
                    &crate::sim::SimConfig::isca04(100),
                    &[],
                ),
            ))
            .expect("job round-trips"),
        };
        let mut sched = Sched::default();
        // Tenant A queues three jobs before tenant B queues one: fair
        // round-robin still alternates instead of draining A first.
        sched.push(job(&conn_a, 1));
        sched.push(job(&conn_a, 2));
        sched.push(job(&conn_a, 3));
        sched.push(job(&conn_b, 10));
        let order: Vec<(u64, u64)> = std::iter::from_fn(|| sched.pop())
            .map(|j| (j.conn.id, j.req_id))
            .collect();
        assert_eq!(order, vec![(1, 1), (2, 10), (1, 2), (1, 3)]);
        assert_eq!(sched.queued, 0);

        sched.push(job(&conn_a, 4));
        sched.push(job(&conn_b, 11));
        sched.cancelled.insert((1, 4));
        sched.drop_tenant(1);
        assert_eq!(sched.queued, 1);
        assert!(
            sched.cancelled.is_empty(),
            "cancel marks die with the tenant"
        );
        let survivor = sched.pop().expect("tenant B survives");
        assert_eq!((survivor.conn.id, survivor.req_id), (2, 11));
    }

    fn fake_sock() -> Sock {
        let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral listener");
        let addr = listener.local_addr().expect("bound address");
        Sock::Tcp(TcpStream::connect(addr).expect("loopback connect"))
    }
}
