//! The two-level prevention response (Section 3.2).
//!
//! First level (gentle): when a new resonant event arrives with count ≥ the
//! initial response threshold, reduce issue width (8→4) and data-cache
//! ports (2→1) for the initial response time. This lowers the frequency at
//! which instructions move through the pipeline, steering current
//! variations below the resonance band.
//!
//! Second level (guaranteed): when the count reaches one below the maximum
//! repetition tolerance, stall issue entirely while phantom operations hold
//! the chip at a medium current — both parts matter: without the stall the
//! variation frequency might not change, and without the medium current the
//! stall itself would be a resonant swing.

use cpusim::PipelineControls;

use crate::config::TuningConfig;
use crate::detector::{EventDetector, ResonantEvent};

/// Which response level is engaged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResponseLevel {
    /// Running free.
    None,
    /// First-level: reduced issue width and memory ports.
    First,
    /// Second-level: issue stall with medium-current phantoms.
    Second,
}

/// Cycle counters for time spent in each response level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResponseStats {
    /// Cycles with the first-level response engaged.
    pub first_level_cycles: u64,
    /// Cycles with the second-level response engaged.
    pub second_level_cycles: u64,
    /// First-level engagements (rising edges).
    pub first_level_engagements: u64,
    /// Second-level engagements (rising edges).
    pub second_level_engagements: u64,
}

/// The resonance-tuning controller: detector + two-level response state
/// machine. One instance per core.
///
/// # Examples
///
/// ```
/// use restune::{ResonanceTuner, TuningConfig};
///
/// let mut tuner = ResonanceTuner::new(TuningConfig::isca04_table1(100));
/// // Feed the per-cycle sensed current; apply the returned controls.
/// let controls = tuner.tick(70.0);
/// assert!(!controls.is_restricted()); // no resonance yet
/// ```
#[derive(Debug, Clone)]
pub struct ResonanceTuner {
    config: TuningConfig,
    detector: EventDetector,
    first_level_remaining: u32,
    second_level_remaining: u32,
    /// Pending (delay, event) pairs when a sensing-to-response delay is
    /// configured.
    pending: Vec<(u32, ResonantEvent)>,
    last_event: Option<ResonantEvent>,
    stats: ResponseStats,
}

impl ResonanceTuner {
    /// Creates a tuner.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: TuningConfig) -> Self {
        Self {
            detector: EventDetector::new(config),
            config,
            first_level_remaining: 0,
            second_level_remaining: 0,
            pending: Vec::new(),
            last_event: None,
            stats: ResponseStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &TuningConfig {
        &self.config
    }

    /// The detector (for event statistics).
    pub fn detector(&self) -> &EventDetector {
        &self.detector
    }

    /// Response-time statistics.
    pub fn stats(&self) -> &ResponseStats {
        &self.stats
    }

    /// The resonant event detected during the most recent [`Self::tick`],
    /// if any (for tracing; cleared every cycle).
    pub fn last_event(&self) -> Option<ResonantEvent> {
        self.last_event
    }

    /// The currently engaged response level.
    pub fn level(&self) -> ResponseLevel {
        if self.second_level_remaining > 0 {
            ResponseLevel::Second
        } else if self.first_level_remaining > 0 {
            ResponseLevel::First
        } else {
            ResponseLevel::None
        }
    }

    fn react(&mut self, ev: ResonantEvent) {
        if ev.count >= self.config.second_level_threshold {
            if self.second_level_remaining == 0 {
                self.stats.second_level_engagements += 1;
            }
            self.second_level_remaining = self.config.second_level_time;
        } else if ev.count >= self.config.initial_response_threshold {
            if self.first_level_remaining == 0 && self.second_level_remaining == 0 {
                self.stats.first_level_engagements += 1;
            }
            self.first_level_remaining = self.config.initial_response_time;
        }
    }

    /// Advances one cycle: senses the chip current (amps; quantized
    /// internally to the whole amp as the paper's sensors report) and
    /// returns the pipeline controls to apply *this* cycle.
    pub fn tick(&mut self, sensed_amps: f64) -> PipelineControls {
        // Deliver delayed events whose time has come.
        let mut due: Option<ResonantEvent> = None;
        self.pending.retain_mut(|(d, ev)| {
            *d -= 1;
            if *d == 0 {
                due = Some(*ev);
                false
            } else {
                true
            }
        });
        if let Some(ev) = due {
            self.react(ev);
        }

        self.last_event = self.detector.observe(sensed_amps.round() as i64);
        if let Some(ev) = self.last_event {
            if self.config.response_delay == 0 {
                self.react(ev);
            } else {
                self.pending.push((self.config.response_delay, ev));
            }
        }

        match self.level() {
            ResponseLevel::Second => {
                self.second_level_remaining -= 1;
                self.stats.second_level_cycles += 1;
                PipelineControls::second_level()
            }
            ResponseLevel::First => {
                self.first_level_remaining -= 1;
                self.stats.first_level_cycles += 1;
                PipelineControls::first_level(
                    self.config.first_level_issue_width,
                    self.config.first_level_mem_ports,
                )
            }
            ResponseLevel::None => PipelineControls::free(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuner() -> ResonanceTuner {
        ResonanceTuner::new(TuningConfig::isca04_table1(100))
    }

    /// Square wave helper: returns controls trace.
    fn drive(t: &mut ResonanceTuner, p2p: f64, period: u64, cycles: u64) -> Vec<ResponseLevel> {
        (0..cycles)
            .map(|c| {
                let i = if (c / (period / 2)).is_multiple_of(2) {
                    70.0 + p2p / 2.0
                } else {
                    70.0 - p2p / 2.0
                };
                let _ = t.tick(i);
                t.level()
            })
            .collect()
    }

    #[test]
    fn quiet_current_keeps_pipeline_free() {
        let mut t = tuner();
        for _ in 0..2000 {
            let c = t.tick(70.0);
            assert!(!c.is_restricted());
        }
        assert_eq!(t.stats().first_level_cycles, 0);
        assert_eq!(t.stats().second_level_cycles, 0);
    }

    #[test]
    fn resonant_wave_engages_first_then_second_level() {
        let mut t = tuner();
        let levels = drive(&mut t, 40.0, 100, 1200);
        let first_at = levels.iter().position(|&l| l == ResponseLevel::First);
        let second_at = levels.iter().position(|&l| l == ResponseLevel::Second);
        assert!(first_at.is_some(), "first level should engage");
        assert!(
            second_at.is_some(),
            "sustained wave should force second level"
        );
        assert!(
            first_at.unwrap() < second_at.unwrap(),
            "first level engages before second"
        );
        assert!(t.stats().first_level_cycles > 0);
        assert!(t.stats().second_level_cycles > 0);
    }

    #[test]
    fn second_level_controls_stall_with_phantom() {
        let mut t = tuner();
        // Drive until the second level engages, then inspect controls.
        for c in 0..2000u64 {
            let i = if (c / 50) % 2 == 0 { 90.0 } else { 50.0 };
            let controls = t.tick(i);
            if t.level() == ResponseLevel::Second {
                assert!(controls.stall_issue);
                assert_eq!(controls.phantom, Some(cpusim::PhantomLevel::Medium));
                return;
            }
        }
        panic!("second level never engaged");
    }

    #[test]
    fn first_level_response_expires() {
        let mut t = ResonanceTuner::new(TuningConfig::isca04_table1(75));
        // Two periods of resonance then quiet.
        let _ = drive(&mut t, 40.0, 100, 220);
        let mut quiet_levels = Vec::new();
        for _ in 0..400 {
            let _ = t.tick(70.0);
            quiet_levels.push(t.level());
        }
        assert_eq!(
            *quiet_levels.last().unwrap(),
            ResponseLevel::None,
            "response must expire after quiet period"
        );
    }

    #[test]
    fn sub_threshold_waves_cause_no_response() {
        let mut t = tuner();
        let levels = drive(&mut t, 12.0, 100, 3000);
        assert!(levels.iter().all(|&l| l == ResponseLevel::None));
    }

    #[test]
    fn response_delay_postpones_engagement() {
        let mut a = ResonanceTuner::new(TuningConfig::isca04_table1(100));
        let mut b = ResonanceTuner::new(TuningConfig::isca04_table1(100).with_response_delay(5));
        let la = drive(&mut a, 40.0, 100, 600);
        let lb = drive(&mut b, 40.0, 100, 600);
        let fa = la.iter().position(|&l| l != ResponseLevel::None).unwrap();
        let fb = lb.iter().position(|&l| l != ResponseLevel::None).unwrap();
        assert_eq!(
            fb,
            fa + 5,
            "delay must shift engagement by exactly 5 cycles"
        );
    }

    #[test]
    fn engagement_counters_track_rising_edges() {
        let mut t = tuner();
        let _ = drive(&mut t, 40.0, 100, 1500);
        assert!(t.stats().first_level_engagements >= 1);
        assert!(t.stats().second_level_engagements >= 1);
        // Second-level cycle count is a multiple-ish of the response time.
        assert!(t.stats().second_level_cycles >= 35);
    }
}
