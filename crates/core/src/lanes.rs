//! Lane-parallel multi-run execution: several independent runs of the same
//! technique advance together through one structure-of-arrays supply loop.
//!
//! One [`run_pack`] call owns up to [`rlc::lanes::MAX_LANES`] *lanes*, each
//! an independent simulation (own CPU, power model, controller). Lanes
//! advance in cache-friendly chunks — the serial portion (controller → CPU
//! → power model) runs per lane exactly as the fused kernel's does, then
//! one [`SupplyLanes::advance_chunks`] call integrates every lane's chunk
//! through the shared-coefficient lockstep loop. Because each lane's own
//! cycle order is preserved end to end, per-lane results are **bit-exact**
//! with [`crate::kernel::run_fused`] (and therefore with the per-cycle
//! reference loop).
//!
//! The pack also amortizes run setup: the cache warm-up walk
//! ([`workloads::stream::warm_caches`]) is profile-independent, so a pack
//! performs it once, snapshots the warmed [`cpusim::cache::CacheHierarchy`] image,
//! and re-arms retiring lanes with [`cpusim::Cpu::reuse`] — skipping both
//! the walk and the CPU's allocation churn for every run after the first.
//!
//! Lanes retire independently (drain-and-refill): a lane whose run
//! completes delivers its result, claims the next job, and is reset in
//! place; when no jobs remain the pack compacts retired lanes away and
//! drains. A lane that hits an integration error or its watchdog deadline
//! is *abandoned* — no result is delivered, and the supervised worker pool
//! re-runs that job with its full retry/classification machinery (the
//! simulation is deterministic, so nothing is lost but time).
//!
//! The lane count comes from `RESTUNE_LANES` (default [`DEFAULT_LANES`],
//! capped at [`rlc::lanes::MAX_LANES`]) and is deliberately **not** part of
//! [`SimConfig`]: like `RESTUNE_BATCH`, it cannot change results, so it
//! must not enter checkpoint or baseline fingerprints — a suite
//! checkpointed at one lane count resumes bit-exactly at another.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use cpusim::{Cpu, CycleEvents, PipelineControls};
use powermodel::{LaneMeters, PowerModel};
use rlc::lanes::SupplyLanes;
use rlc::units::{Amps, Volts};
use workloads::{shared_stream, stream::warm_caches, SharedStream, WorkloadProfile};

use crate::kernel::{run_on_path, EnginePath};
use crate::sim::{
    effective_power_config, finish_run, Controller, CycleRecord, InstrumentedRun, PhaseTimings,
    SimConfig, SimResult, Technique, WATCHDOG_CHECK_MASK,
};

/// Lanes per pack when `RESTUNE_LANES` is unset.
pub const DEFAULT_LANES: usize = 8;

/// The configured lane-pack width: `RESTUNE_LANES` when set to a positive
/// integer (capped at [`rlc::lanes::MAX_LANES`]), [`DEFAULT_LANES`]
/// otherwise. Invalid values warn once per process and fall back, the
/// shared `RESTUNE_*` knob contract of `envcfg`. Never fingerprinted: the
/// lane count cannot affect results.
pub fn lane_count() -> usize {
    crate::envcfg::positive_usize(
        "RESTUNE_LANES",
        "engine",
        &format!("the default of {DEFAULT_LANES} lanes"),
    )
    .map(|n| n.min(rlc::lanes::MAX_LANES))
    .unwrap_or(DEFAULT_LANES)
}

/// A simulated-but-not-yet-flushed cycle, kept only when tracing is on so
/// the per-lane [`crate::obs::CycleTracer`] sees the same [`CycleRecord`]s
/// a serial run would produce.
struct Pending {
    cycle: u64,
    current: f64,
    event_count: Option<u32>,
    restricted: bool,
    events: CycleEvents,
}

/// One lane's run in flight.
struct Lane<'a> {
    slot: usize,
    profile: &'a WorkloadProfile,
    cpu: Cpu<SharedStream>,
    model: PowerModel,
    controller: Controller,
    tracer: crate::obs::CycleTracer,
    pending: Vec<Pending>,
    last_current: Amps,
    last_noise: Volts,
    last_events: CycleEvents,
    cycles: u64,
    damping_bound: u64,
    deadline: Option<Instant>,
    start: Instant,
}

/// Why a lane was dropped without delivering a result.
enum Abandon {
    /// The per-lane watchdog deadline expired mid-chunk.
    Timeout,
    /// The supply integration surfaced an error for this lane.
    Fault,
}

impl<'a> Lane<'a> {
    /// Arms a lane for a fresh run of `profile` in slot `slot`. `cpu` must
    /// already be re-armed (fresh state, warmed caches).
    #[allow(clippy::too_many_arguments)]
    fn arm(
        slot: usize,
        profile: &'a WorkloadProfile,
        cpu: Cpu<SharedStream>,
        technique: &Technique,
        sim: &SimConfig,
        idle: Amps,
        timeout: Option<Duration>,
    ) -> Self {
        let power_cfg = effective_power_config(technique, sim);
        Self {
            slot,
            profile,
            cpu,
            model: PowerModel::new(power_cfg, sim.cpu),
            controller: Controller::for_technique(technique),
            tracer: crate::obs::CycleTracer::new(
                profile.name,
                technique.name(),
                sim.supply.noise_margin(),
            ),
            pending: Vec::new(),
            last_current: idle,
            last_noise: Volts::new(0.0),
            last_events: CycleEvents::default(),
            cycles: 0,
            damping_bound: 0,
            deadline: timeout.map(|t| Instant::now() + t),
            start: Instant::now(),
        }
    }

    /// Re-arms this lane in place for the next job: the CPU core is reused
    /// (keeping its allocations, restoring the shared warmed cache image),
    /// everything else resets as [`Lane::arm`] would.
    #[allow(clippy::too_many_arguments)]
    fn rearm(
        &mut self,
        slot: usize,
        profile: &'a WorkloadProfile,
        warmed: &cpusim::cache::CacheHierarchy,
        technique: &Technique,
        sim: &SimConfig,
        idle: Amps,
        timeout: Option<Duration>,
    ) {
        self.cpu
            .reuse(shared_stream(profile, sim.instructions), warmed);
        self.slot = slot;
        self.profile = profile;
        self.model = PowerModel::new(effective_power_config(technique, sim), sim.cpu);
        self.controller = Controller::for_technique(technique);
        self.tracer =
            crate::obs::CycleTracer::new(profile.name, technique.name(), sim.supply.noise_margin());
        self.pending.clear();
        self.last_current = idle;
        self.last_noise = Volts::new(0.0);
        self.last_events = CycleEvents::default();
        self.cycles = 0;
        self.damping_bound = 0;
        self.deadline = timeout.map(|t| Instant::now() + t);
        self.start = Instant::now();
    }

    /// Whether the run has reached its end condition (all requested
    /// instructions committed, or the cycle cap).
    fn finished(&self, sim: &SimConfig) -> bool {
        self.cpu.stats().committed >= sim.instructions || self.cycles >= sim.max_cycles
    }

    /// The serial portion of up to `chunk_target` cycles: controller → CPU
    /// → power model, exactly as [`crate::kernel::run_fused`]'s inner loop
    /// runs them (fault hooks elided — the lane path only executes faultless
    /// runs, where they are identities).
    ///
    /// Pushes each cycle's current into `out`; when tracing, also keeps the
    /// matching [`Pending`] records.
    fn advance_serial(
        &mut self,
        sim: &SimConfig,
        chunk_target: usize,
        out: &mut Vec<f64>,
        traced: bool,
    ) -> Result<(), Abandon> {
        out.clear();
        self.pending.clear();
        while out.len() < chunk_target
            && self.cpu.stats().committed < sim.instructions
            && self.cycles < sim.max_cycles
        {
            if let Some(deadline) = self.deadline {
                if self.cycles & WATCHDOG_CHECK_MASK == 0 && Instant::now() >= deadline {
                    return Err(Abandon::Timeout);
                }
            }
            let mut event_count = None;
            let controls = match &mut self.controller {
                Controller::Base => PipelineControls::free(),
                Controller::Tuning(t) => {
                    let c = t.tick(self.last_current.amps());
                    event_count = t.last_event().map(|e| e.count);
                    c
                }
                Controller::Sensor(s) => s.tick(self.last_noise),
                Controller::Damping(d) => {
                    let c = d.tick(&self.last_events);
                    if c.phantom.is_some() {
                        self.damping_bound += 1;
                    }
                    c
                }
            };
            let ev = self.cpu.tick(controls);
            let amps = self.model.current_for(&ev).amps();
            out.push(amps);
            if traced {
                self.pending.push(Pending {
                    cycle: self.cycles,
                    current: amps,
                    event_count,
                    restricted: controls.is_restricted(),
                    events: ev,
                });
            }
            self.last_current = Amps::new(amps);
            self.last_events = ev;
            self.cycles += 1;
        }
        Ok(())
    }
}

/// Runs a stream of same-technique jobs through one lane pack, calling
/// `on_done(slot, run)` for each retired run. `claim` hands out
/// `(slot, profile)` pairs until the stream is dry; a lane retires, claims
/// the next job, and is re-armed in place with the pack's shared warmed
/// cache image.
///
/// Per-run results are bit-exact with the fused kernel. Runs abandoned to a
/// timeout or integration fault simply never reach `on_done` — the caller's
/// slot stays empty for its fallback path to fill.
pub(crate) fn run_pack<'a>(
    technique: &Technique,
    sim: &SimConfig,
    timeout: Option<Duration>,
    lane_width: usize,
    claim: &dyn Fn() -> Option<(usize, &'a WorkloadProfile)>,
    on_done: &mut dyn FnMut(usize, InstrumentedRun),
) {
    let lane_width = lane_width.clamp(1, rlc::lanes::MAX_LANES);
    let power_cfg = effective_power_config(technique, sim);
    let idle = power_cfg.idle_current;
    // The sensor technique closes its loop through the supply voltage, so
    // its chunks degenerate to one cycle — same rule as the fused kernel's
    // flush batch.
    // Lane chunks run longer than the fused kernel's flush batch: every
    // chunk switch swaps a different simulated CPU's working set (ROB, tag
    // arrays — megabytes of randomly-touched state) into the host caches,
    // and that refill cost is paid per switch, so longer chunks amortize it.
    // Measured on the table3 suite, 16x the flush batch recovers most of the
    // locality a dedicated serial run enjoys.
    let chunk_target = if matches!(technique, Technique::Sensor(_)) {
        1
    } else {
        crate::kernel::batch_size().saturating_mul(16).min(1 << 16)
    };
    let traced = crate::obs::trace_enabled();

    // Initial claims. No jobs, no pack.
    let mut jobs: Vec<(usize, &'a WorkloadProfile)> = Vec::with_capacity(lane_width);
    while jobs.len() < lane_width {
        match claim() {
            Some(job) => jobs.push(job),
            None => break,
        }
    }
    if jobs.is_empty() {
        return;
    }

    // One warm-up walk for the whole pack: the walk touches a fixed address
    // layout derived from the machine config alone, so its cache image is
    // profile-independent and every lane can start from a clone of it.
    let mut proto = Cpu::new(sim.cpu, shared_stream(jobs[0].1, sim.instructions));
    warm_caches(&mut proto);
    let warmed = proto.caches().clone();

    let mut lanes: Vec<Lane<'a>> = Vec::with_capacity(jobs.len());
    let mut proto = Some(proto);
    for &(slot, profile) in &jobs {
        let cpu = match proto.take() {
            // The proto core already reads lane 0's stream and carries the
            // warmed image.
            Some(cpu) => cpu,
            None => {
                let mut cpu = Cpu::new(sim.cpu, shared_stream(profile, sim.instructions));
                cpu.reuse(shared_stream(profile, sim.instructions), &warmed);
                cpu
            }
        };
        lanes.push(Lane::arm(slot, profile, cpu, technique, sim, idle, timeout));
    }

    let mut active = lanes.len();
    let mut supply = SupplyLanes::new(sim.supply, sim.clock, idle, lane_width);
    let mut meters = LaneMeters::new(power_cfg.vdd, sim.clock, lane_width);
    let mut chunks: Vec<Vec<f64>> = (0..lane_width)
        .map(|_| Vec::with_capacity(chunk_target))
        .collect();
    let mut noise_bufs: Vec<Vec<f64>> = vec![Vec::new(); lane_width];
    let mut abandoned: Vec<Option<Abandon>> = (0..lane_width).map(|_| None).collect();

    while active > 0 {
        if crate::isolation::shutdown_requested() {
            // Abandon every in-flight run; the supervised pool marks their
            // slots interrupted, exactly as if they had never been claimed.
            return;
        }

        // Serial portions, one lane at a time (cache-friendly: each lane
        // streams through its own CPU state for a whole chunk).
        for k in 0..active {
            let (lane, chunk) = (&mut lanes[k], &mut chunks[k]);
            if let Err(why) = lane.advance_serial(sim, chunk_target, chunk, traced) {
                abandoned[k] = Some(why);
                chunk.clear();
                lane.pending.clear();
            }
        }
        // One lockstep supply pass over every lane's chunk.
        let refs: Vec<&[f64]> = chunks[..active].iter().map(|c| c.as_slice()).collect();
        let flush = if traced {
            for buf in &mut noise_bufs[..active] {
                buf.clear();
            }
            supply.advance_chunks_noise(&refs, &mut noise_bufs[..active])
        } else {
            supply.advance_chunks(&refs)
        };
        if let Err(faults) = flush {
            for f in faults {
                abandoned[f.lane] = Some(Abandon::Fault);
            }
        }
        // Per-lane bookkeeping in the serial order: energy, tracing, noise
        // feedback.
        for k in 0..active {
            if abandoned[k].is_some() {
                continue;
            }
            let lane = &mut lanes[k];
            meters.record_chunk(k, &chunks[k]);
            if traced {
                for (p, &noise) in lane.pending.iter().zip(&noise_bufs[k]) {
                    lane.tracer.observe(&CycleRecord {
                        cycle: p.cycle,
                        current: Amps::new(p.current),
                        noise: Volts::new(noise),
                        event_count: p.event_count,
                        restricted: p.restricted,
                        events: p.events,
                    });
                }
            }
            lane.last_noise = supply.noise(k);
        }

        // Retire, refill, or compact. A swapped-in lane is re-examined at
        // the same index — it too may have retired this round.
        let mut k = 0;
        while k < active {
            let quit = abandoned[k].is_some();
            if quit {
                crate::obs::counter_add("engine.lane_abandoned", 1);
            } else if lanes[k].finished(sim) {
                let lane = &mut lanes[k];
                lane.tracer.finish();
                let (result, detector_events) = finish_run(
                    lane.profile,
                    lane.cycles,
                    lane.cpu.stats().committed,
                    lane.cpu.stats().ipc(),
                    &supply.lane_supply(k),
                    &meters.meter(k),
                    &lane.controller,
                    lane.damping_bound,
                );
                let wall = lane.start.elapsed();
                if traced {
                    crate::obs::Event::sim("run-end", lane.profile.name, result.cycles)
                        .str_field("technique", technique.name())
                        .u64_field("committed", result.committed)
                        .u64_field("violation_cycles", result.violation_cycles)
                        .u64_field("detector_events", detector_events)
                        .f64_field("wall_seconds", wall.as_secs_f64())
                        .emit();
                }
                on_done(
                    lane.slot,
                    InstrumentedRun {
                        result,
                        detector_events,
                        phases: PhaseTimings::default(),
                        wall,
                    },
                );
            } else {
                k += 1;
                continue;
            }
            // The lane is free: refill from the job stream or compact.
            abandoned[k] = None;
            match claim() {
                Some((slot, profile)) => {
                    lanes[k].rearm(slot, profile, &warmed, technique, sim, idle, timeout);
                    supply.reset_lane(k, idle);
                    meters.reset_lane(k);
                    k += 1;
                }
                None => {
                    active -= 1;
                    lanes.swap(k, active);
                    supply.swap_lanes(k, active);
                    meters.swap_lanes(k, active);
                    chunks.swap(k, active);
                    noise_bufs.swap(k, active);
                    abandoned.swap(k, active);
                    lanes.truncate(active);
                }
            }
        }
    }
}

/// Runs a whole suite through a single lane pack in the calling thread —
/// the direct entry point for bit-exactness tests and benchmarks, bypassing
/// the engine's worker pool and supervision. Results come back in suite
/// order; a run the pack abandoned (which cannot happen without injected
/// faults or timeouts) falls back to the serial fused kernel.
pub fn run_suite_lanes(
    profiles: &[WorkloadProfile],
    technique: &Technique,
    sim: &SimConfig,
    lane_width: usize,
) -> Vec<SimResult> {
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<SimResult>> = vec![None; profiles.len()];
    let claim = || {
        let i = next.fetch_add(1, Ordering::Relaxed);
        profiles.get(i).map(|p| (i, p))
    };
    run_pack(
        technique,
        sim,
        None,
        lane_width,
        &claim,
        &mut |slot, inst| {
            results[slot] = Some(inst.result);
        },
    );
    results
        .into_iter()
        .enumerate()
        .map(|(i, r)| {
            r.unwrap_or_else(|| run_on_path(&profiles[i], technique, sim, EnginePath::Fused))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TuningConfig;
    use workloads::spec2k;

    #[test]
    fn lane_count_defaults_and_parses() {
        use crate::testenv::with_env;
        let cases: [(Option<&str>, usize); 7] = [
            (None, DEFAULT_LANES),
            (Some("2"), 2),
            (Some(" 12 "), 12),
            (Some("99"), rlc::lanes::MAX_LANES),
            (Some("0"), DEFAULT_LANES),
            (Some("many"), DEFAULT_LANES),
            (Some("-3"), DEFAULT_LANES),
        ];
        for (value, expected) in cases {
            let got = with_env(&[("RESTUNE_LANES", value)], lane_count);
            assert_eq!(got, expected, "RESTUNE_LANES={value:?}");
        }
    }

    #[test]
    fn packed_suite_matches_fused_per_run() {
        let apps = ["swim", "gcc", "mcf"];
        let profiles: Vec<_> = apps.iter().map(|a| spec2k::by_name(a).unwrap()).collect();
        let sim = SimConfig::isca04(20_000);
        for technique in [
            Technique::Base,
            Technique::Tuning(TuningConfig::isca04_table1(100)),
        ] {
            let packed = run_suite_lanes(&profiles, &technique, &sim, 3);
            for (i, p) in profiles.iter().enumerate() {
                let serial = run_on_path(p, &technique, &sim, EnginePath::Fused);
                assert_eq!(
                    packed[i],
                    serial,
                    "lane result diverged for {} under {}",
                    p.name,
                    technique.name()
                );
            }
        }
    }

    #[test]
    fn more_jobs_than_lanes_drain_and_refill() {
        let apps = ["swim", "gcc", "mcf", "art", "gzip"];
        let profiles: Vec<_> = apps.iter().map(|a| spec2k::by_name(a).unwrap()).collect();
        let sim = SimConfig::isca04(15_000);
        let packed = run_suite_lanes(&profiles, &Technique::Base, &sim, 2);
        for (i, p) in profiles.iter().enumerate() {
            let serial = run_on_path(p, &Technique::Base, &sim, EnginePath::Fused);
            assert_eq!(packed[i], serial, "refill diverged for {}", p.name);
        }
    }
}
