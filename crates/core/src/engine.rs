//! The suite experiment engine: bounded deterministic scheduling, a
//! process-wide memo of base-machine suite runs, recorded-baseline files,
//! and structured per-run metrics.
//!
//! The table and figure drivers in [`crate::experiment`] all start from the
//! same base-machine suite; this module makes that shared work explicit:
//!
//! * [`try_run_suite`] executes a suite on a worker pool sized to the
//!   machine (not one OS thread per application), writing each result into
//!   its own slot so ordering and determinism are structural, and reporting
//!   the *name* of a failing application instead of a bare unwrap;
//! * [`cached_base_suite`] memoizes base runs per [`SimConfig`]
//!   fingerprint, so any number of drivers in one process trigger exactly
//!   one base simulation, and records the rows to a baseline file under the
//!   build's `target/` directory so later processes skip the cold run too;
//! * every run carries a [`RunMetrics`] row (wall time, simulated
//!   cycles/second, per-phase timings, detector events, cache counters)
//!   that the harnesses emit under `--json`.

use std::collections::HashMap;
use std::fmt;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Instant;

use workloads::{spec2k, WorkloadProfile};

use crate::metrics::RunMetrics;
use crate::sim::{run_instrumented, SimConfig, SimResult, Technique};

/// A suite run failed: the named application's simulation panicked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuiteError {
    /// The application whose run panicked.
    pub app: String,
    /// The panic message, when one was available.
    pub message: String,
}

impl fmt::Display for SuiteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "simulation of '{}' failed: {}", self.app, self.message)
    }
}

impl std::error::Error for SuiteError {}

/// A suite's results in suite order, plus per-app observability rows.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteRun {
    /// One [`SimResult`] per application, in the order given.
    pub results: Vec<SimResult>,
    /// One [`RunMetrics`] row per application, aligned with `results`.
    pub metrics: Vec<RunMetrics>,
    /// End-to-end wall time of the whole suite in seconds.
    pub wall_seconds: f64,
}

/// Worker-pool width: `RESTUNE_WORKERS` when set to a positive integer,
/// otherwise the machine's available parallelism, never more than `jobs`.
fn worker_count(jobs: usize) -> usize {
    let configured = std::env::var("RESTUNE_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0);
    let hw = configured.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    hw.min(jobs).max(1)
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        String::from("(non-string panic payload)")
    }
}

/// Runs every profile under `technique` on a bounded worker pool, returning
/// results in suite order.
///
/// The pool claims applications through an atomic counter and each worker
/// writes into that application's dedicated slot, so the output order — and
/// the output itself, since runs share no mutable state — is identical to a
/// serial loop. A panicking run surfaces as a [`SuiteError`] naming the
/// application; remaining workers finish their current runs first.
///
/// # Errors
///
/// Returns the first failing application's name and panic message.
pub fn try_run_suite(
    profiles: &[WorkloadProfile],
    technique: &Technique,
    sim: &SimConfig,
) -> Result<SuiteRun, SuiteError> {
    let start = Instant::now();
    let slots: Vec<OnceLock<(SimResult, RunMetrics)>> =
        profiles.iter().map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    let failure: Mutex<Option<SuiteError>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for _ in 0..worker_count(profiles.len()) {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                let Some(profile) = profiles.get(idx) else {
                    return;
                };
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let inst = run_instrumented(profile, technique, sim);
                    let metrics =
                        RunMetrics::from_instrumented(technique.name(), &inst, base_cache_stats());
                    (inst.result, metrics)
                }));
                match outcome {
                    Ok(pair) => {
                        slots[idx]
                            .set(pair)
                            .expect("each slot is claimed exactly once");
                    }
                    Err(payload) => {
                        let err = SuiteError {
                            app: profile.name.to_string(),
                            message: panic_message(payload),
                        };
                        failure
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .get_or_insert(err);
                        return;
                    }
                }
            });
        }
    });

    if let Some(err) = failure.into_inner().unwrap_or_else(PoisonError::into_inner) {
        return Err(err);
    }
    let mut results = Vec::with_capacity(slots.len());
    let mut metrics = Vec::with_capacity(slots.len());
    for slot in slots {
        let (r, m) = slot
            .into_inner()
            .expect("no failure, so every slot was filled");
        results.push(r);
        metrics.push(m);
    }
    Ok(SuiteRun {
        results,
        metrics,
        wall_seconds: start.elapsed().as_secs_f64(),
    })
}

/// Hit/miss counters of the process-wide base-suite cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Requests served from memory or a recorded-baseline file.
    pub hits: u64,
    /// Requests that had to simulate the suite.
    pub misses: u64,
}

static BASE_HITS: AtomicU64 = AtomicU64::new(0);
static BASE_MISSES: AtomicU64 = AtomicU64::new(0);

struct CacheState {
    memo: HashMap<u64, Arc<SuiteRun>>,
    /// Base-suite simulations actually executed, per fingerprint.
    simulations: HashMap<u64, u64>,
}

static CACHE: OnceLock<Mutex<CacheState>> = OnceLock::new();

fn cache() -> &'static Mutex<CacheState> {
    CACHE.get_or_init(|| {
        Mutex::new(CacheState {
            memo: HashMap::new(),
            simulations: HashMap::new(),
        })
    })
}

/// Process-wide counters of [`cached_base_suite`] activity.
pub fn base_cache_stats() -> CacheStats {
    CacheStats {
        hits: BASE_HITS.load(Ordering::Relaxed),
        misses: BASE_MISSES.load(Ordering::Relaxed),
    }
}

/// How many times this process actually *simulated* the base suite for
/// `sim` (as opposed to serving it from the memo or a baseline file).
pub fn base_suite_simulations(sim: &SimConfig) -> u64 {
    let state = cache().lock().unwrap_or_else(PoisonError::into_inner);
    state
        .simulations
        .get(&base_fingerprint(sim))
        .copied()
        .unwrap_or(0)
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Baseline-file schema version; bump when the row format changes.
const BASELINE_SCHEMA: u32 = 1;

/// Fingerprint of everything a base-suite run depends on: the machine
/// configuration and every workload profile. The `Debug` representations
/// include all fields recursively (floats in shortest-roundtrip form), so
/// any parameter change — in the machine or in a profile — yields a new
/// fingerprint and invalidates recorded baselines.
pub fn base_fingerprint(sim: &SimConfig) -> u64 {
    let identity = format!("v{BASELINE_SCHEMA}|{sim:?}|{:?}", spec2k::all());
    fnv1a(identity.as_bytes())
}

/// Directory for recorded baselines: `$RESTUNE_CACHE_DIR` when set,
/// otherwise `restune-cache/` inside the build's `target/` directory
/// (located from the running executable's path).
pub fn baseline_cache_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("RESTUNE_CACHE_DIR") {
        return PathBuf::from(dir);
    }
    if let Ok(exe) = std::env::current_exe() {
        for dir in exe.ancestors() {
            if dir.file_name().is_some_and(|n| n == "target") {
                return dir.join("restune-cache");
            }
        }
    }
    PathBuf::from("target").join("restune-cache")
}

/// Path of the recorded baseline for `sim` under [`baseline_cache_dir`].
pub fn baseline_path(sim: &SimConfig) -> PathBuf {
    baseline_cache_dir().join(format!("base-{:016x}.tsv", base_fingerprint(sim)))
}

/// Serializes result rows to `path`, keyed by `fingerprint`.
///
/// Floats are stored as `f64::to_bits` hex, so a load reproduces every row
/// bit-for-bit.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_baseline(path: &Path, fingerprint: u64, results: &[SimResult]) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut body = Vec::new();
    writeln!(
        body,
        "restune-baseline v{BASELINE_SCHEMA} fp={fingerprint:016x} apps={}",
        results.len()
    )?;
    for r in results {
        writeln!(
            body,
            "{}\t{}\t{}\t{:016x}\t{}\t{:016x}\t{:016x}\t{:016x}\t{}\t{}\t{}\t{}",
            r.app,
            r.cycles,
            r.committed,
            r.ipc.to_bits(),
            r.violation_cycles,
            r.worst_noise.volts().to_bits(),
            r.energy_joules.to_bits(),
            r.energy_delay.to_bits(),
            r.first_level_cycles,
            r.second_level_cycles,
            r.sensor_response_cycles,
            r.damping_bound_cycles,
        )?;
    }
    std::fs::write(path, body)
}

fn parse_row(line: &str) -> Option<SimResult> {
    let mut f = line.split('\t');
    let name = f.next()?;
    // Resolve through the suite so `app` stays a `&'static str`; an unknown
    // name means the file predates a suite change and must be discarded.
    let app = spec2k::by_name(name)?.name;
    let uint = |s: Option<&str>| s?.parse::<u64>().ok();
    let float = |s: Option<&str>| Some(f64::from_bits(u64::from_str_radix(s?, 16).ok()?));
    let result = SimResult {
        app,
        cycles: uint(f.next())?,
        committed: uint(f.next())?,
        ipc: float(f.next())?,
        violation_cycles: uint(f.next())?,
        worst_noise: rlc::units::Volts::new(float(f.next())?),
        energy_joules: float(f.next())?,
        energy_delay: float(f.next())?,
        first_level_cycles: uint(f.next())?,
        second_level_cycles: uint(f.next())?,
        sensor_response_cycles: uint(f.next())?,
        damping_bound_cycles: uint(f.next())?,
    };
    if f.next().is_some() {
        return None;
    }
    Some(result)
}

/// Loads result rows recorded by [`save_baseline`].
///
/// Returns `Ok(None)` when the file does not exist, carries a different
/// fingerprint or schema version, or fails to parse — all of which mean
/// "no usable baseline", not an error.
///
/// # Errors
///
/// Propagates filesystem errors other than the file being absent.
pub fn load_baseline(path: &Path, fingerprint: u64) -> io::Result<Option<Vec<SimResult>>> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let mut lines = text.lines();
    let expected = format!("restune-baseline v{BASELINE_SCHEMA} fp={fingerprint:016x} apps=");
    let Some(header) = lines.next().filter(|h| h.starts_with(&expected)) else {
        return Ok(None);
    };
    let Ok(apps) = header[expected.len()..].parse::<usize>() else {
        return Ok(None);
    };
    let rows: Option<Vec<SimResult>> = lines.map(parse_row).collect();
    Ok(rows.filter(|r| r.len() == apps))
}

/// The base-machine suite for `sim`, simulated at most once per process.
///
/// Lookup order: the in-process memo, then a recorded baseline file under
/// [`baseline_cache_dir`], then a real [`try_run_suite`] whose rows are
/// recorded for future processes. Concurrent callers with the same config
/// serialize on the cache, so the suite still runs exactly once.
///
/// # Panics
///
/// Panics with the failing application's name if the base simulation
/// panics.
pub fn cached_base_suite(sim: &SimConfig) -> Arc<SuiteRun> {
    let fp = base_fingerprint(sim);
    let mut state = cache().lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(run) = state.memo.get(&fp) {
        BASE_HITS.fetch_add(1, Ordering::Relaxed);
        return Arc::clone(run);
    }

    let path = baseline_path(sim);
    if let Ok(Some(results)) = load_baseline(&path, fp) {
        BASE_HITS.fetch_add(1, Ordering::Relaxed);
        let stats = base_cache_stats();
        let metrics = results
            .iter()
            .map(|r| RunMetrics::replayed("base", r, stats))
            .collect();
        let run = Arc::new(SuiteRun {
            results,
            metrics,
            wall_seconds: 0.0,
        });
        state.memo.insert(fp, Arc::clone(&run));
        return run;
    }

    BASE_MISSES.fetch_add(1, Ordering::Relaxed);
    let run =
        try_run_suite(&spec2k::all(), &Technique::Base, sim).unwrap_or_else(|e| panic!("{e}"));
    *state.simulations.entry(fp).or_insert(0) += 1;
    // Recording is best-effort: a read-only target directory only costs
    // later processes the cold run.
    let _ = save_baseline(&path, fp, &run.results);
    let run = Arc::new(run);
    state.memo.insert(fp, Arc::clone(&run));
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TuningConfig;
    use crate::sim::run;

    fn quick_sim() -> SimConfig {
        SimConfig::isca04(15_000)
    }

    #[test]
    fn bounded_pool_matches_serial_order_and_values() {
        let profiles: Vec<_> = spec2k::all().into_iter().take(5).collect();
        let sim = quick_sim();
        let suite = try_run_suite(&profiles, &Technique::Base, &sim).unwrap();
        assert_eq!(suite.results.len(), 5);
        assert_eq!(suite.metrics.len(), 5);
        for ((r, m), p) in suite.results.iter().zip(&suite.metrics).zip(&profiles) {
            assert_eq!(r.app, p.name);
            assert_eq!(m.app, p.name);
            assert_eq!(m.cycles, r.cycles);
            assert!(m.wall_seconds > 0.0);
            assert!(m.sim_cycles_per_second > 0.0);
            assert!(!m.replayed);
            assert_eq!(*r, run(p, &Technique::Base, &sim));
        }
        assert!(suite.wall_seconds > 0.0);
    }

    #[test]
    fn tuning_suite_reports_detector_activity() {
        let profiles = vec![spec2k::by_name("swim").unwrap()];
        let sim = SimConfig::isca04(150_000);
        let technique = Technique::Tuning(TuningConfig::isca04_table1(100));
        let suite = try_run_suite(&profiles, &technique, &sim).unwrap();
        assert_eq!(suite.metrics[0].technique, "tuning");
        assert!(suite.metrics[0].detector_events > 0);
        assert!(suite.metrics[0].first_level_fraction > 0.0);
    }

    #[test]
    fn failing_app_is_named() {
        // An invalid profile trips `WorkloadProfile::validate` inside the
        // worker; the error must carry the app's name, not a bare unwrap.
        let good = spec2k::by_name("gzip").unwrap();
        let mut bad = spec2k::by_name("mcf").unwrap();
        bad.name = "broken-app";
        bad.mean_dep = 0.0;
        let err = try_run_suite(&[good, bad], &Technique::Base, &quick_sim())
            .expect_err("the invalid profile must fail the suite");
        assert_eq!(err.app, "broken-app");
        assert!(
            err.message.contains("mean dependence distance"),
            "panic message should survive: {}",
            err.message
        );
    }

    #[test]
    fn fingerprint_tracks_config_changes() {
        let a = base_fingerprint(&SimConfig::isca04(10_000));
        let b = base_fingerprint(&SimConfig::isca04(10_001));
        let a2 = base_fingerprint(&SimConfig::isca04(10_000));
        assert_ne!(a, b);
        assert_eq!(a, a2);
    }

    #[test]
    fn baseline_file_round_trips_bit_exactly() {
        let profiles: Vec<_> = spec2k::all().into_iter().take(2).collect();
        let sim = quick_sim();
        let results: Vec<_> = profiles
            .iter()
            .map(|p| run(p, &Technique::Base, &sim))
            .collect();
        let fp = base_fingerprint(&sim);
        let path = std::env::temp_dir().join("restune-baseline-roundtrip.tsv");
        save_baseline(&path, fp, &results).unwrap();
        let loaded = load_baseline(&path, fp)
            .unwrap()
            .expect("fingerprint matches");
        assert_eq!(
            loaded, results,
            "recorded baseline must replay bit-identically"
        );
        // A different fingerprint must refuse the file.
        assert_eq!(load_baseline(&path, fp ^ 1).unwrap(), None);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn missing_baseline_is_not_an_error() {
        let path = std::env::temp_dir().join("restune-baseline-does-not-exist.tsv");
        assert_eq!(load_baseline(&path, 0).unwrap(), None);
    }

    #[test]
    fn corrupt_baseline_is_rejected() {
        let path = std::env::temp_dir().join("restune-baseline-corrupt.tsv");
        let fp = 0xabcdu64;
        std::fs::write(
            &path,
            format!("restune-baseline v{BASELINE_SCHEMA} fp={fp:016x} apps=1\nnot-an-app\t1\n"),
        )
        .unwrap();
        assert_eq!(load_baseline(&path, fp).unwrap(), None);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn base_suite_is_simulated_once_per_process() {
        // A config unique to this test so parallel tests don't share the
        // memo entry; delete any recorded baseline so the first call really
        // simulates.
        let sim = SimConfig::isca04(15_551);
        let _ = std::fs::remove_file(baseline_path(&sim));
        assert_eq!(base_suite_simulations(&sim), 0);

        let first = cached_base_suite(&sim);
        assert_eq!(base_suite_simulations(&sim), 1);
        let second = cached_base_suite(&sim);
        assert_eq!(
            base_suite_simulations(&sim),
            1,
            "second request must hit the memo"
        );
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(first.results.len(), spec2k::all().len());

        // A fresh process would find the recorded baseline; simulate that by
        // loading the file directly.
        let loaded = load_baseline(&baseline_path(&sim), base_fingerprint(&sim)).unwrap();
        assert_eq!(loaded.as_deref(), Some(first.results.as_slice()));
        let _ = std::fs::remove_file(baseline_path(&sim));
    }

    #[test]
    fn worker_count_is_bounded() {
        assert_eq!(worker_count(0), 1);
        assert_eq!(worker_count(1), 1);
        assert!(worker_count(1_000) <= 1_000);
        assert!(worker_count(1_000) >= 1);
    }
}
