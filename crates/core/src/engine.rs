//! The suite experiment engine: bounded deterministic scheduling, a
//! process-wide memo of base-machine suite runs, recorded-baseline files,
//! and structured per-run metrics.
//!
//! The table and figure drivers in [`crate::experiment`] all start from the
//! same base-machine suite; this module makes that shared work explicit:
//!
//! * [`try_run_suite`] executes a suite on a worker pool sized to the
//!   machine (not one OS thread per application), writing each result into
//!   its own slot so ordering and determinism are structural, and reporting
//!   the *name* of a failing application instead of a bare unwrap;
//! * [`cached_base_suite`] memoizes base runs per [`SimConfig`]
//!   fingerprint, so any number of drivers in one process trigger exactly
//!   one base simulation, and records the rows to a baseline file under the
//!   build's `target/` directory so later processes skip the cold run too;
//! * every run carries a [`RunMetrics`] row (wall time, simulated
//!   cycles/second, per-phase timings, detector events, cache counters)
//!   that the harnesses emit under `--json`.

use std::collections::HashMap;
use std::fmt;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

use workloads::{corpus, registry, spec2k, WorkloadProfile};

use crate::config::SupervisorConfig;
use crate::fault::{
    AppFailure, FailureKind, FailureReport, FaultPlan, FaultSignal, FaultSpec, InjectionEvent,
    RecoveryEvent, StorageFault, StorageIncident,
};
use crate::metrics::RunMetrics;
use crate::sim::{run_supervised, InstrumentedRun, SimConfig, SimResult, Technique};

/// A suite run failed: the named application's simulation panicked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuiteError {
    /// The application whose run panicked.
    pub app: String,
    /// The panic message, when one was available.
    pub message: String,
}

impl fmt::Display for SuiteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "simulation of '{}' failed: {}", self.app, self.message)
    }
}

impl std::error::Error for SuiteError {}

/// A suite's results in suite order, plus per-app observability rows.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteRun {
    /// One [`SimResult`] per application, in the order given.
    pub results: Vec<SimResult>,
    /// One [`RunMetrics`] row per application, aligned with `results`.
    pub metrics: Vec<RunMetrics>,
    /// End-to-end wall time of the whole suite in seconds.
    pub wall_seconds: f64,
}

/// Worker-pool width: `RESTUNE_WORKERS` when set to a positive integer,
/// otherwise the machine's available parallelism, never more than `jobs`.
/// A non-numeric or zero `RESTUNE_WORKERS` warns once per process and falls
/// back to the default rather than being silently ignored — the shared
/// `RESTUNE_*` knob contract of [`crate::envcfg`].
fn worker_count(jobs: usize) -> usize {
    let hw = crate::envcfg::positive_usize("RESTUNE_WORKERS", "engine", "the default worker count")
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    hw.min(jobs).max(1)
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        String::from("(non-string panic payload)")
    }
}

/// Runs every profile under `technique` on a bounded worker pool, returning
/// results in suite order.
///
/// This is the unsupervised front door: no fault injection, no watchdog, no
/// retries — a thin wrapper over [`run_suite_supervised`] with the inert
/// policy. A panicking run surfaces as a [`SuiteError`] naming the
/// application; remaining workers finish their runs.
///
/// # Errors
///
/// Returns the first (in suite order) failing application's name and panic
/// message.
pub fn try_run_suite(
    profiles: &[WorkloadProfile],
    technique: &Technique,
    sim: &SimConfig,
) -> Result<SuiteRun, SuiteError> {
    let sup = SupervisorConfig {
        max_retries: 0,
        ..SupervisorConfig::default()
    };
    let suite = run_suite_supervised(profiles, technique, sim, &sup, &FaultPlan::none());
    let wall_seconds = suite.wall_seconds;
    let mut results = Vec::with_capacity(suite.outcomes.len());
    let mut metrics = Vec::with_capacity(suite.outcomes.len());
    for (outcome, m) in suite.outcomes.into_iter().zip(suite.metrics) {
        match outcome {
            Ok(r) => {
                results.push(r);
                metrics.push(m.expect("a successful slot always carries metrics"));
            }
            Err(f) => {
                return Err(SuiteError {
                    app: f.app,
                    message: f.message,
                })
            }
        }
    }
    Ok(SuiteRun {
        results,
        metrics,
        wall_seconds,
    })
}

/// A supervised suite run: one `Result` slot per application instead of an
/// all-or-nothing suite, plus the failure report that explains every slot.
#[derive(Debug, Clone)]
pub struct SupervisedSuite {
    /// Per-application outcome, in suite order: the result, or the
    /// classified failure that exhausted its retries.
    pub outcomes: Vec<Result<SimResult, AppFailure>>,
    /// One [`RunMetrics`] row per *successful* application, aligned with
    /// `outcomes` (`None` where the run failed).
    pub metrics: Vec<Option<RunMetrics>>,
    /// Injections, recoveries, storage incidents, and terminal failures.
    pub report: FailureReport,
    /// End-to-end wall time of the whole suite in seconds.
    pub wall_seconds: f64,
}

impl SupervisedSuite {
    fn from_suite_run(run: &SuiteRun, scope: &str) -> Self {
        Self {
            outcomes: run.results.iter().copied().map(Ok).collect(),
            metrics: run.metrics.iter().copied().map(Some).collect(),
            report: FailureReport::new(scope),
            wall_seconds: run.wall_seconds,
        }
    }

    /// How many applications completed successfully.
    pub fn completed(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_ok()).count()
    }

    /// All results when every application succeeded, `None` otherwise.
    pub fn all_results(&self) -> Option<Vec<SimResult>> {
        self.outcomes
            .iter()
            .map(|o| o.as_ref().ok().copied())
            .collect()
    }
}

/// Classifies an unwound panic payload: a typed [`FaultSignal`] carries its
/// own failure kind; anything else is an unclassified worker panic.
pub(crate) fn classify_payload(payload: Box<dyn std::any::Any + Send>) -> (FailureKind, String) {
    match payload.downcast::<FaultSignal>() {
        Ok(signal) => (signal.kind, signal.message),
        Err(other) => (FailureKind::Panic, panic_message(other)),
    }
}

/// Runs one attempt on the local tiers: a child process when eligible
/// (per [`crate::isolation::process_attempt`]'s gates, with `force`
/// bypassing the `RESTUNE_ISOLATION` mode check), otherwise in-process.
/// Hard-crash faults (abort/SIGKILL) would take down the whole process
/// in-process, so the thread tier records them as simulated crashes
/// instead of executing them. Shared by the suite supervisor and the
/// server's worker pool.
pub(crate) fn execute_attempt(
    profile: &WorkloadProfile,
    technique: &Technique,
    sim: &SimConfig,
    specs: &[FaultSpec],
    timeout: Option<Duration>,
    force_process: bool,
    obs: &crate::isolation::ObsRouting<'_>,
) -> Result<InstrumentedRun, (FailureKind, String)> {
    match crate::isolation::process_attempt(
        profile,
        technique,
        sim,
        specs,
        timeout,
        force_process,
        obs,
    ) {
        Some(outcome) => outcome,
        None => {
            if let Some(spec) = specs.iter().find(|s| s.is_hard_crash()) {
                Err((
                    FailureKind::Crash,
                    format!(
                        "injected {} (simulated: containing a hard crash \
                         requires RESTUNE_ISOLATION=process)",
                        spec.class()
                    ),
                ))
            } else {
                let deadline = timeout.map(|t| Instant::now() + t);
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    run_supervised(profile, technique, sim, specs, deadline)
                }))
                .map_err(classify_payload)
            }
        }
    }
}

/// Runs one application under supervision: injects the plan's faults for
/// each attempt, enforces the watchdog deadline, classifies any unwind, and
/// retries with bounded exponential backoff.
fn supervise_one(
    profile: &WorkloadProfile,
    technique: &Technique,
    sim: &SimConfig,
    sup: &SupervisorConfig,
    plan: &FaultPlan,
    report: &Mutex<FailureReport>,
) -> Result<(SimResult, RunMetrics), AppFailure> {
    let mut last: Option<(FailureKind, String)> = None;
    for attempt in 0..=sup.max_retries {
        if crate::isolation::shutdown_requested() {
            return Err(AppFailure {
                app: profile.name.to_string(),
                kind: FailureKind::Interrupted,
                message: String::from("suite interrupted by signal"),
                attempts: attempt,
            });
        }
        let specs = plan.faults_for(profile.name, attempt);
        if !specs.is_empty() {
            let mut rep = report.lock().unwrap_or_else(PoisonError::into_inner);
            for spec in &specs {
                rep.injections.push(InjectionEvent {
                    app: profile.name.to_string(),
                    attempt,
                    class: spec.class(),
                });
                crate::obs::counter_add("engine.injections", 1);
                crate::obs::Event::engine("fault-injected")
                    .str_field("app", profile.name)
                    .u64_field("attempt", u64::from(attempt))
                    .str_field("class", spec.class())
                    .emit();
            }
        }
        // Remote dispatch first: when a `--connect` endpoint is armed the
        // suite server executes the attempt and this process is a thin
        // client. Otherwise the local tiers apply.
        let outcome: Result<InstrumentedRun, (FailureKind, String)> =
            match crate::client::remote_attempt(profile, technique, sim, &specs, sup.timeout) {
                Some(outcome) => outcome,
                None => execute_attempt(
                    profile,
                    technique,
                    sim,
                    &specs,
                    sup.timeout,
                    false,
                    &crate::isolation::ObsRouting::Absorb,
                ),
            };
        match outcome {
            Ok(inst) => {
                let mut metrics =
                    RunMetrics::from_instrumented(technique.name(), &inst, base_cache_stats());
                metrics.attempts = attempt + 1;
                if let Some((kind, message)) = last {
                    crate::obs::counter_add("engine.recoveries", 1);
                    crate::obs::Event::engine("recovered")
                        .str_field("app", profile.name)
                        .str_field("after", &format!("{kind:?}"))
                        .u64_field("attempts", u64::from(attempt + 1))
                        .emit();
                    report
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .recoveries
                        .push(RecoveryEvent {
                            app: profile.name.to_string(),
                            kind,
                            message,
                            attempts: attempt + 1,
                        });
                }
                return Ok((inst.result, metrics));
            }
            Err((kind, message)) => {
                let interrupted = kind == FailureKind::Interrupted;
                let backoff = (!interrupted && attempt < sup.max_retries)
                    .then(|| sup.backoff_delay(attempt + 1));
                crate::obs::counter_add("engine.attempt_failures", 1);
                crate::obs::Event::engine("attempt-failed")
                    .str_field("app", profile.name)
                    .u64_field("attempt", u64::from(attempt))
                    .str_field("kind", &format!("{kind:?}"))
                    .u64_field("backoff_ms", backoff.unwrap_or_default().as_millis() as u64)
                    .emit();
                last = Some((kind, message));
                if interrupted {
                    break; // a drained suite must not retry, only record
                }
                if let Some(delay) = backoff {
                    std::thread::sleep(delay);
                }
            }
        }
    }
    let (kind, message) = last.expect("the retry loop only exits failed with a recorded failure");
    Err(AppFailure {
        app: profile.name.to_string(),
        kind,
        message,
        attempts: sup.max_retries + 1,
    })
}

/// Runs every profile under `technique` on the bounded worker pool, with
/// the full supervision stack: per-attempt fault injection from `plan`,
/// watchdog deadlines, classified failures, bounded-backoff retries, and —
/// when `sup.resume` is set — checkpoint/resume of completed applications.
///
/// Unlike [`try_run_suite`], one failing application does not abort the
/// suite: its slot carries the classified [`AppFailure`] and every other
/// application still completes (graceful degradation).
pub fn run_suite_supervised(
    profiles: &[WorkloadProfile],
    technique: &Technique,
    sim: &SimConfig,
    sup: &SupervisorConfig,
    plan: &FaultPlan,
) -> SupervisedSuite {
    let start = Instant::now();
    // FaultSignal unwinds are classified control flow, not crashes; keep
    // the default hook's backtraces off stderr for them.
    crate::fault::install_signal_quieting_hook();
    crate::obs::Event::engine("suite-start")
        .str_field("technique", technique.name())
        .u64_field("apps", profiles.len() as u64)
        .u64_field("instructions", sim.instructions)
        .emit();
    let report = Mutex::new(FailureReport::new(technique.name()));
    let slots: Vec<OnceLock<Result<(SimResult, RunMetrics), AppFailure>>> =
        profiles.iter().map(|_| OnceLock::new()).collect();

    // Resume: pre-fill slots from a prior interrupted run of the *same*
    // suite (fingerprint covers machine, technique, profiles, and the
    // result-perturbing part of the fault plan).
    let checkpoint = sup.resume.then(|| {
        let key = suite_key(profiles, technique, sim, plan);
        let path = checkpoint_path(sup, key.fingerprint);
        let rows = load_checkpoint(&path, &key, profiles);
        (path, key, rows)
    });
    if let Some((_, _, rows)) = &checkpoint {
        let stats = base_cache_stats();
        for (idx, result) in rows {
            crate::obs::counter_add("engine.replayed", 1);
            crate::obs::Event::engine("replayed")
                .str_field("app", result.app)
                .str_field("technique", technique.name())
                .emit();
            let metrics = RunMetrics::replayed(technique.name(), result, stats);
            let _ = slots[*idx].set(Ok((*result, metrics)));
        }
    }

    let ckpt_append = Mutex::new(());
    // Serialized crash-consistent checkpoint append with a once-per-suite
    // degradation warning — shared by the lane phase and the worker pool.
    let append_ckpt = |idx: usize, result: &SimResult| {
        if let Some((path, key, _)) = &checkpoint {
            let _guard = ckpt_append.lock().unwrap_or_else(PoisonError::into_inner);
            if let Err(e) = append_checkpoint(path, key, idx, result) {
                let mut rep = report.lock().unwrap_or_else(PoisonError::into_inner);
                if !rep.checkpoint_degraded {
                    rep.checkpoint_degraded = true;
                    crate::obs::warn(
                        "checkpoint",
                        &format!(
                            "checkpoint append failed for {} ({e}); \
                             this suite will not fully resume",
                            path.display()
                        ),
                    );
                }
            }
        }
    };

    // Lane phase: faultless in-process runs advance several-at-a-time
    // through the SoA lane packs. Only eligible work goes here — fault
    // injection, process isolation, and the `RESTUNE_KERNEL=off` escape
    // hatch all need the per-run machinery of the worker pool below. Lane
    // results are bit-exact with the serial kernel, and any run a pack
    // abandons (timeout, integration fault, shutdown) simply leaves its
    // slot unfilled for the pool to supervise properly.
    let lane_width = crate::lanes::lane_count();
    let lane_eligible = lane_width > 1
        && crate::kernel::fused_enabled()
        && !plan.is_enabled()
        && crate::isolation::isolation_mode() == crate::isolation::IsolationMode::Thread
        && !crate::client::connect_active();
    if lane_eligible {
        let jobs: Vec<usize> = (0..profiles.len())
            .filter(|&i| slots[i].get().is_none())
            .collect();
        if jobs.len() > 1 {
            let next_job = AtomicUsize::new(0);
            let packs = worker_count(jobs.len().div_ceil(lane_width));
            std::thread::scope(|scope| {
                for _ in 0..packs {
                    scope.spawn(|| {
                        let claim = || {
                            if crate::isolation::shutdown_requested() {
                                return None;
                            }
                            let j = next_job.fetch_add(1, Ordering::Relaxed);
                            jobs.get(j).map(|&idx| (idx, &profiles[idx]))
                        };
                        let mut on_done = |idx: usize, inst: InstrumentedRun| {
                            let metrics = RunMetrics::from_instrumented(
                                technique.name(),
                                &inst,
                                base_cache_stats(),
                            );
                            crate::obs::counter_add("engine.lane_runs", 1);
                            append_ckpt(idx, &inst.result);
                            let stored = slots[idx].set(Ok((inst.result, metrics))).is_ok();
                            assert!(stored, "each lane job is claimed exactly once");
                        };
                        // A panicking lane pack (a CPU-model bug, a poisoned
                        // cache) must not take the suite down: unfinished
                        // jobs fall through to the supervised pool.
                        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            crate::lanes::run_pack(
                                technique,
                                sim,
                                sup.timeout,
                                lane_width,
                                &claim,
                                &mut on_done,
                            );
                        }));
                        if caught.is_err() {
                            crate::obs::counter_add("engine.lane_pack_panics", 1);
                        }
                    });
                }
            });
        }
    }

    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..worker_count(profiles.len()) {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                let Some(profile) = profiles.get(idx) else {
                    return;
                };
                if slots[idx].get().is_some() {
                    continue; // replayed from the checkpoint or a lane pack
                }
                // Graceful shutdown: once a signal arrives, stop claiming
                // work — unclaimed apps become `interrupted` slots, the
                // checkpoint keeps everything already completed, and the
                // partial report goes out as usual.
                if crate::isolation::shutdown_requested() {
                    let stored = slots[idx]
                        .set(Err(AppFailure {
                            app: profile.name.to_string(),
                            kind: FailureKind::Interrupted,
                            message: String::from("suite interrupted by signal"),
                            attempts: 0,
                        }))
                        .is_ok();
                    assert!(stored, "each unfilled slot is claimed exactly once");
                    continue;
                }
                let outcome = supervise_one(profile, technique, sim, sup, plan, &report);
                if let Ok((result, _)) = &outcome {
                    append_ckpt(idx, result);
                }
                let stored = slots[idx].set(outcome).is_ok();
                assert!(stored, "each unfilled slot is claimed exactly once");
            });
        }
    });

    let mut outcomes = Vec::with_capacity(slots.len());
    let mut metrics = Vec::with_capacity(slots.len());
    for slot in slots {
        match slot
            .into_inner()
            .expect("every slot was claimed or pre-filled")
        {
            Ok((r, m)) => {
                outcomes.push(Ok(r));
                metrics.push(Some(m));
            }
            Err(f) => {
                outcomes.push(Err(f));
                metrics.push(None);
            }
        }
    }
    let mut report = report.into_inner().unwrap_or_else(PoisonError::into_inner);
    for outcome in &outcomes {
        if let Err(f) = outcome {
            report.failures.push(f.clone());
        }
    }
    // A fully successful suite retires its checkpoint; a degraded one keeps
    // it so a fixed-up rerun only repeats the failed applications. Success
    // is also the moment to sweep out *abandoned* sibling checkpoints —
    // files whose suites crashed and were never resumed would otherwise
    // accumulate forever.
    if let Some((path, _, _)) = &checkpoint {
        if outcomes.iter().all(Result::is_ok) {
            let _ = std::fs::remove_file(path);
            prune_stale_checkpoints(&checkpoint_dir(sup));
        }
    }
    let wall_seconds = start.elapsed().as_secs_f64();
    crate::obs::Event::engine("suite-end")
        .str_field("technique", technique.name())
        .u64_field("apps", outcomes.len() as u64)
        .u64_field("failures", report.failures.len() as u64)
        .f64_field("wall_seconds", wall_seconds)
        .emit();
    SupervisedSuite {
        outcomes,
        metrics,
        report,
        wall_seconds,
    }
}

/// Checkpoint-file schema version; bump when the row format changes.
/// v2 added the per-row CRC32 and the tmp+fsync+rename write path; v3 the
/// persisted identity row (the fingerprint-collision guard).
const CHECKPOINT_SCHEMA: u32 = 3;

/// A fully-qualified cache key: the 64-bit FNV-1a fingerprint plus the
/// identity string it was hashed from.
///
/// Every persisted cache plane — recorded baselines, suite checkpoints,
/// the server result cache, the sweep run store — stores *both* and
/// verifies the identity on read. 64 bits of FNV-1a make an accidental
/// collision unlikely, not impossible, and two different configurations
/// silently sharing one cache slot would replay wrong results with no
/// way to notice; an identity mismatch is therefore treated as a miss
/// with an `obs::warn`, never as a hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheKey {
    /// FNV-1a of `identity`.
    pub fingerprint: u64,
    /// The full config identity string the fingerprint was derived from.
    pub identity: String,
}

impl CacheKey {
    /// Hashes `identity` into its fingerprint.
    pub fn from_identity(identity: String) -> CacheKey {
        let fingerprint = fnv1a(identity.as_bytes());
        CacheKey {
            fingerprint,
            identity,
        }
    }
}

/// Warns about (and counts) a fingerprint collision on one cache plane:
/// the stored identity under this fingerprint belongs to a different
/// configuration, so the record must be treated as a miss.
pub(crate) fn warn_identity_mismatch(
    category: &'static str,
    path: &Path,
    expected: &str,
    found: &str,
) {
    crate::obs::counter_add(&format!("{category}.identity_mismatches"), 1);
    crate::obs::warn(
        category,
        &format!(
            "fingerprint collision at {}: stored identity '{found}' != expected \
             '{expected}'; treating as a miss",
            path.display()
        ),
    );
}

/// Writes `bytes` to `path` crash-consistently: the data goes to a sibling
/// tmp file, is fsynced, and is renamed over the target, so a crash or
/// SIGKILL at any instant leaves either the old complete file or the new
/// one — never a torn mix.
pub(crate) fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    let result = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Appends the CRC32 trailer to one serialized row: `<core>\tcrc=<hex8>`.
pub(crate) fn crc_line(core: &str) -> String {
    format!("{core}\tcrc={:08x}", crate::wire::crc32(core.as_bytes()))
}

/// Splits a CRC-trailed row into its core and whether the CRC verifies.
/// `None` means the line is structurally torn (no trailer at all — an
/// interrupted write); `Some((core, false))` means the row is complete but
/// damaged (bit rot, an injected flip).
pub(crate) fn split_crc_line(line: &str) -> Option<(&str, bool)> {
    let (core, crc) = line.rsplit_once("\tcrc=")?;
    if crc.len() != 8 {
        return None;
    }
    let recorded = u32::from_str_radix(crc, 16).ok()?;
    Some((core, recorded == crate::wire::crc32(core.as_bytes())))
}

/// [`CacheKey`] of everything a supervised suite's *results* depend on: the
/// machine configuration, the technique (with its config), every workload
/// profile, and the result-perturbing (sensor) part of the fault plan.
/// Worker/numeric faults and supervisor settings are excluded on purpose —
/// they change *whether* a run completes, never *what* it computes.
pub fn suite_key(
    profiles: &[WorkloadProfile],
    technique: &Technique,
    sim: &SimConfig,
    plan: &FaultPlan,
) -> CacheKey {
    let mut identity = format!("ckpt-v{CHECKPOINT_SCHEMA}|{sim:?}|{technique:?}|");
    for p in profiles {
        identity.push_str(&format!("{}:{:?};", p.name, plan.result_faults(p.name)));
    }
    identity.push_str(&format!("|{profiles:?}"));
    CacheKey::from_identity(identity)
}

/// The fingerprint half of [`suite_key`].
pub fn suite_fingerprint(
    profiles: &[WorkloadProfile],
    technique: &Technique,
    sim: &SimConfig,
    plan: &FaultPlan,
) -> u64 {
    suite_key(profiles, technique, sim, plan).fingerprint
}

/// Directory for suite checkpoints: the supervisor's override when set,
/// otherwise `checkpoints/` under [`baseline_cache_dir`].
pub fn checkpoint_dir(sup: &SupervisorConfig) -> PathBuf {
    sup.checkpoint_dir
        .clone()
        .unwrap_or_else(|| baseline_cache_dir().join("checkpoints"))
}

/// Path of the checkpoint for fingerprint `fp` under [`checkpoint_dir`].
pub fn checkpoint_path(sup: &SupervisorConfig, fp: u64) -> PathBuf {
    checkpoint_dir(sup).join(format!("ckpt-{fp:016x}.tsv"))
}

/// Default age past which an untouched checkpoint counts as abandoned.
const CHECKPOINT_MAX_AGE: Duration = Duration::from_secs(7 * 24 * 3600);

/// Removes abandoned checkpoints — `ckpt-*.tsv` files in `dir` not
/// modified for `RESTUNE_CKPT_MAX_AGE_SECS` seconds (default 7 days) —
/// and returns how many were pruned (also surfaced as the
/// `cache.checkpoints_pruned` counter).
///
/// Called automatically after every fully successful resumable suite;
/// checkpoints of suites that crashed and were never resumed would
/// otherwise accumulate in the cache directory forever.
pub fn prune_stale_checkpoints(dir: &Path) -> u64 {
    let max_age = crate::envcfg::positive_f64(
        "RESTUNE_CKPT_MAX_AGE_SECS",
        "cache",
        "the 7-day default checkpoint age bound",
    )
    .map(Duration::from_secs_f64)
    .unwrap_or(CHECKPOINT_MAX_AGE);
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    let mut pruned = 0u64;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if !(name.starts_with("ckpt-") && name.ends_with(".tsv")) {
            continue;
        }
        let abandoned = entry
            .metadata()
            .and_then(|m| m.modified())
            .ok()
            .and_then(|t| t.elapsed().ok())
            .is_some_and(|age| age > max_age);
        if abandoned && std::fs::remove_file(entry.path()).is_ok() {
            pruned += 1;
        }
    }
    if pruned > 0 {
        crate::obs::counter_add("cache.checkpoints_pruned", pruned);
    }
    pruned
}

/// Appends one completed application to the checkpoint, creating the file
/// (with its header and identity row) on first use.
///
/// The append is a read-modify-write through [`atomic_write`]: checkpoints
/// hold at most one small row per application, so rewriting the whole file
/// is cheap, and a crash mid-append can never tear an already-recorded row.
/// Each row carries its own CRC32 so later damage is detected per-row.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn append_checkpoint(
    path: &Path,
    key: &CacheKey,
    idx: usize,
    result: &SimResult,
) -> io::Result<()> {
    let header = format!(
        "restune-checkpoint v{CHECKPOINT_SCHEMA} fp={:016x}",
        key.fingerprint
    );
    let id_row = crc_line(&format!("id={}", key.identity));
    let mut body = match std::fs::read_to_string(path) {
        Ok(text)
            if text.lines().next() == Some(header.as_str())
                && text.lines().nth(1) == Some(id_row.as_str()) =>
        {
            text
        }
        // Missing, stale, colliding, or unreadable: start the file over.
        _ => format!("{header}\n{id_row}\n"),
    };
    if !body.ends_with('\n') {
        body.push('\n'); // a torn tail must not concatenate with the new row
    }
    body.push_str(&crc_line(&format!("{idx}\t{}", result_row(result))));
    body.push('\n');
    atomic_write(path, body.as_bytes())
}

/// Loads the completed rows of a checkpoint written by
/// [`append_checkpoint`], keyed by suite index.
///
/// A missing file is an empty resume. A stale fingerprint or header is
/// discarded with a warning; a matching fingerprint whose stored identity
/// differs (a fingerprint collision) is reported and treated as an empty
/// resume without touching the file. Damage is recovered at row
/// granularity:
///
/// * a row whose CRC32 does not verify is *skipped* — only that
///   application re-runs, everything else replays;
/// * a structurally torn line (no CRC trailer, or a row that no longer
///   parses) stops the scan — the intact prefix is kept, the tail after
///   the tear is re-run. Expected when the previous process died
///   mid-write.
pub fn load_checkpoint(
    path: &Path,
    key: &CacheKey,
    profiles: &[WorkloadProfile],
) -> Vec<(usize, SimResult)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut lines = text.lines();
    let expected = format!(
        "restune-checkpoint v{CHECKPOINT_SCHEMA} fp={:016x}",
        key.fingerprint
    );
    if lines.next() != Some(expected.as_str()) {
        discard_stale(path, "stale or corrupt checkpoint");
        return Vec::new();
    }
    // The identity row pins the fingerprint to one configuration. A torn
    // or damaged identity row means the file cannot be trusted at all.
    match lines.next().and_then(split_crc_line) {
        Some((core, true)) => match core.strip_prefix("id=") {
            Some(identity) if identity == key.identity => {}
            Some(identity) => {
                warn_identity_mismatch("cache", path, &key.identity, identity);
                return Vec::new();
            }
            None => {
                discard_stale(path, "checkpoint missing its identity row");
                return Vec::new();
            }
        },
        _ => {
            discard_stale(path, "checkpoint with a torn or damaged identity row");
            return Vec::new();
        }
    }
    let mut rows: HashMap<usize, SimResult> = HashMap::new();
    for line in lines {
        let Some((core, intact)) = split_crc_line(line) else {
            break; // torn tail: keep the prefix
        };
        if !intact {
            continue; // damaged row: re-run just this application
        }
        let Some((idx, result)) = parse_checkpoint_row(core, profiles) else {
            break; // verified CRC but unparseable: schema drift, stop
        };
        rows.insert(idx, result);
    }
    let mut out: Vec<_> = rows.into_iter().collect();
    out.sort_by_key(|(idx, _)| *idx);
    out
}

fn parse_checkpoint_row(line: &str, profiles: &[WorkloadProfile]) -> Option<(usize, SimResult)> {
    let (idx, row) = line.split_once('\t')?;
    let idx = idx.parse::<usize>().ok()?;
    let result = parse_row(row)?;
    if profiles.get(idx)?.name != result.app {
        return None;
    }
    Some((idx, result))
}

/// Damages a cache file in place according to the storage fault.
fn corrupt_file(path: &Path, fault: StorageFault) -> io::Result<()> {
    let mut bytes = std::fs::read(path)?;
    let mid = bytes.len() / 2;
    match fault {
        StorageFault::Truncate => bytes.truncate(mid),
        StorageFault::BitFlip => {
            if let Some(b) = bytes.get_mut(mid) {
                // Flipping bit 4 maps every digit, hex letter, tab, and
                // newline outside its class, so the damage always parses as
                // corruption rather than as a different valid value.
                *b ^= 0x10;
            }
        }
    }
    std::fs::write(path, bytes)
}

/// The supervised counterpart of [`cached_base_suite`]: the base-machine
/// suite with storage-fault injection, damaged-baseline recovery, and
/// graceful degradation.
///
/// With an inert policy this is *exactly* the unsupervised cached path
/// (same memo, same counters, bit-identical results). With faults enabled
/// it bypasses the in-process memo — a partial or perturbed base suite must
/// never poison the clean cache — applies any planned storage fault to the
/// recorded baseline, recovers by re-simulating, and re-records on success.
pub fn cached_base_suite_supervised(
    sim: &SimConfig,
    sup: &SupervisorConfig,
    plan: &FaultPlan,
) -> SupervisedSuite {
    cached_suite_supervised_for(sim, &spec2k::all(), sup, plan)
}

/// [`cached_base_suite_supervised`] for the RISC-V corpus suite: same
/// storage-fault, recovery, and recording behavior against the corpus
/// baseline file.
pub fn cached_corpus_base_suite_supervised(
    sim: &SimConfig,
    sup: &SupervisorConfig,
    plan: &FaultPlan,
) -> SupervisedSuite {
    cached_suite_supervised_for(sim, &corpus::all(), sup, plan)
}

fn cached_suite_supervised_for(
    sim: &SimConfig,
    profiles: &[WorkloadProfile],
    sup: &SupervisorConfig,
    plan: &FaultPlan,
) -> SupervisedSuite {
    let policy_is_inert = !plan.is_enabled() && sup.timeout.is_none() && !sup.resume;
    if policy_is_inert {
        return SupervisedSuite::from_suite_run(&cached_suite_for(sim, profiles), "base");
    }

    let key = baseline_key_for(sim, profiles);
    let path = suite_baseline_path(key.fingerprint);
    let mut incidents = Vec::new();
    if let Some(fault) = plan.storage_fault() {
        if path.exists() && corrupt_file(&path, fault).is_ok() {
            incidents.push(StorageIncident {
                path: path.display().to_string(),
                detail: format!("injected {}", fault.class()),
                recovered: false,
            });
        }
    }

    if let Ok(Some(results)) = load_baseline(&path, &key) {
        let stats = base_cache_stats();
        let metrics = results
            .iter()
            .map(|r| Some(RunMetrics::replayed("base", r, stats)))
            .collect();
        let mut report = FailureReport::new("base");
        report.storage = incidents;
        return SupervisedSuite {
            outcomes: results.into_iter().map(Ok).collect(),
            metrics,
            report,
            wall_seconds: 0.0,
        };
    }

    let mut suite = run_suite_supervised(profiles, &Technique::Base, sim, sup, plan);
    suite.report.scope = String::from("base");
    if let Some(results) = suite.all_results() {
        if !plan.has_result_faults() {
            let _ = save_baseline(&path, &key, &results);
        }
        for incident in &mut incidents {
            incident.recovered = true;
            incident.detail.push_str(" — re-simulated");
        }
    }
    suite.report.storage.splice(0..0, incidents);
    suite
}

/// Hit/miss counters of the process-wide base-suite cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Requests served from memory or a recorded-baseline file.
    pub hits: u64,
    /// Requests that had to simulate the suite.
    pub misses: u64,
}

static BASE_HITS: AtomicU64 = AtomicU64::new(0);
static BASE_MISSES: AtomicU64 = AtomicU64::new(0);

struct CacheState {
    memo: HashMap<u64, Arc<SuiteRun>>,
    /// Base-suite simulations actually executed, per fingerprint.
    simulations: HashMap<u64, u64>,
}

static CACHE: OnceLock<Mutex<CacheState>> = OnceLock::new();

fn cache() -> &'static Mutex<CacheState> {
    CACHE.get_or_init(|| {
        Mutex::new(CacheState {
            memo: HashMap::new(),
            simulations: HashMap::new(),
        })
    })
}

/// Process-wide counters of [`cached_base_suite`] activity.
pub fn base_cache_stats() -> CacheStats {
    CacheStats {
        hits: BASE_HITS.load(Ordering::Relaxed),
        misses: BASE_MISSES.load(Ordering::Relaxed),
    }
}

/// How many times this process actually *simulated* the base suite for
/// `sim` (as opposed to serving it from the memo or a baseline file).
pub fn base_suite_simulations(sim: &SimConfig) -> u64 {
    simulations_for(base_fingerprint(sim))
}

/// [`base_suite_simulations`] for the RISC-V corpus suite.
pub fn corpus_base_suite_simulations(sim: &SimConfig) -> u64 {
    simulations_for(corpus_base_fingerprint(sim))
}

fn simulations_for(fp: u64) -> u64 {
    let state = cache().lock().unwrap_or_else(PoisonError::into_inner);
    state.simulations.get(&fp).copied().unwrap_or(0)
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Baseline-file schema version; bump when the row format changes.
/// v2 added the per-row CRC32 and the tmp+fsync+rename write path; v3 the
/// persisted identity row (the fingerprint-collision guard).
const BASELINE_SCHEMA: u32 = 3;

/// [`CacheKey`] of everything a base-suite run depends on: the machine
/// configuration and every workload profile. The `Debug` representations
/// include all fields recursively (floats in shortest-roundtrip form), so
/// any parameter change — in the machine or in a profile — yields a new
/// fingerprint and invalidates recorded baselines.
pub fn base_key(sim: &SimConfig) -> CacheKey {
    baseline_key_for(sim, &spec2k::all())
}

/// [`base_key`] for the RISC-V corpus suite. Corpus profiles carry a
/// content hash of their assembly source as `seed`, so editing a program
/// re-fingerprints the corpus baseline exactly like a profile edit does for
/// the synthetic suite.
pub fn corpus_base_key(sim: &SimConfig) -> CacheKey {
    baseline_key_for(sim, &corpus::all())
}

/// The fingerprint half of [`base_key`].
pub fn base_fingerprint(sim: &SimConfig) -> u64 {
    base_key(sim).fingerprint
}

/// The fingerprint half of [`corpus_base_key`].
pub fn corpus_base_fingerprint(sim: &SimConfig) -> u64 {
    corpus_base_key(sim).fingerprint
}

fn baseline_key_for(sim: &SimConfig, profiles: &[WorkloadProfile]) -> CacheKey {
    CacheKey::from_identity(format!("v{BASELINE_SCHEMA}|{sim:?}|{profiles:?}"))
}

/// Directory for recorded baselines: `$RESTUNE_CACHE_DIR` when set,
/// otherwise `restune-cache/` inside the build's `target/` directory
/// (located from the running executable's path).
pub fn baseline_cache_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("RESTUNE_CACHE_DIR") {
        return PathBuf::from(dir);
    }
    if let Ok(exe) = std::env::current_exe() {
        for dir in exe.ancestors() {
            if dir.file_name().is_some_and(|n| n == "target") {
                return dir.join("restune-cache");
            }
        }
    }
    PathBuf::from("target").join("restune-cache")
}

/// Path of the recorded baseline for `sim` under [`baseline_cache_dir`].
pub fn baseline_path(sim: &SimConfig) -> PathBuf {
    suite_baseline_path(base_fingerprint(sim))
}

/// [`baseline_path`] for the RISC-V corpus suite.
pub fn corpus_baseline_path(sim: &SimConfig) -> PathBuf {
    suite_baseline_path(corpus_base_fingerprint(sim))
}

fn suite_baseline_path(fingerprint: u64) -> PathBuf {
    baseline_cache_dir().join(format!("base-{fingerprint:016x}.tsv"))
}

/// Serializes result rows to `path`, keyed by `key` (fingerprint in the
/// header, full identity string in the row after it).
///
/// Floats are stored as `f64::to_bits` hex, so a load reproduces every row
/// bit-for-bit. The write is crash-consistent ([`atomic_write`]) and every
/// row carries a CRC32, so a reader can tell damage from staleness.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_baseline(path: &Path, key: &CacheKey, results: &[SimResult]) -> io::Result<()> {
    let mut body = String::new();
    body.push_str(&format!(
        "restune-baseline v{BASELINE_SCHEMA} fp={:016x} apps={}\n",
        key.fingerprint,
        results.len()
    ));
    body.push_str(&crc_line(&format!("id={}", key.identity)));
    body.push('\n');
    for r in results {
        body.push_str(&crc_line(&result_row(r)));
        body.push('\n');
    }
    atomic_write(path, body.as_bytes())
}

/// The bit-exact TSV serialization of one result row, shared by baseline
/// files, checkpoints, and the sweep run store.
pub(crate) fn result_row(r: &SimResult) -> String {
    format!(
        "{}\t{}\t{}\t{:016x}\t{}\t{:016x}\t{:016x}\t{:016x}\t{}\t{}\t{}\t{}",
        r.app,
        r.cycles,
        r.committed,
        r.ipc.to_bits(),
        r.violation_cycles,
        r.worst_noise.volts().to_bits(),
        r.energy_joules.to_bits(),
        r.energy_delay.to_bits(),
        r.first_level_cycles,
        r.second_level_cycles,
        r.sensor_response_cycles,
        r.damping_bound_cycles,
    )
}

pub(crate) fn parse_row(line: &str) -> Option<SimResult> {
    let mut f = line.split('\t');
    let name = f.next()?;
    // Resolve through the registry so `app` stays a `&'static str`; an
    // unknown name means the file predates a suite change and must be
    // discarded.
    let app = registry::by_name(name)?.name;
    let uint = |s: Option<&str>| s?.parse::<u64>().ok();
    let float = |s: Option<&str>| Some(f64::from_bits(u64::from_str_radix(s?, 16).ok()?));
    let result = SimResult {
        app,
        cycles: uint(f.next())?,
        committed: uint(f.next())?,
        ipc: float(f.next())?,
        violation_cycles: uint(f.next())?,
        worst_noise: rlc::units::Volts::new(float(f.next())?),
        energy_joules: float(f.next())?,
        energy_delay: float(f.next())?,
        first_level_cycles: uint(f.next())?,
        second_level_cycles: uint(f.next())?,
        sensor_response_cycles: uint(f.next())?,
        damping_bound_cycles: uint(f.next())?,
    };
    if f.next().is_some() {
        return None;
    }
    Some(result)
}

/// Deletes a stale or damaged cache file and says so on stderr, once, so
/// the next run doesn't trip over it again.
pub(crate) fn discard_stale(path: &Path, why: &str) {
    let _ = std::fs::remove_file(path);
    crate::obs::warn("cache", &format!("discarded {} ({why})", path.display()));
}

/// What [`parse_baseline`] made of a recorded-baseline file.
enum BaselineParse {
    /// Fingerprint and identity verified; rows replay bit-exactly.
    Rows(Vec<SimResult>),
    /// Different schema/fingerprint, damage, or a torn identity row — the
    /// file is useless and should be discarded.
    Stale,
    /// The fingerprint matched but the stored identity belongs to a
    /// different configuration: a 64-bit collision. The file is *valid*
    /// for its own configuration, so it is left in place.
    Collision(String),
}

/// Loads result rows recorded by [`save_baseline`].
///
/// Returns `Ok(None)` when the file does not exist, carries a different
/// fingerprint or schema version, or fails to parse — all of which mean
/// "no usable baseline", not an error. A stale or corrupt file is deleted
/// (with a one-line stderr warning) so it is re-recorded on the next run
/// instead of being rediscovered broken every time. A file whose
/// fingerprint matches but whose stored identity differs — a fingerprint
/// collision — is reported via `obs::warn` and treated as a miss without
/// deleting the other configuration's valid record.
///
/// # Errors
///
/// Propagates filesystem errors other than the file being absent.
pub fn load_baseline(path: &Path, key: &CacheKey) -> io::Result<Option<Vec<SimResult>>> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    match parse_baseline(&text, key) {
        BaselineParse::Rows(rows) => Ok(Some(rows)),
        BaselineParse::Stale => {
            discard_stale(path, "stale or corrupt recorded baseline");
            Ok(None)
        }
        BaselineParse::Collision(found) => {
            warn_identity_mismatch("cache", path, &key.identity, &found);
            Ok(None)
        }
    }
}

fn parse_baseline(text: &str, key: &CacheKey) -> BaselineParse {
    let mut lines = text.lines();
    let expected = format!(
        "restune-baseline v{BASELINE_SCHEMA} fp={:016x} apps=",
        key.fingerprint
    );
    let Some(apps) = lines
        .next()
        .filter(|h| h.starts_with(&expected))
        .and_then(|h| h[expected.len()..].parse::<usize>().ok())
    else {
        return BaselineParse::Stale;
    };
    match lines.next().and_then(split_crc_line) {
        Some((core, true)) => match core.strip_prefix("id=") {
            Some(identity) if identity == key.identity => {}
            Some(identity) => return BaselineParse::Collision(identity.to_string()),
            None => return BaselineParse::Stale,
        },
        _ => return BaselineParse::Stale,
    }
    // Baselines are all-or-nothing (a partial base suite is useless), so
    // any torn or CRC-damaged row discards the whole file.
    let rows: Option<Vec<SimResult>> = lines
        .map(|line| {
            let (core, intact) = split_crc_line(line)?;
            intact.then(|| parse_row(core))?
        })
        .collect();
    match rows.filter(|r| r.len() == apps) {
        Some(rows) => BaselineParse::Rows(rows),
        None => BaselineParse::Stale,
    }
}

/// The base-machine suite for `sim`, simulated at most once per process.
///
/// Lookup order: the in-process memo, then a recorded baseline file under
/// [`baseline_cache_dir`], then a real [`try_run_suite`] whose rows are
/// recorded for future processes. Concurrent callers with the same config
/// serialize on the cache, so the suite still runs exactly once.
///
/// # Panics
///
/// Panics with the failing application's name if the base simulation
/// panics.
pub fn cached_base_suite(sim: &SimConfig) -> Arc<SuiteRun> {
    cached_suite_for(sim, &spec2k::all())
}

/// [`cached_base_suite`] for the RISC-V corpus suite: the same memo,
/// counters, and recorded-baseline machinery, keyed by the corpus
/// fingerprint.
pub fn cached_corpus_base_suite(sim: &SimConfig) -> Arc<SuiteRun> {
    cached_suite_for(sim, &corpus::all())
}

fn cached_suite_for(sim: &SimConfig, profiles: &[WorkloadProfile]) -> Arc<SuiteRun> {
    let key = baseline_key_for(sim, profiles);
    let fp = key.fingerprint;
    let mut state = cache().lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(run) = state.memo.get(&fp) {
        BASE_HITS.fetch_add(1, Ordering::Relaxed);
        return Arc::clone(run);
    }

    let path = suite_baseline_path(fp);
    if let Ok(Some(results)) = load_baseline(&path, &key) {
        BASE_HITS.fetch_add(1, Ordering::Relaxed);
        let stats = base_cache_stats();
        let metrics = results
            .iter()
            .map(|r| RunMetrics::replayed("base", r, stats))
            .collect();
        let run = Arc::new(SuiteRun {
            results,
            metrics,
            wall_seconds: 0.0,
        });
        state.memo.insert(fp, Arc::clone(&run));
        return run;
    }

    BASE_MISSES.fetch_add(1, Ordering::Relaxed);
    let run = try_run_suite(profiles, &Technique::Base, sim).unwrap_or_else(|e| panic!("{e}"));
    *state.simulations.entry(fp).or_insert(0) += 1;
    // Recording is best-effort: a read-only target directory only costs
    // later processes the cold run.
    let _ = save_baseline(&path, &key, &run.results);
    let run = Arc::new(run);
    state.memo.insert(fp, Arc::clone(&run));
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TuningConfig;
    use crate::sim::run;

    fn quick_sim() -> SimConfig {
        SimConfig::isca04(15_000)
    }

    #[test]
    fn bounded_pool_matches_serial_order_and_values() {
        let profiles: Vec<_> = spec2k::all().into_iter().take(5).collect();
        let sim = quick_sim();
        let suite = try_run_suite(&profiles, &Technique::Base, &sim).unwrap();
        assert_eq!(suite.results.len(), 5);
        assert_eq!(suite.metrics.len(), 5);
        for ((r, m), p) in suite.results.iter().zip(&suite.metrics).zip(&profiles) {
            assert_eq!(r.app, p.name);
            assert_eq!(m.app, p.name);
            assert_eq!(m.cycles, r.cycles);
            assert!(m.wall_seconds > 0.0);
            assert!(m.sim_cycles_per_second > 0.0);
            assert!(!m.replayed);
            assert_eq!(*r, run(p, &Technique::Base, &sim));
        }
        assert!(suite.wall_seconds > 0.0);
    }

    #[test]
    fn tuning_suite_reports_detector_activity() {
        let profiles = vec![spec2k::by_name("swim").unwrap()];
        let sim = SimConfig::isca04(150_000);
        let technique = Technique::Tuning(TuningConfig::isca04_table1(100));
        let suite = try_run_suite(&profiles, &technique, &sim).unwrap();
        assert_eq!(suite.metrics[0].technique, "tuning");
        assert!(suite.metrics[0].detector_events > 0);
        assert!(suite.metrics[0].first_level_fraction > 0.0);
    }

    #[test]
    fn failing_app_is_named() {
        // An invalid profile trips `WorkloadProfile::validate` inside the
        // worker; the error must carry the app's name, not a bare unwrap.
        let good = spec2k::by_name("gzip").unwrap();
        let mut bad = spec2k::by_name("mcf").unwrap();
        bad.name = "broken-app";
        bad.mean_dep = 0.0;
        let err = try_run_suite(&[good, bad], &Technique::Base, &quick_sim())
            .expect_err("the invalid profile must fail the suite");
        assert_eq!(err.app, "broken-app");
        assert!(
            err.message.contains("mean dependence distance"),
            "panic message should survive: {}",
            err.message
        );
    }

    #[test]
    fn fingerprint_tracks_config_changes() {
        let a = base_fingerprint(&SimConfig::isca04(10_000));
        let b = base_fingerprint(&SimConfig::isca04(10_001));
        let a2 = base_fingerprint(&SimConfig::isca04(10_000));
        assert_ne!(a, b);
        assert_eq!(a, a2);
    }

    #[test]
    fn baseline_file_round_trips_bit_exactly() {
        let profiles: Vec<_> = spec2k::all().into_iter().take(2).collect();
        let sim = quick_sim();
        let results: Vec<_> = profiles
            .iter()
            .map(|p| run(p, &Technique::Base, &sim))
            .collect();
        let key = base_key(&sim);
        let path = std::env::temp_dir().join("restune-baseline-roundtrip.tsv");
        save_baseline(&path, &key, &results).unwrap();
        let loaded = load_baseline(&path, &key)
            .unwrap()
            .expect("fingerprint matches");
        assert_eq!(
            loaded, results,
            "recorded baseline must replay bit-identically"
        );
        // A different fingerprint must refuse the file — and discard it so
        // the stale artifact is not rediscovered broken forever.
        let other = CacheKey {
            fingerprint: key.fingerprint ^ 1,
            identity: key.identity.clone(),
        };
        assert_eq!(load_baseline(&path, &other).unwrap(), None);
        assert!(!path.exists(), "stale baseline must be deleted");
    }

    #[test]
    fn colliding_baseline_is_a_miss_but_survives() {
        // Two keys that share the 64-bit fingerprint but describe different
        // configurations: the canonical birthday-collision hazard the
        // identity row exists to catch.
        let profiles: Vec<_> = spec2k::all().into_iter().take(1).collect();
        let sim = quick_sim();
        let results: Vec<_> = profiles
            .iter()
            .map(|p| run(p, &Technique::Base, &sim))
            .collect();
        let key = base_key(&sim);
        let impostor = CacheKey {
            fingerprint: key.fingerprint,
            identity: format!("{}|impostor", key.identity),
        };
        let path = std::env::temp_dir().join("restune-baseline-collision.tsv");
        save_baseline(&path, &key, &results).unwrap();
        assert_eq!(
            load_baseline(&path, &impostor).unwrap(),
            None,
            "a colliding fingerprint with a different identity is a miss"
        );
        assert!(
            path.exists(),
            "the other configuration's valid record must not be deleted"
        );
        // The rightful owner still loads bit-exactly afterwards.
        let loaded = load_baseline(&path, &key).unwrap().expect("still valid");
        assert_eq!(loaded, results);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_baseline_is_not_an_error() {
        let path = std::env::temp_dir().join("restune-baseline-does-not-exist.tsv");
        let key = CacheKey::from_identity(String::from("missing"));
        assert_eq!(load_baseline(&path, &key).unwrap(), None);
    }

    #[test]
    fn corrupt_baseline_is_rejected() {
        let path = std::env::temp_dir().join("restune-baseline-corrupt.tsv");
        let key = CacheKey::from_identity(String::from("corrupt-baseline-test"));
        std::fs::write(
            &path,
            format!(
                "restune-baseline v{BASELINE_SCHEMA} fp={:016x} apps=1\n{}\nnot-an-app\t1\n",
                key.fingerprint,
                crc_line(&format!("id={}", key.identity)),
            ),
        )
        .unwrap();
        assert_eq!(load_baseline(&path, &key).unwrap(), None);
        assert!(!path.exists(), "corrupt baseline must be deleted");
    }

    #[test]
    fn base_suite_is_simulated_once_per_process() {
        // A config unique to this test so parallel tests don't share the
        // memo entry; delete any recorded baseline so the first call really
        // simulates.
        let sim = SimConfig::isca04(15_551);
        let _ = std::fs::remove_file(baseline_path(&sim));
        assert_eq!(base_suite_simulations(&sim), 0);

        let first = cached_base_suite(&sim);
        assert_eq!(base_suite_simulations(&sim), 1);
        let second = cached_base_suite(&sim);
        assert_eq!(
            base_suite_simulations(&sim),
            1,
            "second request must hit the memo"
        );
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(first.results.len(), spec2k::all().len());

        // A fresh process would find the recorded baseline; simulate that by
        // loading the file directly.
        let loaded = load_baseline(&baseline_path(&sim), &base_key(&sim)).unwrap();
        assert_eq!(loaded.as_deref(), Some(first.results.as_slice()));
        let _ = std::fs::remove_file(baseline_path(&sim));
    }

    #[test]
    fn worker_count_is_bounded() {
        assert_eq!(worker_count(0), 1);
        assert_eq!(worker_count(1), 1);
        assert!(worker_count(1_000) <= 1_000);
        assert!(worker_count(1_000) >= 1);
    }

    #[test]
    fn invalid_workers_env_warns_and_falls_back() {
        // Only the return value is checked (a stderr warning is emitted);
        // an invalid value must behave exactly like an unset variable. All
        // environment mutation goes through the shared lock so parallel
        // tests never observe a half-restored variable.
        for bad in ["three", "0", " ", "-2"] {
            let n = crate::testenv::with_env(&[("RESTUNE_WORKERS", Some(bad))], || worker_count(8));
            assert!((1..=8).contains(&n), "RESTUNE_WORKERS='{bad}' gave {n}");
        }
        let unset = crate::testenv::with_env(&[("RESTUNE_WORKERS", None)], || worker_count(8));
        assert!((1..=8).contains(&unset));
    }

    #[test]
    fn supervised_suite_degrades_instead_of_aborting() {
        let profiles: Vec<_> = spec2k::all().into_iter().take(3).collect();
        let victim = profiles[1].name;
        let sim = quick_sim();
        let plan =
            FaultPlan::none().with_persistent_fault(victim, crate::fault::FaultSpec::WorkerPanic);
        let sup = SupervisorConfig {
            max_retries: 1,
            ..SupervisorConfig::default()
        };
        let suite = run_suite_supervised(&profiles, &Technique::Base, &sim, &sup, &plan);

        assert_eq!(suite.completed(), 2, "the other apps must still finish");
        assert!(suite.all_results().is_none());
        let failure = suite.outcomes[1].as_ref().expect_err("victim fails");
        assert_eq!(failure.app, victim);
        assert_eq!(failure.kind, FailureKind::Panic);
        assert_eq!(failure.attempts, 2, "one retry was spent");
        assert_eq!(suite.report.failures.len(), 1);
        assert_eq!(suite.report.injections.len(), 2, "both attempts injected");
        assert!(!suite.report.is_clean());
        // Healthy slots match an unsupervised run bit-for-bit.
        assert_eq!(
            suite.outcomes[0].as_ref().unwrap(),
            &run(&profiles[0], &Technique::Base, &sim)
        );
    }

    #[test]
    fn transient_fault_recovers_with_backoff_retry() {
        let profiles = vec![spec2k::by_name("gzip").unwrap()];
        let sim = quick_sim();
        let plan =
            FaultPlan::none().with_transient_fault("gzip", crate::fault::FaultSpec::WorkerPanic);
        let sup = SupervisorConfig {
            max_retries: 2,
            backoff_base: std::time::Duration::from_millis(1),
            ..SupervisorConfig::default()
        };
        let suite = run_suite_supervised(&profiles, &Technique::Base, &sim, &sup, &plan);

        assert_eq!(suite.completed(), 1, "retry must rescue the run");
        assert!(suite.report.is_clean());
        assert_eq!(suite.report.recoveries.len(), 1);
        assert_eq!(suite.report.recoveries[0].kind, FailureKind::Panic);
        assert_eq!(suite.report.recoveries[0].attempts, 2);
        let metrics = suite.metrics[0].as_ref().unwrap();
        assert_eq!(metrics.attempts, 2);
        // The clean retry reproduces the unfaulted run bit-for-bit.
        assert_eq!(
            suite.outcomes[0].as_ref().unwrap(),
            &run(&profiles[0], &Technique::Base, &sim)
        );
    }

    #[test]
    fn final_failed_attempt_does_not_sleep_backoff() {
        let profiles = vec![spec2k::by_name("gzip").unwrap()];
        let sim = quick_sim();
        let plan =
            FaultPlan::none().with_persistent_fault("gzip", crate::fault::FaultSpec::WorkerPanic);
        let base = std::time::Duration::from_millis(60);
        let sup = SupervisorConfig {
            max_retries: 2,
            backoff_base: base,
            backoff_cap: std::time::Duration::from_secs(10),
            ..SupervisorConfig::default()
        };

        let t0 = std::time::Instant::now();
        let suite = run_suite_supervised(&profiles, &Technique::Base, &sim, &sup, &plan);
        let wall = t0.elapsed();

        let failure = suite.outcomes[0]
            .as_ref()
            .expect_err("persistent fault fails");
        assert_eq!(failure.attempts, sup.max_retries + 1);
        // Backoff runs *between* attempts only: after attempts 1 and 2
        // (60 ms, then 120 ms). Sleeping after the final attempt would add
        // another 240 ms for nothing — the suite is already lost.
        assert!(
            wall >= base * 3,
            "both inter-attempt backoffs must run, got {wall:?}"
        );
        assert!(
            wall < base * 7,
            "the final failed attempt must not sleep its 240 ms backoff, got {wall:?}"
        );
    }

    #[test]
    fn inert_supervised_suite_matches_try_run_suite() {
        let profiles: Vec<_> = spec2k::all().into_iter().take(3).collect();
        let sim = quick_sim();
        let plain = try_run_suite(&profiles, &Technique::Base, &sim).unwrap();
        let supervised = run_suite_supervised(
            &profiles,
            &Technique::Base,
            &sim,
            &SupervisorConfig::default(),
            &FaultPlan::none(),
        );
        assert!(supervised.report.is_empty());
        assert_eq!(supervised.all_results().unwrap(), plain.results);
    }

    #[test]
    fn checkpoint_round_trips_and_tolerates_a_truncated_tail() {
        let profiles: Vec<_> = spec2k::all().into_iter().take(3).collect();
        let sim = quick_sim();
        let results: Vec<_> = profiles
            .iter()
            .map(|p| run(p, &Technique::Base, &sim))
            .collect();
        let key = suite_key(&profiles, &Technique::Base, &sim, &FaultPlan::none());
        let path = std::env::temp_dir().join("restune-ckpt-roundtrip.tsv");
        let _ = std::fs::remove_file(&path);

        append_checkpoint(&path, &key, 0, &results[0]).unwrap();
        append_checkpoint(&path, &key, 2, &results[2]).unwrap();
        let loaded = load_checkpoint(&path, &key, &profiles);
        assert_eq!(loaded, vec![(0, results[0]), (2, results[2])]);

        // A kill mid-append leaves a truncated last row: everything before
        // it must survive.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("1\tgzip\t12"); // unfinished row
        std::fs::write(&path, text).unwrap();
        let partial = load_checkpoint(&path, &key, &profiles);
        assert_eq!(partial, vec![(0, results[0]), (2, results[2])]);

        // A colliding fingerprint with a different identity is a miss that
        // leaves the other configuration's rows untouched.
        let impostor = CacheKey {
            fingerprint: key.fingerprint,
            identity: format!("{}|impostor", key.identity),
        };
        assert!(load_checkpoint(&path, &impostor, &profiles).is_empty());
        assert!(path.exists(), "colliding checkpoint must not be deleted");
        assert_eq!(load_checkpoint(&path, &key, &profiles).len(), 2);

        // A stale fingerprint discards the file entirely.
        let stale = CacheKey {
            fingerprint: key.fingerprint ^ 1,
            identity: key.identity.clone(),
        };
        assert!(load_checkpoint(&path, &stale, &profiles).is_empty());
        assert!(!path.exists(), "stale checkpoint must be deleted");
    }

    #[test]
    fn suite_fingerprint_tracks_result_perturbing_faults_only() {
        let profiles: Vec<_> = spec2k::all().into_iter().take(2).collect();
        let sim = quick_sim();
        let clean = FaultPlan::none();
        let sensor = FaultPlan::none().with_persistent_fault(
            profiles[0].name,
            crate::fault::FaultSpec::SensorDelay { cycles: 3 },
        );
        let worker = FaultPlan::none()
            .with_persistent_fault(profiles[0].name, crate::fault::FaultSpec::WorkerPanic);
        let fp = |plan: &FaultPlan| suite_fingerprint(&profiles, &Technique::Base, &sim, plan);
        assert_ne!(
            fp(&clean),
            fp(&sensor),
            "sensor faults change results, so they must change the fingerprint"
        );
        assert_eq!(
            fp(&clean),
            fp(&worker),
            "worker faults never change results, so checkpoints stay shareable"
        );
    }

    #[test]
    fn resumed_suite_replays_checkpointed_rows_bit_exactly() {
        let profiles: Vec<_> = spec2k::all().into_iter().take(3).collect();
        let sim = quick_sim();
        let dir = std::env::temp_dir().join("restune-ckpt-resume-test");
        let _ = std::fs::remove_dir_all(&dir);
        let sup = SupervisorConfig {
            resume: true,
            checkpoint_dir: Some(dir.clone()),
            ..SupervisorConfig::default()
        };
        let plan = FaultPlan::none();

        // Simulate an interrupted run: only app 1 completed and was
        // checkpointed before the kill.
        let partial = run(&profiles[1], &Technique::Base, &sim);
        let key = suite_key(&profiles, &Technique::Base, &sim, &plan);
        let fp = key.fingerprint;
        append_checkpoint(&checkpoint_path(&sup, fp), &key, 1, &partial).unwrap();

        let resumed = run_suite_supervised(&profiles, &Technique::Base, &sim, &sup, &plan);
        assert!(
            resumed.metrics[1].as_ref().unwrap().replayed,
            "the checkpointed app must be replayed, not re-simulated"
        );
        assert!(!resumed.metrics[0].as_ref().unwrap().replayed);

        // The resumed suite equals an uninterrupted one bit-for-bit.
        let uninterrupted = try_run_suite(&profiles, &Technique::Base, &sim).unwrap();
        assert_eq!(resumed.all_results().unwrap(), uninterrupted.results);

        // Full success retires the checkpoint.
        assert!(
            !checkpoint_path(&sup, fp).exists(),
            "completed suite must delete its checkpoint"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
