//! The thin-client side of the suite server: when a harness runs with
//! `--connect ENDPOINT`, every supervised application attempt is shipped to
//! a [`crate::server`] instance as a request frame instead of executing
//! locally, and the reply (a result or a classified failure) feeds the
//! same supervisor path — so a thin-client report is byte-identical to an
//! in-process run.
//!
//! The client is built to survive a misbehaving *server* (or network):
//!
//! * **reconnect-resume** — a dead connection is re-dialed with bounded
//!   exponential backoff and the request is re-sent; the server's shared
//!   result cache makes the resend idempotent (a suite interrupted
//!   mid-flight resumes bit-exactly from the rows already computed);
//! * **backpressure honoring** — a busy frame sleeps out its retry-after
//!   hint and retries, within a bounded budget (never a hot resend loop);
//! * **bounded patience** — a request that outlives its overall budget
//!   (derived from the job's own deadline) fails as a transport error
//!   rather than hanging the suite;
//! * **graceful interrupt** — SIGINT/SIGTERM in the harness cancels the
//!   outstanding request (best effort) and classifies the attempt as
//!   interrupted, matching the engine's local drain semantics.
//!
//! Client-side network fault injection ([`set_net_faults`], or the
//! `RESTUNE_NET_FAULT` environment variable in the harnesses) arms the
//! *outgoing* frame stream with [`NetFaultSpec`] plans, so tests can tear
//! frames and drop connections from the tenant side too.

use std::collections::HashMap;
use std::io::{self, Read};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

use workloads::{registry, WorkloadProfile};

use crate::fault::{FailureKind, FaultSpec, NetFaultRuntime, NetFaultSpec};
use crate::server::{Endpoint, FramedConn, Sock};
use crate::sim::{InstrumentedRun, SimConfig, Technique};
use crate::wire;

/// How many consecutive connection failures the client tolerates before a
/// request fails as a transport error.
const MAX_RECONNECTS: u32 = 7;

/// Total time a request may sleep on busy (admission-rejected) frames.
const BUSY_BUDGET: Duration = Duration::from_secs(60);

/// Patience for a request with no deadline of its own.
const NO_DEADLINE_BUDGET: Duration = Duration::from_secs(3600);

/// Heartbeat cadence on an established connection.
const HEARTBEAT_EVERY: Duration = Duration::from_secs(1);

/// What the connection reader hands back to a waiting request.
enum Incoming {
    /// A decoded reply (cache hits are counted at decode time).
    Reply(Result<InstrumentedRun, (FailureKind, String)>),
    /// Admission rejected; retry after the hint.
    Busy(Duration),
    /// The connection died before a reply arrived.
    Dead,
}

struct Mux {
    conn: Option<Arc<FramedConn>>,
    /// Monotonic connection generation; doubles as the connection id.
    generation: u64,
    /// Outstanding requests: request id → (generation it was sent on,
    /// reply channel). A dying reader completes only its own generation's
    /// entries with [`Incoming::Dead`].
    pending: HashMap<u64, (u64, mpsc::Sender<Incoming>)>,
}

struct Core {
    endpoint: Endpoint,
    mux: Mutex<Mux>,
    seq: AtomicU64,
}

fn core_slot() -> &'static Mutex<Option<Arc<Core>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<Core>>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

fn staged_faults() -> &'static Mutex<Vec<NetFaultSpec>> {
    static SLOT: OnceLock<Mutex<Vec<NetFaultSpec>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(Vec::new()))
}

/// Arms client-side network faults on the *next* connection the client
/// establishes (one-shot: reconnections after that run clean, so a fault
/// plan exercises recovery rather than permanently wedging the client).
/// Call before [`set_connect`] to fault the first connection.
pub fn set_net_faults(specs: Vec<NetFaultSpec>) {
    *staged_faults()
        .lock()
        .unwrap_or_else(PoisonError::into_inner) = specs;
}

/// Routes all subsequent supervised suite execution in this process to the
/// suite server at `endpoint` (a unix socket path, or `tcp:host:port`).
/// Connects eagerly so an unreachable server fails fast, here, rather than
/// mid-suite.
pub fn set_connect(endpoint: &str) -> io::Result<()> {
    let core = Arc::new(Core {
        endpoint: Endpoint::parse(endpoint),
        mux: Mutex::new(Mux {
            conn: None,
            generation: 0,
            pending: HashMap::new(),
        }),
        seq: AtomicU64::new(1),
    });
    ensure_connected(&core)?;
    *core_slot().lock().unwrap_or_else(PoisonError::into_inner) = Some(core);
    Ok(())
}

/// Tears down the connect route: outstanding requests receive best-effort
/// cancel frames, the connection closes, and suite execution returns to
/// the local tiers.
pub fn clear_connect() {
    let core = core_slot()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .take();
    let Some(core) = core else { return };
    let mut mux = core.mux.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(conn) = mux.conn.take() {
        for req_id in mux.pending.keys() {
            let _ = conn.write_frame(wire::KIND_CANCEL, &wire::encode_cancel(*req_id));
        }
        conn.shutdown();
    }
    for (_, (_, tx)) in mux.pending.drain() {
        let _ = tx.send(Incoming::Dead);
    }
}

/// `true` while a `--connect` route is armed (the engine disables the
/// in-process lane phase then: lane packs would bypass the server).
pub fn connect_active() -> bool {
    core_slot()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .is_some()
}

/// Returns the live connection, dialing a new one if needed. The caller
/// handles errors with backoff; this function makes exactly one attempt.
fn ensure_connected(core: &Arc<Core>) -> io::Result<Arc<FramedConn>> {
    let mut mux = core.mux.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(conn) = &mux.conn {
        if conn.is_alive() {
            return Ok(conn.clone());
        }
        mux.conn = None;
    }
    let sock = Sock::connect(&core.endpoint)?;
    let reader_sock = sock.try_clone()?;
    let faults = std::mem::take(
        &mut *staged_faults()
            .lock()
            .unwrap_or_else(PoisonError::into_inner),
    );
    mux.generation += 1;
    let generation = mux.generation;
    let conn = Arc::new(FramedConn::new(
        generation,
        sock,
        NetFaultRuntime::new(faults),
    ));
    mux.conn = Some(conn.clone());
    drop(mux);
    crate::obs::counter_add("client.connections", 1);
    {
        let core = core.clone();
        let conn = conn.clone();
        std::thread::spawn(move || reader_loop(&core, &conn, reader_sock, generation));
    }
    {
        let conn = conn.clone();
        std::thread::spawn(move || heartbeat_loop(&conn));
    }
    Ok(conn)
}

fn heartbeat_loop(conn: &Arc<FramedConn>) {
    while conn.is_alive() {
        std::thread::sleep(HEARTBEAT_EVERY);
        if !conn.is_alive() || conn.write_frame(wire::KIND_HEARTBEAT, &[]).is_err() {
            return;
        }
    }
}

fn reader_loop(core: &Arc<Core>, conn: &Arc<FramedConn>, mut sock: Sock, generation: u64) {
    let _ = sock.set_read_timeout(Some(Duration::from_millis(100)));
    let mut decoder = wire::StreamDecoder::new();
    let mut buf = [0u8; 64 * 1024];
    'conn: loop {
        if !conn.is_alive() {
            break;
        }
        match sock.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                decoder.extend(&buf[..n]);
                loop {
                    match decoder.next_frame() {
                        Ok(Some((kind, payload))) => {
                            if !dispatch_frame(core, &kind, &payload) {
                                break 'conn;
                            }
                        }
                        Ok(None) => break,
                        Err(violation) => {
                            crate::obs::warn(
                                "client",
                                &format!("server stream violation: {violation}"),
                            );
                            break 'conn;
                        }
                    }
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                continue;
            }
            Err(_) => break,
        }
    }
    conn.shutdown();
    let mut mux = core.mux.lock().unwrap_or_else(PoisonError::into_inner);
    if mux.generation == generation {
        mux.conn = None;
    }
    // Complete this generation's outstanding requests as dead so their
    // waiters reconnect and resend; newer-generation entries are someone
    // else's responsibility.
    mux.pending.retain(|_, (gen, tx)| {
        if *gen == generation {
            let _ = tx.send(Incoming::Dead);
            false
        } else {
            true
        }
    });
}

/// Routes one server frame; `false` abandons the connection.
fn dispatch_frame(core: &Arc<Core>, kind: &u8, payload: &[u8]) -> bool {
    match *kind {
        wire::KIND_REPLY => {
            let Some((req_id, cached, outcome)) = wire::decode_reply(payload) else {
                return false;
            };
            if cached {
                crate::obs::counter_add("client.cache_hits", 1);
            }
            deliver(core, req_id, Incoming::Reply(outcome));
            true
        }
        wire::KIND_BUSY => {
            let Some((req_id, retry_after)) = wire::decode_busy(payload) else {
                return false;
            };
            deliver(core, req_id, Incoming::Busy(retry_after));
            true
        }
        wire::KIND_OBS => {
            // Streamed observability from the server's worker: absorb into
            // this process's trace sink and counters, exactly as the local
            // process tier absorbs a child's forwarded frame.
            if let Some((counters, lines)) = wire::decode_obs(payload) {
                crate::obs::counter_add("wire.obs_frames", 1);
                crate::obs::absorb_forwarded(&counters, &lines);
            }
            true
        }
        wire::KIND_HEARTBEAT => true,
        _ => false,
    }
}

fn deliver(core: &Arc<Core>, req_id: u64, incoming: Incoming) {
    let tx = core
        .mux
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .pending
        .remove(&req_id);
    if let Some((_, tx)) = tx {
        let _ = tx.send(incoming);
    }
}

fn register(core: &Arc<Core>, req_id: u64, generation: u64) -> mpsc::Receiver<Incoming> {
    let (tx, rx) = mpsc::channel();
    core.mux
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .pending
        .insert(req_id, (generation, tx));
    rx
}

fn unregister(core: &Arc<Core>, req_id: u64) {
    core.mux
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .pending
        .remove(&req_id);
}

fn backoff(failures: u32) -> Duration {
    Duration::from_millis(50u64 << failures.min(5))
}

/// Runs one application attempt on the connected suite server. `None` when
/// no `--connect` route is armed or the job is not wire-encodable (the
/// caller then executes locally); `Some` carries the server's outcome.
pub(crate) fn remote_attempt(
    profile: &WorkloadProfile,
    technique: &Technique,
    sim: &SimConfig,
    specs: &[FaultSpec],
    timeout: Option<Duration>,
) -> Option<Result<InstrumentedRun, (FailureKind, String)>> {
    let core = core_slot()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()?;
    // The same eligibility gate as the process-isolation tier: the wire
    // codec sends the profile by name and the machine by instruction
    // budget, so only registry profiles on the isca04 preset can cross.
    if registry::by_name(profile.name) != Some(*profile)
        || *sim != SimConfig::isca04(sim.instructions)
    {
        static WARNED: AtomicBool = AtomicBool::new(false);
        if !WARNED.swap(true, Ordering::Relaxed) {
            crate::obs::warn(
                "client",
                "job is not wire-encodable (non-registry profile or non-isca04 machine); \
                 running locally despite --connect",
            );
        }
        return None;
    }
    Some(request_outcome(
        &core, profile, technique, sim, specs, timeout,
    ))
}

fn request_outcome(
    core: &Arc<Core>,
    profile: &WorkloadProfile,
    technique: &Technique,
    sim: &SimConfig,
    specs: &[FaultSpec],
    timeout: Option<Duration>,
) -> Result<InstrumentedRun, (FailureKind, String)> {
    let fingerprint = wire::job_fingerprint(profile, technique, sim, specs);
    let job = wire::encode_job(profile, technique, sim, specs, timeout, fingerprint);
    let want_obs = crate::obs::trace_enabled();
    // The overall patience budget: generous multiples of the job's own
    // deadline (the server needs time to queue, run, and retry), bounded
    // even when the job has none.
    let patience = timeout
        .map(|t| t * 4 + Duration::from_secs(120))
        .unwrap_or(NO_DEADLINE_BUDGET);
    let started = Instant::now();
    let mut busy_spent = Duration::ZERO;
    let mut connect_failures: u32 = 0;
    let interrupted = || {
        Err((
            FailureKind::Interrupted,
            "shutdown signal received; remote attempt abandoned".to_string(),
        ))
    };
    loop {
        if crate::isolation::shutdown_requested() {
            return interrupted();
        }
        if started.elapsed() > patience {
            return Err((
                FailureKind::Transport,
                format!("no server reply within the {patience:?} request budget"),
            ));
        }
        let conn = match ensure_connected(core) {
            Ok(conn) => conn,
            Err(e) => {
                connect_failures += 1;
                if connect_failures > MAX_RECONNECTS {
                    return Err((
                        FailureKind::Transport,
                        format!("server unreachable after {connect_failures} attempts: {e}"),
                    ));
                }
                std::thread::sleep(backoff(connect_failures - 1));
                continue;
            }
        };
        let req_id = core.seq.fetch_add(1, Ordering::Relaxed);
        let rx = register(core, req_id, conn.id);
        let request = wire::encode_request(req_id, want_obs, &job);
        if conn.write_frame(wire::KIND_REQUEST, &request).is_err() {
            unregister(core, req_id);
            connect_failures += 1;
            if connect_failures > MAX_RECONNECTS {
                return Err((
                    FailureKind::Transport,
                    format!("request write kept failing after {connect_failures} attempts"),
                ));
            }
            std::thread::sleep(backoff(connect_failures - 1));
            continue;
        }
        // Await the reply in short slices so shutdown stays responsive.
        loop {
            if crate::isolation::shutdown_requested() {
                let _ = conn.write_frame(wire::KIND_CANCEL, &wire::encode_cancel(req_id));
                unregister(core, req_id);
                return interrupted();
            }
            if started.elapsed() > patience {
                let _ = conn.write_frame(wire::KIND_CANCEL, &wire::encode_cancel(req_id));
                unregister(core, req_id);
                return Err((
                    FailureKind::Transport,
                    format!("no server reply within the {patience:?} request budget"),
                ));
            }
            match rx.recv_timeout(Duration::from_millis(100)) {
                Ok(Incoming::Reply(outcome)) => {
                    return match outcome {
                        Ok(inst) if inst.result.app != profile.name => Err((
                            FailureKind::Transport,
                            format!(
                                "server replied for app '{}' but '{}' was asked",
                                inst.result.app, profile.name
                            ),
                        )),
                        other => other,
                    };
                }
                Ok(Incoming::Busy(retry_after)) => {
                    // Admission rejected: honor the hint, within bounds. A
                    // resend is a fresh request, so it re-enters this loop.
                    let nap = retry_after
                        .max(Duration::from_millis(10))
                        .min(Duration::from_secs(1));
                    busy_spent += nap;
                    if busy_spent > BUSY_BUDGET {
                        return Err((
                            FailureKind::Transport,
                            format!(
                                "server stayed busy for {busy_spent:?} \
                                 (admission queue never opened)"
                            ),
                        ));
                    }
                    crate::obs::counter_add("client.busy_retries", 1);
                    std::thread::sleep(nap);
                    break;
                }
                Ok(Incoming::Dead) => {
                    // Reconnect and resend: the server caches completed
                    // results by fingerprint, so the resend is idempotent —
                    // a job that finished before the cut comes back as a
                    // cache hit, bit-exactly.
                    connect_failures += 1;
                    if connect_failures > MAX_RECONNECTS {
                        return Err((
                            FailureKind::Transport,
                            format!("connection kept dying ({connect_failures} attempts)"),
                        ));
                    }
                    crate::obs::counter_add("client.reconnects", 1);
                    std::thread::sleep(backoff(connect_failures - 1));
                    break;
                }
                Err(mpsc::RecvTimeoutError::Timeout) => continue,
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    // The reader dropped the sender without a message —
                    // equivalent to a dead connection.
                    unregister(core, req_id);
                    connect_failures += 1;
                    if connect_failures > MAX_RECONNECTS {
                        return Err((
                            FailureKind::Transport,
                            format!("connection kept dying ({connect_failures} attempts)"),
                        ));
                    }
                    std::thread::sleep(backoff(connect_failures - 1));
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        assert_eq!(backoff(0), Duration::from_millis(50));
        assert_eq!(backoff(1), Duration::from_millis(100));
        assert_eq!(backoff(4), Duration::from_millis(800));
        assert_eq!(backoff(5), Duration::from_millis(1600));
        assert_eq!(backoff(40), Duration::from_millis(1600), "capped");
    }

    #[test]
    fn connect_is_inactive_by_default_and_clear_is_idempotent() {
        // Serialized implicitly: no test in this binary arms a route.
        assert!(!connect_active());
        clear_connect();
        assert!(!connect_active());
    }
}
