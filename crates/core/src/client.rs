//! The thin-client side of the suite server: when a harness runs with
//! `--connect ENDPOINT`, every supervised application attempt is shipped to
//! a [`crate::server`] instance as a request frame instead of executing
//! locally, and the reply (a result or a classified failure) feeds the
//! same supervisor path — so a thin-client report is byte-identical to an
//! in-process run.
//!
//! The client is built to survive a misbehaving *server* (or network):
//!
//! * **reconnect-resume** — a dead connection is re-dialed with bounded
//!   exponential backoff and the request is re-sent; the server's shared
//!   result cache makes the resend idempotent (a suite interrupted
//!   mid-flight resumes bit-exactly from the rows already computed);
//! * **backpressure honoring** — a busy frame sleeps out its retry-after
//!   hint and retries, within a bounded budget (never a hot resend loop);
//! * **bounded patience** — a request that outlives its overall budget
//!   (derived from the job's own deadline) fails as a transport error
//!   rather than hanging the suite;
//! * **graceful interrupt** — SIGINT/SIGTERM in the harness cancels the
//!   outstanding request (best effort) and classifies the attempt as
//!   interrupted, matching the engine's local drain semantics.
//!
//! Client-side network fault injection ([`set_net_faults`], or the
//! `RESTUNE_NET_FAULT` environment variable in the harnesses) arms the
//! *outgoing* frame stream with [`NetFaultSpec`] plans, so tests can tear
//! frames and drop connections from the tenant side too.
//!
//! A comma-separated `--connect` list routes through [`crate::mesh`]
//! instead: this module then provides the per-host machinery (one
//! [`Core`] per host, probes, severing) while the mesh owns shard
//! routing, circuit breaking, and failover.

use std::collections::HashMap;
use std::io::{self, Read};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

use workloads::{registry, WorkloadProfile};

use crate::fault::{FailureKind, FaultSpec, NetFaultRuntime, NetFaultSpec};
use crate::mesh::Mesh;
use crate::server::{Endpoint, FramedConn, Sock};
use crate::sim::{InstrumentedRun, SimConfig, Technique};
use crate::wire;

/// How many consecutive connection failures a single-host client tolerates
/// before a request fails as a transport error. A multi-host mesh uses a
/// smaller per-host budget (failover beats waiting).
pub(crate) const MAX_RECONNECTS: u32 = 7;

/// Total time a request may sleep on busy (admission-rejected) frames.
const BUSY_BUDGET: Duration = Duration::from_secs(60);

/// Patience for a request with no deadline of its own.
pub(crate) const NO_DEADLINE_BUDGET: Duration = Duration::from_secs(3600);

/// Default heartbeat cadence on an established connection
/// (`RESTUNE_HEARTBEAT_SECS` overrides).
const DEFAULT_HEARTBEAT_SECS: f64 = 1.0;

/// Default cap on the reconnect backoff in milliseconds
/// (`RESTUNE_BACKOFF_CAP_MS` overrides).
const DEFAULT_BACKOFF_CAP_MS: u64 = 1600;

/// What the connection reader hands back to a waiting request.
enum Incoming {
    /// A decoded reply (cache hits are counted at decode time).
    Reply(Result<InstrumentedRun, (FailureKind, String)>),
    /// Admission rejected; retry after the hint.
    Busy(Duration),
    /// A probe acknowledgement carrying the host's generation.
    ProbeAck(u64),
    /// The connection died before a reply arrived.
    Dead,
}

struct Mux {
    conn: Option<Arc<FramedConn>>,
    /// Monotonic connection generation; doubles as the connection id.
    generation: u64,
    /// Outstanding requests: request id → (generation it was sent on,
    /// reply channel). A dying reader completes only its own generation's
    /// entries with [`Incoming::Dead`].
    pending: HashMap<u64, (u64, mpsc::Sender<Incoming>)>,
}

/// The per-host connection core: endpoint, multiplexer, request-id
/// sequence, and the last host generation learned from a hello or
/// probe-ack frame. The mesh keeps one per host.
pub(crate) struct Core {
    endpoint: Endpoint,
    mux: Mutex<Mux>,
    seq: AtomicU64,
    /// Latest generation announced by the host (0 = none seen yet).
    hello_generation: AtomicU64,
}

impl Core {
    /// A fresh, unconnected core for `endpoint`.
    pub(crate) fn new(endpoint: Endpoint) -> Arc<Core> {
        Arc::new(Core {
            endpoint,
            mux: Mutex::new(Mux {
                conn: None,
                generation: 0,
                pending: HashMap::new(),
            }),
            seq: AtomicU64::new(1),
            hello_generation: AtomicU64::new(0),
        })
    }

    /// The last host generation seen on this core's connection (0 until
    /// the first hello or probe-ack arrives).
    pub(crate) fn host_generation(&self) -> u64 {
        self.hello_generation.load(Ordering::Relaxed)
    }
}

fn mesh_slot() -> &'static Mutex<Option<Arc<Mesh>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<Mesh>>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// The active mesh route, if one is armed.
pub(crate) fn active_mesh() -> Option<Arc<Mesh>> {
    mesh_slot()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
}

fn staged_faults() -> &'static Mutex<Vec<NetFaultSpec>> {
    static SLOT: OnceLock<Mutex<Vec<NetFaultSpec>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(Vec::new()))
}

/// Arms client-side network faults on the *next* connection the client
/// establishes (one-shot: reconnections after that run clean, so a fault
/// plan exercises recovery rather than permanently wedging the client).
/// Call before [`set_connect`] to fault the first connection.
pub fn set_net_faults(specs: Vec<NetFaultSpec>) {
    *staged_faults()
        .lock()
        .unwrap_or_else(PoisonError::into_inner) = specs;
}

/// Routes all subsequent supervised suite execution in this process to the
/// suite server(s) at `endpoint` — a unix socket path, `tcp:host:port`, or
/// a comma-separated list of either, which arms the shard-aware
/// [`crate::mesh`] routing layer. Connects eagerly so an unreachable
/// server (every host unreachable, for a list) fails fast, here, rather
/// than mid-suite.
pub fn set_connect(endpoint: &str) -> io::Result<()> {
    let mesh = Arc::new(Mesh::connect(endpoint)?);
    *mesh_slot().lock().unwrap_or_else(PoisonError::into_inner) = Some(mesh);
    Ok(())
}

/// Tears down one host core: outstanding requests receive best-effort
/// cancel frames, the connection closes, and waiters are completed dead.
pub(crate) fn teardown_core(core: &Arc<Core>) {
    let mut mux = core.mux.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(conn) = mux.conn.take() {
        for req_id in mux.pending.keys() {
            let _ = conn.write_frame(wire::KIND_CANCEL, &wire::encode_cancel(*req_id));
        }
        conn.shutdown();
    }
    for (_, (_, tx)) in mux.pending.drain() {
        let _ = tx.send(Incoming::Dead);
    }
}

/// Tears down the connect route: every host's outstanding requests receive
/// best-effort cancel frames, the connections close, and suite execution
/// returns to the local tiers.
pub fn clear_connect() {
    let mesh = mesh_slot()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .take();
    let Some(mesh) = mesh else { return };
    mesh.teardown();
}

/// `true` while a `--connect` route is armed (the engine disables the
/// in-process lane phase then: lane packs would bypass the server).
pub fn connect_active() -> bool {
    mesh_slot()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .is_some()
}

/// Returns the live connection, dialing a new one if needed. The caller
/// handles errors with backoff; this function makes exactly one attempt.
pub(crate) fn ensure_connected(core: &Arc<Core>) -> io::Result<Arc<FramedConn>> {
    let mut mux = core.mux.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(conn) = &mux.conn {
        if conn.is_alive() {
            return Ok(conn.clone());
        }
        mux.conn = None;
    }
    let sock = Sock::connect(&core.endpoint)?;
    let reader_sock = sock.try_clone()?;
    let faults = std::mem::take(
        &mut *staged_faults()
            .lock()
            .unwrap_or_else(PoisonError::into_inner),
    );
    mux.generation += 1;
    let generation = mux.generation;
    let conn = Arc::new(FramedConn::new(
        generation,
        sock,
        NetFaultRuntime::new(faults),
    ));
    mux.conn = Some(conn.clone());
    drop(mux);
    crate::obs::counter_add("client.connections", 1);
    {
        let core = core.clone();
        let conn = conn.clone();
        std::thread::spawn(move || reader_loop(&core, &conn, reader_sock, generation));
    }
    {
        let conn = conn.clone();
        std::thread::spawn(move || heartbeat_loop(&conn));
    }
    Ok(conn)
}

/// The heartbeat cadence: `RESTUNE_HEARTBEAT_SECS` through the shared
/// warn-once parser, defaulting to one second. Read per beat so a test can
/// retune it without tearing the connection down.
fn heartbeat_every() -> Duration {
    crate::envcfg::positive_f64(
        "RESTUNE_HEARTBEAT_SECS",
        "client",
        "the default heartbeat interval (1s)",
    )
    .map(Duration::from_secs_f64)
    .unwrap_or(Duration::from_secs_f64(DEFAULT_HEARTBEAT_SECS))
}

fn heartbeat_loop(conn: &Arc<FramedConn>) {
    while conn.is_alive() {
        std::thread::sleep(heartbeat_every());
        if !conn.is_alive() || conn.write_frame(wire::KIND_HEARTBEAT, &[]).is_err() {
            return;
        }
    }
}

fn reader_loop(core: &Arc<Core>, conn: &Arc<FramedConn>, mut sock: Sock, generation: u64) {
    let _ = sock.set_read_timeout(Some(Duration::from_millis(100)));
    let mut decoder = wire::StreamDecoder::new();
    let mut buf = [0u8; 64 * 1024];
    'conn: loop {
        if !conn.is_alive() {
            break;
        }
        match sock.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                decoder.extend(&buf[..n]);
                loop {
                    match decoder.next_frame() {
                        Ok(Some((kind, payload))) => {
                            if !dispatch_frame(core, &kind, &payload) {
                                break 'conn;
                            }
                        }
                        Ok(None) => break,
                        Err(violation) => {
                            crate::obs::warn(
                                "client",
                                &format!("server stream violation: {violation}"),
                            );
                            break 'conn;
                        }
                    }
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                continue;
            }
            Err(_) => break,
        }
    }
    conn.shutdown();
    let mut mux = core.mux.lock().unwrap_or_else(PoisonError::into_inner);
    if mux.generation == generation {
        mux.conn = None;
    }
    // Complete this generation's outstanding requests as dead so their
    // waiters reconnect and resend; newer-generation entries are someone
    // else's responsibility.
    mux.pending.retain(|_, (gen, tx)| {
        if *gen == generation {
            let _ = tx.send(Incoming::Dead);
            false
        } else {
            true
        }
    });
}

/// Routes one server frame; `false` abandons the connection.
fn dispatch_frame(core: &Arc<Core>, kind: &u8, payload: &[u8]) -> bool {
    match *kind {
        wire::KIND_REPLY => {
            let Some((req_id, cached, outcome)) = wire::decode_reply(payload) else {
                return false;
            };
            if cached {
                crate::obs::counter_add("client.cache_hits", 1);
            }
            deliver(core, req_id, Incoming::Reply(outcome));
            true
        }
        wire::KIND_BUSY => {
            let Some((req_id, retry_after)) = wire::decode_busy(payload) else {
                return false;
            };
            deliver(core, req_id, Incoming::Busy(retry_after));
            true
        }
        wire::KIND_OBS => {
            // Streamed observability from the server's worker: absorb into
            // this process's trace sink and counters, exactly as the local
            // process tier absorbs a child's forwarded frame.
            if let Some((counters, lines)) = wire::decode_obs(payload) {
                crate::obs::counter_add("wire.obs_frames", 1);
                crate::obs::absorb_forwarded(&counters, &lines);
            }
            true
        }
        wire::KIND_HELLO => {
            let Some((generation, _peers)) = wire::decode_hello(payload) else {
                return false;
            };
            core.hello_generation.store(generation, Ordering::Relaxed);
            true
        }
        wire::KIND_PROBE_ACK => {
            let Some((nonce, generation)) = wire::decode_probe_ack(payload) else {
                return false;
            };
            core.hello_generation.store(generation, Ordering::Relaxed);
            deliver(core, nonce, Incoming::ProbeAck(generation));
            true
        }
        wire::KIND_HEARTBEAT => true,
        _ => false,
    }
}

fn deliver(core: &Arc<Core>, req_id: u64, incoming: Incoming) {
    let tx = core
        .mux
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .pending
        .remove(&req_id);
    if let Some((_, tx)) = tx {
        let _ = tx.send(incoming);
    }
}

fn register(core: &Arc<Core>, req_id: u64, generation: u64) -> mpsc::Receiver<Incoming> {
    let (tx, rx) = mpsc::channel();
    core.mux
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .pending
        .insert(req_id, (generation, tx));
    rx
}

fn unregister(core: &Arc<Core>, req_id: u64) {
    core.mux
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .pending
        .remove(&req_id);
}

/// Exponential reconnect backoff: 50 ms doubling per failure, capped at
/// `RESTUNE_BACKOFF_CAP_MS` (default 1600 ms) through the shared warn-once
/// parser.
pub(crate) fn backoff(failures: u32) -> Duration {
    let cap = crate::envcfg::positive_usize(
        "RESTUNE_BACKOFF_CAP_MS",
        "client",
        "the default backoff cap (1600 ms)",
    )
    .map(|ms| ms as u64)
    .unwrap_or(DEFAULT_BACKOFF_CAP_MS);
    Duration::from_millis((50u64 << failures.min(20)).min(cap))
}

/// One liveness probe against a host: dial if needed, send a probe frame,
/// and wait up to `timeout` for its acknowledgement. `Some(generation)` on
/// success — the breaker uses the generation to detect a restart — `None`
/// on any failure.
pub(crate) fn probe_host(core: &Arc<Core>, timeout: Duration) -> Option<u64> {
    let Ok(conn) = ensure_connected(core) else {
        return None;
    };
    let nonce = core.seq.fetch_add(1, Ordering::Relaxed);
    let rx = register(core, nonce, conn.id);
    if conn
        .write_frame(wire::KIND_PROBE, &wire::encode_probe(nonce))
        .is_err()
    {
        unregister(core, nonce);
        return None;
    }
    let deadline = Instant::now() + timeout;
    loop {
        match rx.recv_timeout(Duration::from_millis(25)) {
            Ok(Incoming::ProbeAck(generation)) => return Some(generation),
            Ok(_) | Err(mpsc::RecvTimeoutError::Disconnected) => {
                unregister(core, nonce);
                return None;
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if Instant::now() >= deadline {
                    unregister(core, nonce);
                    return None;
                }
            }
        }
    }
}

/// Hard-closes the host's current connection (the chaos conductor's
/// partition window): in-flight waiters complete dead and fail over; the
/// next attempt after the window re-dials cleanly.
pub(crate) fn sever(core: &Arc<Core>) {
    let mux = core.mux.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(conn) = &mux.conn {
        conn.shutdown();
    }
}

/// Runs one application attempt on the connected suite server. `None` when
/// no `--connect` route is armed or the job is not wire-encodable (the
/// caller then executes locally); `Some` carries the server's outcome.
pub(crate) fn remote_attempt(
    profile: &WorkloadProfile,
    technique: &Technique,
    sim: &SimConfig,
    specs: &[FaultSpec],
    timeout: Option<Duration>,
) -> Option<Result<InstrumentedRun, (FailureKind, String)>> {
    let mesh = active_mesh()?;
    // The same eligibility gate as the process-isolation tier: the wire
    // codec sends the profile by name and the machine by instruction
    // budget, so only registry profiles on the isca04 preset can cross.
    if registry::by_name(profile.name) != Some(*profile)
        || *sim != SimConfig::isca04(sim.instructions)
    {
        static WARNED: AtomicBool = AtomicBool::new(false);
        if !WARNED.swap(true, Ordering::Relaxed) {
            crate::obs::warn(
                "client",
                "job is not wire-encodable (non-registry profile or non-isca04 machine); \
                 running locally despite --connect",
            );
        }
        return None;
    }
    Some(mesh.request(profile, technique, sim, specs, timeout))
}

/// How one request attempt against one host ended, from the mesh's point
/// of view.
pub(crate) enum HostAttempt {
    /// The host answered (a result, a classified failure, an exhausted
    /// busy budget, an interrupt, or exhausted patience) — terminal for
    /// the request; failing over could only change report bytes.
    Reply(Result<InstrumentedRun, (FailureKind, String)>),
    /// The host is unreachable or its connection kept dying within the
    /// reconnect budget: the mesh should fail over to the next host.
    Down(String),
}

/// Runs one request against one host: connect (within `reconnect_budget`
/// attempts), send, and await the reply — resending on a dead connection,
/// which is idempotent because the server caches completed results by
/// fingerprint. `busy_spent` accumulates across hosts so a mesh-wide busy
/// storm still respects one budget.
#[allow(clippy::too_many_arguments)]
pub(crate) fn host_request(
    core: &Arc<Core>,
    job: &[u8],
    profile_name: &str,
    want_obs: bool,
    reconnect_budget: u32,
    started: Instant,
    patience: Duration,
    busy_spent: &mut Duration,
) -> HostAttempt {
    let mut connect_failures: u32 = 0;
    let interrupted = || {
        HostAttempt::Reply(Err((
            FailureKind::Interrupted,
            "shutdown signal received; remote attempt abandoned".to_string(),
        )))
    };
    let patience_exhausted = || {
        HostAttempt::Reply(Err((
            FailureKind::Transport,
            format!("no server reply within the {patience:?} request budget"),
        )))
    };
    loop {
        if crate::isolation::shutdown_requested() {
            return interrupted();
        }
        if started.elapsed() > patience {
            return patience_exhausted();
        }
        let conn = match ensure_connected(core) {
            Ok(conn) => conn,
            Err(e) => {
                connect_failures += 1;
                if connect_failures > reconnect_budget {
                    return HostAttempt::Down(format!(
                        "server unreachable after {connect_failures} attempts: {e}"
                    ));
                }
                std::thread::sleep(backoff(connect_failures - 1));
                continue;
            }
        };
        let req_id = core.seq.fetch_add(1, Ordering::Relaxed);
        let rx = register(core, req_id, conn.id);
        let request = wire::encode_request(req_id, want_obs, job);
        if conn.write_frame(wire::KIND_REQUEST, &request).is_err() {
            unregister(core, req_id);
            connect_failures += 1;
            if connect_failures > reconnect_budget {
                return HostAttempt::Down(format!(
                    "request write kept failing after {connect_failures} attempts"
                ));
            }
            std::thread::sleep(backoff(connect_failures - 1));
            continue;
        }
        // Await the reply in short slices so shutdown stays responsive.
        loop {
            if crate::isolation::shutdown_requested() {
                let _ = conn.write_frame(wire::KIND_CANCEL, &wire::encode_cancel(req_id));
                unregister(core, req_id);
                return interrupted();
            }
            if started.elapsed() > patience {
                let _ = conn.write_frame(wire::KIND_CANCEL, &wire::encode_cancel(req_id));
                unregister(core, req_id);
                return patience_exhausted();
            }
            match rx.recv_timeout(Duration::from_millis(100)) {
                Ok(Incoming::Reply(outcome)) => {
                    return HostAttempt::Reply(match outcome {
                        Ok(inst) if inst.result.app != profile_name => Err((
                            FailureKind::Transport,
                            format!(
                                "server replied for app '{}' but '{}' was asked",
                                inst.result.app, profile_name
                            ),
                        )),
                        other => other,
                    });
                }
                Ok(Incoming::Busy(retry_after)) => {
                    // Admission rejected: honor the hint, within bounds.
                    // The nap is clamped to the remaining budget, so a
                    // large server retry-after cannot overshoot it by a
                    // whole nap before the check fires. A resend is a
                    // fresh request, so it re-enters this loop.
                    let remaining = BUSY_BUDGET.saturating_sub(*busy_spent);
                    let nap = retry_after
                        .max(Duration::from_millis(10))
                        .min(Duration::from_secs(1))
                        .min(remaining);
                    *busy_spent += nap;
                    if *busy_spent >= BUSY_BUDGET {
                        return HostAttempt::Reply(Err((
                            FailureKind::Transport,
                            format!(
                                "server stayed busy for {busy_spent:?} \
                                 (admission queue never opened)"
                            ),
                        )));
                    }
                    crate::obs::counter_add("client.busy_retries", 1);
                    std::thread::sleep(nap);
                    break;
                }
                Ok(Incoming::ProbeAck(_)) => {
                    // A stray ack (a late probe raced this request id);
                    // keep waiting for the real reply.
                    continue;
                }
                Ok(Incoming::Dead) => {
                    // Reconnect and resend: the server caches completed
                    // results by fingerprint, so the resend is idempotent —
                    // a job that finished before the cut comes back as a
                    // cache hit, bit-exactly.
                    connect_failures += 1;
                    if connect_failures > reconnect_budget {
                        return HostAttempt::Down(format!(
                            "connection kept dying ({connect_failures} attempts)"
                        ));
                    }
                    crate::obs::counter_add("client.reconnects", 1);
                    std::thread::sleep(backoff(connect_failures - 1));
                    break;
                }
                Err(mpsc::RecvTimeoutError::Timeout) => continue,
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    // The reader dropped the sender without a message —
                    // equivalent to a dead connection.
                    unregister(core, req_id);
                    connect_failures += 1;
                    if connect_failures > reconnect_budget {
                        return HostAttempt::Down(format!(
                            "connection kept dying ({connect_failures} attempts)"
                        ));
                    }
                    std::thread::sleep(backoff(connect_failures - 1));
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testenv::with_env;

    #[test]
    fn backoff_doubles_and_caps() {
        with_env(&[("RESTUNE_BACKOFF_CAP_MS", None)], || {
            assert_eq!(backoff(0), Duration::from_millis(50));
            assert_eq!(backoff(1), Duration::from_millis(100));
            assert_eq!(backoff(4), Duration::from_millis(800));
            assert_eq!(backoff(5), Duration::from_millis(1600));
            assert_eq!(backoff(40), Duration::from_millis(1600), "capped");
        });
    }

    #[test]
    fn backoff_cap_and_heartbeat_read_their_env_knobs() {
        with_env(&[("RESTUNE_BACKOFF_CAP_MS", Some("200"))], || {
            assert_eq!(backoff(0), Duration::from_millis(50));
            assert_eq!(backoff(2), Duration::from_millis(200), "tight cap");
            assert_eq!(backoff(9), Duration::from_millis(200));
        });
        with_env(&[("RESTUNE_HEARTBEAT_SECS", Some("0.25"))], || {
            assert_eq!(heartbeat_every(), Duration::from_secs_f64(0.25));
        });
        with_env(&[("RESTUNE_HEARTBEAT_SECS", None)], || {
            assert_eq!(heartbeat_every(), Duration::from_secs(1));
        });
        // Invalid values fall back through the shared warn-once parser.
        crate::envcfg::reset_warnings();
        with_env(&[("RESTUNE_BACKOFF_CAP_MS", Some("not-a-number"))], || {
            assert_eq!(backoff(5), Duration::from_millis(1600));
        });
        with_env(&[("RESTUNE_HEARTBEAT_SECS", Some("-3"))], || {
            assert_eq!(heartbeat_every(), Duration::from_secs(1));
        });
    }

    #[test]
    fn connect_is_inactive_by_default_and_clear_is_idempotent() {
        // Serialized implicitly: no test in this binary arms a route.
        assert!(!connect_active());
        clear_connect();
        assert!(!connect_active());
    }
}
