//! The fused hot-path simulation kernel.
//!
//! [`run_fused`] is the batched form of the per-cycle chain in
//! [`crate::sim`]: controller → CPU → power model → supply. It exploits the
//! structure of each technique's feedback path to break the cycle-by-cycle
//! serialization with the supply integrator:
//!
//! * the base machine reads nothing back, pipeline damping reads only the
//!   previous cycle's pipeline events, and resonance tuning reads only the
//!   previous cycle's *current* — none of them observe the supply voltage.
//!   For these lanes the kernel runs controller/CPU/power serially while
//!   accumulating per-cycle current into a flat `f64` buffer, then flushes
//!   whole batches through [`PowerSupply::try_tick_batch`], whose step size
//!   and circuit coefficients are prepared once per flush
//!   ([`rlc::PreparedStep`]);
//! * the voltage-sensor technique feeds the supply voltage back into the
//!   next cycle's controller decision, so its lane flushes every cycle —
//!   the same code path, with a batch of one.
//!
//! Batches are rescheduling, not approximation: every stage runs the same
//! operations on the same values in the same order as the reference loop,
//! so the kernel is bit-exact with [`crate::sim`]'s pre-kernel path (pinned
//! by the golden-trace fixtures and the property suite). Workload decode is
//! shared across runs of the same application via
//! [`workloads::shared_stream`], and the CPU uses the event-driven
//! scheduler ([`cpusim::ScanMode::Event`]).
//!
//! The batch length comes from `RESTUNE_BATCH` (default
//! [`DEFAULT_BATCH`]) and is deliberately *not* part of [`SimConfig`]: it
//! cannot change results, so it must not enter checkpoint or baseline
//! fingerprints — a suite checkpointed at one batch size resumes bit-exactly
//! at another. `RESTUNE_KERNEL=off` routes runs through the reference loop
//! instead.

use std::time::Instant;

use cpusim::{Cpu, CycleEvents, PipelineControls};
use powermodel::{EnergyMeter, PowerModel};
use rlc::units::{Amps, Volts};
use rlc::PowerSupply;
use workloads::{shared_stream, stream::warm_caches, WorkloadProfile};

use crate::fault::{FaultRuntime, FaultSignal};
use crate::sim::{
    effective_power_config, finish_run, Controller, CycleRecord, PhaseTimings, SimConfig,
    SimResult, Technique, WATCHDOG_CHECK_MASK,
};

/// Cycles per supply flush when `RESTUNE_BATCH` is unset.
pub const DEFAULT_BATCH: usize = 1024;

/// Batch lengths are clamped to this to keep flush buffers bounded.
const MAX_BATCH: usize = 1 << 20;

/// The kernel's supply-flush batch length: `RESTUNE_BATCH` cycles when set
/// to a positive integer, [`DEFAULT_BATCH`] otherwise. Read per run so tests
/// can vary it; never fingerprinted (it cannot affect results).
///
/// A non-numeric or zero value is rejected with a once-per-process stderr
/// warning and falls back to the default — the shared `RESTUNE_*` knob
/// contract of [`crate::envcfg`].
pub fn batch_size() -> usize {
    crate::envcfg::positive_usize(
        "RESTUNE_BATCH",
        "kernel",
        &format!("the default batch of {DEFAULT_BATCH}"),
    )
    .map(|n| n.min(MAX_BATCH))
    .unwrap_or(DEFAULT_BATCH)
}

/// `false` when `RESTUNE_KERNEL` is `off`/`0` — the escape hatch that
/// routes all runs through the per-cycle reference loop.
pub(crate) fn fused_enabled() -> bool {
    !matches!(
        std::env::var("RESTUNE_KERNEL").as_deref(),
        Ok("off") | Ok("0")
    )
}

/// Which simulation engine executes a run: the batched kernel or the
/// pre-kernel per-cycle reference loop it is measured and validated against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnginePath {
    /// The fused batched kernel (the default engine).
    Fused,
    /// The pre-kernel reference: full-window CPU scans, private stream
    /// decode, one supply step per cycle.
    Reference,
}

/// Runs one application on an explicitly chosen engine path — the A/B entry
/// point for bit-exactness checks and the benchmark baseline, immune to the
/// `RESTUNE_KERNEL` environment toggle.
pub fn run_on_path(
    profile: &WorkloadProfile,
    technique: &Technique,
    sim: &SimConfig,
    path: EnginePath,
) -> SimResult {
    let mut faults = FaultRuntime::none();
    match path {
        EnginePath::Fused => {
            run_fused(
                profile,
                technique,
                sim,
                batch_size(),
                |_| {},
                None,
                &mut faults,
                None,
            )
            .0
        }
        EnginePath::Reference => {
            crate::sim::run_core_reference(profile, technique, sim, |_| {}, None, &mut faults, None)
                .0
        }
    }
}

/// Runs one application through the fused kernel with an explicit supply
/// flush batch length, ignoring `RESTUNE_BATCH` — the hook the
/// batch-invariance property tests use. Returns the outcome and the
/// detector-event total, both of which must be identical for every `batch`.
pub fn run_with_batch(
    profile: &WorkloadProfile,
    technique: &Technique,
    sim: &SimConfig,
    batch: usize,
) -> (SimResult, u64) {
    let mut faults = FaultRuntime::none();
    run_fused(
        profile,
        technique,
        sim,
        batch.clamp(1, MAX_BATCH),
        |_| {},
        None,
        &mut faults,
        None,
    )
}

/// A cycle simulated but not yet flushed through the supply: everything a
/// [`CycleRecord`] needs except the noise voltage.
struct PendingCycle {
    cycle: u64,
    current: f64,
    event_count: Option<u32>,
    restricted: bool,
    events: CycleEvents,
}

/// The fused batched simulation loop. Same contract as the reference loop
/// in [`crate::sim`]: returns the outcome and detector-event count;
/// watchdog expiry and surfaced integration errors unwind with a typed
/// [`FaultSignal`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_fused<F: FnMut(&CycleRecord)>(
    profile: &WorkloadProfile,
    technique: &Technique,
    sim: &SimConfig,
    flush_batch: usize,
    mut observer: F,
    mut timers: Option<&mut PhaseTimings>,
    faults: &mut FaultRuntime,
    deadline: Option<Instant>,
) -> (SimResult, u64) {
    let power_cfg = effective_power_config(technique, sim);
    let mut cpu = Cpu::new(sim.cpu, shared_stream(profile, sim.instructions));
    warm_caches(&mut cpu);
    let mut model = PowerModel::new(power_cfg, sim.cpu);
    let idle = power_cfg.idle_current;
    let mut supply = PowerSupply::new(sim.supply, sim.clock, idle);
    let mut meter = EnergyMeter::new(power_cfg.vdd, sim.clock);
    let mut controller = Controller::for_technique(technique);

    // The sensor technique closes its loop through the supply voltage, so
    // its supply flush degenerates to one cycle; every other technique's
    // feedback is satisfied within the serial portion.
    let flush_every = if matches!(technique, Technique::Sensor(_)) {
        1
    } else {
        flush_batch.max(1)
    };

    let mut currents: Vec<f64> = Vec::with_capacity(flush_every);
    let mut noises: Vec<f64> = Vec::with_capacity(flush_every);
    let mut pending: Vec<PendingCycle> = Vec::with_capacity(flush_every);

    let mut last_current = idle;
    let mut last_noise = Volts::new(0.0);
    let mut last_events = CycleEvents::default();
    let mut cycles = 0u64;
    let mut damping_bound = 0u64;

    // Times one stage when this cycle is sampled, otherwise runs it bare
    // (same sampling discipline as the reference loop).
    macro_rules! staged {
        ($sampling:expr, $field:ident, $e:expr) => {
            if let (true, Some(acc)) = ($sampling, timers.as_deref_mut()) {
                let t0 = Instant::now();
                let v = $e;
                acc.$field += t0.elapsed();
                v
            } else {
                $e
            }
        };
    }

    while cpu.stats().committed < sim.instructions && cycles < sim.max_cycles {
        // Serial portion: controller → CPU → power model, accumulating
        // per-cycle current until the batch is full or the run ends.
        currents.clear();
        pending.clear();
        let base_cycle = cycles;
        while pending.len() < flush_every
            && cpu.stats().committed < sim.instructions
            && cycles < sim.max_cycles
        {
            if let Some(deadline) = deadline {
                if cycles & WATCHDOG_CHECK_MASK == 0 && Instant::now() >= deadline {
                    std::panic::panic_any(FaultSignal::timeout(cycles));
                }
            }
            let sampling = timers.is_some() && cycles.is_multiple_of(PhaseTimings::SAMPLE_INTERVAL);
            let mut event_count = None;
            let controls = staged!(
                sampling,
                controller,
                match &mut controller {
                    Controller::Base => PipelineControls::free(),
                    Controller::Tuning(t) => {
                        let c = t.tick(faults.sense(cycles, last_current.amps()));
                        event_count = t.last_event().map(|e| e.count);
                        c
                    }
                    Controller::Sensor(s) =>
                        s.tick(Volts::new(faults.sense(cycles, last_noise.volts()))),
                    Controller::Damping(d) => {
                        let c = d.tick(&last_events);
                        if c.phantom.is_some() {
                            damping_bound += 1;
                        }
                        c
                    }
                }
            );
            let ev = staged!(sampling, cpu, cpu.tick(controls));
            let amps = staged!(
                sampling,
                power,
                faults.perturb_current(cycles, model.current_for(&ev).amps())
            );
            meter.record(Amps::new(amps));
            if sampling {
                if let Some(acc) = timers.as_deref_mut() {
                    acc.sampled_cycles += 1;
                }
            }
            currents.push(amps);
            pending.push(PendingCycle {
                cycle: cycles,
                current: amps,
                event_count,
                restricted: controls.is_restricted(),
                events: ev,
            });
            last_current = Amps::new(amps);
            last_events = ev;
            cycles += 1;
        }

        // Flush: one batched supply pass over the accumulated currents.
        // The raw flush duration is accumulated undivided; report time
        // scales the total down by SAMPLE_INTERVAL — the batch analogue of
        // timing every 64th cycle, without the per-flush truncation that
        // zeroes out sub-64ns flushes (every flush, for the sensor lane).
        noises.clear();
        let t0 = timers.as_deref_mut().map(|_| Instant::now());
        let flushed = supply.try_tick_batch(&currents, &mut noises);
        if let (Some(t0), Some(acc)) = (t0, timers.as_deref_mut()) {
            acc.supply_flush += t0.elapsed();
        }
        let completed = match &flushed {
            Ok(()) => pending.len(),
            Err((k, _)) => *k,
        };
        for (p, &noise) in pending[..completed].iter().zip(&noises) {
            observer(&CycleRecord {
                cycle: p.cycle,
                current: Amps::new(p.current),
                noise: Volts::new(noise),
                event_count: p.event_count,
                restricted: p.restricted,
                events: p.events,
            });
        }
        if let Err((k, e)) = flushed {
            std::panic::panic_any(FaultSignal::numerical(e, base_cycle + k as u64));
        }
        if let Some(&n) = noises.last() {
            last_noise = Volts::new(n);
        }
    }

    finish_run(
        profile,
        cycles,
        cpu.stats().committed,
        cpu.stats().ipc(),
        &supply,
        &meter,
        &controller,
        damping_bound,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TuningConfig;
    use crate::{DampingConfig, SensorConfig};
    use workloads::spec2k;

    fn paths_agree(technique: Technique) {
        let p = spec2k::by_name("swim").unwrap();
        let sim = SimConfig::isca04(30_000);
        let fused = run_on_path(&p, &technique, &sim, EnginePath::Fused);
        let reference = run_on_path(&p, &technique, &sim, EnginePath::Reference);
        assert_eq!(fused, reference, "paths diverged for {}", technique.name());
    }

    #[test]
    fn fused_matches_reference_for_base() {
        paths_agree(Technique::Base);
    }

    #[test]
    fn fused_matches_reference_for_tuning() {
        paths_agree(Technique::Tuning(TuningConfig::isca04_table1(100)));
    }

    #[test]
    fn fused_matches_reference_for_sensor() {
        paths_agree(Technique::Sensor(SensorConfig::table4(20.0, 10.0, 5)));
    }

    #[test]
    fn fused_matches_reference_for_damping() {
        paths_agree(Technique::Damping(DampingConfig::isca04_table5(0.5)));
    }

    #[test]
    fn batch_size_defaults_and_parses() {
        use crate::testenv::with_env;
        // Positive integers are honored (clamped to the bound), everything
        // else warns once and falls back to the default — the same contract
        // as RESTUNE_WORKERS.
        let cases: [(Option<&str>, usize); 7] = [
            (None, DEFAULT_BATCH),
            (Some("7"), 7),
            (Some(" 512 "), 512),
            (Some("9999999999"), MAX_BATCH),
            (Some("0"), DEFAULT_BATCH),
            (Some("huge"), DEFAULT_BATCH),
            (Some("-1"), DEFAULT_BATCH),
        ];
        for (value, expected) in cases {
            let got = with_env(&[("RESTUNE_BATCH", value)], batch_size);
            assert_eq!(got, expected, "RESTUNE_BATCH={value:?}");
        }
    }
}
