//! Relative cost metrics: slowdown, energy, and energy-delay of a technique
//! run against its base run, plus suite-level summaries and the structured
//! per-run observability rows ([`RunMetrics`]) the experiment engine emits.

use crate::engine::CacheStats;
use crate::sim::{InstrumentedRun, SimResult};

/// One application's technique-vs-base comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelativeOutcome {
    /// Application name.
    pub app: &'static str,
    /// Technique cycles / base cycles (≥ 1 in practice).
    pub slowdown: f64,
    /// Technique energy / base energy.
    pub relative_energy: f64,
    /// Relative energy-delay product.
    pub relative_energy_delay: f64,
    /// Fraction of technique cycles in the first-level tuning response.
    pub first_level_fraction: f64,
    /// Fraction of technique cycles in the second-level tuning response.
    pub second_level_fraction: f64,
    /// Fraction of technique cycles in the sensor technique's response.
    pub sensor_response_fraction: f64,
    /// Violation cycles remaining under the technique.
    pub violation_cycles: u64,
}

impl RelativeOutcome {
    /// Builds the comparison for one app.
    ///
    /// # Panics
    ///
    /// Panics if the runs are for different apps, or the base run is empty,
    /// or the two runs did not commit the same instruction count (the
    /// slowdown metric requires identical work).
    pub fn new(base: &SimResult, technique: &SimResult) -> Self {
        assert_eq!(base.app, technique.app, "comparing different applications");
        assert!(
            base.cycles > 0 && base.energy_joules > 0.0,
            "base run must be non-empty"
        );
        // Runs stop at the first cycle reaching the instruction budget, so
        // committed counts may differ by up to a commit width.
        let diff = base.committed.abs_diff(technique.committed);
        assert!(
            diff <= 8,
            "base and technique must run identical work (committed {} vs {})",
            base.committed,
            technique.committed
        );
        let slowdown = technique.cycles as f64 / base.cycles as f64;
        let relative_energy = technique.energy_joules / base.energy_joules;
        Self {
            app: base.app,
            slowdown,
            relative_energy,
            relative_energy_delay: relative_energy * slowdown,
            first_level_fraction: technique.first_level_fraction(),
            second_level_fraction: technique.second_level_fraction(),
            sensor_response_fraction: technique.sensor_response_fraction(),
            violation_cycles: technique.violation_cycles,
        }
    }
}

/// Structured observability for one application run: what the engine knows
/// about how the simulation behaved and what it cost to execute, emitted by
/// every harness under `--json`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunMetrics {
    /// Application name.
    pub app: &'static str,
    /// Technique display name (`base`, `tuning`, ...).
    pub technique: &'static str,
    /// End-to-end wall time of the run in seconds (0 for replayed rows).
    pub wall_seconds: f64,
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Simulated cycles per wall second (0 for replayed rows).
    pub sim_cycles_per_second: f64,
    /// Cycles whose supply deviation exceeded the noise margin.
    pub violation_cycles: u64,
    /// Fraction of cycles in the first-level tuning response.
    pub first_level_fraction: f64,
    /// Fraction of cycles in the second-level tuning response.
    pub second_level_fraction: f64,
    /// Fraction of cycles in the sensor technique's throttled response
    /// (0 for other techniques).
    pub sensor_response_fraction: f64,
    /// Resonant events the tuning detector raised (0 for other techniques).
    pub detector_events: u64,
    /// Process-wide base-suite cache hits when this row was built.
    pub base_cache_hits: u64,
    /// Process-wide base-suite simulations when this row was built.
    pub base_cache_misses: u64,
    /// Sampled wall time in the controller phase, seconds.
    pub phase_controller_seconds: f64,
    /// Sampled wall time in the CPU model, seconds.
    pub phase_cpu_seconds: f64,
    /// Sampled wall time in the power model, seconds.
    pub phase_power_seconds: f64,
    /// Sampled wall time in the supply integration, seconds.
    pub phase_supply_seconds: f64,
    /// `true` when the row was replayed from a recorded baseline rather
    /// than simulated in this process.
    pub replayed: bool,
    /// Supervisor attempts this run took (1 = first try succeeded).
    pub attempts: u32,
}

impl RunMetrics {
    /// Builds the row for a freshly simulated run.
    pub fn from_instrumented(
        technique: &'static str,
        run: &InstrumentedRun,
        cache: CacheStats,
    ) -> Self {
        let wall = run.wall.as_secs_f64();
        Self {
            app: run.result.app,
            technique,
            wall_seconds: wall,
            cycles: run.result.cycles,
            committed: run.result.committed,
            sim_cycles_per_second: if wall > 0.0 {
                run.result.cycles as f64 / wall
            } else {
                0.0
            },
            violation_cycles: run.result.violation_cycles,
            first_level_fraction: run.result.first_level_fraction(),
            second_level_fraction: run.result.second_level_fraction(),
            sensor_response_fraction: run.result.sensor_response_fraction(),
            detector_events: run.detector_events,
            base_cache_hits: cache.hits,
            base_cache_misses: cache.misses,
            phase_controller_seconds: run.phases.controller.as_secs_f64(),
            phase_cpu_seconds: run.phases.cpu.as_secs_f64(),
            phase_power_seconds: run.phases.power.as_secs_f64(),
            phase_supply_seconds: run.phases.supply_sampled().as_secs_f64(),
            replayed: false,
            attempts: 1,
        }
    }

    /// Builds the row for a result replayed from a recorded baseline: the
    /// simulation outcome is known but nothing was executed, so all timing
    /// fields are zero.
    pub fn replayed(technique: &'static str, result: &SimResult, cache: CacheStats) -> Self {
        Self {
            app: result.app,
            technique,
            wall_seconds: 0.0,
            cycles: result.cycles,
            committed: result.committed,
            sim_cycles_per_second: 0.0,
            violation_cycles: result.violation_cycles,
            first_level_fraction: result.first_level_fraction(),
            second_level_fraction: result.second_level_fraction(),
            sensor_response_fraction: result.sensor_response_fraction(),
            detector_events: 0,
            base_cache_hits: cache.hits,
            base_cache_misses: cache.misses,
            phase_controller_seconds: 0.0,
            phase_cpu_seconds: 0.0,
            phase_power_seconds: 0.0,
            phase_supply_seconds: 0.0,
            replayed: true,
            attempts: 1,
        }
    }
}

/// Suite-level summary in the shape of the paper's Tables 3–5 rows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean slowdown across apps.
    pub avg_slowdown: f64,
    /// The worst per-app slowdown.
    pub worst_slowdown: f64,
    /// Which app was worst.
    pub worst_app: &'static str,
    /// Number of apps slower than 15 %.
    pub apps_over_15_percent: usize,
    /// Mean relative energy-delay.
    pub avg_energy_delay: f64,
    /// Mean fraction of cycles in the first-level response.
    pub avg_first_level_fraction: f64,
    /// Mean fraction of cycles in the second-level response.
    pub avg_second_level_fraction: f64,
    /// Mean fraction of cycles in the sensor response.
    pub avg_sensor_response_fraction: f64,
    /// Total violation cycles remaining across the suite.
    pub total_violation_cycles: u64,
}

impl Summary {
    /// Aggregates per-app outcomes.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn from_outcomes(outcomes: &[RelativeOutcome]) -> Self {
        assert!(!outcomes.is_empty(), "cannot summarize an empty suite");
        let n = outcomes.len() as f64;
        let mean = |f: fn(&RelativeOutcome) -> f64| outcomes.iter().map(f).sum::<f64>() / n;
        let worst = outcomes
            .iter()
            .max_by(|a, b| a.slowdown.total_cmp(&b.slowdown))
            .expect("non-empty");
        Self {
            avg_slowdown: mean(|o| o.slowdown),
            worst_slowdown: worst.slowdown,
            worst_app: worst.app,
            apps_over_15_percent: outcomes.iter().filter(|o| o.slowdown > 1.15).count(),
            avg_energy_delay: mean(|o| o.relative_energy_delay),
            avg_first_level_fraction: mean(|o| o.first_level_fraction),
            avg_second_level_fraction: mean(|o| o.second_level_fraction),
            avg_sensor_response_fraction: mean(|o| o.sensor_response_fraction),
            total_violation_cycles: outcomes.iter().map(|o| o.violation_cycles).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlc::units::Volts;

    fn result(app: &'static str, cycles: u64, joules: f64) -> SimResult {
        SimResult {
            app,
            cycles,
            committed: 1000,
            ipc: 1.0,
            violation_cycles: 0,
            worst_noise: Volts::new(0.0),
            energy_joules: joules,
            energy_delay: 0.0,
            first_level_cycles: 0,
            second_level_cycles: 0,
            sensor_response_cycles: 0,
            damping_bound_cycles: 0,
        }
    }

    #[test]
    fn relative_outcome_math() {
        let base = result("x", 1000, 1.0);
        let mut tech = result("x", 1100, 1.05);
        tech.first_level_cycles = 110;
        let o = RelativeOutcome::new(&base, &tech);
        assert!((o.slowdown - 1.1).abs() < 1e-12);
        assert!((o.relative_energy - 1.05).abs() < 1e-12);
        assert!((o.relative_energy_delay - 1.155).abs() < 1e-12);
        assert!((o.first_level_fraction - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "different applications")]
    fn mismatched_apps_panic() {
        let _ = RelativeOutcome::new(&result("a", 10, 1.0), &result("b", 10, 1.0));
    }

    #[test]
    #[should_panic(expected = "identical work")]
    fn mismatched_work_panics() {
        let base = result("a", 10, 1.0);
        let mut tech = result("a", 12, 1.0);
        tech.committed = 900;
        let _ = RelativeOutcome::new(&base, &tech);
    }

    #[test]
    fn summary_aggregates() {
        let outcomes = vec![
            RelativeOutcome::new(&result("a", 100, 1.0), &result("a", 105, 1.02)),
            RelativeOutcome::new(&result("b", 100, 1.0), &result("b", 130, 1.20)),
            RelativeOutcome::new(&result("c", 100, 1.0), &result("c", 101, 1.00)),
        ];
        let s = Summary::from_outcomes(&outcomes);
        assert!((s.avg_slowdown - (1.05 + 1.30 + 1.01) / 3.0).abs() < 1e-12);
        assert_eq!(s.worst_app, "b");
        assert!((s.worst_slowdown - 1.3).abs() < 1e-12);
        assert_eq!(s.apps_over_15_percent, 1);
        assert_eq!(s.total_violation_cycles, 0);
    }

    #[test]
    #[should_panic(expected = "empty suite")]
    fn empty_summary_panics() {
        let _ = Summary::from_outcomes(&[]);
    }

    #[test]
    fn run_metrics_derive_rates_from_wall_time() {
        use crate::sim::{InstrumentedRun, PhaseTimings};
        use std::time::Duration;

        let phases = PhaseTimings {
            cpu: Duration::from_millis(10),
            sampled_cycles: 16,
            ..Default::default()
        };
        let mut sim_result = result("gzip", 2_000, 1.0);
        sim_result.sensor_response_cycles = 200;
        let run = InstrumentedRun {
            result: sim_result,
            detector_events: 3,
            phases,
            wall: Duration::from_millis(500),
        };
        let m = RunMetrics::from_instrumented("base", &run, CacheStats { hits: 2, misses: 1 });
        assert_eq!(m.app, "gzip");
        assert!((m.sensor_response_fraction - 0.1).abs() < 1e-12);
        assert!((m.sim_cycles_per_second - 4_000.0).abs() < 1e-6);
        assert!((m.phase_cpu_seconds - 0.010).abs() < 1e-9);
        assert_eq!(m.detector_events, 3);
        assert_eq!((m.base_cache_hits, m.base_cache_misses), (2, 1));
        assert!(!m.replayed);
    }

    #[test]
    fn replayed_metrics_carry_outcome_but_no_timing() {
        let m = RunMetrics::replayed("base", &result("mcf", 5_000, 2.0), CacheStats::default());
        assert!(m.replayed);
        assert_eq!(m.cycles, 5_000);
        assert_eq!(m.wall_seconds, 0.0);
        assert_eq!(m.sim_cycles_per_second, 0.0);
    }
}
