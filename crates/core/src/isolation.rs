//! The process-isolation tier: run one application simulation per child
//! process so that *nothing* a worker does — `abort()`, SIGKILL, a stack
//! overflow, a non-cooperative infinite loop — can take the suite down.
//!
//! The in-process supervisor (see [`crate::engine`]) contains panics with
//! `catch_unwind` and long runs with a cooperative watchdog, but both only
//! work when the failure unwinds politely. This tier adds the hard
//! boundary: the harness binary re-execs itself (`<exe> worker --app <name>
//! --fingerprint <fp>`) via [`std::env::current_exe`], sends the job over
//! the child's stdin as one checksummed [`crate::wire`] frame, and reads a
//! single reply frame back from its stdout. The parent enforces a *hard*
//! wall-clock deadline with [`std::process::Child::kill`] and classifies
//! every way a child can die — signal, non-zero exit, corrupt or missing
//! reply frame, deadline overrun — into the [`FailureKind`] taxonomy.
//!
//! Tier selection is `RESTUNE_ISOLATION`:
//!
//! * `thread` (default) — the in-process path; bit-identical to PR 2.
//! * `process` — force child processes; warns and falls back in-process
//!   when no worker entry is installed or a spawn fails.
//! * `auto` — processes when the running binary installed a worker entry
//!   (called [`maybe_run_worker`] at startup), threads otherwise.
//!
//! Children are always spawned with `RESTUNE_ISOLATION=thread` so a worker
//! can never recursively spawn grandchildren.
//!
//! The module also owns graceful shutdown: [`install_signal_handlers`]
//! arms SIGINT/SIGTERM to set a process-wide flag (checked by the engine's
//! worker pool, which stops claiming apps and records `interrupted` slots)
//! and re-arms the default disposition so a second signal force-kills.

use std::io::{Read as _, Write as _};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use workloads::{registry, WorkloadProfile};

use crate::fault::{FailureKind, FaultSpec};
use crate::sim::{run_supervised, InstrumentedRun, SimConfig, Technique};
use crate::wire;

/// The hidden argv\[1\] that turns any harness binary into a worker.
pub const WORKER_SUBCOMMAND: &str = "worker";

/// Set once a binary has called [`maybe_run_worker`]; `auto` isolation only
/// spawns children when the child would actually answer as a worker.
static WORKER_INSTALLED: AtomicBool = AtomicBool::new(false);

/// Set by the SIGINT/SIGTERM handler; sticky for the process lifetime.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// One-shot latches for the warnings this module rate-limits.
static WARNED_BAD_MODE: AtomicBool = AtomicBool::new(false);
static WARNED_NO_WORKER: AtomicBool = AtomicBool::new(false);
static WARNED_SPAWN: AtomicBool = AtomicBool::new(false);

/// Which execution tier an attempt runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IsolationMode {
    /// In-process: `catch_unwind` + cooperative watchdog (the default).
    Thread,
    /// One child process per application attempt.
    Process,
}

fn warn_once(latch: &AtomicBool, message: &str) {
    if !latch.swap(true, Ordering::Relaxed) {
        crate::obs::warn("isolation", message);
    }
}

/// `true` when spawning `current_exe() worker ...` would reach a worker
/// entry. `RESTUNE_WORKER_ARGV` (a test hook, see [`spawn_attempt`])
/// counts: the spawned argv is then caller-supplied.
pub(crate) fn worker_available() -> bool {
    WORKER_INSTALLED.load(Ordering::Relaxed) || std::env::var_os("RESTUNE_WORKER_ARGV").is_some()
}

/// Resolves `RESTUNE_ISOLATION` to the tier this attempt should use.
/// Invalid values and `process` without a worker entry warn once per
/// process and fall back to [`IsolationMode::Thread`].
pub fn isolation_mode() -> IsolationMode {
    match std::env::var("RESTUNE_ISOLATION") {
        Err(_) => IsolationMode::Thread,
        Ok(raw) => match raw.trim().to_ascii_lowercase().as_str() {
            "" | "thread" => IsolationMode::Thread,
            "process" => {
                if worker_available() {
                    IsolationMode::Process
                } else {
                    warn_once(
                        &WARNED_NO_WORKER,
                        "RESTUNE_ISOLATION=process but this binary has no worker entry \
                         (harness never called maybe_run_worker); running in-process",
                    );
                    IsolationMode::Thread
                }
            }
            "auto" => {
                if worker_available() {
                    IsolationMode::Process
                } else {
                    IsolationMode::Thread
                }
            }
            other => {
                warn_once(
                    &WARNED_BAD_MODE,
                    &format!(
                        "invalid RESTUNE_ISOLATION='{other}' \
                         (expected process, thread, or auto); running in-process"
                    ),
                );
                IsolationMode::Thread
            }
        },
    }
}

/// `true` once SIGINT or SIGTERM was received; the engine stops claiming
/// new applications and the pollers kill their children.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::Relaxed)
}

#[cfg(test)]
pub(crate) fn set_shutdown_for_test(v: bool) {
    SHUTDOWN.store(v, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Signals (raw glibc, no libc crate: the workspace is offline)
// ---------------------------------------------------------------------------

#[cfg(unix)]
mod sys {
    use std::os::raw::c_int;

    // Minimal glibc surface. `signal` is the historical interface; for a
    // flag-setting handler with re-arm-to-default semantics it is exactly
    // what we need, and it avoids depending on the `libc` crate.
    extern "C" {
        fn signal(signum: c_int, handler: usize) -> usize;
        fn kill(pid: c_int, sig: c_int) -> c_int;
        fn getpid() -> c_int;
    }

    pub(super) const SIGINT: c_int = 2;
    pub(super) const SIGKILL: c_int = 9;
    pub(super) const SIGTERM: c_int = 15;
    const SIG_DFL: usize = 0;

    extern "C" fn on_signal(sig: c_int) {
        super::SHUTDOWN.store(true, std::sync::atomic::Ordering::Relaxed);
        // Restore the default disposition: a second Ctrl-C kills the
        // process outright instead of waiting for a graceful drain.
        unsafe {
            signal(sig, SIG_DFL);
        }
    }

    pub(super) fn install() {
        let handler = on_signal as extern "C" fn(c_int) as *const () as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }

    /// Delivers SIGKILL to the calling process — the injected
    /// `worker-kill` fault, indistinguishable from the OOM killer.
    pub(super) fn kill_self() {
        unsafe {
            kill(getpid(), SIGKILL);
        }
    }
}

/// Arms SIGINT/SIGTERM for graceful shutdown: the first signal sets the
/// [`shutdown_requested`] flag (the suite drains: running children are
/// killed, unclaimed apps become `interrupted` failures, the checkpoint
/// keeps every completed row), the second force-kills. No-op off unix.
pub fn install_signal_handlers() {
    #[cfg(unix)]
    sys::install();
}

/// Kills the calling process with SIGKILL (the `worker-kill` injected
/// fault). Falls back to `abort` off unix.
pub(crate) fn kill_self() {
    #[cfg(unix)]
    sys::kill_self();
    #[allow(unreachable_code)]
    {
        std::process::abort();
    }
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

/// Installs this binary's worker entry and, when invoked as
/// `<exe> worker ...`, serves the job and never returns. Harness `main`s
/// call this before argument parsing; under any other argv it only flips
/// the "worker available" latch and returns.
pub fn maybe_run_worker() {
    WORKER_INSTALLED.store(true, Ordering::Relaxed);
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) != Some(WORKER_SUBCOMMAND) {
        return;
    }
    let mut app = None;
    let mut fingerprint = None;
    let mut it = args[2..].iter();
    while let Some(flag) = it.next() {
        match (flag.as_str(), it.next()) {
            ("--app", Some(v)) => app = Some(v.clone()),
            ("--fingerprint", Some(v)) => fingerprint = u64::from_str_radix(v, 16).ok(),
            _ => {}
        }
    }
    std::process::exit(serve_worker(app.as_deref(), fingerprint));
}

/// The worker loop body: reads one job frame from stdin, runs it, writes
/// one reply frame to stdout. Public (but hidden) so the test-suite shim —
/// a libtest test spawned as the child — can serve jobs too.
///
/// Exit/return code 0 means "a reply frame was written" (including
/// classified-failure replies); non-zero means the parent gets no frame and
/// must classify from the exit status alone.
#[doc(hidden)]
pub fn serve_worker(expected_app: Option<&str>, argv_fingerprint: Option<u64>) -> i32 {
    crate::fault::install_signal_quieting_hook();

    let mut input = Vec::new();
    if std::io::stdin().lock().read_to_end(&mut input).is_err() {
        return 3;
    }
    let Some((wire::KIND_JOB, payload)) = wire::scan_frame(&input) else {
        return 3;
    };

    let failure_frame = |kind: FailureKind, message: &str| {
        wire::encode_frame(wire::KIND_FAILURE, &wire::encode_failure(kind, message))
    };
    let frame = match wire::decode_job(payload) {
        None => failure_frame(FailureKind::Transport, "job frame failed to decode"),
        Some(job) => {
            // The codec-drift tripwire: the fingerprint of the *decoded*
            // values must match what the parent stamped on the frame (and
            // on argv). Any lossy field fails here, loudly.
            let decoded_fp =
                wire::job_fingerprint(&job.profile, &job.technique, &job.sim, &job.specs);
            if decoded_fp != job.fingerprint || argv_fingerprint.is_some_and(|f| f != decoded_fp) {
                failure_frame(
                    FailureKind::Transport,
                    &format!(
                        "job fingerprint mismatch (frame {:016x}, decoded {decoded_fp:016x}): \
                         wire codec drift",
                        job.fingerprint
                    ),
                )
            } else if expected_app.is_some_and(|a| a != job.profile.name) {
                failure_frame(
                    FailureKind::Transport,
                    &format!(
                        "argv names app '{}' but the job frame carries '{}'",
                        expected_app.unwrap_or_default(),
                        job.profile.name
                    ),
                )
            } else {
                let deadline = job.deadline.map(|d| Instant::now() + d);
                match catch_unwind(AssertUnwindSafe(|| {
                    run_supervised(&job.profile, &job.technique, &job.sim, &job.specs, deadline)
                })) {
                    Ok(inst) => wire::encode_frame(wire::KIND_RESULT, &wire::encode_result(&inst)),
                    Err(panic_payload) => {
                        let (kind, message) = crate::engine::classify_payload(panic_payload);
                        failure_frame(kind, &message)
                    }
                }
            }
        }
    };

    // When the parent asked for observability forwarding (it spawned us
    // with RESTUNE_TRACE=wire), ship the buffered trace lines and the
    // counter registry home as an obs frame ahead of the reply, so the
    // process tier's trace matches the thread tier's.
    let mut out = Vec::new();
    if let Some((counters, lines)) = crate::obs::take_forwarded() {
        if !counters.is_empty() || !lines.is_empty() {
            out.extend_from_slice(&wire::encode_frame(
                wire::KIND_OBS,
                &wire::encode_obs(&counters, &lines),
            ));
        }
    }
    out.extend_from_slice(&frame);

    // Raw handle writes bypass libtest's output capture, so the shim test
    // can serve frames even when spawned as a captured test process.
    let mut stdout = std::io::stdout().lock();
    if stdout
        .write_all(&out)
        .and_then(|()| stdout.flush())
        .is_err()
    {
        return 3;
    }
    0
}

// ---------------------------------------------------------------------------
// Parent side
// ---------------------------------------------------------------------------

/// How much wall-clock slack the parent grants beyond the cooperative
/// deadline before hard-killing the child. Generous on purpose: the
/// in-child watchdog should fire first, the hard kill is the backstop for
/// non-cooperative hangs.
fn hard_kill_grace(timeout: Duration) -> Duration {
    timeout.max(Duration::from_secs(2))
}

/// Where a child's forwarded observability frames go.
pub(crate) enum ObsRouting<'a> {
    /// Decode the obs frame and absorb it into this process's trace sink
    /// and counter registry (the harness path: the parent owns the trace).
    Absorb,
    /// Hand the raw `KIND_OBS` payload to a callback — the server path,
    /// which re-frames it onto the requesting client's connection without
    /// ever decoding it. Forces the child into wire-forwarding mode even
    /// when this process traces nothing itself.
    Relay(&'a (dyn Fn(&[u8]) + Sync)),
}

impl std::fmt::Debug for ObsRouting<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ObsRouting::Absorb => "ObsRouting::Absorb",
            ObsRouting::Relay(_) => "ObsRouting::Relay(..)",
        })
    }
}

/// Runs one application attempt in a child process. Returns `None` when
/// the attempt is not eligible for process isolation (mode, non-registry
/// profile, non-`isca04` machine, spawn failure) — the caller then uses the
/// in-process path. `Some(Err)` carries the classified failure.
///
/// `force` bypasses the `RESTUNE_ISOLATION` mode gate (the server always
/// wants the process tier when a worker entry exists); it still requires a
/// worker to actually be reachable. `obs` routes the child's forwarded
/// observability frames (see [`ObsRouting`]).
pub(crate) fn process_attempt(
    profile: &WorkloadProfile,
    technique: &Technique,
    sim: &SimConfig,
    specs: &[FaultSpec],
    timeout: Option<Duration>,
    force: bool,
    obs: &ObsRouting<'_>,
) -> Option<Result<InstrumentedRun, (FailureKind, String)>> {
    if force {
        if !worker_available() {
            return None;
        }
    } else if isolation_mode() != IsolationMode::Process {
        return None;
    }
    // Eligibility: the wire codec sends the profile by *name* and the
    // machine by *instruction budget*, so the child can only reconstruct
    // jobs whose profile is the registry entry and whose SimConfig is the
    // isca04 preset. Anything else runs in-process. The fingerprint check
    // in the worker backstops this gate.
    if registry::by_name(profile.name) != Some(*profile)
        || *sim != SimConfig::isca04(sim.instructions)
    {
        return None;
    }

    let fingerprint = wire::job_fingerprint(profile, technique, sim, specs);
    let payload = wire::encode_job(profile, technique, sim, specs, timeout, fingerprint);
    let frame = wire::encode_frame(wire::KIND_JOB, &payload);

    let Ok(exe) = std::env::current_exe() else {
        warn_once(
            &WARNED_SPAWN,
            "cannot resolve current_exe(); process isolation unavailable, running in-process",
        );
        return None;
    };
    let mut cmd = Command::new(exe);
    match std::env::var("RESTUNE_WORKER_ARGV") {
        // Test hook: reroute the spawn through arbitrary argv (a libtest
        // filter selecting the worker-shim test). The job frame still
        // carries everything; --app/--fingerprint are then unchecked.
        Ok(raw) => {
            cmd.args(raw.split_whitespace());
        }
        Err(_) => {
            cmd.args([
                WORKER_SUBCOMMAND,
                "--app",
                profile.name,
                "--fingerprint",
                &format!("{fingerprint:016x}"),
            ]);
        }
    }
    cmd.env("RESTUNE_ISOLATION", "thread") // children never spawn grandchildren
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    if matches!(obs, ObsRouting::Relay(_)) || crate::obs::trace_enabled() {
        // The child buffers its events and forwards them home in an obs
        // frame rather than opening the parent's trace file itself. A
        // relay route always wants the frame, whatever this process traces.
        cmd.env("RESTUNE_TRACE", "wire");
    } else {
        cmd.env_remove("RESTUNE_TRACE");
    }

    let mut child = match cmd.spawn() {
        Ok(c) => c,
        Err(e) => {
            warn_once(
                &WARNED_SPAWN,
                &format!("worker spawn failed ({e}); running in-process"),
            );
            return None;
        }
    };

    // Deliver the job and close stdin so the child sees EOF. A write
    // error (EPIPE from an instantly-dead child) is not fatal here: the
    // exit-status classification below tells the real story.
    if let Some(mut stdin) = child.stdin.take() {
        let _ = stdin.write_all(&frame);
        let _ = stdin.flush();
    }

    // Drain the child's stdout concurrently with the exit poll below. An
    // observability frame can exceed the OS pipe buffer (waveform windows
    // are kilobytes each), so reading only after exit would deadlock: the
    // child blocks in write, the parent polls forever.
    let stdout_pipe = child.stdout.take();
    let drain = std::thread::spawn(move || {
        let mut buf = Vec::new();
        if let Some(mut pipe) = stdout_pipe {
            let _ = pipe.read_to_end(&mut buf);
        }
        buf
    });

    let hard_deadline = timeout.map(|t| Instant::now() + t + hard_kill_grace(t));
    let status = loop {
        if shutdown_requested() {
            let _ = child.kill();
            let _ = child.wait();
            return Some(Err((
                FailureKind::Interrupted,
                "shutdown signal received; worker killed".to_string(),
            )));
        }
        match child.try_wait() {
            Ok(Some(status)) => break status,
            Ok(None) => {
                if hard_deadline.is_some_and(|d| Instant::now() >= d) {
                    let _ = child.kill();
                    let _ = child.wait();
                    return Some(Err((
                        FailureKind::Timeout,
                        format!(
                            "worker exceeded the hard wall-clock deadline \
                             ({:?} + grace) and was killed",
                            timeout.unwrap_or_default()
                        ),
                    )));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => {
                let _ = child.kill();
                return Some(Err((
                    FailureKind::Crash,
                    format!("waiting on the worker failed: {e}"),
                )));
            }
        }
    };

    // The child has exited, so its side of the pipe is closed and the
    // drain thread reaches EOF promptly.
    let output = drain.join().unwrap_or_default();

    // The child may write an observability frame ahead of its reply:
    // absorb obs frames into this process's sink/registry, then classify
    // from the first reply frame.
    let mut reply = None;
    for (kind, payload) in wire::scan_frames(&output) {
        match kind {
            wire::KIND_OBS => match obs {
                ObsRouting::Absorb => {
                    if let Some((counters, lines)) = wire::decode_obs(payload) {
                        crate::obs::counter_add("wire.obs_frames", 1);
                        crate::obs::absorb_forwarded(&counters, &lines);
                    }
                }
                ObsRouting::Relay(forward) => forward(payload),
            },
            wire::KIND_RESULT | wire::KIND_FAILURE if reply.is_none() => {
                reply = Some((kind, payload));
            }
            _ => {}
        }
    }

    Some(match reply {
        Some((wire::KIND_RESULT, payload)) => match wire::decode_result(payload) {
            Some(inst) if inst.result.app == profile.name => Ok(inst),
            Some(inst) => Err((
                FailureKind::Transport,
                format!(
                    "worker replied for app '{}' but '{}' was asked",
                    inst.result.app, profile.name
                ),
            )),
            None => Err((
                FailureKind::Transport,
                "worker result frame failed to decode".to_string(),
            )),
        },
        Some((wire::KIND_FAILURE, payload)) => match wire::decode_failure(payload) {
            Some((kind, message)) => Err((kind, message)),
            None => Err((
                FailureKind::Transport,
                "worker failure frame failed to decode".to_string(),
            )),
        },
        _ => Err(classify_frameless_exit(&status)),
    })
}

/// Classifies a child that exited without producing an intact reply frame.
fn classify_frameless_exit(status: &std::process::ExitStatus) -> (FailureKind, String) {
    #[cfg(unix)]
    {
        use std::os::unix::process::ExitStatusExt as _;
        if let Some(sig) = status.signal() {
            let label = match sig {
                sys::SIGKILL => " (SIGKILL)",
                6 => " (SIGABRT)",
                11 => " (SIGSEGV)",
                _ => "",
            };
            return (
                FailureKind::Crash,
                format!("worker killed by signal {sig}{label}"),
            );
        }
    }
    if !status.success() {
        return (FailureKind::Crash, format!("worker exited with {status}"));
    }
    (
        FailureKind::Transport,
        "worker exited cleanly without a reply frame".to_string(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testenv::with_env;

    #[test]
    fn isolation_mode_resolves_and_falls_back() {
        // No worker entry is installed in the unit-test binary unless a
        // test hook says otherwise.
        let cases: [(&str, Option<&str>, IsolationMode); 6] = [
            ("RESTUNE_ISOLATION", None, IsolationMode::Thread),
            ("RESTUNE_ISOLATION", Some("thread"), IsolationMode::Thread),
            ("RESTUNE_ISOLATION", Some("auto"), IsolationMode::Thread),
            ("RESTUNE_ISOLATION", Some("process"), IsolationMode::Thread),
            ("RESTUNE_ISOLATION", Some("Process "), IsolationMode::Thread),
            ("RESTUNE_ISOLATION", Some("bogus"), IsolationMode::Thread),
        ];
        for (key, value, expected) in cases {
            let got = with_env(
                &[(key, value), ("RESTUNE_WORKER_ARGV", None)],
                isolation_mode,
            );
            assert_eq!(got, expected, "RESTUNE_ISOLATION={value:?}");
        }

        // With a worker argv hook, `process` and `auto` resolve to Process.
        for value in ["process", "auto", "PROCESS"] {
            let got = with_env(
                &[
                    ("RESTUNE_ISOLATION", Some(value)),
                    ("RESTUNE_WORKER_ARGV", Some("worker_shim --exact")),
                ],
                isolation_mode,
            );
            assert_eq!(got, IsolationMode::Process, "RESTUNE_ISOLATION={value}");
        }
    }

    #[test]
    fn hard_kill_grace_is_generous() {
        assert_eq!(
            hard_kill_grace(Duration::from_millis(100)),
            Duration::from_secs(2)
        );
        assert_eq!(
            hard_kill_grace(Duration::from_secs(30)),
            Duration::from_secs(30)
        );
    }

    #[test]
    fn shutdown_flag_round_trips() {
        assert!(!shutdown_requested());
        set_shutdown_for_test(true);
        assert!(shutdown_requested());
        set_shutdown_for_test(false);
        assert!(!shutdown_requested());
    }
}
