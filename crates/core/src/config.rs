//! Resonance-tuning configuration.

use rlc::units::{Amps, Cycles, Hertz};
use rlc::{Calibration, RlcError, SupplyParams};

/// All parameters of the resonance-tuning detector and two-level response.
///
/// The detector parameters derive from the supply's resonance geometry
/// (Section 2.1.3): the resonance band as a range of periods, the resonant
/// current variation threshold `M`, and the maximum repetition tolerance.
/// The response parameters follow Section 5.2: first-level response at
/// event count ≥ 2 reduces issue width 8→4 and cache ports 2→1 for
/// `initial_response_time` cycles; second-level response at count ≥ 3
/// (tolerance − 1) stalls with medium-current phantoms for 35 cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TuningConfig {
    /// Shortest in-band period, in cycles (84 for Table 1 at 10 GHz).
    pub band_min_period: Cycles,
    /// Longest in-band period, in cycles (119 for Table 1 at 10 GHz).
    pub band_max_period: Cycles,
    /// Resonant current variation threshold `M` (32 A in Table 1).
    pub variation_threshold: Amps,
    /// Maximum repetition tolerance in half waves (4 in Table 1).
    pub max_repetition_tolerance: u32,
    /// Event count at which the first-level response engages (2).
    pub initial_response_threshold: u32,
    /// Event count at which the second-level response engages (3).
    pub second_level_threshold: u32,
    /// First-level response duration in cycles (swept 75–200 in Table 3).
    pub initial_response_time: u32,
    /// Second-level response duration in cycles (35: long enough for the
    /// supply to dissipate one event count's worth of energy).
    pub second_level_time: u32,
    /// Issue width during the first-level response (4).
    pub first_level_issue_width: u32,
    /// Data-cache ports during the first-level response (1).
    pub first_level_mem_ports: u32,
    /// Cycles between detection and response engagement (0 in the main
    /// results; 5 in the paper's delay-sensitivity experiment).
    pub response_delay: u32,
}

impl TuningConfig {
    /// The paper's Table 1 / Section 5.2 configuration with the given
    /// initial response time.
    pub fn isca04_table1(initial_response_time: u32) -> Self {
        Self {
            band_min_period: Cycles::new(84),
            band_max_period: Cycles::new(119),
            variation_threshold: Amps::new(32.0),
            max_repetition_tolerance: 4,
            initial_response_threshold: 2,
            second_level_threshold: 3,
            initial_response_time,
            second_level_time: 35,
            first_level_issue_width: 4,
            first_level_mem_ports: 1,
            response_delay: 0,
        }
    }

    /// Builds a configuration from a circuit-level [`Calibration`] of an
    /// arbitrary supply (thresholds follow the paper's relationships:
    /// second-level at tolerance − 1, initial response at half that).
    pub fn from_calibration(cal: &Calibration, initial_response_time: u32) -> Self {
        let tol = cal.max_repetition_tolerance.max(2);
        Self {
            band_min_period: cal.band_periods.0,
            band_max_period: cal.band_periods.1,
            variation_threshold: cal.variation_threshold,
            max_repetition_tolerance: tol,
            initial_response_threshold: (tol / 2).max(1),
            second_level_threshold: tol - 1,
            initial_response_time,
            second_level_time: 35,
            first_level_issue_width: 4,
            first_level_mem_ports: 1,
            response_delay: 0,
        }
    }

    /// Convenience: calibrate a supply by circuit simulation and derive the
    /// tuning configuration from it.
    ///
    /// # Errors
    ///
    /// Propagates calibration failures (e.g. an over-designed supply that
    /// never violates — there is nothing to tune).
    pub fn calibrated(
        supply: &SupplyParams,
        clock: Hertz,
        max_variation: Amps,
        initial_response_time: u32,
    ) -> Result<Self, RlcError> {
        let cal = rlc::calibrate(supply, clock, max_variation)?;
        Ok(Self::from_calibration(&cal, initial_response_time))
    }

    /// Returns a copy with the given sensing-to-response delay.
    pub fn with_response_delay(mut self, delay: u32) -> Self {
        self.response_delay = delay;
        self
    }

    /// Quarter-period lengths (in cycles) covering the resonance band: one
    /// current-history adder per length (9 for Table 1: 21–29 cycles).
    pub fn quarter_periods(&self) -> std::ops::RangeInclusive<u32> {
        (self.band_min_period.count() as u32 / 4)..=(self.band_max_period.count() as u32 / 4)
    }

    /// Half-period lengths (in cycles) covering the band (42–59 for
    /// Table 1): the lookback offsets used when chaining resonant events.
    pub fn half_periods(&self) -> std::ops::RangeInclusive<u32> {
        (self.band_min_period.count() as u32 / 2)..=(self.band_max_period.count() as u32 / 2)
    }

    /// The per-quarter-period event threshold `M·T/8` in amp-cycles, for
    /// quarter period `q` (so `T = 4q`).
    pub fn event_threshold(&self, quarter_period: u32) -> f64 {
        self.variation_threshold.amps() * (4 * quarter_period) as f64 / 8.0
    }

    /// Required history length, in cycles, for the high-low/low-high shift
    /// registers: enough half waves to cover the maximum repetition
    /// tolerance at the longest in-band period, plus slack for the run
    /// widths.
    pub fn history_length(&self) -> usize {
        let half_max = self.band_max_period.count() as usize / 2;
        (self.max_repetition_tolerance as usize + 2) * half_max + 2 * half_max
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message on inconsistency.
    pub fn validate(&self) {
        assert!(
            self.band_min_period.count() >= 8,
            "band periods too short for cycle-level detection"
        );
        assert!(
            self.band_min_period < self.band_max_period,
            "band period range must be increasing"
        );
        assert!(
            self.variation_threshold.amps() > 0.0,
            "variation threshold must be positive"
        );
        assert!(
            self.max_repetition_tolerance >= 2,
            "repetition tolerance must be at least 2"
        );
        assert!(
            self.initial_response_threshold < self.second_level_threshold,
            "first-level threshold must precede second-level"
        );
        assert!(
            self.second_level_threshold < self.max_repetition_tolerance,
            "second-level response must engage before the tolerance is reached"
        );
        assert!(
            self.initial_response_time > 0,
            "initial response time must be nonzero"
        );
        assert!(
            self.second_level_time > 0,
            "second-level time must be nonzero"
        );
        assert!(
            self.first_level_issue_width > 0,
            "first-level issue width must be nonzero"
        );
        assert!(
            self.first_level_mem_ports > 0,
            "first-level port count must be nonzero"
        );
    }
}

/// How the supervised experiment engine wraps each application run: watchdog
/// deadline, bounded-backoff retries, and checkpoint/resume behavior.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Per-run watchdog deadline; `None` disables the watchdog.
    pub timeout: Option<std::time::Duration>,
    /// How many times a failed run is retried (retries only help transient
    /// faults; persistent ones fail identically every attempt).
    pub max_retries: u32,
    /// First retry delay; doubles per failure.
    pub backoff_base: std::time::Duration,
    /// Upper bound on any single retry delay.
    pub backoff_cap: std::time::Duration,
    /// When `true`, completed per-app results are checkpointed to disk and
    /// an interrupted suite resumes them instead of recomputing.
    pub resume: bool,
    /// Override for the checkpoint directory; `None` uses
    /// `<cache>/checkpoints` next to the baseline cache.
    pub checkpoint_dir: Option<std::path::PathBuf>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            timeout: None,
            max_retries: 2,
            backoff_base: std::time::Duration::from_millis(25),
            backoff_cap: std::time::Duration::from_millis(250),
            resume: false,
            checkpoint_dir: None,
        }
    }
}

impl SupervisorConfig {
    /// The delay before the retry that follows `failures` failed attempts:
    /// exponential from [`SupervisorConfig::backoff_base`], capped at
    /// [`SupervisorConfig::backoff_cap`].
    pub fn backoff_delay(&self, failures: u32) -> std::time::Duration {
        let doublings = failures.saturating_sub(1).min(16);
        self.backoff_base
            .saturating_mul(1u32 << doublings)
            .min(self.backoff_cap)
    }
}

/// The complete robustness policy for a suite run: supervision parameters
/// plus the fault-injection plan. The default policy is inert — no faults,
/// no watchdog, no resume — and is bit-exact-neutral.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunPolicy {
    /// Watchdog / retry / resume configuration.
    pub supervisor: SupervisorConfig,
    /// The fault-injection plan ([`crate::fault::FaultPlan::none`] by
    /// default).
    pub plan: crate::fault::FaultPlan,
}

impl RunPolicy {
    /// The inert policy.
    pub fn none() -> Self {
        Self::default()
    }

    /// `true` when this policy changes nothing about how a suite executes:
    /// no fault plan, no watchdog, no resume. The engine uses this to take
    /// the exact code path of the unsupervised engine.
    pub fn is_inert(&self) -> bool {
        !self.plan.is_enabled() && self.supervisor.timeout.is_none() && !self.supervisor.resume
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let c = TuningConfig::isca04_table1(100);
        c.validate();
        assert_eq!(c.band_min_period, Cycles::new(84));
        assert_eq!(c.band_max_period, Cycles::new(119));
        assert_eq!(c.variation_threshold, Amps::new(32.0));
        assert_eq!(c.max_repetition_tolerance, 4);
        assert_eq!(c.initial_response_threshold, 2);
        assert_eq!(c.second_level_threshold, 3);
        assert_eq!(c.second_level_time, 35);
    }

    #[test]
    fn nine_quarter_period_adders_for_table1() {
        // Section 3.3: "up to 9 current-history adders".
        let c = TuningConfig::isca04_table1(100);
        assert_eq!(c.quarter_periods().count(), 9);
        assert_eq!(c.quarter_periods(), 21..=29);
        assert_eq!(c.half_periods(), 42..=59);
    }

    #[test]
    fn event_threshold_is_mt_over_8() {
        let c = TuningConfig::isca04_table1(100);
        // q = 25 → T = 100 → M·T/8 = 32·100/8 = 400 amp-cycles.
        assert!((c.event_threshold(25) - 400.0).abs() < 1e-9);
    }

    #[test]
    fn history_covers_tolerance() {
        let c = TuningConfig::isca04_table1(100);
        // At least tolerance × longest half period.
        assert!(c.history_length() >= 4 * 59);
    }

    #[test]
    fn calibrated_config_resembles_paper() {
        let c = TuningConfig::calibrated(
            &SupplyParams::isca04_table1(),
            Hertz::from_giga(10.0),
            Amps::new(70.0),
            100,
        )
        .unwrap();
        c.validate();
        assert_eq!(c.band_min_period, Cycles::new(84));
        assert_eq!(c.band_max_period, Cycles::new(119));
        assert!(
            c.variation_threshold.amps() > 20.0 && c.variation_threshold.amps() < 40.0,
            "calibrated M = {}",
            c.variation_threshold
        );
        assert!((2..=6).contains(&c.max_repetition_tolerance));
    }

    #[test]
    #[should_panic(expected = "second-level")]
    fn invalid_thresholds_panic() {
        let mut c = TuningConfig::isca04_table1(100);
        c.second_level_threshold = 4; // == tolerance: too late
        c.validate();
    }

    #[test]
    fn delay_builder() {
        let c = TuningConfig::isca04_table1(100).with_response_delay(5);
        assert_eq!(c.response_delay, 5);
    }
}

#[cfg(test)]
mod supervisor_tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn backoff_doubles_and_caps() {
        let sup = SupervisorConfig::default();
        assert_eq!(sup.backoff_delay(1), Duration::from_millis(25));
        assert_eq!(sup.backoff_delay(2), Duration::from_millis(50));
        assert_eq!(sup.backoff_delay(3), Duration::from_millis(100));
        assert_eq!(sup.backoff_delay(4), Duration::from_millis(200));
        assert_eq!(sup.backoff_delay(5), Duration::from_millis(250), "capped");
        assert_eq!(sup.backoff_delay(40), Duration::from_millis(250), "capped");
    }

    #[test]
    fn default_policy_is_inert() {
        let policy = RunPolicy::none();
        assert!(policy.is_inert());
        let mut with_timeout = RunPolicy::none();
        with_timeout.supervisor.timeout = Some(Duration::from_secs(1));
        assert!(!with_timeout.is_inert());
        let with_plan = RunPolicy {
            plan: crate::fault::FaultPlan::seeded(1),
            ..RunPolicy::none()
        };
        assert!(!with_plan.is_inert());
    }
}
