//! The integrated simulation loop: CPU → power model → supply network, with
//! an inductive-noise controller in the feedback path.
//!
//! Mirrors the paper's methodology (Section 4): the Wattch-style model
//! converts per-cycle pipeline activity into current; the Heun-integrated
//! RLC supply converts current into voltage deviation; the controller
//! (resonance tuning, the voltage-sensor technique of \[10\], or pipeline
//! damping \[14\]) closes the loop through the pipeline throttle controls.

use std::time::{Duration, Instant};

use cpusim::{Cpu, CpuConfig, CycleEvents, PipelineControls, ScanMode};
use powermodel::{EnergyMeter, PowerConfig, PowerModel};
use rlc::units::{Amps, Hertz, Volts};
use rlc::{PowerSupply, SupplyParams};
use workloads::{stream::warm_caches, StreamGen, WorkloadProfile};

use crate::baselines::{DampingConfig, PipelineDamping, SensorConfig, VoltageSensor};
use crate::config::TuningConfig;
use crate::fault::{FaultRuntime, FaultSignal, FaultSpec};
use crate::response::ResonanceTuner;

/// How often (in cycles) the hot loop checks the watchdog deadline: rare
/// enough to stay off the profile, frequent enough that a stuck run is
/// caught within a fraction of a millisecond of simulated work.
pub(crate) const WATCHDOG_CHECK_MASK: u64 = 0xFFF;

/// The inductive-noise control technique applied during a run.
#[derive(Debug, Clone, PartialEq)]
pub enum Technique {
    /// No control: the base machine (violations allowed).
    Base,
    /// Resonance tuning (this paper).
    Tuning(TuningConfig),
    /// The voltage-threshold technique of \[10\].
    Sensor(SensorConfig),
    /// Pipeline damping \[14\].
    Damping(DampingConfig),
}

impl Technique {
    /// A short display name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            Technique::Base => "base",
            Technique::Tuning(_) => "tuning",
            Technique::Sensor(_) => "sensor[10]",
            Technique::Damping(_) => "damping[14]",
        }
    }
}

/// Machine-level simulation parameters shared across runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Processor configuration.
    pub cpu: CpuConfig,
    /// Power model configuration.
    pub power: PowerConfig,
    /// Power-supply network.
    pub supply: SupplyParams,
    /// Clock frequency.
    pub clock: Hertz,
    /// Run length in committed instructions (identical work for base and
    /// technique runs, so cycle ratios are slowdowns).
    pub instructions: u64,
    /// Safety cap on cycles (a run never exceeds this even if commit
    /// throughput collapses).
    pub max_cycles: u64,
}

impl SimConfig {
    /// The paper's machine with a given instruction budget per run.
    pub fn isca04(instructions: u64) -> Self {
        Self {
            cpu: CpuConfig::isca04_table1(),
            power: PowerConfig::isca04_table1(),
            supply: SupplyParams::isca04_table1(),
            clock: Hertz::from_giga(10.0),
            instructions,
            max_cycles: instructions * 12 + 100_000,
        }
    }
}

/// The outcome of one application run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimResult {
    /// Application name.
    pub app: &'static str,
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Committed IPC.
    pub ipc: f64,
    /// Cycles whose supply deviation exceeded the noise margin.
    pub violation_cycles: u64,
    /// Largest-magnitude supply deviation observed.
    pub worst_noise: Volts,
    /// Total energy in joules.
    pub energy_joules: f64,
    /// Energy × delay in joule-seconds.
    pub energy_delay: f64,
    /// Cycles in the first-level tuning response (0 for other techniques).
    pub first_level_cycles: u64,
    /// Cycles in the second-level tuning response (0 for other techniques).
    pub second_level_cycles: u64,
    /// Cycles in any response of the sensor technique (0 otherwise).
    pub sensor_response_cycles: u64,
    /// Cycles where damping throttled or padded (0 otherwise).
    pub damping_bound_cycles: u64,
}

impl SimResult {
    /// Fraction of cycles spent in the given count.
    fn fraction(&self, cycles: u64) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            cycles as f64 / self.cycles as f64
        }
    }

    /// Fraction of cycles in the first-level response.
    pub fn first_level_fraction(&self) -> f64 {
        self.fraction(self.first_level_cycles)
    }

    /// Fraction of cycles in the second-level response.
    pub fn second_level_fraction(&self) -> f64 {
        self.fraction(self.second_level_cycles)
    }

    /// Fraction of cycles in the sensor technique's response.
    pub fn sensor_response_fraction(&self) -> f64 {
        self.fraction(self.sensor_response_cycles)
    }

    /// Fraction of cycles in violation.
    pub fn violation_fraction(&self) -> f64 {
        self.fraction(self.violation_cycles)
    }
}

/// One cycle's observable state, passed to trace observers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleRecord {
    /// Cycle index.
    pub cycle: u64,
    /// Chip current this cycle.
    pub current: Amps,
    /// Supply deviation at end of cycle.
    pub noise: Volts,
    /// Resonant event count of an event detected this cycle (tuning only).
    pub event_count: Option<u32>,
    /// Whether the controls this cycle restricted the pipeline.
    pub restricted: bool,
    /// Pipeline events of the cycle.
    pub events: CycleEvents,
}

// One instance per run, dispatched every cycle of the hot loop — worth the
// stack size over boxing the tuner. Enum dispatch (not a trait object) so
// the per-cycle update inlines in both the reference loop and the fused
// kernel.
#[allow(clippy::large_enum_variant)]
pub(crate) enum Controller {
    Base,
    Tuning(ResonanceTuner),
    Sensor(VoltageSensor),
    Damping(PipelineDamping),
}

impl Controller {
    pub(crate) fn for_technique(technique: &Technique) -> Self {
        match technique {
            Technique::Base => Controller::Base,
            Technique::Tuning(cfg) => Controller::Tuning(ResonanceTuner::new(*cfg)),
            Technique::Sensor(cfg) => Controller::Sensor(VoltageSensor::new(*cfg)),
            Technique::Damping(cfg) => Controller::Damping(PipelineDamping::new(*cfg)),
        }
    }
}

/// Wall-time attribution of the simulation loop's four stages (controller →
/// CPU → power model → supply), sampled every
/// [`PhaseTimings::SAMPLE_INTERVAL`] cycles so instrumented runs stay within
/// a few percent of uninstrumented speed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Time in the noise controller (detector + response selection).
    pub controller: Duration,
    /// Time in the out-of-order CPU model.
    pub cpu: Duration,
    /// Time in the Wattch-style power model.
    pub power: Duration,
    /// Time in the RLC supply integration (per-cycle sampled form, used by
    /// the reference loop).
    pub supply: Duration,
    /// Raw (unsampled) wall time of the fused kernel's batched supply
    /// flushes. Accumulated undivided and scaled down by
    /// [`PhaseTimings::SAMPLE_INTERVAL`] only at report time: dividing each
    /// flush's `elapsed()` individually truncates to whole nanoseconds per
    /// flush, which for every-cycle-flush runs (the sensor technique)
    /// rounds most flushes to zero and undercounts the supply phase.
    pub supply_flush: Duration,
    /// How many cycles were sampled (each contributes to all four phases).
    pub sampled_cycles: u64,
}

impl PhaseTimings {
    /// One cycle in this many is timed; the rest run unobserved.
    pub const SAMPLE_INTERVAL: u64 = 64;

    /// The supply phase's sampled-equivalent time: the reference loop's
    /// per-cycle samples plus the kernel's flush total scaled down by the
    /// sampling ratio (one division over the accumulated sum, not one per
    /// flush).
    pub fn supply_sampled(&self) -> Duration {
        self.supply + self.supply_flush / Self::SAMPLE_INTERVAL as u32
    }

    /// Total sampled wall time across the four phases.
    pub fn total(&self) -> Duration {
        self.controller + self.cpu + self.power + self.supply_sampled()
    }
}

/// A run's outcome plus the observability data the experiment engine
/// reports: per-phase wall time, total wall time, and detector activity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstrumentedRun {
    /// The simulation outcome (identical to what [`run`] returns).
    pub result: SimResult,
    /// Resonant events the tuning detector raised (0 for other techniques).
    pub detector_events: u64,
    /// Coarse per-phase wall-time attribution.
    pub phases: PhaseTimings,
    /// End-to-end wall time of the run.
    pub wall: Duration,
}

/// The power configuration a technique actually runs with: tuning runs are
/// charged the detection/prevention hardware overhead.
pub(crate) fn effective_power_config(technique: &Technique, sim: &SimConfig) -> PowerConfig {
    if matches!(technique, Technique::Tuning(_)) {
        PowerConfig {
            detector_overhead: Amps::new(0.3),
            ..sim.power
        }
    } else {
        sim.power
    }
}

/// Assembles a run's [`SimResult`] and detector-event count from the final
/// component states — shared by the reference loop and the fused kernel so
/// the two paths cannot drift in how they report a run.
#[allow(clippy::too_many_arguments)]
pub(crate) fn finish_run(
    profile: &WorkloadProfile,
    cycles: u64,
    committed: u64,
    ipc: f64,
    supply: &PowerSupply,
    meter: &powermodel::EnergyMeter,
    controller: &Controller,
    damping_bound: u64,
) -> (SimResult, u64) {
    let (first, second) = match controller {
        Controller::Tuning(t) => (t.stats().first_level_cycles, t.stats().second_level_cycles),
        _ => (0, 0),
    };
    let sensor_cycles = match controller {
        Controller::Sensor(s) => s.response_cycles(),
        _ => 0,
    };
    let damping_cycles = match controller {
        Controller::Damping(d) => d.throttled_cycles() + damping_bound,
        _ => 0,
    };
    let detector_events = match controller {
        Controller::Tuning(t) => t.detector().events_detected(),
        _ => 0,
    };

    let result = SimResult {
        app: profile.name,
        cycles,
        committed,
        ipc,
        violation_cycles: supply.violation_cycles(),
        worst_noise: supply.worst_noise(),
        energy_joules: meter.joules(),
        energy_delay: meter.energy_delay(),
        first_level_cycles: first,
        second_level_cycles: second,
        sensor_response_cycles: sensor_cycles,
        damping_bound_cycles: damping_cycles,
    };
    (result, detector_events)
}

/// The shared simulation entry behind [`run_observed`], [`run_instrumented`]
/// and [`run_supervised`]: returns the outcome and the detector's event
/// count.
///
/// Dispatches to the fused batched kernel ([`crate::kernel`]) unless the
/// `RESTUNE_KERNEL=off` escape hatch selects the per-cycle reference loop.
/// The two paths are bit-exact (proven by the golden-trace fixtures and the
/// property suite), so the choice is purely a performance matter.
fn run_core<F: FnMut(&CycleRecord)>(
    profile: &WorkloadProfile,
    technique: &Technique,
    sim: &SimConfig,
    observer: F,
    timers: Option<&mut PhaseTimings>,
    faults: &mut FaultRuntime,
    deadline: Option<Instant>,
) -> (SimResult, u64) {
    if crate::kernel::fused_enabled() {
        crate::kernel::run_fused(
            profile,
            technique,
            sim,
            crate::kernel::batch_size(),
            observer,
            timers,
            faults,
            deadline,
        )
    } else {
        run_core_reference(profile, technique, sim, observer, timers, faults, deadline)
    }
}

/// The pre-kernel per-cycle simulation loop, kept as the bit-exactness
/// reference and A/B baseline for the fused kernel: classic full-window CPU
/// scheduling ([`ScanMode::FullScan`]), a private stream decode, and one
/// supply step per cycle.
///
/// `faults` is the per-run fault state machine (the identity for ordinary
/// runs — the inert fast path returns every value bit-for-bit) and
/// `deadline` the optional watchdog deadline, checked every
/// `WATCHDOG_CHECK_MASK + 1` cycles. Watchdog expiry and surfaced
/// integration errors unwind with a typed [`FaultSignal`] payload so the
/// supervisor can classify them.
pub(crate) fn run_core_reference<F: FnMut(&CycleRecord)>(
    profile: &WorkloadProfile,
    technique: &Technique,
    sim: &SimConfig,
    mut observer: F,
    mut timers: Option<&mut PhaseTimings>,
    faults: &mut FaultRuntime,
    deadline: Option<Instant>,
) -> (SimResult, u64) {
    let power_cfg = effective_power_config(technique, sim);
    let mut cpu = Cpu::with_scan_mode(sim.cpu, StreamGen::new(*profile), ScanMode::FullScan);
    warm_caches(&mut cpu);
    let mut model = PowerModel::new(power_cfg, sim.cpu);
    let idle = power_cfg.idle_current;
    let mut supply = PowerSupply::new(sim.supply, sim.clock, idle);
    let mut meter = EnergyMeter::new(power_cfg.vdd, sim.clock);

    let mut controller = Controller::for_technique(technique);

    let mut last_current = idle;
    let mut last_noise = Volts::new(0.0);
    let mut last_events = CycleEvents::default();
    let mut cycles = 0u64;
    let mut damping_bound = 0u64;

    // Times one stage when this cycle is sampled, otherwise runs it bare.
    macro_rules! staged {
        ($sampling:expr, $field:ident, $e:expr) => {
            if let (true, Some(acc)) = ($sampling, timers.as_deref_mut()) {
                let t0 = Instant::now();
                let v = $e;
                acc.$field += t0.elapsed();
                v
            } else {
                $e
            }
        };
    }

    while cpu.stats().committed < sim.instructions && cycles < sim.max_cycles {
        if let Some(deadline) = deadline {
            if cycles & WATCHDOG_CHECK_MASK == 0 && Instant::now() >= deadline {
                std::panic::panic_any(FaultSignal::timeout(cycles));
            }
        }
        let sampling = timers.is_some() && cycles.is_multiple_of(PhaseTimings::SAMPLE_INTERVAL);
        let mut event_count = None;
        let controls = staged!(
            sampling,
            controller,
            match &mut controller {
                Controller::Base => PipelineControls::free(),
                Controller::Tuning(t) => {
                    let c = t.tick(faults.sense(cycles, last_current.amps()));
                    event_count = t.last_event().map(|e| e.count);
                    c
                }
                Controller::Sensor(s) =>
                    s.tick(Volts::new(faults.sense(cycles, last_noise.volts()))),
                Controller::Damping(d) => {
                    let c = d.tick(&last_events);
                    if c.phantom.is_some() {
                        damping_bound += 1;
                    }
                    c
                }
            }
        );
        let ev = staged!(sampling, cpu, cpu.tick(controls));
        let current = staged!(
            sampling,
            power,
            Amps::new(faults.perturb_current(cycles, model.current_for(&ev).amps()))
        );
        let out = staged!(
            sampling,
            supply,
            match supply.try_tick(current) {
                Ok(out) => out,
                Err(e) => std::panic::panic_any(FaultSignal::numerical(e, cycles)),
            }
        );
        meter.record(current);
        if sampling {
            if let Some(acc) = timers.as_deref_mut() {
                acc.sampled_cycles += 1;
            }
        }

        observer(&CycleRecord {
            cycle: cycles,
            current,
            noise: out.noise,
            event_count,
            restricted: controls.is_restricted(),
            events: ev,
        });

        last_current = current;
        last_noise = out.noise;
        last_events = ev;
        cycles += 1;
    }

    finish_run(
        profile,
        cycles,
        cpu.stats().committed,
        cpu.stats().ipc(),
        &supply,
        &meter,
        &controller,
        damping_bound,
    )
}

/// Runs one application under a technique, invoking `observer` every cycle.
///
/// Prefer [`run`] unless you need per-cycle traces.
pub fn run_observed<F: FnMut(&CycleRecord)>(
    profile: &WorkloadProfile,
    technique: &Technique,
    sim: &SimConfig,
    observer: F,
) -> SimResult {
    run_core(
        profile,
        technique,
        sim,
        observer,
        None,
        &mut FaultRuntime::none(),
        None,
    )
    .0
}

/// Runs one application under a technique.
pub fn run(profile: &WorkloadProfile, technique: &Technique, sim: &SimConfig) -> SimResult {
    run_observed(profile, technique, sim, |_| {})
}

/// Runs one application with observability enabled: the returned
/// [`InstrumentedRun`] carries wall time, coarse per-phase timings, and the
/// detector's event count alongside the ordinary [`SimResult`].
///
/// Timing is sampled, not exact, so `result` is bit-identical to [`run`]'s.
pub fn run_instrumented(
    profile: &WorkloadProfile,
    technique: &Technique,
    sim: &SimConfig,
) -> InstrumentedRun {
    let mut phases = PhaseTimings::default();
    let start = Instant::now();
    let (result, detector_events) = run_core(
        profile,
        technique,
        sim,
        |_| {},
        Some(&mut phases),
        &mut FaultRuntime::none(),
        None,
    );
    InstrumentedRun {
        result,
        detector_events,
        phases,
        wall: start.elapsed(),
    }
}

/// The natural magnitude of what a technique's controller senses: relative
/// sensor-noise sigmas are scaled by this. The tuning detector watches
/// current (amps, against its variation threshold); the voltage sensor and
/// everything else watch supply deviation (volts, against the noise margin).
fn sense_scale(technique: &Technique, sim: &SimConfig) -> f64 {
    match technique {
        Technique::Tuning(cfg) => cfg.variation_threshold.amps(),
        _ => sim.supply.noise_margin().volts(),
    }
}

/// Runs one application with the given faults armed and an optional absolute
/// watchdog deadline — the supervised engine's per-attempt entry point.
///
/// With no faults and no deadline this is bit-identical to
/// [`run_instrumented`]. Injected worker faults fire before the simulation
/// starts; watchdog expiry and surfaced integration errors unwind with a
/// typed [`crate::fault::FaultSignal`] payload, so callers should wrap this
/// in `catch_unwind` and downcast to classify.
///
/// # Panics
///
/// Panics (by design) when an armed fault or the watchdog fires.
pub fn run_supervised(
    profile: &WorkloadProfile,
    technique: &Technique,
    sim: &SimConfig,
    specs: &[FaultSpec],
    deadline: Option<Instant>,
) -> InstrumentedRun {
    // Observability: the tracer is a read-only observer over per-cycle
    // records the loop computes anyway, so a traced run stays bit-identical
    // to an untraced one. When tracing is off it is dormant and the
    // observer closure reduces to one branch per cycle.
    let mut tracer =
        crate::obs::CycleTracer::new(profile.name, technique.name(), sim.supply.noise_margin());
    crate::obs::note_armed_faults(profile.name, specs);
    let mut faults = FaultRuntime::from_specs(specs, sense_scale(technique, sim));
    faults.set_traced_app(profile.name);
    faults.pre_run();
    let mut phases = PhaseTimings::default();
    let start = Instant::now();
    let (result, detector_events) = run_core(
        profile,
        technique,
        sim,
        |rec| tracer.observe(rec),
        Some(&mut phases),
        &mut faults,
        deadline,
    );
    tracer.finish();
    if crate::obs::trace_enabled() {
        crate::obs::Event::sim("run-end", profile.name, result.cycles)
            .str_field("technique", technique.name())
            .u64_field("committed", result.committed)
            .u64_field("violation_cycles", result.violation_cycles)
            .u64_field("detector_events", detector_events)
            .f64_field("wall_seconds", start.elapsed().as_secs_f64())
            .emit();
    }
    InstrumentedRun {
        result,
        detector_events,
        phases,
        wall: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::spec2k;

    fn quick_sim() -> SimConfig {
        SimConfig::isca04(40_000)
    }

    #[test]
    fn base_run_completes_requested_instructions() {
        let p = spec2k::by_name("gzip").unwrap();
        let r = run(&p, &Technique::Base, &quick_sim());
        assert!(r.committed >= 40_000 && r.committed < 40_000 + 8);
        assert!(r.cycles > 0);
        assert!(r.ipc > 0.5);
        assert!(r.energy_joules > 0.0);
    }

    #[test]
    fn identical_runs_are_deterministic() {
        let p = spec2k::by_name("parser").unwrap();
        let a = run(&p, &Technique::Base, &quick_sim());
        let b = run(&p, &Technique::Base, &quick_sim());
        assert_eq!(a, b);
    }

    #[test]
    fn violating_app_violates_on_base_machine() {
        let p = spec2k::by_name("swim").unwrap();
        let sim = SimConfig::isca04(150_000);
        let r = run(&p, &Technique::Base, &sim);
        assert!(
            r.violation_cycles > 0,
            "swim must violate on the base machine"
        );
    }

    #[test]
    fn tuning_prevents_nearly_all_violations() {
        let p = spec2k::by_name("swim").unwrap();
        let sim = SimConfig::isca04(150_000);
        let base = run(&p, &Technique::Base, &sim);
        let tuned = run(
            &p,
            &Technique::Tuning(TuningConfig::isca04_table1(100)),
            &sim,
        );
        assert!(base.violation_cycles > 0);
        assert!(
            tuned.violation_cycles * 20 <= base.violation_cycles,
            "tuning should eliminate ≥95% of violation cycles: {} vs {}",
            tuned.violation_cycles,
            base.violation_cycles
        );
        assert!(tuned.first_level_cycles > 0, "tuning must actually engage");
    }

    #[test]
    fn tuning_slowdown_is_modest() {
        let p = spec2k::by_name("bzip").unwrap();
        let sim = SimConfig::isca04(80_000);
        let base = run(&p, &Technique::Base, &sim);
        let tuned = run(
            &p,
            &Technique::Tuning(TuningConfig::isca04_table1(100)),
            &sim,
        );
        let slowdown = tuned.cycles as f64 / base.cycles as f64;
        assert!(slowdown < 1.35, "tuning slowdown {slowdown} too harsh");
        assert!(slowdown >= 1.0 - 1e-9);
    }

    #[test]
    fn sensor_technique_responds_and_runs() {
        let p = spec2k::by_name("swim").unwrap();
        let sim = SimConfig::isca04(80_000);
        let r = run(
            &p,
            &Technique::Sensor(SensorConfig::table4(20.0, 0.0, 0)),
            &sim,
        );
        assert!(
            r.sensor_response_cycles > 0,
            "sensor should react to swim's variations"
        );
        assert!(r.committed >= 80_000);
    }

    #[test]
    fn damping_bounds_variations_at_cost() {
        let p = spec2k::by_name("swim").unwrap();
        let sim = SimConfig::isca04(80_000);
        let base = run(&p, &Technique::Base, &sim);
        let damped = run(
            &p,
            &Technique::Damping(DampingConfig::isca04_table5(0.25)),
            &sim,
        );
        assert!(
            damped.cycles > base.cycles,
            "tight damping must cost cycles"
        );
        assert!(damped.violation_cycles <= base.violation_cycles);
    }

    #[test]
    fn observer_sees_every_cycle() {
        let p = spec2k::by_name("gzip").unwrap();
        let sim = SimConfig::isca04(5_000);
        let mut n = 0u64;
        let r = run_observed(&p, &Technique::Base, &sim, |rec| {
            assert_eq!(rec.cycle, n);
            n += 1;
        });
        assert_eq!(n, r.cycles);
    }

    #[test]
    fn instrumented_run_matches_plain_run() {
        let p = spec2k::by_name("gzip").unwrap();
        let sim = quick_sim();
        let plain = run(&p, &Technique::Base, &sim);
        let inst = run_instrumented(&p, &Technique::Base, &sim);
        assert_eq!(
            inst.result, plain,
            "instrumentation must not perturb the simulation"
        );
        assert!(inst.wall > Duration::ZERO);
        assert!(inst.phases.sampled_cycles > 0);
        assert_eq!(
            inst.phases.sampled_cycles,
            plain.cycles.div_ceil(PhaseTimings::SAMPLE_INTERVAL),
            "every SAMPLE_INTERVAL-th cycle is timed"
        );
        assert!(
            inst.phases.total() <= inst.wall,
            "sampled time is a subset of wall time"
        );
        assert_eq!(inst.detector_events, 0, "base runs have no detector");
    }

    #[test]
    fn instrumented_tuning_run_reports_detector_events() {
        let p = spec2k::by_name("swim").unwrap();
        let sim = SimConfig::isca04(150_000);
        let inst = run_instrumented(
            &p,
            &Technique::Tuning(TuningConfig::isca04_table1(100)),
            &sim,
        );
        assert!(inst.detector_events > 0, "swim must trip the detector");
    }

    #[test]
    fn supervised_run_without_faults_is_bit_identical() {
        let p = spec2k::by_name("gzip").unwrap();
        let sim = quick_sim();
        let plain = run(&p, &Technique::Base, &sim);
        let supervised = run_supervised(&p, &Technique::Base, &sim, &[], None);
        assert_eq!(supervised.result, plain);
    }

    #[test]
    fn numeric_fault_unwinds_with_a_classified_signal() {
        use crate::fault::{FailureKind, FaultSignal, FaultSpec};
        let p = spec2k::by_name("gzip").unwrap();
        let sim = SimConfig::isca04(20_000);
        let specs = [FaultSpec::NumericNan { at_cycle: 500 }];
        let payload = std::panic::catch_unwind(|| {
            let _ = run_supervised(&p, &Technique::Base, &sim, &specs, None);
        })
        .expect_err("NaN current must unwind");
        let signal = payload
            .downcast::<FaultSignal>()
            .expect("payload is a FaultSignal");
        assert_eq!(signal.kind, FailureKind::Numerical);
        assert!(signal.message.contains("cycle 500"), "{}", signal.message);
    }

    #[test]
    fn watchdog_deadline_unwinds_as_timeout() {
        use crate::fault::{FailureKind, FaultSignal};
        let p = spec2k::by_name("gzip").unwrap();
        let sim = SimConfig::isca04(200_000);
        let deadline = Some(Instant::now()); // already expired
        let payload = std::panic::catch_unwind(|| {
            let _ = run_supervised(&p, &Technique::Base, &sim, &[], deadline);
        })
        .expect_err("expired deadline must unwind");
        let signal = payload
            .downcast::<FaultSignal>()
            .expect("payload is a FaultSignal");
        assert_eq!(signal.kind, FailureKind::Timeout);
    }

    #[test]
    fn sensor_faults_perturb_sensing_techniques_but_not_base() {
        use crate::fault::FaultSpec;
        let p = spec2k::by_name("swim").unwrap();
        let sim = SimConfig::isca04(60_000);
        let specs = [FaultSpec::SensorNoise {
            sigma: 0.5,
            seed: 11,
        }];

        let base_clean = run(&p, &Technique::Base, &sim);
        let base_faulted = run_supervised(&p, &Technique::Base, &sim, &specs, None);
        assert_eq!(
            base_faulted.result, base_clean,
            "base has no sensor: sensor faults must not touch it"
        );

        let technique = Technique::Tuning(TuningConfig::isca04_table1(100));
        let clean = run(&p, &technique, &sim);
        let faulted = run_supervised(&p, &technique, &sim, &specs, None);
        assert_ne!(
            faulted.result, clean,
            "heavy detector noise must change the tuning run"
        );
    }

    #[test]
    fn technique_names() {
        assert_eq!(Technique::Base.name(), "base");
        assert_eq!(
            Technique::Tuning(TuningConfig::isca04_table1(75)).name(),
            "tuning"
        );
        assert_eq!(
            Technique::Sensor(SensorConfig::table4(30.0, 0.0, 0)).name(),
            "sensor[10]"
        );
        assert_eq!(
            Technique::Damping(DampingConfig::isca04_table5(1.0)).name(),
            "damping[14]"
        );
    }
}
