//! A process-global environment-variable lock for tests.
//!
//! `std::env::set_var` mutates process-wide state; two tests touching any
//! environment variable under the parallel test runner race — one test's
//! `remove_var` can land in the middle of another's set/read/restore
//! window. Every test (unit or integration) that mutates the environment
//! must go through [`with_env`], which serializes the mutation on one
//! global mutex and restores the previous values afterwards, even on
//! panic.
//!
//! This module is part of the public API only so integration tests can
//! reach it; it is not meant for production code, which should treat the
//! environment as read-only.

use std::sync::{Mutex, PoisonError};

static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Restores the saved environment on drop, so a panicking closure cannot
/// leak its mutations into the next test.
struct Restore {
    saved: Vec<(String, Option<String>)>,
}

impl Drop for Restore {
    fn drop(&mut self) {
        for (key, value) in &self.saved {
            match value {
                Some(v) => std::env::set_var(key, v),
                None => std::env::remove_var(key),
            }
        }
    }
}

/// Runs `f` with the given environment overrides (`Some` sets, `None`
/// unsets), holding the global environment lock for the whole call and
/// restoring the previous values afterwards — panic-safe.
pub fn with_env<R>(vars: &[(&str, Option<&str>)], f: impl FnOnce() -> R) -> R {
    let _guard = ENV_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let _restore = Restore {
        saved: vars
            .iter()
            .map(|(key, _)| ((*key).to_string(), std::env::var(key).ok()))
            .collect(),
    };
    for (key, value) in vars {
        match value {
            Some(v) => std::env::set_var(key, v),
            None => std::env::remove_var(key),
        }
    }
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_env_sets_unsets_and_restores() {
        std::env::set_var("RESTUNE_TESTENV_PROBE", "outer");
        with_env(
            &[
                ("RESTUNE_TESTENV_PROBE", Some("inner")),
                ("RESTUNE_TESTENV_ABSENT", None),
            ],
            || {
                assert_eq!(
                    std::env::var("RESTUNE_TESTENV_PROBE").as_deref(),
                    Ok("inner")
                );
                assert!(std::env::var("RESTUNE_TESTENV_ABSENT").is_err());
            },
        );
        assert_eq!(
            std::env::var("RESTUNE_TESTENV_PROBE").as_deref(),
            Ok("outer")
        );
        std::env::remove_var("RESTUNE_TESTENV_PROBE");
    }

    #[test]
    fn with_env_restores_after_a_panic() {
        std::env::set_var("RESTUNE_TESTENV_PANIC", "before");
        let result = std::panic::catch_unwind(|| {
            with_env(&[("RESTUNE_TESTENV_PANIC", Some("during"))], || {
                panic!("boom")
            })
        });
        assert!(result.is_err());
        assert_eq!(
            std::env::var("RESTUNE_TESTENV_PANIC").as_deref(),
            Ok("before")
        );
        std::env::remove_var("RESTUNE_TESTENV_PANIC");
    }
}
