//! Deterministic fault injection and failure classification for the
//! supervised experiment engine.
//!
//! The paper's Table 4 is itself a robustness study — it perturbs the
//! voltage-sensor substrate with noise and delay and watches the technique
//! degrade. This module generalizes that axis into a seeded, reproducible
//! fault plane covering the whole harness:
//!
//! * **sensor faults** — stuck-at readings, extra gaussian noise, added
//!   delay on the value a controller observes (extending the Table 4 axis to
//!   the tuning detector too);
//! * **numerical faults** — NaN/Inf/overflow currents fed into the RLC
//!   integrator, exercising the guarded [`rlc::try_step`] path;
//! * **storage faults** — truncated or bit-flipped recorded-baseline cache
//!   files;
//! * **worker faults** — injected panics and artificial stalls in the
//!   worker pool.
//!
//! A [`FaultPlan`] is keyed by application and attempt: the same seed always
//! injects the same faults into the same apps, so every failure a fault
//! causes is reproducible bit-for-bit. [`FaultPlan::none`] is the default
//! and is bit-exact-neutral: the engine and simulator treat it as the
//! identity.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::fmt;

/// How the supervisor classified a failed application run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureKind {
    /// The run panicked (an injected worker panic or a genuine bug).
    Panic,
    /// The run exceeded the supervisor's watchdog deadline.
    Timeout,
    /// The RLC integration surfaced an [`rlc::IntegrationError`].
    Numerical,
    /// A recorded-baseline cache file was corrupt or unreadable.
    Storage,
    /// The worker process died without unwinding: a signal (SIGKILL,
    /// SIGABRT, SIGSEGV), a non-zero exit, or — in the in-process tier —
    /// a hard-crash fault that only `RESTUNE_ISOLATION=process` can
    /// actually execute.
    Crash,
    /// The worker exited cleanly but its reply frame was missing, corrupt,
    /// or inconsistent with the job (wire codec drift).
    Transport,
    /// The run was abandoned because the suite received SIGINT/SIGTERM.
    Interrupted,
}

impl FailureKind {
    /// Stable lower-case label used in reports and JSON output.
    pub fn as_str(&self) -> &'static str {
        match self {
            FailureKind::Panic => "panic",
            FailureKind::Timeout => "timeout",
            FailureKind::Numerical => "numerical",
            FailureKind::Storage => "storage",
            FailureKind::Crash => "crash",
            FailureKind::Transport => "transport",
            FailureKind::Interrupted => "interrupted",
        }
    }
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Typed panic payload the simulator throws for classifiable failures.
///
/// The supervisor downcasts unwound payloads to this type: a `FaultSignal`
/// carries its own [`FailureKind`], anything else is classified as a plain
/// [`FailureKind::Panic`].
#[derive(Debug, Clone)]
pub struct FaultSignal {
    /// The classification the supervisor should record.
    pub kind: FailureKind,
    /// Human-readable description of what happened.
    pub message: String,
}

/// Installs (once per process) a panic hook that keeps [`FaultSignal`]
/// unwinds off stderr. Those panics are the supervisor's control flow — the
/// classification lands in the failure report — so the default hook's
/// backtrace would be pure noise. Any other panic payload still goes through
/// the previously installed hook untouched.
pub(crate) fn install_signal_quieting_hook() {
    static HOOK: std::sync::OnceLock<()> = std::sync::OnceLock::new();
    HOOK.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<FaultSignal>().is_none() {
                previous(info);
            }
        }));
    });
}

impl FaultSignal {
    /// A watchdog-deadline expiry at the given simulated cycle.
    pub fn timeout(cycle: u64) -> Self {
        Self {
            kind: FailureKind::Timeout,
            message: format!("watchdog deadline exceeded at cycle {cycle}"),
        }
    }

    /// A surfaced integration error at the given simulated cycle.
    pub fn numerical(error: impl fmt::Display, cycle: u64) -> Self {
        Self {
            kind: FailureKind::Numerical,
            message: format!("integration failed at cycle {cycle}: {error}"),
        }
    }

    /// An injected worker panic.
    pub fn injected_panic() -> Self {
        Self {
            kind: FailureKind::Panic,
            message: "injected worker panic".to_string(),
        }
    }
}

/// One injectable fault, applied to a single application run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultSpec {
    /// The controller's sensed value freezes at its `from_cycle` reading for
    /// `hold_cycles` cycles.
    SensorStuck {
        /// First faulty cycle.
        from_cycle: u64,
        /// How long the reading stays frozen.
        hold_cycles: u64,
    },
    /// Extra zero-mean gaussian noise on every sensed value, with standard
    /// deviation `sigma` relative to the technique's sensing scale.
    SensorNoise {
        /// Standard deviation as a fraction of the sensing scale.
        sigma: f64,
        /// Seed of the noise stream (independent of the plan seed).
        seed: u64,
    },
    /// The controller observes values `cycles` cycles stale.
    SensorDelay {
        /// Added delay in cycles.
        cycles: u32,
    },
    /// The CPU current fed to the supply becomes NaN at `at_cycle`.
    NumericNan {
        /// The faulty cycle.
        at_cycle: u64,
    },
    /// The CPU current becomes +∞ at `at_cycle`.
    NumericInf {
        /// The faulty cycle.
        at_cycle: u64,
    },
    /// The CPU current is scaled beyond any physical value at `at_cycle`,
    /// driving the integrator past its blow-up envelope.
    NumericOverflow {
        /// The faulty cycle.
        at_cycle: u64,
    },
    /// The worker panics before the run starts.
    WorkerPanic,
    /// The worker stalls for `millis` before the run starts (drives the
    /// watchdog when a timeout is configured).
    WorkerStall {
        /// Stall duration in milliseconds.
        millis: u64,
    },
    /// The worker calls [`std::process::abort`] before the run starts. A
    /// hard crash: no unwinding, no reply — only the process-isolation
    /// tier can contain it (the in-process tier records it as a simulated
    /// [`FailureKind::Crash`] without executing).
    WorkerAbort,
    /// The worker SIGKILLs itself before the run starts (indistinguishable
    /// from the OOM killer). Same containment rules as [`WorkerAbort`].
    WorkerKill,
}

impl FaultSpec {
    /// Stable lower-case class label used in reports and JSON output.
    pub fn class(&self) -> &'static str {
        match self {
            FaultSpec::SensorStuck { .. } => "sensor-stuck",
            FaultSpec::SensorNoise { .. } => "sensor-noise",
            FaultSpec::SensorDelay { .. } => "sensor-delay",
            FaultSpec::NumericNan { .. } => "numeric-nan",
            FaultSpec::NumericInf { .. } => "numeric-inf",
            FaultSpec::NumericOverflow { .. } => "numeric-overflow",
            FaultSpec::WorkerPanic => "worker-panic",
            FaultSpec::WorkerStall { .. } => "worker-stall",
            FaultSpec::WorkerAbort => "worker-abort",
            FaultSpec::WorkerKill => "worker-kill",
        }
    }

    /// `true` for faults that kill the worker process outright (no unwind,
    /// no reply frame). Containable only under `RESTUNE_ISOLATION=process`.
    pub fn is_hard_crash(&self) -> bool {
        matches!(self, FaultSpec::WorkerAbort | FaultSpec::WorkerKill)
    }

    /// `true` for faults that perturb the *result* of a successful run
    /// (sensor faults) rather than making the run fail. These participate in
    /// checkpoint fingerprints: results computed under different sensor
    /// faults are not interchangeable.
    pub fn perturbs_result(&self) -> bool {
        matches!(
            self,
            FaultSpec::SensorStuck { .. }
                | FaultSpec::SensorNoise { .. }
                | FaultSpec::SensorDelay { .. }
        )
    }
}

/// A fault applied to a recorded-baseline cache file on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageFault {
    /// The file is cut to half its length (simulates an interrupted write).
    Truncate,
    /// A byte in the middle of the file is bit-flipped.
    BitFlip,
}

impl StorageFault {
    /// Stable lower-case label used in reports.
    pub fn class(&self) -> &'static str {
        match self {
            StorageFault::Truncate => "storage-truncate",
            StorageFault::BitFlip => "storage-bitflip",
        }
    }
}

/// Whether an injected fault persists across supervisor retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Persistence {
    /// Applied only to the first attempt; a retry runs clean.
    Transient,
    /// Applied to every attempt; the supervisor's retries cannot help.
    Persistent,
}

/// The deterministic fault-injection plan for a suite run.
///
/// Off by default ([`FaultPlan::none`]) and bit-exact-neutral when disabled.
/// [`FaultPlan::seeded`] derives, per application, a reproducible set of
/// faults; explicit faults can be targeted at named apps with the builder
/// methods.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    seed: Option<u64>,
    storage: Option<StorageFault>,
    targeted: Vec<(String, FaultSpec, Persistence)>,
}

/// FNV-1a over the app name, mixed with the plan seed, giving each app its
/// own deterministic fault stream.
fn app_stream_seed(seed: u64, app: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in app.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ seed.rotate_left(17)
}

impl FaultPlan {
    /// The disabled plan: injects nothing anywhere.
    pub fn none() -> Self {
        Self::default()
    }

    /// A fully seeded plan: every application draws its faults from a
    /// deterministic per-app stream, and the baseline cache suffers a
    /// storage fault. The same seed always produces the same plan.
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed: Some(seed),
            storage: Some(if seed & 1 == 0 {
                StorageFault::Truncate
            } else {
                StorageFault::BitFlip
            }),
            targeted: Vec::new(),
        }
    }

    /// Adds an explicit fault for `app` applied only to the first attempt.
    pub fn with_transient_fault(mut self, app: &str, spec: FaultSpec) -> Self {
        self.targeted
            .push((app.to_string(), spec, Persistence::Transient));
        self
    }

    /// Adds an explicit fault for `app` applied to every attempt.
    pub fn with_persistent_fault(mut self, app: &str, spec: FaultSpec) -> Self {
        self.targeted
            .push((app.to_string(), spec, Persistence::Persistent));
        self
    }

    /// Adds (or replaces) the storage fault applied to baseline cache files.
    pub fn with_storage_fault(mut self, fault: StorageFault) -> Self {
        self.storage = Some(fault);
        self
    }

    /// `true` when the plan can inject anything at all.
    pub fn is_enabled(&self) -> bool {
        self.seed.is_some() || self.storage.is_some() || !self.targeted.is_empty()
    }

    /// The storage fault to apply to baseline cache files, if any.
    pub fn storage_fault(&self) -> Option<StorageFault> {
        self.storage
    }

    /// The faults to inject into `app` on the given retry `attempt`
    /// (0 = first try). Transient faults apply only to attempt 0.
    pub fn faults_for(&self, app: &str, attempt: u32) -> Vec<FaultSpec> {
        let mut out: Vec<FaultSpec> = self
            .targeted
            .iter()
            .filter(|(name, _, persistence)| {
                name == app && (attempt == 0 || *persistence == Persistence::Persistent)
            })
            .map(|(_, spec, _)| *spec)
            .collect();
        if let Some(seed) = self.seed {
            out.extend(
                Self::derived_faults(seed, app)
                    .into_iter()
                    .filter(|(_, p)| attempt == 0 || *p == Persistence::Persistent)
                    .map(|(spec, _)| spec),
            );
        }
        out
    }

    /// The result-perturbing (sensor) faults for `app` — the part of the
    /// plan a checkpoint fingerprint must include.
    pub fn result_faults(&self, app: &str) -> Vec<FaultSpec> {
        self.faults_for(app, 0)
            .into_iter()
            .filter(FaultSpec::perturbs_result)
            .collect()
    }

    /// `true` when the plan perturbs the *results* of any suite application
    /// (a sensor fault somewhere). Suites run under such a plan must never
    /// be recorded as clean baselines.
    pub fn has_result_faults(&self) -> bool {
        workloads::registry::all()
            .iter()
            .any(|p| !self.result_faults(p.name).is_empty())
    }

    /// Derives the seeded faults for one app. Kept deliberately sparse so a
    /// seeded suite degrades rather than collapses: most apps run clean,
    /// some see one or two faults, and a minority of those faults persist
    /// across retries.
    fn derived_faults(seed: u64, app: &str) -> Vec<(FaultSpec, Persistence)> {
        let mut rng = StdRng::seed_from_u64(app_stream_seed(seed, app));
        let mut out = Vec::new();
        if rng.gen_bool(0.18) {
            let spec = match rng.gen_range(0..3u32) {
                0 => FaultSpec::SensorStuck {
                    from_cycle: rng.gen_range(256..2048u64),
                    hold_cycles: rng.gen_range(64..512u64),
                },
                1 => FaultSpec::SensorNoise {
                    sigma: rng.gen_range(0.05..0.5),
                    seed: rng.gen(),
                },
                _ => FaultSpec::SensorDelay {
                    cycles: rng.gen_range(1..16u32),
                },
            };
            // Sensor faults model environment drift: they never clear on a
            // retry.
            out.push((spec, Persistence::Persistent));
        }
        if rng.gen_bool(0.12) {
            let at_cycle = rng.gen_range(256..2048u64);
            let spec = match rng.gen_range(0..3u32) {
                0 => FaultSpec::NumericNan { at_cycle },
                1 => FaultSpec::NumericInf { at_cycle },
                _ => FaultSpec::NumericOverflow { at_cycle },
            };
            out.push((spec, persistence(&mut rng, 0.3)));
        }
        if rng.gen_bool(0.15) {
            let spec = if rng.gen_bool(0.5) {
                FaultSpec::WorkerPanic
            } else {
                FaultSpec::WorkerStall {
                    millis: rng.gen_range(5..40u64),
                }
            };
            out.push((spec, persistence(&mut rng, 0.25)));
        }
        out
    }
}

fn persistence(rng: &mut StdRng, p_persistent: f64) -> Persistence {
    if rng.gen_bool(p_persistent) {
        Persistence::Persistent
    } else {
        Persistence::Transient
    }
}

/// Per-run fault state machine the simulator consults each cycle. Built by
/// the supervised runner from the [`FaultPlan`]'s specs for one (app,
/// attempt); [`FaultRuntime::none`] is the identity and is what the plain
/// (unsupervised) entry points use.
#[derive(Debug)]
pub struct FaultRuntime {
    inert: bool,
    stuck: Option<StuckState>,
    noise: Option<NoiseState>,
    delay: Option<DelayState>,
    numeric: Option<(u64, f64)>,
    pre: Vec<PreRunFault>,
    /// Application name for cycle-stamped fault events; `None` disables
    /// emission (the plain entry points never set it).
    traced_app: Option<&'static str>,
}

#[derive(Debug)]
struct StuckState {
    from_cycle: u64,
    until_cycle: u64,
    held: Option<f64>,
}

#[derive(Debug)]
struct NoiseState {
    rng: StdRng,
    sigma: f64,
}

#[derive(Debug)]
struct DelayState {
    buffer: VecDeque<f64>,
    cycles: usize,
}

#[derive(Debug, Clone, Copy)]
enum PreRunFault {
    Panic,
    Stall { millis: u64 },
    Abort,
    Kill,
}

/// Draws one standard gaussian via Box–Muller.
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1 = rng.gen::<f64>().max(1e-300);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

impl FaultRuntime {
    /// The identity runtime: every hook is a no-op returning its input
    /// bit-for-bit.
    pub fn none() -> Self {
        Self {
            inert: true,
            stuck: None,
            noise: None,
            delay: None,
            numeric: None,
            pre: Vec::new(),
            traced_app: None,
        }
    }

    /// Builds the runtime for one attempt. `sense_scale` is the technique's
    /// natural sensing magnitude (the noise margin in volts for the voltage
    /// sensor, the current variation threshold in amps for the tuning
    /// detector); relative noise sigmas are scaled by it.
    pub fn from_specs(specs: &[FaultSpec], sense_scale: f64) -> Self {
        let mut runtime = Self::none();
        for spec in specs {
            match *spec {
                FaultSpec::SensorStuck {
                    from_cycle,
                    hold_cycles,
                } => {
                    runtime.stuck = Some(StuckState {
                        from_cycle,
                        until_cycle: from_cycle.saturating_add(hold_cycles),
                        held: None,
                    });
                }
                FaultSpec::SensorNoise { sigma, seed } => {
                    runtime.noise = Some(NoiseState {
                        rng: StdRng::seed_from_u64(seed),
                        sigma: sigma * sense_scale,
                    });
                }
                FaultSpec::SensorDelay { cycles } => {
                    runtime.delay = Some(DelayState {
                        buffer: VecDeque::with_capacity(cycles as usize + 1),
                        cycles: cycles as usize,
                    });
                }
                FaultSpec::NumericNan { at_cycle } => {
                    runtime.numeric = Some((at_cycle, f64::NAN));
                }
                FaultSpec::NumericInf { at_cycle } => {
                    runtime.numeric = Some((at_cycle, f64::INFINITY));
                }
                FaultSpec::NumericOverflow { at_cycle } => {
                    // Large enough to push the integrator past its blow-up
                    // envelope, small enough to stay finite through the step
                    // arithmetic — it must be caught by the guard, not by
                    // accident of overflow.
                    runtime.numeric = Some((at_cycle, 1e12));
                }
                FaultSpec::WorkerPanic => runtime.pre.push(PreRunFault::Panic),
                FaultSpec::WorkerStall { millis } => {
                    runtime.pre.push(PreRunFault::Stall { millis })
                }
                FaultSpec::WorkerAbort => runtime.pre.push(PreRunFault::Abort),
                FaultSpec::WorkerKill => runtime.pre.push(PreRunFault::Kill),
            }
        }
        runtime.inert = runtime.stuck.is_none()
            && runtime.noise.is_none()
            && runtime.delay.is_none()
            && runtime.numeric.is_none()
            && runtime.pre.is_empty();
        runtime
    }

    /// `true` when every hook is a no-op.
    pub fn is_inert(&self) -> bool {
        self.inert
    }

    /// Names the application for cycle-stamped fault events (observability
    /// only; never changes what the runtime injects).
    pub fn set_traced_app(&mut self, app: &'static str) {
        self.traced_app = Some(app);
    }

    fn fault_event(&self, kind: &str, cycle: u64) -> crate::obs::Event {
        crate::obs::counter_add(&format!("sim.{kind}"), 1);
        crate::obs::Event::sim(kind, self.traced_app.unwrap_or("?"), cycle)
    }

    /// Fires pre-run worker faults: stalls sleep, panics unwind with a
    /// classified [`FaultSignal`], and the hard-crash faults take the
    /// process down for real (the supervisor only lets them execute inside
    /// an isolated worker process).
    pub fn pre_run(&self) {
        let tracing = self.traced_app.is_some() && crate::obs::trace_enabled();
        for fault in &self.pre {
            if tracing {
                // Emit *before* firing: the hard-crash faults never return,
                // and the armed event is the only trace they leave. (In
                // wire-forwarding mode even that is lost with the process —
                // the parent's fault-armed event still records the arming.)
                let kind = match fault {
                    PreRunFault::Panic => "fault-panic",
                    PreRunFault::Stall { .. } => "fault-stall",
                    PreRunFault::Abort => "fault-abort",
                    PreRunFault::Kill => "fault-kill",
                };
                self.fault_event(kind, 0).emit();
            }
            match fault {
                PreRunFault::Stall { millis } => {
                    std::thread::sleep(std::time::Duration::from_millis(*millis));
                }
                PreRunFault::Panic => std::panic::panic_any(FaultSignal::injected_panic()),
                PreRunFault::Abort => std::process::abort(),
                PreRunFault::Kill => crate::isolation::kill_self(),
            }
        }
    }

    /// Routes one sensed value through the sensor-fault chain
    /// (delay → stuck-at → noise). Identity when inert.
    #[inline]
    pub fn sense(&mut self, cycle: u64, value: f64) -> f64 {
        if self.inert {
            return value;
        }
        let mut v = value;
        if let Some(delay) = &mut self.delay {
            delay.buffer.push_back(v);
            v = if delay.buffer.len() > delay.cycles {
                delay.buffer.pop_front().expect("buffer is non-empty")
            } else {
                *delay.buffer.front().expect("buffer is non-empty")
            };
        }
        if let Some(stuck) = &mut self.stuck {
            if cycle >= stuck.from_cycle && cycle < stuck.until_cycle {
                v = *stuck.held.get_or_insert(v);
            } else {
                stuck.held = None;
            }
        }
        if let Some(noise) = &mut self.noise {
            v += noise.sigma * gaussian(&mut noise.rng);
        }
        v
    }

    /// Perturbs the CPU current fed to the supply at `cycle`. Identity when
    /// inert; the numeric faults replace the current at their cycle.
    #[inline]
    pub fn perturb_current(&mut self, cycle: u64, amps: f64) -> f64 {
        if self.inert {
            return amps;
        }
        match self.numeric {
            Some((at_cycle, injected)) if cycle == at_cycle => {
                if self.traced_app.is_some() && crate::obs::trace_enabled() {
                    self.fault_event("fault-perturb", cycle)
                        .f64_field("injected_amps", injected)
                        .f64_field("replaced_amps", amps)
                        .emit();
                }
                injected
            }
            _ => amps,
        }
    }
}

/// One injectable network fault, applied to a single framed connection.
///
/// Frame indices count *outgoing* frames on the connection the runtime is
/// attached to, starting at 0. The faults model the three ways a peer
/// misbehaves on a byte stream: it tears a frame mid-write, it writes so
/// slowly the frame never completes in useful time, or it vanishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFaultSpec {
    /// Write only the first half of frame `at_frame`, then hard-close the
    /// connection (a torn frame: the peer sees a partial header/payload
    /// followed by EOF).
    TruncateFrame {
        /// Zero-based index of the outgoing frame to tear.
        at_frame: u64,
    },
    /// Write the first half of frame `at_frame`, stall `millis`
    /// milliseconds, then write the rest (slow-loris: the peer's decoder
    /// holds a partial frame for the whole stall).
    StallFrame {
        /// Zero-based index of the outgoing frame to stall inside.
        at_frame: u64,
        /// Stall duration in milliseconds.
        millis: u64,
    },
    /// Hard-close the connection once `after_frames` frames have been
    /// written (a mid-stream disconnect; `0` drops before any frame).
    Disconnect {
        /// Number of frames delivered intact before the drop.
        after_frames: u64,
    },
}

impl NetFaultSpec {
    /// Stable lower-case class label used in reports and logs.
    pub fn class(&self) -> &'static str {
        match self {
            NetFaultSpec::TruncateFrame { .. } => "net-truncate",
            NetFaultSpec::StallFrame { .. } => "net-stall",
            NetFaultSpec::Disconnect { .. } => "net-disconnect",
        }
    }
}

/// What the framed writer must do with the frame it is about to send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum NetAction {
    /// Send the frame intact.
    Pass,
    /// Send the first half, then hard-close.
    Truncate,
    /// Send the first half, sleep, send the rest.
    Stall {
        /// Stall duration in milliseconds.
        millis: u64,
    },
    /// Hard-close without sending anything.
    Drop,
}

/// Per-connection network-fault state machine consulted once per outgoing
/// frame. [`NetFaultRuntime::none`] is the identity.
#[derive(Debug)]
pub(crate) struct NetFaultRuntime {
    specs: Vec<NetFaultSpec>,
    frames: u64,
}

impl NetFaultRuntime {
    /// A runtime armed with the given specs (an empty list is the
    /// identity: every frame passes).
    pub(crate) fn new(specs: Vec<NetFaultSpec>) -> Self {
        Self { specs, frames: 0 }
    }

    /// `true` when at least one fault is armed.
    pub(crate) fn is_armed(&self) -> bool {
        !self.specs.is_empty()
    }

    /// Decides the fate of the next outgoing frame and advances the frame
    /// counter. Disconnect wins over per-frame faults (once the cut point
    /// is reached nothing further may be sent); otherwise the first spec
    /// matching the current frame index applies.
    pub(crate) fn on_frame(&mut self) -> NetAction {
        let index = self.frames;
        self.frames += 1;
        for spec in &self.specs {
            if let NetFaultSpec::Disconnect { after_frames } = spec {
                if index >= *after_frames {
                    return NetAction::Drop;
                }
            }
        }
        for spec in &self.specs {
            match spec {
                NetFaultSpec::TruncateFrame { at_frame } if *at_frame == index => {
                    return NetAction::Truncate;
                }
                NetFaultSpec::StallFrame { at_frame, millis } if *at_frame == index => {
                    return NetAction::Stall { millis: *millis };
                }
                _ => {}
            }
        }
        NetAction::Pass
    }
}

/// Parses a comma-separated network-fault list: `truncate:N`,
/// `stall:N:MILLIS`, `disconnect:N` (N = zero-based outgoing frame index;
/// for `disconnect`, the number of intact frames before the cut).
pub fn parse_net_faults(raw: &str) -> Result<Vec<NetFaultSpec>, String> {
    let mut specs = Vec::new();
    for part in raw.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let mut fields = part.split(':');
        let class = fields.next().unwrap_or("");
        let num = |s: Option<&str>, what: &str| -> Result<u64, String> {
            s.ok_or_else(|| format!("{part:?}: missing {what}"))?
                .parse::<u64>()
                .map_err(|_| format!("{part:?}: {what} must be a non-negative integer"))
        };
        let spec = match class {
            "truncate" => NetFaultSpec::TruncateFrame {
                at_frame: num(fields.next(), "frame index")?,
            },
            "stall" => NetFaultSpec::StallFrame {
                at_frame: num(fields.next(), "frame index")?,
                millis: num(fields.next(), "stall millis")?,
            },
            "disconnect" => NetFaultSpec::Disconnect {
                after_frames: num(fields.next(), "frame count")?,
            },
            other => {
                return Err(format!(
                    "unknown net fault {other:?} (want truncate:N, stall:N:MILLIS, disconnect:N)"
                ))
            }
        };
        if fields.next().is_some() {
            return Err(format!("{part:?}: trailing fields"));
        }
        specs.push(spec);
    }
    Ok(specs)
}

/// Derives the seeded server-side network faults for one accepted
/// connection. Deliberately gentle: roughly a quarter of connections
/// misbehave, and every faulted connection still delivers at least two
/// intact frames first, so a retrying client always makes progress.
pub(crate) fn seeded_net_faults(seed: u64, connection: u64) -> Vec<NetFaultSpec> {
    let h =
        app_stream_seed(seed, "net").wrapping_add(connection.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut rng = StdRng::seed_from_u64(h);
    if !rng.gen_bool(0.25) {
        return Vec::new();
    }
    let after = rng.gen_range(2..6u64);
    if rng.gen_bool(0.5) {
        vec![NetFaultSpec::Disconnect {
            after_frames: after,
        }]
    } else {
        vec![NetFaultSpec::TruncateFrame { at_frame: after }]
    }
}

// ---------------------------------------------------------------------------
// Chaos conductor schedules
// ---------------------------------------------------------------------------

/// One step of a chaos-conductor schedule, aimed at one mesh host (a
/// zero-based index into the host list).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosStep {
    /// Abruptly stop the host, as a crash or `SIGKILL` would: in-flight
    /// jobs are joined but nothing new is accepted and every connection
    /// drops.
    Kill {
        /// Target host index.
        host: usize,
    },
    /// Gracefully drain the host (the `SIGTERM` path): finish queued and
    /// in-flight work — persisting it in the shared result cache — then
    /// stop.
    Drain {
        /// Target host index.
        host: usize,
    },
    /// Restart a previously killed or drained host on the same endpoint
    /// and cache directory, under a fresh generation.
    Restart {
        /// Target host index.
        host: usize,
    },
    /// Wedge the host's worker pool for a window: connections stay up and
    /// requests queue, but nothing executes until the window closes.
    Stall {
        /// Target host index.
        host: usize,
        /// Stall window length in milliseconds.
        millis: u64,
    },
    /// Partition the host from the client for a window: the mesh routes
    /// around it as if the network path were gone, then heals.
    Partition {
        /// Target host index.
        host: usize,
        /// Partition window length in milliseconds.
        millis: u64,
    },
}

impl ChaosStep {
    /// A short class label for logs and traces.
    pub fn class(&self) -> &'static str {
        match self {
            ChaosStep::Kill { .. } => "chaos-kill",
            ChaosStep::Drain { .. } => "chaos-drain",
            ChaosStep::Restart { .. } => "chaos-restart",
            ChaosStep::Stall { .. } => "chaos-stall",
            ChaosStep::Partition { .. } => "chaos-partition",
        }
    }

    /// The host index this step targets.
    pub fn host(&self) -> usize {
        match *self {
            ChaosStep::Kill { host }
            | ChaosStep::Drain { host }
            | ChaosStep::Restart { host }
            | ChaosStep::Stall { host, .. }
            | ChaosStep::Partition { host, .. } => host,
        }
    }
}

/// A deterministic chaos schedule: delays (milliseconds after the previous
/// step fired) paired with [`ChaosStep`]s. Built by
/// [`ChaosSchedule::seeded`], executed by the mesh's chaos conductor — the
/// same seed always yields the same havoc, so a failing chaos run is
/// replayable byte for byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosSchedule {
    /// `(delay_ms, step)` pairs, applied in order.
    pub steps: Vec<(u64, ChaosStep)>,
}

impl ChaosSchedule {
    /// Derives a schedule for a mesh of `hosts` hosts from a seed. The
    /// seed's residue mod 3 picks the template — 0: kill + restart, 1:
    /// drain + restart, 2: a partition window on one host plus a stall on
    /// another — and the seeded stream picks victims and timings, so one
    /// seed family covers every fault class the mesh must survive.
    pub fn seeded(seed: u64, hosts: usize) -> ChaosSchedule {
        let hosts = hosts.max(1);
        let mut rng = StdRng::seed_from_u64(app_stream_seed(seed, "chaos"));
        let victim = rng.gen_range(0..hosts);
        let mut steps = Vec::new();
        match seed % 3 {
            0 => {
                steps.push((rng.gen_range(5..40u64), ChaosStep::Kill { host: victim }));
                steps.push((
                    rng.gen_range(20..80u64),
                    ChaosStep::Restart { host: victim },
                ));
            }
            1 => {
                steps.push((rng.gen_range(5..40u64), ChaosStep::Drain { host: victim }));
                steps.push((
                    rng.gen_range(20..80u64),
                    ChaosStep::Restart { host: victim },
                ));
            }
            _ => {
                steps.push((
                    rng.gen_range(5..40u64),
                    ChaosStep::Partition {
                        host: victim,
                        millis: rng.gen_range(30..120u64),
                    },
                ));
                if hosts > 1 {
                    let other = (victim + 1 + rng.gen_range(0..hosts as u64 - 1) as usize) % hosts;
                    steps.push((
                        rng.gen_range(5..40u64),
                        ChaosStep::Stall {
                            host: other,
                            millis: rng.gen_range(10..60u64),
                        },
                    ));
                }
            }
        }
        ChaosSchedule { steps }
    }
}

/// One application the supervisor gave up on, with its classification.
#[derive(Debug, Clone, PartialEq)]
pub struct AppFailure {
    /// The application name.
    pub app: String,
    /// How the last failure was classified.
    pub kind: FailureKind,
    /// The last failure's message.
    pub message: String,
    /// Total attempts made (1 + retries).
    pub attempts: u32,
}

impl fmt::Display for AppFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} failed ({}, {} attempts): {}",
            self.app, self.kind, self.attempts, self.message
        )
    }
}

/// A transient failure the supervisor retried past.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryEvent {
    /// The application name.
    pub app: String,
    /// How the failed attempt(s) were classified.
    pub kind: FailureKind,
    /// The last failed attempt's message.
    pub message: String,
    /// The attempt number that finally succeeded (≥ 2).
    pub attempts: u32,
}

/// A fault the plan injected into one attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectionEvent {
    /// The application name.
    pub app: String,
    /// Which attempt received the fault (0 = first try).
    pub attempt: u32,
    /// The fault's class label ([`FaultSpec::class`]).
    pub class: &'static str,
}

/// A baseline-cache file that was found damaged (or deliberately damaged by
/// a storage fault) and what became of it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageIncident {
    /// The file involved.
    pub path: String,
    /// What happened to it.
    pub detail: String,
    /// `true` when the engine recovered by re-simulating and re-recording.
    pub recovered: bool,
}

/// Everything the supervisor observed across one suite run: injected faults,
/// retried-and-recovered failures, final failures, and storage incidents.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FailureReport {
    /// Which suite this report covers (a technique name or design-point
    /// label).
    pub scope: String,
    /// Applications the supervisor gave up on.
    pub failures: Vec<AppFailure>,
    /// Transient failures that succeeded on retry.
    pub recoveries: Vec<RecoveryEvent>,
    /// Faults the plan injected.
    pub injections: Vec<InjectionEvent>,
    /// Baseline-cache files found damaged.
    pub storage: Vec<StorageIncident>,
    /// `true` when at least one checkpoint append failed: results are
    /// still correct, but a crash now loses the unwritten rows (resume
    /// would re-run them).
    pub checkpoint_degraded: bool,
}

impl FailureReport {
    /// An empty report for the given scope.
    pub fn new(scope: impl Into<String>) -> Self {
        Self {
            scope: scope.into(),
            ..Self::default()
        }
    }

    /// `true` when nothing failed terminally (recoveries and injections are
    /// allowed — that is what "degraded gracefully" means).
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty() && self.storage.iter().all(|s| s.recovered)
    }

    /// `true` when the report has no events at all.
    pub fn is_empty(&self) -> bool {
        self.failures.is_empty()
            && self.recoveries.is_empty()
            && self.injections.is_empty()
            && self.storage.is_empty()
            && !self.checkpoint_degraded
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "[{}] {} injected, {} recovered, {} failed, {} storage incidents{}",
            self.scope,
            self.injections.len(),
            self.recoveries.len(),
            self.failures.len(),
            self.storage.len(),
            if self.checkpoint_degraded {
                ", checkpoint degraded"
            } else {
                ""
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_disabled_and_injects_nothing() {
        let plan = FaultPlan::none();
        assert!(!plan.is_enabled());
        assert!(plan.storage_fault().is_none());
        for app in ["gzip", "mcf", "art"] {
            assert!(plan.faults_for(app, 0).is_empty());
        }
    }

    #[test]
    fn seeded_plans_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::seeded(42);
        let b = FaultPlan::seeded(42);
        let c = FaultPlan::seeded(43);
        let apps = ["gzip", "vpr", "gcc", "mcf", "crafty", "parser", "eon"];
        let draw = |plan: &FaultPlan| -> Vec<Vec<FaultSpec>> {
            apps.iter().map(|app| plan.faults_for(app, 0)).collect()
        };
        assert_eq!(draw(&a), draw(&b), "same seed, same plan");
        assert_ne!(draw(&a), draw(&c), "different seeds must diverge");
    }

    #[test]
    fn seeded_plan_injects_somewhere_across_a_suite() {
        // The CI smoke stage relies on a seeded plan actually doing
        // something across the 26-app suite.
        let plan = FaultPlan::seeded(42);
        let total: usize = workloads::spec2k::all()
            .iter()
            .map(|p| plan.faults_for(p.name, 0).len())
            .sum();
        assert!(total > 0, "seed 42 must inject at least one fault");
    }

    #[test]
    fn transient_faults_clear_on_retry_and_persistent_ones_do_not() {
        let plan = FaultPlan::none()
            .with_transient_fault("gzip", FaultSpec::WorkerPanic)
            .with_persistent_fault("gzip", FaultSpec::NumericNan { at_cycle: 500 });
        assert_eq!(plan.faults_for("gzip", 0).len(), 2);
        let retry = plan.faults_for("gzip", 1);
        assert_eq!(retry, vec![FaultSpec::NumericNan { at_cycle: 500 }]);
        assert!(plan.faults_for("mcf", 0).is_empty(), "targeted app only");
    }

    #[test]
    fn result_faults_are_the_sensor_subset() {
        let plan = FaultPlan::none()
            .with_persistent_fault("gzip", FaultSpec::SensorDelay { cycles: 3 })
            .with_persistent_fault("gzip", FaultSpec::WorkerPanic);
        let result_faults = plan.result_faults("gzip");
        assert_eq!(result_faults, vec![FaultSpec::SensorDelay { cycles: 3 }]);
    }

    #[test]
    fn inert_runtime_is_the_identity() {
        let mut rt = FaultRuntime::none();
        assert!(rt.is_inert());
        for cycle in 0..100 {
            let v = 0.0125 * cycle as f64;
            assert_eq!(rt.sense(cycle, v).to_bits(), v.to_bits());
            assert_eq!(rt.perturb_current(cycle, v).to_bits(), v.to_bits());
        }
        rt.pre_run(); // must not panic or sleep
    }

    #[test]
    fn stuck_at_holds_the_entry_value_for_the_window() {
        let specs = [FaultSpec::SensorStuck {
            from_cycle: 10,
            hold_cycles: 5,
        }];
        let mut rt = FaultRuntime::from_specs(&specs, 1.0);
        assert!(!rt.is_inert());
        assert_eq!(rt.sense(9, 9.0), 9.0);
        for cycle in 10..15 {
            assert_eq!(rt.sense(cycle, cycle as f64), 10.0, "held at entry");
        }
        assert_eq!(rt.sense(15, 15.0), 15.0, "released after the window");
    }

    #[test]
    fn delay_shifts_the_stream() {
        let specs = [FaultSpec::SensorDelay { cycles: 3 }];
        let mut rt = FaultRuntime::from_specs(&specs, 1.0);
        let out: Vec<f64> = (0..8).map(|c| rt.sense(c, c as f64)).collect();
        assert_eq!(out, vec![0.0, 0.0, 0.0, 0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn noise_is_seed_deterministic_and_scaled() {
        let specs = [FaultSpec::SensorNoise {
            sigma: 0.1,
            seed: 7,
        }];
        let mut a = FaultRuntime::from_specs(&specs, 0.05);
        let mut b = FaultRuntime::from_specs(&specs, 0.05);
        let va: Vec<f64> = (0..50).map(|c| a.sense(c, 1.0)).collect();
        let vb: Vec<f64> = (0..50).map(|c| b.sense(c, 1.0)).collect();
        assert_eq!(va, vb, "same seed, same noise stream");
        let max_dev = va.iter().map(|v| (v - 1.0).abs()).fold(0.0, f64::max);
        assert!(max_dev > 0.0, "noise must perturb");
        assert!(max_dev < 0.1 * 0.05 * 6.0, "six sigma bound, scaled");
    }

    #[test]
    fn numeric_faults_replace_the_current_at_their_cycle() {
        let specs = [FaultSpec::NumericNan { at_cycle: 3 }];
        let mut rt = FaultRuntime::from_specs(&specs, 1.0);
        assert_eq!(rt.perturb_current(2, 70.0), 70.0);
        assert!(rt.perturb_current(3, 70.0).is_nan());
        assert_eq!(rt.perturb_current(4, 70.0), 70.0);
    }

    #[test]
    fn worker_panic_fires_pre_run_with_a_typed_signal() {
        let rt = FaultRuntime::from_specs(&[FaultSpec::WorkerPanic], 1.0);
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| rt.pre_run()))
            .expect_err("pre_run must unwind");
        let signal = payload
            .downcast::<FaultSignal>()
            .expect("the payload is a typed FaultSignal");
        assert_eq!(signal.kind, FailureKind::Panic);
        assert_eq!(signal.message, "injected worker panic");
    }

    #[test]
    fn net_fault_parser_accepts_the_documented_grammar() {
        assert_eq!(
            parse_net_faults("truncate:3"),
            Ok(vec![NetFaultSpec::TruncateFrame { at_frame: 3 }])
        );
        assert_eq!(
            parse_net_faults("stall:1:250, disconnect:4"),
            Ok(vec![
                NetFaultSpec::StallFrame {
                    at_frame: 1,
                    millis: 250
                },
                NetFaultSpec::Disconnect { after_frames: 4 },
            ])
        );
        assert_eq!(parse_net_faults(""), Ok(Vec::new()));
        assert!(parse_net_faults("truncate").is_err(), "missing index");
        assert!(parse_net_faults("stall:1").is_err(), "missing millis");
        assert!(parse_net_faults("truncate:x").is_err(), "non-numeric");
        assert!(parse_net_faults("truncate:1:2").is_err(), "trailing field");
        assert!(parse_net_faults("explode:1").is_err(), "unknown class");
    }

    #[test]
    fn net_runtime_sequences_faults_by_frame_index() {
        let mut rt = NetFaultRuntime::new(vec![
            NetFaultSpec::StallFrame {
                at_frame: 1,
                millis: 10,
            },
            NetFaultSpec::Disconnect { after_frames: 3 },
        ]);
        assert!(rt.is_armed());
        assert_eq!(rt.on_frame(), NetAction::Pass);
        assert_eq!(rt.on_frame(), NetAction::Stall { millis: 10 });
        assert_eq!(rt.on_frame(), NetAction::Pass);
        assert_eq!(rt.on_frame(), NetAction::Drop, "cut at frame 3");
        assert_eq!(rt.on_frame(), NetAction::Drop, "stays down");

        let mut rt = NetFaultRuntime::new(vec![NetFaultSpec::TruncateFrame { at_frame: 0 }]);
        assert_eq!(rt.on_frame(), NetAction::Truncate);
        assert_eq!(rt.on_frame(), NetAction::Pass, "truncate fires once");

        let mut inert = NetFaultRuntime::new(Vec::new());
        assert!(!inert.is_armed());
        for _ in 0..16 {
            assert_eq!(inert.on_frame(), NetAction::Pass);
        }
    }

    #[test]
    fn seeded_net_faults_are_deterministic_gentle_and_guarantee_progress() {
        let draw = |seed: u64| -> Vec<Vec<NetFaultSpec>> {
            (0..64).map(|conn| seeded_net_faults(seed, conn)).collect()
        };
        assert_eq!(draw(42), draw(42), "same seed, same plan");
        assert_ne!(draw(42), draw(43), "different seeds must diverge");
        let plan = draw(42);
        let faulted = plan.iter().filter(|f| !f.is_empty()).count();
        assert!(faulted > 0, "seed 42 must fault at least one connection");
        assert!(faulted < 32, "most connections must stay healthy");
        for specs in &plan {
            for spec in specs {
                // Every faulted connection still delivers ≥ 2 intact frames.
                match spec {
                    NetFaultSpec::Disconnect { after_frames } => assert!(*after_frames >= 2),
                    NetFaultSpec::TruncateFrame { at_frame } => assert!(*at_frame >= 2),
                    NetFaultSpec::StallFrame { at_frame, .. } => assert!(*at_frame >= 2),
                }
            }
        }
    }

    #[test]
    fn report_cleanliness_rules() {
        let mut report = FailureReport::new("base");
        assert!(report.is_clean() && report.is_empty());
        report.injections.push(InjectionEvent {
            app: "gzip".into(),
            attempt: 0,
            class: "worker-panic",
        });
        report.recoveries.push(RecoveryEvent {
            app: "gzip".into(),
            kind: FailureKind::Panic,
            message: "injected worker panic".into(),
            attempts: 2,
        });
        assert!(report.is_clean(), "recoveries keep a report clean");
        assert!(!report.is_empty());
        report.failures.push(AppFailure {
            app: "mcf".into(),
            kind: FailureKind::Timeout,
            message: "watchdog".into(),
            attempts: 3,
        });
        assert!(!report.is_clean());
        assert!(report.summary().contains("1 failed"));
    }
}
