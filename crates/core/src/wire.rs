//! The byte-level protocol of the process-isolation tier: length-prefixed,
//! CRC-checked frames carrying one simulation job (parent → worker stdin)
//! and one reply (worker stdout → parent).
//!
//! Everything is hand-rolled over fixed-width little-endian scalars — the
//! workspace is offline, so no serde — and every float crosses the boundary
//! as its `f64::to_bits`, keeping the worker's inputs bit-identical to the
//! parent's. The codec is guarded twice:
//!
//! * each frame carries a CRC32 of its payload, so a torn or corrupted pipe
//!   read is detected rather than mis-decoded;
//! * the job embeds a fingerprint of the `Debug` rendering of everything it
//!   encodes ([`job_fingerprint`]); the worker recomputes it from the
//!   *decoded* values, so any codec drift (a skipped field, a lossy
//!   reconstruction) fails loudly as a transport error instead of silently
//!   simulating the wrong machine.
//!
//! Frame layout: `"RSTF"` magic, version byte, kind byte, `u32` payload
//! length, payload, `u32` CRC32 of the payload. Readers *scan* for the
//! magic, so a worker may emit unrelated bytes around the frame (a libtest
//! shim prints its own chatter) without confusing the parent.

use std::time::Duration;

use workloads::{registry, WorkloadProfile};

use crate::baselines::{DampingConfig, SensorConfig};
use crate::config::TuningConfig;
use crate::fault::{FailureKind, FaultSpec};
use crate::sim::{InstrumentedRun, PhaseTimings, SimConfig, SimResult, Technique};

/// Frame magic; readers scan input for this sequence.
pub(crate) const MAGIC: [u8; 4] = *b"RSTF";
/// Wire-format version; bump on any layout change.
pub(crate) const VERSION: u8 = 1;

/// Frame kinds.
pub(crate) const KIND_JOB: u8 = 1;
pub(crate) const KIND_RESULT: u8 = 2;
pub(crate) const KIND_FAILURE: u8 = 3;
/// Observability forwarding: a worker's counters and buffered trace lines,
/// written before its reply so the parent can splice them into its own sink.
/// On a server connection the same kind streams a remote job's events back
/// to the requesting tenant, incrementally, between replies.
pub(crate) const KIND_OBS: u8 = 4;
/// Server protocol: one tenant job request (`req_id`, obs flag, job payload).
pub(crate) const KIND_REQUEST: u8 = 5;
/// Server protocol: the reply to one request (`req_id`, cached flag, then a
/// result or classified-failure payload).
pub(crate) const KIND_REPLY: u8 = 6;
/// Server protocol: admission rejected — the queue is full or the server is
/// draining; carries `req_id` and a retry-after hint.
pub(crate) const KIND_BUSY: u8 = 7;
/// Server protocol: the client no longer wants `req_id`.
pub(crate) const KIND_CANCEL: u8 = 8;
/// Server protocol: client liveness beacon (empty payload); lets the server
/// tell an idle-but-healthy tenant from a vanished peer.
pub(crate) const KIND_HEARTBEAT: u8 = 9;
/// Mesh protocol: the server's first frame on every accepted connection —
/// its host generation (fresh per process start, so a restarted host is
/// distinguishable from a long-lived one) and its advertised peer list.
pub(crate) const KIND_HELLO: u8 = 10;
/// Mesh protocol: a half-open circuit-breaker probe (`nonce`); cheap, never
/// queued behind jobs, answered immediately by [`KIND_PROBE_ACK`].
pub(crate) const KIND_PROBE: u8 = 11;
/// Mesh protocol: the reply to one probe (`nonce`, host generation).
pub(crate) const KIND_PROBE_ACK: u8 = 12;

/// Cap on the fault-spec count a job frame may declare. Counts are read off
/// the wire *before* any allocation, so a corrupt length fails as a
/// transport error instead of a giant `Vec::with_capacity`.
pub(crate) const MAX_JOB_SPECS: usize = 1_024;

/// Cap on the peer-endpoint count a hello frame may advertise; a mesh is a
/// handful of hosts, so anything larger is a corrupt or hostile frame.
pub(crate) const MAX_HELLO_PEERS: usize = 64;

/// Cap on a single frame's declared payload length on a *socket* stream
/// (16 MiB). Pipe readers buffer a whole child's stdout anyway, but the
/// server must bound what an untrusted connection can make it allocate.
pub(crate) const MAX_FRAME_PAYLOAD: usize = 1 << 24;

const CRC_TABLE: [u32; 256] = crc32_table();

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// IEEE CRC32 (the zlib polynomial) of `bytes`.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Full identity string of one job's inputs — the preimage of
/// [`job_fingerprint`]. Caches that key on the 64-bit fingerprint persist
/// this string alongside each record and verify it on read, so a
/// fingerprint collision degrades to a miss instead of a wrong result.
pub(crate) fn job_identity(
    profile: &WorkloadProfile,
    technique: &Technique,
    sim: &SimConfig,
    specs: &[FaultSpec],
) -> String {
    format!("job-v{VERSION}|{profile:?}|{technique:?}|{sim:?}|{specs:?}")
}

/// FNV-1a fingerprint of the `Debug` rendering of one job's inputs. The
/// parent stamps it into the frame (and the worker's argv); the worker
/// recomputes it from the decoded values, so a lossy codec cannot silently
/// simulate the wrong configuration.
pub(crate) fn job_fingerprint(
    profile: &WorkloadProfile,
    technique: &Technique,
    sim: &SimConfig,
    specs: &[FaultSpec],
) -> u64 {
    crate::engine::fnv1a(job_identity(profile, technique, sim, specs).as_bytes())
}

// ---------------------------------------------------------------------------
// Scalar writer / reader
// ---------------------------------------------------------------------------

#[derive(Default)]
pub(crate) struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub(crate) fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    pub(crate) fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    pub(crate) fn take_u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    pub(crate) fn take_u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    pub(crate) fn take_u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    pub(crate) fn take_f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.take_u64()?))
    }

    pub(crate) fn take_str(&mut self) -> Option<&'a str> {
        let len = self.take_u32()? as usize;
        std::str::from_utf8(self.take(len)?).ok()
    }

    /// `Some(())` only when every payload byte was consumed — trailing
    /// garbage means a codec mismatch.
    pub(crate) fn done(&self) -> Option<()> {
        (self.pos == self.buf.len()).then_some(())
    }
}

// ---------------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------------

/// Wraps a payload into a full frame: magic, version, kind, length, payload,
/// CRC32.
pub(crate) fn encode_frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 14);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out
}

/// Scans `bytes` for the first intact frame and returns its kind and
/// payload. Leading noise, a corrupt candidate (bad version, length past the
/// buffer, CRC mismatch), or an unrelated `RSTF` in the noise just moves the
/// scan forward; `None` means no intact frame anywhere.
pub(crate) fn scan_frame(bytes: &[u8]) -> Option<(u8, &[u8])> {
    scan_frame_from(bytes, 0).map(|(kind, payload, _)| (kind, payload))
}

/// Collects every intact frame in `bytes`, in order. A worker's stdout may
/// carry an observability frame before the reply frame; the parent consumes
/// both from one buffered read.
pub(crate) fn scan_frames(bytes: &[u8]) -> Vec<(u8, &[u8])> {
    let mut frames = Vec::new();
    let mut start = 0usize;
    while let Some((kind, payload, next)) = scan_frame_from(bytes, start) {
        frames.push((kind, payload));
        start = next;
    }
    frames
}

/// The scan behind [`scan_frame`] / [`scan_frames`]: the first intact frame
/// at or after byte `start`, plus the offset just past it (so a multi-frame
/// scan resumes after the payload instead of re-matching magic inside it).
fn scan_frame_from(bytes: &[u8], mut start: usize) -> Option<(u8, &[u8], usize)> {
    while start + 14 <= bytes.len() {
        let offset = bytes[start..]
            .windows(4)
            .position(|w| w == MAGIC)
            .map(|o| start + o)?;
        start = offset + 1;
        let header = offset + 4;
        let Some(&version) = bytes.get(header) else {
            continue;
        };
        let Some(&kind) = bytes.get(header + 1) else {
            continue;
        };
        if version != VERSION {
            continue;
        }
        let Some(len_bytes) = bytes.get(header + 2..header + 6) else {
            continue;
        };
        let len = u32::from_le_bytes(len_bytes.try_into().expect("4-byte slice")) as usize;
        let body = header + 6;
        let Some(payload) = bytes.get(body..body + len) else {
            continue;
        };
        let Some(crc_bytes) = bytes.get(body + len..body + len + 4) else {
            continue;
        };
        let crc = u32::from_le_bytes(crc_bytes.try_into().expect("4-byte slice"));
        if crc == crc32(payload) {
            return Some((kind, payload, body + len + 4));
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Job codec
// ---------------------------------------------------------------------------

/// One decoded worker job: everything a child needs to run a single
/// application attempt.
pub(crate) struct Job {
    pub profile: WorkloadProfile,
    pub technique: Technique,
    pub sim: SimConfig,
    pub specs: Vec<FaultSpec>,
    pub deadline: Option<Duration>,
    pub fingerprint: u64,
}

const TECH_BASE: u8 = 0;
const TECH_TUNING: u8 = 1;
const TECH_SENSOR: u8 = 2;
const TECH_DAMPING: u8 = 3;

fn put_technique(w: &mut Writer, technique: &Technique) {
    match technique {
        Technique::Base => w.put_u8(TECH_BASE),
        Technique::Tuning(t) => {
            w.put_u8(TECH_TUNING);
            w.put_u64(t.band_min_period.count());
            w.put_u64(t.band_max_period.count());
            w.put_f64(t.variation_threshold.amps());
            for v in [
                t.max_repetition_tolerance,
                t.initial_response_threshold,
                t.second_level_threshold,
                t.initial_response_time,
                t.second_level_time,
                t.first_level_issue_width,
                t.first_level_mem_ports,
                t.response_delay,
            ] {
                w.put_u32(v);
            }
        }
        Technique::Sensor(s) => {
            w.put_u8(TECH_SENSOR);
            w.put_f64(s.target_threshold.volts());
            w.put_f64(s.sensor_noise_pp.volts());
            w.put_u32(s.delay_cycles);
            w.put_u32(s.min_response_cycles);
            w.put_u64(s.noise_seed);
        }
        Technique::Damping(d) => {
            w.put_u8(TECH_DAMPING);
            w.put_f64(d.delta.amps());
            w.put_u32(d.window);
            w.put_f64(d.idle_current.amps());
        }
    }
}

fn take_technique(r: &mut Reader) -> Option<Technique> {
    use rlc::units::{Amps, Cycles, Volts};
    Some(match r.take_u8()? {
        TECH_BASE => Technique::Base,
        TECH_TUNING => Technique::Tuning(TuningConfig {
            band_min_period: Cycles::new(r.take_u64()?),
            band_max_period: Cycles::new(r.take_u64()?),
            variation_threshold: Amps::new(r.take_f64()?),
            max_repetition_tolerance: r.take_u32()?,
            initial_response_threshold: r.take_u32()?,
            second_level_threshold: r.take_u32()?,
            initial_response_time: r.take_u32()?,
            second_level_time: r.take_u32()?,
            first_level_issue_width: r.take_u32()?,
            first_level_mem_ports: r.take_u32()?,
            response_delay: r.take_u32()?,
        }),
        TECH_SENSOR => Technique::Sensor(SensorConfig {
            target_threshold: Volts::new(r.take_f64()?),
            sensor_noise_pp: Volts::new(r.take_f64()?),
            delay_cycles: r.take_u32()?,
            min_response_cycles: r.take_u32()?,
            noise_seed: r.take_u64()?,
        }),
        TECH_DAMPING => Technique::Damping(DampingConfig {
            delta: Amps::new(r.take_f64()?),
            window: r.take_u32()?,
            idle_current: Amps::new(r.take_f64()?),
        }),
        _ => return None,
    })
}

fn put_spec(w: &mut Writer, spec: &FaultSpec) {
    match *spec {
        FaultSpec::SensorStuck {
            from_cycle,
            hold_cycles,
        } => {
            w.put_u8(0);
            w.put_u64(from_cycle);
            w.put_u64(hold_cycles);
        }
        FaultSpec::SensorNoise { sigma, seed } => {
            w.put_u8(1);
            w.put_f64(sigma);
            w.put_u64(seed);
        }
        FaultSpec::SensorDelay { cycles } => {
            w.put_u8(2);
            w.put_u32(cycles);
        }
        FaultSpec::NumericNan { at_cycle } => {
            w.put_u8(3);
            w.put_u64(at_cycle);
        }
        FaultSpec::NumericInf { at_cycle } => {
            w.put_u8(4);
            w.put_u64(at_cycle);
        }
        FaultSpec::NumericOverflow { at_cycle } => {
            w.put_u8(5);
            w.put_u64(at_cycle);
        }
        FaultSpec::WorkerPanic => w.put_u8(6),
        FaultSpec::WorkerStall { millis } => {
            w.put_u8(7);
            w.put_u64(millis);
        }
        FaultSpec::WorkerAbort => w.put_u8(8),
        FaultSpec::WorkerKill => w.put_u8(9),
    }
}

fn take_spec(r: &mut Reader) -> Option<FaultSpec> {
    Some(match r.take_u8()? {
        0 => FaultSpec::SensorStuck {
            from_cycle: r.take_u64()?,
            hold_cycles: r.take_u64()?,
        },
        1 => FaultSpec::SensorNoise {
            sigma: r.take_f64()?,
            seed: r.take_u64()?,
        },
        2 => FaultSpec::SensorDelay {
            cycles: r.take_u32()?,
        },
        3 => FaultSpec::NumericNan {
            at_cycle: r.take_u64()?,
        },
        4 => FaultSpec::NumericInf {
            at_cycle: r.take_u64()?,
        },
        5 => FaultSpec::NumericOverflow {
            at_cycle: r.take_u64()?,
        },
        6 => FaultSpec::WorkerPanic,
        7 => FaultSpec::WorkerStall {
            millis: r.take_u64()?,
        },
        8 => FaultSpec::WorkerAbort,
        9 => FaultSpec::WorkerKill,
        _ => return None,
    })
}

/// Encodes a job payload. The machine configuration crosses the boundary as
/// its instruction budget alone — the isolation tier only spawns workers
/// when the parent's `SimConfig` equals `SimConfig::isca04(instructions)`
/// (checked by the caller and re-checked via the fingerprint), so the child
/// reconstructs it losslessly from the constructor.
pub(crate) fn encode_job(
    profile: &WorkloadProfile,
    technique: &Technique,
    sim: &SimConfig,
    specs: &[FaultSpec],
    deadline: Option<Duration>,
    fingerprint: u64,
) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u64(fingerprint);
    w.put_str(profile.name);
    put_technique(&mut w, technique);
    w.put_u64(sim.instructions);
    w.put_u32(specs.len() as u32);
    for spec in specs {
        put_spec(&mut w, spec);
    }
    match deadline {
        Some(d) => {
            w.put_u8(1);
            w.put_u64(d.as_nanos() as u64);
        }
        None => w.put_u8(0),
    }
    w.into_bytes()
}

/// Decodes a job payload; the profile resolves through the workload
/// registry (an unknown name means parent and child disagree on the suite).
pub(crate) fn decode_job(payload: &[u8]) -> Option<Job> {
    let mut r = Reader::new(payload);
    let fingerprint = r.take_u64()?;
    let profile = registry::by_name(r.take_str()?)?;
    let technique = take_technique(&mut r)?;
    let sim = SimConfig::isca04(r.take_u64()?);
    let count = r.take_u32()? as usize;
    if count > MAX_JOB_SPECS {
        return None;
    }
    let mut specs = Vec::with_capacity(count);
    for _ in 0..count {
        specs.push(take_spec(&mut r)?);
    }
    let deadline = match r.take_u8()? {
        0 => None,
        1 => Some(Duration::from_nanos(r.take_u64()?)),
        _ => return None,
    };
    r.done()?;
    Some(Job {
        profile,
        technique,
        sim,
        specs,
        deadline,
        fingerprint,
    })
}

// ---------------------------------------------------------------------------
// Reply codecs
// ---------------------------------------------------------------------------

/// Encodes a successful run's reply payload.
pub(crate) fn encode_result(inst: &InstrumentedRun) -> Vec<u8> {
    let mut w = Writer::new();
    let r = &inst.result;
    w.put_str(r.app);
    w.put_u64(r.cycles);
    w.put_u64(r.committed);
    w.put_f64(r.ipc);
    w.put_u64(r.violation_cycles);
    w.put_f64(r.worst_noise.volts());
    w.put_f64(r.energy_joules);
    w.put_f64(r.energy_delay);
    w.put_u64(r.first_level_cycles);
    w.put_u64(r.second_level_cycles);
    w.put_u64(r.sensor_response_cycles);
    w.put_u64(r.damping_bound_cycles);
    w.put_u64(inst.detector_events);
    for d in [
        inst.phases.controller,
        inst.phases.cpu,
        inst.phases.power,
        inst.phases.supply,
        inst.phases.supply_flush,
    ] {
        w.put_u64(d.as_nanos() as u64);
    }
    w.put_u64(inst.phases.sampled_cycles);
    w.put_u64(inst.wall.as_nanos() as u64);
    w.into_bytes()
}

/// Decodes a successful run's reply payload.
pub(crate) fn decode_result(payload: &[u8]) -> Option<InstrumentedRun> {
    let mut r = Reader::new(payload);
    let app = registry::by_name(r.take_str()?)?.name;
    let result = SimResult {
        app,
        cycles: r.take_u64()?,
        committed: r.take_u64()?,
        ipc: r.take_f64()?,
        violation_cycles: r.take_u64()?,
        worst_noise: rlc::units::Volts::new(r.take_f64()?),
        energy_joules: r.take_f64()?,
        energy_delay: r.take_f64()?,
        first_level_cycles: r.take_u64()?,
        second_level_cycles: r.take_u64()?,
        sensor_response_cycles: r.take_u64()?,
        damping_bound_cycles: r.take_u64()?,
    };
    let detector_events = r.take_u64()?;
    let phases = PhaseTimings {
        controller: Duration::from_nanos(r.take_u64()?),
        cpu: Duration::from_nanos(r.take_u64()?),
        power: Duration::from_nanos(r.take_u64()?),
        supply: Duration::from_nanos(r.take_u64()?),
        supply_flush: Duration::from_nanos(r.take_u64()?),
        sampled_cycles: r.take_u64()?,
    };
    let wall = Duration::from_nanos(r.take_u64()?);
    r.done()?;
    Some(InstrumentedRun {
        result,
        detector_events,
        phases,
        wall,
    })
}

// ---------------------------------------------------------------------------
// Server-protocol codecs
// ---------------------------------------------------------------------------

/// Encodes a tenant request payload: the request id, whether the tenant
/// wants the job's observability events streamed back, and the embedded job
/// payload (exactly [`encode_job`]'s bytes).
pub(crate) fn encode_request(req_id: u64, want_obs: bool, job_payload: &[u8]) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u64(req_id);
    w.put_u8(u8::from(want_obs));
    let mut bytes = w.into_bytes();
    bytes.extend_from_slice(job_payload);
    bytes
}

/// Decodes a request payload into `(req_id, want_obs, job_payload)`. The
/// job payload is returned raw so the server can separate "the request
/// frame is malformed" (kill the connection) from "the job inside it does
/// not decode" (reply a classified transport failure to `req_id`).
pub(crate) fn decode_request(payload: &[u8]) -> Option<(u64, bool, &[u8])> {
    let (head, job) = (payload.get(..9)?, &payload[9..]);
    let req_id = u64::from_le_bytes(head[..8].try_into().ok()?);
    let want_obs = match head[8] {
        0 => false,
        1 => true,
        _ => return None,
    };
    Some((req_id, want_obs, job))
}

const REPLY_RESULT: u8 = 0;
const REPLY_FAILURE: u8 = 1;

/// Encodes a reply payload: the request id, whether the rows came from the
/// shared result cache, then the result or classified failure.
pub(crate) fn encode_reply(
    req_id: u64,
    cached: bool,
    outcome: &Result<InstrumentedRun, (FailureKind, String)>,
) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u64(req_id);
    w.put_u8(u8::from(cached));
    let mut bytes = w.into_bytes();
    match outcome {
        Ok(inst) => {
            bytes.push(REPLY_RESULT);
            bytes.extend_from_slice(&encode_result(inst));
        }
        Err((kind, message)) => {
            bytes.push(REPLY_FAILURE);
            bytes.extend_from_slice(&encode_failure(*kind, message));
        }
    }
    bytes
}

/// Assembles a reply payload directly from a stored [`encode_result`]
/// payload — the shared result cache keeps encoded rows, so a cache hit is
/// served without a decode/re-encode round trip.
pub(crate) fn encode_reply_from_result_payload(
    req_id: u64,
    cached: bool,
    result_payload: &[u8],
) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u64(req_id);
    w.put_u8(u8::from(cached));
    let mut bytes = w.into_bytes();
    bytes.push(REPLY_RESULT);
    bytes.extend_from_slice(result_payload);
    bytes
}

/// Decodes a reply payload into `(req_id, cached, outcome)`.
#[allow(clippy::type_complexity)]
pub(crate) fn decode_reply(
    payload: &[u8],
) -> Option<(u64, bool, Result<InstrumentedRun, (FailureKind, String)>)> {
    let head = payload.get(..10)?;
    let req_id = u64::from_le_bytes(head[..8].try_into().ok()?);
    let cached = match head[8] {
        0 => false,
        1 => true,
        _ => return None,
    };
    let outcome = match head[9] {
        REPLY_RESULT => Ok(decode_result(&payload[10..])?),
        REPLY_FAILURE => Err(decode_failure(&payload[10..])?),
        _ => return None,
    };
    Some((req_id, cached, outcome))
}

/// Encodes a busy (admission-rejected) payload with its retry-after hint.
pub(crate) fn encode_busy(req_id: u64, retry_after: Duration) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u64(req_id);
    w.put_u64(retry_after.as_millis() as u64);
    w.into_bytes()
}

/// Decodes a busy payload into `(req_id, retry_after)`.
pub(crate) fn decode_busy(payload: &[u8]) -> Option<(u64, Duration)> {
    let mut r = Reader::new(payload);
    let req_id = r.take_u64()?;
    let millis = r.take_u64()?;
    r.done()?;
    Some((req_id, Duration::from_millis(millis)))
}

/// Encodes a cancel payload.
pub(crate) fn encode_cancel(req_id: u64) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u64(req_id);
    w.into_bytes()
}

/// Decodes a cancel payload.
pub(crate) fn decode_cancel(payload: &[u8]) -> Option<u64> {
    let mut r = Reader::new(payload);
    let req_id = r.take_u64()?;
    r.done()?;
    Some(req_id)
}

// ---------------------------------------------------------------------------
// Mesh codecs (hello / probe)
// ---------------------------------------------------------------------------

/// Encodes a hello payload: the host's generation tag and its advertised
/// mesh-peer endpoints.
pub(crate) fn encode_hello(generation: u64, peers: &[String]) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u64(generation);
    w.put_u32(peers.len() as u32);
    for peer in peers {
        w.put_str(peer);
    }
    w.into_bytes()
}

/// Decodes a hello payload into `(generation, peers)`.
pub(crate) fn decode_hello(payload: &[u8]) -> Option<(u64, Vec<String>)> {
    let mut r = Reader::new(payload);
    let generation = r.take_u64()?;
    let count = r.take_u32()? as usize;
    if count > MAX_HELLO_PEERS {
        return None;
    }
    let mut peers = Vec::with_capacity(count);
    for _ in 0..count {
        peers.push(r.take_str()?.to_string());
    }
    r.done()?;
    Some((generation, peers))
}

/// Encodes a probe payload.
pub(crate) fn encode_probe(nonce: u64) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u64(nonce);
    w.into_bytes()
}

/// Decodes a probe payload.
pub(crate) fn decode_probe(payload: &[u8]) -> Option<u64> {
    let mut r = Reader::new(payload);
    let nonce = r.take_u64()?;
    r.done()?;
    Some(nonce)
}

/// Encodes a probe-ack payload: the probe's nonce plus the answering host's
/// generation, so a half-open breaker learns about a restart in one round
/// trip.
pub(crate) fn encode_probe_ack(nonce: u64, generation: u64) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u64(nonce);
    w.put_u64(generation);
    w.into_bytes()
}

/// Decodes a probe-ack payload into `(nonce, generation)`.
pub(crate) fn decode_probe_ack(payload: &[u8]) -> Option<(u64, u64)> {
    let mut r = Reader::new(payload);
    let nonce = r.take_u64()?;
    let generation = r.take_u64()?;
    r.done()?;
    Some((nonce, generation))
}

// ---------------------------------------------------------------------------
// Strict stream decoder (sockets)
// ---------------------------------------------------------------------------

/// Why a socket stream stopped being decodable. Unlike the pipe readers
/// above — which *scan* through a worker's stdout chatter — a socket is
/// point-to-point and owned entirely by the protocol, so any malformed byte
/// is a violation that kills that connection (and only that connection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StreamError {
    /// The next bytes are not a frame header where one must start.
    Desync,
    /// A declared payload length beyond [`MAX_FRAME_PAYLOAD`].
    Oversize(usize),
    /// A complete frame whose CRC32 does not verify (torn mid-write).
    Corrupt,
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Desync => write!(f, "bytes where a frame header must start"),
            Self::Oversize(len) => write!(
                f,
                "declared payload length {len} exceeds the {MAX_FRAME_PAYLOAD}-byte cap"
            ),
            Self::Corrupt => write!(f, "frame CRC32 mismatch (torn or corrupted write)"),
        }
    }
}

/// Incremental strict frame decoder for socket streams: feed it reads with
/// [`StreamDecoder::extend`], pull complete frames with
/// [`StreamDecoder::next_frame`]. Length caps apply *before* buffering a
/// frame's payload is required, so a hostile peer cannot force a giant
/// allocation with a forged header.
#[derive(Debug, Default)]
pub(crate) struct StreamDecoder {
    buf: Vec<u8>,
}

impl StreamDecoder {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// `true` while an incomplete frame (or any undecoded byte) is
    /// buffered — the server's slow-loris detector times this state.
    pub(crate) fn has_partial(&self) -> bool {
        !self.buf.is_empty()
    }

    /// The next complete frame, `Ok(None)` when more bytes are needed, or
    /// the protocol violation that should kill the connection.
    pub(crate) fn next_frame(&mut self) -> Result<Option<(u8, Vec<u8>)>, StreamError> {
        let n = self.buf.len();
        let prefix = n.min(4);
        if self.buf[..prefix] != MAGIC[..prefix] {
            return Err(StreamError::Desync);
        }
        if n >= 5 && self.buf[4] != VERSION {
            return Err(StreamError::Desync);
        }
        if n < 10 {
            return Ok(None);
        }
        let kind = self.buf[5];
        let len = u32::from_le_bytes(self.buf[6..10].try_into().expect("4-byte slice")) as usize;
        if len > MAX_FRAME_PAYLOAD {
            return Err(StreamError::Oversize(len));
        }
        let total = 10 + len + 4;
        if n < total {
            return Ok(None);
        }
        let crc = u32::from_le_bytes(self.buf[10 + len..total].try_into().expect("4-byte slice"));
        if crc != crc32(&self.buf[10..10 + len]) {
            return Err(StreamError::Corrupt);
        }
        let payload = self.buf[10..10 + len].to_vec();
        self.buf.drain(..total);
        Ok(Some((kind, payload)))
    }

    /// Skips buffered bytes forward to the next possible frame start. After
    /// [`StreamDecoder::next_frame`] returns an error, a caller that chooses
    /// to tolerate the corruption (the server does not — it kills the
    /// connection) calls this to resume at the next `RSTF` occurrence. The
    /// byte that *caused* the error is always consumed, so repeated
    /// `next_frame`/`resync` cycles make progress even through a buffer of
    /// pure garbage; a trailing partial match of the magic is kept so a
    /// frame split across reads still decodes.
    #[cfg_attr(not(test), allow(dead_code))] // exercised by the fuzz tier
    pub(crate) fn resync(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        // Search from offset 1: offset 0 is whatever just errored, and a
        // Corrupt frame's intact header must not be re-matched forever.
        if let Some(pos) = self.buf.windows(4).skip(1).position(|w| w == MAGIC) {
            self.buf.drain(..pos + 1);
            return;
        }
        // No full magic left; keep the longest suffix that is a prefix of
        // the magic (it may complete on the next read).
        for keep in (1..4.min(self.buf.len() + 1)).rev() {
            if self.buf[self.buf.len() - keep..] == MAGIC[..keep] && self.buf.len() > keep {
                self.buf.drain(..self.buf.len() - keep);
                return;
            }
        }
        self.buf.clear();
    }
}

const FAILURE_TAGS: [(u8, FailureKind); 7] = [
    (0, FailureKind::Panic),
    (1, FailureKind::Timeout),
    (2, FailureKind::Numerical),
    (3, FailureKind::Storage),
    (4, FailureKind::Crash),
    (5, FailureKind::Transport),
    (6, FailureKind::Interrupted),
];

/// Encodes a classified-failure reply payload.
pub(crate) fn encode_failure(kind: FailureKind, message: &str) -> Vec<u8> {
    let tag = FAILURE_TAGS
        .iter()
        .find(|(_, k)| *k == kind)
        .map(|(t, _)| *t)
        .expect("every FailureKind has a wire tag");
    let mut w = Writer::new();
    w.put_u8(tag);
    w.put_str(message);
    w.into_bytes()
}

/// Decodes a classified-failure reply payload.
pub(crate) fn decode_failure(payload: &[u8]) -> Option<(FailureKind, String)> {
    let mut r = Reader::new(payload);
    let tag = r.take_u8()?;
    let kind = FAILURE_TAGS
        .iter()
        .find(|(t, _)| *t == tag)
        .map(|(_, k)| *k)?;
    let message = r.take_str()?.to_string();
    r.done()?;
    Some((kind, message))
}

/// Cap on forwarded counters; far above anything the registry produces.
const MAX_OBS_COUNTERS: usize = 4_096;
/// Cap on forwarded trace lines; the per-run waveform cap bounds real
/// traffic well below this.
const MAX_OBS_LINES: usize = 65_536;

/// Encodes a worker's observability payload: its counter snapshot and the
/// trace lines buffered by the `wire` forwarding sink.
pub(crate) fn encode_obs(counters: &[(String, u64)], lines: &[String]) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u32(counters.len() as u32);
    for (name, value) in counters {
        w.put_str(name);
        w.put_u64(*value);
    }
    w.put_u32(lines.len() as u32);
    for line in lines {
        w.put_str(line);
    }
    w.into_bytes()
}

/// Decodes an observability payload.
#[allow(clippy::type_complexity)]
pub(crate) fn decode_obs(payload: &[u8]) -> Option<(Vec<(String, u64)>, Vec<String>)> {
    let mut r = Reader::new(payload);
    let counter_count = r.take_u32()? as usize;
    if counter_count > MAX_OBS_COUNTERS {
        return None;
    }
    let mut counters = Vec::with_capacity(counter_count);
    for _ in 0..counter_count {
        let name = r.take_str()?.to_string();
        let value = r.take_u64()?;
        counters.push((name, value));
    }
    let line_count = r.take_u32()? as usize;
    if line_count > MAX_OBS_LINES {
        return None;
    }
    let mut lines = Vec::with_capacity(line_count);
    for _ in 0..line_count {
        lines.push(r.take_str()?.to_string());
    }
    r.done()?;
    Some((counters, lines))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use workloads::spec2k;

    #[test]
    fn crc32_matches_the_reference_vector() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_round_trips_through_surrounding_noise() {
        let payload = b"the payload".to_vec();
        let mut stream = b"running 1 test\nRSTF half-magic noise ".to_vec();
        stream.extend_from_slice(&encode_frame(KIND_RESULT, &payload));
        stream.extend_from_slice(b"\ntest result: ok\n");
        let (kind, decoded) = scan_frame(&stream).expect("frame found through noise");
        assert_eq!(kind, KIND_RESULT);
        assert_eq!(decoded, payload.as_slice());
    }

    #[test]
    fn corrupt_frames_are_rejected_not_misread() {
        let mut frame = encode_frame(KIND_JOB, b"payload-bytes");
        let mid = frame.len() - 6; // inside the payload
        frame[mid] ^= 0x01;
        assert!(scan_frame(&frame).is_none(), "CRC must catch the flip");
        assert!(scan_frame(b"no frame here").is_none());
        assert!(scan_frame(&[]).is_none());
    }

    #[test]
    fn job_round_trips_bit_exactly_for_every_technique() {
        let profile = spec2k::by_name("swim").unwrap();
        let sim = SimConfig::isca04(20_000);
        let techniques = [
            Technique::Base,
            Technique::Tuning(TuningConfig::isca04_table1(100).with_response_delay(5)),
            Technique::Sensor(SensorConfig::table4(20.0, 15.0, 3)),
            Technique::Damping(DampingConfig::isca04_table5(0.25)),
        ];
        let specs = [
            FaultSpec::SensorStuck {
                from_cycle: 256,
                hold_cycles: 64,
            },
            FaultSpec::SensorNoise {
                sigma: 0.125,
                seed: 7,
            },
            FaultSpec::SensorDelay { cycles: 3 },
            FaultSpec::NumericNan { at_cycle: 500 },
            FaultSpec::NumericInf { at_cycle: 501 },
            FaultSpec::NumericOverflow { at_cycle: 502 },
            FaultSpec::WorkerPanic,
            FaultSpec::WorkerStall { millis: 12 },
            FaultSpec::WorkerAbort,
            FaultSpec::WorkerKill,
        ];
        for technique in &techniques {
            let fp = job_fingerprint(&profile, technique, &sim, &specs);
            let payload = encode_job(
                &profile,
                technique,
                &sim,
                &specs,
                Some(Duration::from_millis(1500)),
                fp,
            );
            let job = decode_job(&payload).expect("job decodes");
            assert_eq!(job.profile, profile);
            assert_eq!(&job.technique, technique);
            assert_eq!(job.sim, sim);
            assert_eq!(job.specs, specs);
            assert_eq!(job.deadline, Some(Duration::from_millis(1500)));
            assert_eq!(job.fingerprint, fp);
            // The decoded values fingerprint identically: the codec is
            // provably lossless down to float bits.
            assert_eq!(
                job_fingerprint(&job.profile, &job.technique, &job.sim, &job.specs),
                fp
            );
        }
    }

    #[test]
    fn job_with_unknown_app_or_trailing_bytes_is_rejected() {
        let profile = spec2k::by_name("gzip").unwrap();
        let sim = SimConfig::isca04(1_000);
        let mut payload = encode_job(&profile, &Technique::Base, &sim, &[], None, 1);
        payload.push(0xAA);
        assert!(decode_job(&payload).is_none(), "trailing bytes must fail");

        let mut w = Writer::new();
        w.put_u64(1);
        w.put_str("not-a-spec2k-app");
        assert!(decode_job(&w.into_bytes()).is_none());
    }

    #[test]
    fn result_reply_round_trips_bit_exactly() {
        let inst = InstrumentedRun {
            result: SimResult {
                app: spec2k::by_name("mcf").unwrap().name,
                cycles: 123_456,
                committed: 120_000,
                ipc: 0.972_345_678_9,
                violation_cycles: 17,
                worst_noise: rlc::units::Volts::new(-0.037_125),
                energy_joules: 1.25e-3,
                energy_delay: 9.5e-9,
                first_level_cycles: 321,
                second_level_cycles: 12,
                sensor_response_cycles: 0,
                damping_bound_cycles: 0,
            },
            detector_events: 42,
            phases: PhaseTimings {
                controller: Duration::from_nanos(1_001),
                cpu: Duration::from_nanos(2_002),
                power: Duration::from_nanos(3_003),
                supply: Duration::from_nanos(4_004),
                supply_flush: Duration::from_nanos(5_005),
                sampled_cycles: 1_929,
            },
            wall: Duration::from_millis(35),
        };
        let decoded = decode_result(&encode_result(&inst)).expect("reply decodes");
        assert_eq!(decoded.result, inst.result);
        assert_eq!(decoded.detector_events, inst.detector_events);
        assert_eq!(decoded.phases, inst.phases);
        assert_eq!(decoded.wall, inst.wall);
    }

    #[test]
    fn obs_payload_round_trips_and_rejects_garbage() {
        let counters = vec![
            ("sim.detector_fires".to_string(), 12),
            ("warn.batch".to_string(), 1),
        ];
        let lines = vec![
            r#"{"kind":"violation","app":"swim","cycle":150123}"#.to_string(),
            r#"{"kind":"warn","wall":0.25,"message":"x"}"#.to_string(),
        ];
        let payload = encode_obs(&counters, &lines);
        let (c, l) = decode_obs(&payload).expect("obs decodes");
        assert_eq!(c, counters);
        assert_eq!(l, lines);

        let empty = encode_obs(&[], &[]);
        assert_eq!(decode_obs(&empty), Some((Vec::new(), Vec::new())));

        let mut torn = payload.clone();
        torn.truncate(torn.len() - 3);
        assert!(decode_obs(&torn).is_none(), "truncation must fail");
        let mut trailing = payload;
        trailing.push(0);
        assert!(decode_obs(&trailing).is_none(), "trailing bytes must fail");
    }

    #[test]
    fn multi_frame_streams_scan_in_order() {
        let mut stream = b"libtest chatter ".to_vec();
        stream.extend_from_slice(&encode_frame(KIND_OBS, &encode_obs(&[], &[])));
        stream.extend_from_slice(b" between-frame noise RSTF fake ");
        stream.extend_from_slice(&encode_frame(KIND_RESULT, b"reply"));
        stream.extend_from_slice(b"\ntrailing chatter\n");
        let frames = scan_frames(&stream);
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].0, KIND_OBS);
        assert_eq!(frames[1].0, KIND_RESULT);
        assert_eq!(frames[1].1, b"reply");
        // The single-frame scan still returns the first one.
        assert_eq!(scan_frame(&stream).map(|(k, _)| k), Some(KIND_OBS));
        // A payload that itself contains frame-like bytes does not derail
        // the resume point of the multi-frame scan.
        let inner = encode_frame(KIND_FAILURE, b"inner");
        let outer = encode_frame(KIND_RESULT, &inner);
        let mut doubled = outer.clone();
        doubled.extend_from_slice(&encode_frame(KIND_OBS, b"after"));
        let frames = scan_frames(&doubled);
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0], (KIND_RESULT, inner.as_slice()));
        assert_eq!(frames[1], (KIND_OBS, b"after".as_slice()));
    }

    #[test]
    fn job_spec_count_is_capped_before_any_allocation() {
        // Satellite: a corrupt spec count off the wire must fail as a
        // transport error, never reach `Vec::with_capacity`. Hand-roll a
        // payload that is valid up to the count, then lies about it.
        let mut w = Writer::new();
        w.put_u64(0xDEAD_BEEF);
        w.put_str("swim");
        w.put_u8(0); // Technique::Base
        w.put_u64(1_000); // instructions
        w.put_u32(u32::MAX); // a 4-billion-spec allocation bomb
        let payload = w.into_bytes();
        assert!(decode_job(&payload).is_none(), "corrupt count must fail");

        // One past the cap is rejected; at the cap the decode proceeds (and
        // then fails later only because the specs themselves are missing).
        let at_limit = |count: u32| {
            let mut w = Writer::new();
            w.put_u64(1);
            w.put_str("swim");
            w.put_u8(0);
            w.put_u64(1_000);
            w.put_u32(count);
            decode_job(&w.into_bytes())
        };
        assert!(at_limit(MAX_JOB_SPECS as u32 + 1).is_none());
        assert!(at_limit(MAX_JOB_SPECS as u32).is_none(), "truncated specs");
    }

    #[test]
    fn request_and_reply_round_trip() {
        let profile = spec2k::by_name("art").unwrap();
        let sim = SimConfig::isca04(2_000);
        let fp = job_fingerprint(&profile, &Technique::Base, &sim, &[]);
        let job = encode_job(&profile, &Technique::Base, &sim, &[], None, fp);
        for want_obs in [false, true] {
            let payload = encode_request(77, want_obs, &job);
            let (req_id, obs, job_bytes) = decode_request(&payload).expect("request decodes");
            assert_eq!(req_id, 77);
            assert_eq!(obs, want_obs);
            assert_eq!(job_bytes, job.as_slice());
            assert!(decode_job(job_bytes).is_some());
        }
        assert!(decode_request(&[1, 2, 3]).is_none(), "truncated header");

        let failure: Result<InstrumentedRun, _> =
            Err((FailureKind::Timeout, String::from("too slow")));
        let payload = encode_reply(9, true, &failure);
        let (req_id, cached, outcome) = decode_reply(&payload).expect("reply decodes");
        assert_eq!(req_id, 9);
        assert!(cached);
        assert_eq!(
            outcome,
            Err((FailureKind::Timeout, String::from("too slow")))
        );
        assert!(decode_reply(&payload[..9]).is_none(), "truncated reply");
    }

    #[test]
    fn busy_and_cancel_round_trip() {
        let payload = encode_busy(3, Duration::from_millis(250));
        assert_eq!(decode_busy(&payload), Some((3, Duration::from_millis(250))));
        assert!(decode_busy(&payload[..7]).is_none());
        let payload = encode_cancel(42);
        assert_eq!(decode_cancel(&payload), Some(42));
        let mut trailing = payload;
        trailing.push(0);
        assert!(decode_cancel(&trailing).is_none());
    }

    #[test]
    fn stream_decoder_yields_frames_incrementally() {
        let mut stream = Vec::new();
        stream.extend_from_slice(&encode_frame(KIND_HEARTBEAT, &[]));
        stream.extend_from_slice(&encode_frame(KIND_CANCEL, &encode_cancel(5)));
        let mut dec = StreamDecoder::new();
        // Feed one byte at a time: every prefix is either "need more" or a
        // complete frame, never an error.
        let mut got = Vec::new();
        for &b in &stream {
            dec.extend(&[b]);
            while let Some(frame) = dec.next_frame().expect("valid stream") {
                got.push(frame);
            }
        }
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, KIND_HEARTBEAT);
        assert_eq!(got[1].0, KIND_CANCEL);
        assert!(!dec.has_partial());
    }

    #[test]
    fn stream_decoder_rejects_desync_oversize_and_corruption() {
        // Garbage where a header must start.
        let mut dec = StreamDecoder::new();
        dec.extend(b"not a frame");
        assert_eq!(dec.next_frame(), Err(StreamError::Desync));

        // Right magic, wrong version.
        let mut dec = StreamDecoder::new();
        dec.extend(b"RSTF\xFF");
        assert_eq!(dec.next_frame(), Err(StreamError::Desync));

        // A forged length cannot force a giant buffer.
        let mut dec = StreamDecoder::new();
        let mut forged = Vec::new();
        forged.extend_from_slice(&MAGIC);
        forged.push(VERSION);
        forged.push(KIND_REQUEST);
        forged.extend_from_slice(&u32::MAX.to_le_bytes());
        dec.extend(&forged);
        assert!(matches!(dec.next_frame(), Err(StreamError::Oversize(_))));

        // A flipped payload bit is caught by the CRC.
        let mut dec = StreamDecoder::new();
        let mut frame = encode_frame(KIND_CANCEL, &encode_cancel(1));
        frame[12] ^= 0x01;
        dec.extend(&frame);
        assert_eq!(dec.next_frame(), Err(StreamError::Corrupt));
    }

    #[test]
    fn hello_probe_and_probe_ack_round_trip() {
        let peers = vec![
            String::from("/tmp/mesh-a.sock"),
            String::from("host-b:7777"),
        ];
        let payload = encode_hello(0xFEED_F00D, &peers);
        assert_eq!(decode_hello(&payload), Some((0xFEED_F00D, peers)));
        let empty = encode_hello(1, &[]);
        assert_eq!(decode_hello(&empty), Some((1, Vec::new())));
        let mut trailing = encode_hello(1, &[]);
        trailing.push(0);
        assert!(
            decode_hello(&trailing).is_none(),
            "trailing bytes must fail"
        );

        // A forged peer count is rejected before any allocation.
        let mut w = Writer::new();
        w.put_u64(1);
        w.put_u32(u32::MAX);
        assert!(decode_hello(&w.into_bytes()).is_none());

        let payload = encode_probe(99);
        assert_eq!(decode_probe(&payload), Some(99));
        assert!(decode_probe(&payload[..7]).is_none());

        let payload = encode_probe_ack(99, 0xABCD);
        assert_eq!(decode_probe_ack(&payload), Some((99, 0xABCD)));
        assert!(decode_probe_ack(&payload[..15]).is_none());
    }

    #[test]
    fn resync_skips_to_the_next_frame_after_each_error_class() {
        let sentinel = encode_frame(KIND_CANCEL, &encode_cancel(7));

        // Desync: garbage, then a frame.
        let mut dec = StreamDecoder::new();
        dec.extend(b"garbage bytes");
        dec.extend(&sentinel);
        assert_eq!(dec.next_frame(), Err(StreamError::Desync));
        dec.resync();
        assert_eq!(
            dec.next_frame()
                .expect("frame after resync")
                .map(|(k, _)| k),
            Some(KIND_CANCEL)
        );
        assert!(!dec.has_partial());

        // Corrupt: a torn frame, then a good one. The corrupt frame's own
        // intact header must not be re-matched forever.
        let mut dec = StreamDecoder::new();
        let mut torn = encode_frame(KIND_CANCEL, &encode_cancel(1));
        torn[12] ^= 0x01;
        dec.extend(&torn);
        dec.extend(&sentinel);
        assert_eq!(dec.next_frame(), Err(StreamError::Corrupt));
        dec.resync();
        assert_eq!(
            dec.next_frame()
                .expect("frame after resync")
                .map(|(k, _)| k),
            Some(KIND_CANCEL)
        );

        // Oversize: a forged length, then a good frame.
        let mut dec = StreamDecoder::new();
        let mut forged = Vec::new();
        forged.extend_from_slice(&MAGIC);
        forged.push(VERSION);
        forged.push(KIND_REQUEST);
        forged.extend_from_slice(&u32::MAX.to_le_bytes());
        dec.extend(&forged);
        dec.extend(&sentinel);
        assert!(matches!(dec.next_frame(), Err(StreamError::Oversize(_))));
        dec.resync();
        assert_eq!(
            dec.next_frame()
                .expect("frame after resync")
                .map(|(k, _)| k),
            Some(KIND_CANCEL)
        );

        // A trailing partial magic survives resync so a frame split across
        // reads still decodes.
        let mut dec = StreamDecoder::new();
        dec.extend(b"junk RS");
        assert_eq!(dec.next_frame(), Err(StreamError::Desync));
        dec.resync();
        dec.extend(&sentinel[2..]);
        // The kept "RS" completes into the sentinel frame.
        assert_eq!(
            dec.next_frame()
                .expect("split frame decodes")
                .map(|(k, _)| k),
            Some(KIND_CANCEL)
        );
    }

    /// Drives a decoder over `bytes` to quiescence: every error is followed
    /// by a resync, so the loop always consumes the buffer or stops at a
    /// genuine partial frame.
    fn drain_decoder(dec: &mut StreamDecoder, got: &mut Vec<(u8, Vec<u8>)>) {
        loop {
            match dec.next_frame() {
                Ok(Some(frame)) => got.push(frame),
                Ok(None) => return,
                Err(_) => dec.resync(),
            }
        }
    }

    proptest! {
        /// Satellite: fuzz the strict stream decoder. Arbitrary noise, a
        /// truncation of a valid frame, and more noise must never panic,
        /// and the decoder must resynchronize on the valid sentinel frames
        /// that follow.
        #[test]
        fn stream_decoder_never_panics_and_resyncs_after_noise(
            noise in proptest::collection::vec(0u8..=255u8, 0..96),
            cut in 0usize..64,
            chunk in 1usize..17,
        ) {
            let torn = encode_frame(KIND_CANCEL, &encode_cancel(5));
            let sentinel = encode_frame(KIND_CANCEL, &encode_cancel(7));
            let mut stream = noise.clone();
            stream.extend_from_slice(&torn[..cut.min(torn.len())]);
            // Two sentinels: even if the truncated header's declared length
            // swallows bytes of the first, the second stays intact.
            stream.extend_from_slice(&sentinel);
            stream.extend_from_slice(&sentinel);

            let mut dec = StreamDecoder::new();
            let mut got = Vec::new();
            for part in stream.chunks(chunk) {
                dec.extend(part);
                drain_decoder(&mut dec, &mut got);
            }
            prop_assert!(
                got.iter()
                    .any(|(k, p)| *k == KIND_CANCEL && decode_cancel(p) == Some(7)),
                "sentinel frame lost after {} noise bytes, cut {}",
                noise.len(),
                cut
            );
        }
    }

    #[test]
    fn failure_reply_round_trips_every_kind() {
        for (_, kind) in FAILURE_TAGS {
            let payload = encode_failure(kind, "what happened");
            let (k, msg) = decode_failure(&payload).expect("failure decodes");
            assert_eq!(k, kind);
            assert_eq!(msg, "what happened");
        }
        assert!(decode_failure(&[250, 0, 0, 0, 0]).is_none(), "unknown tag");
    }
}
