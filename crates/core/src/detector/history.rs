//! The current history register and quarter-period adders (Section 3.1.1).
//!
//! Hardware model: the per-cycle whole-amp current readings of the last
//! `2·q_max` cycles live in a shift register; one small adder per
//! quarter-period length `q` maintains the sums of the most-recent `q`
//! cycles and of the `q` cycles before those, updated incrementally each
//! cycle exactly as a hardware accumulator would (add the entering sample,
//! subtract the leaving one).

use std::collections::VecDeque;

/// Incrementally maintained sums over the last `q` and previous `q` cycles
/// of the current history, for one quarter-period length.
#[derive(Debug, Clone)]
struct QuarterAdder {
    q: u32,
    recent: i64,
    older: i64,
}

/// The current history register plus the per-quarter-period adders covering
/// the resonance band.
#[derive(Debug, Clone)]
pub struct CurrentHistory {
    /// Whole-amp samples, most recent at the back. Length is bounded by
    /// `2·q_max + 1`.
    samples: VecDeque<i64>,
    adders: Vec<QuarterAdder>,
    q_max: u32,
    cycles: u64,
}

impl CurrentHistory {
    /// Creates a history covering quarter periods `q_min..=q_max`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or starts below 2 cycles.
    pub fn new(q_min: u32, q_max: u32) -> Self {
        assert!(q_min >= 2, "quarter periods must span at least 2 cycles");
        assert!(q_min <= q_max, "quarter-period range must be non-empty");
        Self {
            samples: VecDeque::with_capacity((2 * q_max + 1) as usize),
            adders: (q_min..=q_max)
                .map(|q| QuarterAdder {
                    q,
                    recent: 0,
                    older: 0,
                })
                .collect(),
            q_max,
            cycles: 0,
        }
    }

    /// Pushes one cycle's whole-amp current sample.
    pub fn push(&mut self, amps: i64) {
        self.samples.push_back(amps);
        self.cycles += 1;
        // Update each adder incrementally. Sample indices from the back:
        // back = just pushed. For adder q: recent covers [len-q, len),
        // older covers [len-2q, len-q).
        let len = self.samples.len();
        for a in self.adders.iter_mut() {
            let q = a.q as usize;
            a.recent += amps;
            if len > q {
                let leaving_recent = self.samples[len - 1 - q];
                a.recent -= leaving_recent;
                a.older += leaving_recent;
            }
            if len > 2 * q {
                a.older -= self.samples[len - 1 - 2 * q];
            }
        }
        if self.samples.len() > (2 * self.q_max) as usize {
            self.samples.pop_front();
        }
    }

    /// Total cycles observed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// `true` once at least `2·q` samples have been seen for the longest
    /// quarter period (the adders are warm).
    pub fn warm(&self) -> bool {
        self.cycles >= (2 * self.q_max) as u64
    }

    /// The signed difference `recent − older` for quarter period `q`, the
    /// quantity compared against `M·T/8` to flag a resonant half wave.
    /// Positive means current rose (low→high); negative means it fell.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside the configured range.
    pub fn quarter_diff(&self, q: u32) -> i64 {
        let a = self
            .adders
            .iter()
            .find(|a| a.q == q)
            .expect("quarter period must be within the configured band");
        a.recent - a.older
    }

    /// All configured quarter periods.
    pub fn quarter_periods(&self) -> impl Iterator<Item = u32> + '_ {
        self.adders.iter().map(|a| a.q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_current_has_zero_diff() {
        let mut h = CurrentHistory::new(21, 29);
        for _ in 0..100 {
            h.push(70);
        }
        assert!(h.warm());
        for q in 21..=29 {
            assert_eq!(h.quarter_diff(q), 0, "q = {q}");
        }
    }

    #[test]
    fn step_up_gives_positive_diff() {
        let mut h = CurrentHistory::new(25, 25);
        for _ in 0..25 {
            h.push(40);
        }
        for _ in 0..25 {
            h.push(80);
        }
        // recent 25 cycles at 80, older 25 at 40: diff = 25·40 = 1000.
        assert_eq!(h.quarter_diff(25), 1000);
    }

    #[test]
    fn step_down_gives_negative_diff() {
        let mut h = CurrentHistory::new(25, 25);
        for _ in 0..25 {
            h.push(80);
        }
        for _ in 0..25 {
            h.push(40);
        }
        assert_eq!(h.quarter_diff(25), -1000);
    }

    #[test]
    fn incremental_matches_brute_force() {
        // Property: the incremental adders always equal a brute-force sum.
        let mut h = CurrentHistory::new(5, 12);
        let mut all: Vec<i64> = Vec::new();
        let mut x = 37i64;
        for k in 0..400i64 {
            // A deterministic pseudo-random-ish sequence.
            x = (x * 31 + k) % 97;
            all.push(x);
            h.push(x);
            for q in 5..=12u32 {
                let qq = q as usize;
                let n = all.len();
                let recent: i64 = all[n.saturating_sub(qq)..].iter().sum();
                let older: i64 = all[n.saturating_sub(2 * qq)..n.saturating_sub(qq)]
                    .iter()
                    .sum();
                assert_eq!(h.quarter_diff(q), recent - older, "cycle {k} q {q}");
            }
        }
    }

    #[test]
    fn warm_after_two_max_quarters() {
        let mut h = CurrentHistory::new(21, 29);
        for k in 0..58 {
            assert_eq!(h.warm(), k >= 58, "cycle {k}");
            h.push(1);
        }
        assert!(h.warm());
    }

    #[test]
    #[should_panic(expected = "within the configured band")]
    fn out_of_range_quarter_panics() {
        let h = CurrentHistory::new(21, 29);
        let _ = h.quarter_diff(30);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn inverted_range_panics() {
        let _ = CurrentHistory::new(29, 21);
    }

    #[test]
    fn triangle_wave_diff_peaks_at_xt_over_8() {
        // Section 3.1.1: for a triangle wave of peak-to-peak X the
        // quarter-sum difference is X·T/8.
        let q = 25u32;
        let t = 4 * q; // period 100
        let x = 40i64; // peak-to-peak
        let mut h = CurrentHistory::new(q, q);
        let mut peak = 0i64;
        for c in 0..500u32 {
            let phase = (c % t) as f64 / t as f64;
            let tri = if phase < 0.5 {
                4.0 * phase - 1.0
            } else {
                3.0 - 4.0 * phase
            };
            h.push((x as f64 / 2.0 * tri).round() as i64);
            if c > 2 * t {
                peak = peak.max(h.quarter_diff(q).abs());
            }
        }
        let expect = x * t as i64 / 8; // X·T/8 = 40·100/8 = 500
        let err = (peak - expect).abs() as f64 / expect as f64;
        assert!(err < 0.05, "peak diff {peak} vs X·T/8 = {expect}");
    }
}
