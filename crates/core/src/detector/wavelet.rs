//! Wavelet-based di/dt detection — the alternative approach of Joseph, Hu &
//! Martonosi (HPCA'04), reference \[11\] of the paper.
//!
//! Instead of per-period quarter-sum adders covering the exact resonance
//! band, \[11\] analyzes the current with Haar wavelets at *dyadic* scales
//! and estimates the future supply voltage with a simplified convolution
//! against the supply's (damped, alternating) impulse response. The paper
//! notes this as a possible alternative to its repetition counting; this
//! module implements it so the two can be compared head-to-head (see the
//! `ablation_detector` harness).
//!
//! The structural trade-off this implementation exposes: the dyadic scale
//! grid (…, 32, 64, …) straddles the Table 1 band's half-periods (42–59
//! cycles) rather than matching them, so band-edge waveforms project onto
//! the analysis less cleanly than onto the paper's exact-period adders.

use std::collections::VecDeque;

/// Incrementally maintained Haar detail coefficient at one scale: the sum
/// of the most recent `scale` samples minus the sum of the `scale` samples
/// before them (unnormalized).
#[derive(Debug, Clone)]
struct ScaleAdder {
    scale: u32,
    recent: i64,
    older: i64,
}

/// A sliding window computing Haar detail coefficients at a set of dyadic
/// scales.
#[derive(Debug, Clone)]
pub struct HaarWindow {
    samples: VecDeque<i64>,
    adders: Vec<ScaleAdder>,
    max_scale: u32,
    cycles: u64,
}

impl HaarWindow {
    /// Creates a window computing coefficients at the given scales.
    ///
    /// # Panics
    ///
    /// Panics if `scales` is empty or contains zero.
    pub fn new(scales: &[u32]) -> Self {
        assert!(!scales.is_empty(), "need at least one analysis scale");
        assert!(scales.iter().all(|&s| s > 0), "scales must be nonzero");
        let max_scale = *scales.iter().max().expect("non-empty");
        Self {
            samples: VecDeque::with_capacity(2 * max_scale as usize + 1),
            adders: scales
                .iter()
                .map(|&scale| ScaleAdder {
                    scale,
                    recent: 0,
                    older: 0,
                })
                .collect(),
            max_scale,
            cycles: 0,
        }
    }

    /// The dyadic scales from `min` to `max` inclusive (powers of two).
    pub fn dyadic_scales(min: u32, max: u32) -> Vec<u32> {
        let mut scales = Vec::new();
        let mut s = min.next_power_of_two().max(1);
        while s <= max {
            scales.push(s);
            s *= 2;
        }
        scales
    }

    /// Pushes one cycle's whole-amp sample.
    pub fn push(&mut self, amps: i64) {
        self.samples.push_back(amps);
        self.cycles += 1;
        let len = self.samples.len();
        for a in self.adders.iter_mut() {
            let s = a.scale as usize;
            a.recent += amps;
            if len > s {
                let leaving = self.samples[len - 1 - s];
                a.recent -= leaving;
                a.older += leaving;
            }
            if len > 2 * s {
                a.older -= self.samples[len - 1 - 2 * s];
            }
        }
        if self.samples.len() > 2 * self.max_scale as usize {
            self.samples.pop_front();
        }
    }

    /// `true` once the largest scale's two halves are full.
    pub fn warm(&self) -> bool {
        self.cycles >= 2 * self.max_scale as u64
    }

    /// The (unnormalized) Haar detail coefficient at `scale`:
    /// positive = current rose across the window halves.
    ///
    /// # Panics
    ///
    /// Panics if `scale` was not configured.
    pub fn coefficient(&self, scale: u32) -> i64 {
        let a = self
            .adders
            .iter()
            .find(|a| a.scale == scale)
            .expect("scale must be one of the configured analysis scales");
        a.recent - a.older
    }

    /// The configured scales.
    pub fn scales(&self) -> impl Iterator<Item = u32> + '_ {
        self.adders.iter().map(|a| a.scale)
    }
}

/// Configuration of the wavelet detector.
#[derive(Debug, Clone, PartialEq)]
pub struct WaveletConfig {
    /// Analysis scales (cycles); dyadic in \[11\].
    pub scales: Vec<u32>,
    /// Per-scale event threshold in amp-cycles: a coefficient beyond
    /// `threshold_amps × scale` flags a swing (comparable to the paper's
    /// M·T/8 with T = 4·scale ⇒ threshold_amps = M/2 for square waves).
    pub threshold_amps: f64,
    /// Amplitude decay per half resonant period, e^(−π/(2Q)).
    pub half_period_decay: f64,
    /// The nominal half resonant period in cycles (the convolution kernel's
    /// tap spacing).
    pub half_period: u32,
    /// Number of kernel taps (how many past half-waves the simplified
    /// convolution remembers).
    pub taps: u32,
    /// Warning threshold on the convolution output (amp-cycles of
    /// accumulated, decayed, alternating swing).
    pub warn_level: f64,
}

impl WaveletConfig {
    /// A configuration matched to the Table 1 supply at 10 GHz: dyadic
    /// scales 32 and 64 straddling the 42–59-cycle half-periods, thresholds
    /// aligned with the paper's 32 A variation threshold, Q = 2.83.
    pub fn isca04_table1() -> Self {
        Self {
            scales: HaarWindow::dyadic_scales(32, 64),
            threshold_amps: 16.0,
            half_period_decay: (-std::f64::consts::PI / (2.0 * 2.83)).exp(),
            half_period: 50,
            taps: 6,
            warn_level: 2.2,
        }
    }
}

/// A warning from the wavelet detector: the simplified convolution predicts
/// the accumulated resonant energy is approaching the margin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaveletWarning {
    /// The convolution output, in units of the per-scale threshold (1.0 =
    /// one full-threshold swing's worth of surviving energy).
    pub level: f64,
}

/// The wavelet-convolution detector of \[11\].
#[derive(Debug, Clone)]
pub struct WaveletDetector {
    config: WaveletConfig,
    window: HaarWindow,
    /// Normalized swing strength recorded per cycle (signed; tap history).
    swing_history: VecDeque<f64>,
    last_sign: i8,
    warnings: u64,
}

impl WaveletDetector {
    /// Creates a detector.
    ///
    /// # Panics
    ///
    /// Panics on an empty scale list or zero half-period.
    pub fn new(config: WaveletConfig) -> Self {
        assert!(config.half_period > 0, "half period must be nonzero");
        let window = HaarWindow::new(&config.scales);
        let depth = (config.taps * config.half_period) as usize + 1;
        Self {
            window,
            swing_history: VecDeque::with_capacity(depth),
            config,
            last_sign: 0,
            warnings: 0,
        }
    }

    /// Total warnings raised.
    pub fn warnings(&self) -> u64 {
        self.warnings
    }

    /// Observes one cycle's current; returns a warning when the simplified
    /// convolution crosses the configured level.
    pub fn observe(&mut self, whole_amps: i64) -> Option<WaveletWarning> {
        self.window.push(whole_amps);

        // Strongest normalized in-band coefficient this cycle.
        let mut strongest = 0.0f64;
        if self.window.warm() {
            for scale in self.config.scales.clone() {
                let c = self.window.coefficient(scale) as f64
                    / (self.config.threshold_amps * scale as f64);
                if c.abs() > strongest.abs() {
                    strongest = c;
                }
            }
        }
        // Record only super-threshold swing onsets (sign changes), one per
        // half wave.
        let sign = if strongest >= 1.0 {
            1i8
        } else if strongest <= -1.0 {
            -1
        } else {
            0
        };
        let record = if sign != 0 && sign != self.last_sign {
            strongest
        } else {
            0.0
        };
        if sign != 0 {
            self.last_sign = sign;
        }
        self.swing_history.push_back(record);
        let depth = (self.config.taps * self.config.half_period) as usize + 1;
        if self.swing_history.len() > depth {
            self.swing_history.pop_front();
        }

        // Simplified convolution: sample the swing history at half-period
        // spacings with the supply's alternating, decaying kernel.
        let n = self.swing_history.len();
        let mut level = 0.0;
        for tap in 0..self.config.taps {
            let offset = (tap * self.config.half_period) as usize;
            if offset >= n {
                break;
            }
            // Take the max-magnitude record within ±half the tap spacing to
            // tolerate period mismatch inside the band.
            let slack = (self.config.half_period / 2) as usize;
            let lo = n - 1 - offset.min(n - 1);
            let window_lo = lo.saturating_sub(slack / 2);
            let window_hi = (lo + slack / 2 + 1).min(n);
            let rec = self
                .swing_history
                .range(window_lo..window_hi)
                .fold(0.0f64, |acc, &x| if x.abs() > acc.abs() { x } else { acc });
            let kernel = if tap % 2 == 0 { 1.0 } else { -1.0 }
                * self.config.half_period_decay.powi(tap as i32);
            level += rec * kernel;
        }

        if level.abs() >= self.config.warn_level {
            self.warnings += 1;
            Some(WaveletWarning { level })
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector() -> WaveletDetector {
        WaveletDetector::new(WaveletConfig::isca04_table1())
    }

    fn drive_square(det: &mut WaveletDetector, p2p: i64, period: u64, cycles: u64) -> u64 {
        for c in 0..cycles {
            let i = if (c / (period / 2)).is_multiple_of(2) {
                70 + p2p / 2
            } else {
                70 - p2p / 2
            };
            det.observe(i);
        }
        det.warnings()
    }

    #[test]
    fn dyadic_scales_cover_range() {
        assert_eq!(HaarWindow::dyadic_scales(32, 64), vec![32, 64]);
        assert_eq!(HaarWindow::dyadic_scales(10, 100), vec![16, 32, 64]);
        assert_eq!(HaarWindow::dyadic_scales(1, 8), vec![1, 2, 4, 8]);
    }

    #[test]
    fn haar_coefficient_matches_brute_force() {
        let mut w = HaarWindow::new(&[4, 8]);
        let data: Vec<i64> = (0..40).map(|k| (k * 7) % 23).collect();
        for (k, &x) in data.iter().enumerate() {
            w.push(x);
            for scale in [4usize, 8] {
                if k + 1 >= 2 * scale {
                    let n = k + 1;
                    let recent: i64 = data[n - scale..n].iter().sum();
                    let older: i64 = data[n - 2 * scale..n - scale].iter().sum();
                    assert_eq!(
                        w.coefficient(scale as u32),
                        recent - older,
                        "k={k} s={scale}"
                    );
                }
            }
        }
    }

    #[test]
    fn quiet_current_raises_no_warnings() {
        let mut d = detector();
        for _ in 0..3_000 {
            assert!(d.observe(70).is_none());
        }
    }

    #[test]
    fn sustained_resonance_warns() {
        let mut d = detector();
        let warnings = drive_square(&mut d, 40, 100, 1_500);
        assert!(warnings > 0, "sustained resonant wave must warn");
    }

    #[test]
    fn isolated_step_does_not_warn() {
        let mut d = detector();
        for c in 0..2_000u64 {
            let i = if c < 1_000 { 55 } else { 90 };
            assert!(d.observe(i).is_none(), "isolated step warned at {c}");
        }
    }

    #[test]
    fn small_waves_do_not_warn() {
        let mut d = detector();
        let warnings = drive_square(&mut d, 12, 100, 3_000);
        assert_eq!(warnings, 0);
    }

    #[test]
    fn warning_precedes_margin_worth_of_buildup() {
        // The warning fires within the first few periods of a sustained
        // 40 A resonant wave — early enough to act.
        let mut d = detector();
        let mut first_warn = None;
        for c in 0..2_000u64 {
            let i = if (c / 50).is_multiple_of(2) { 90 } else { 50 };
            if d.observe(i).is_some() && first_warn.is_none() {
                first_warn = Some(c);
            }
        }
        let warn = first_warn.expect("sustained wave must warn");
        assert!(warn < 600, "warning at {warn} is too late");
    }

    #[test]
    fn band_edge_coverage_is_weaker_than_exact_detector() {
        // The structural comparison the paper implies: at the band edge
        // (118-cycle period), the dyadic grid's projection is weaker than
        // at the resonant period. The warning may still fire, but later or
        // not at all — while the exact-period detector (events.rs) covers
        // the edge as well as the center.
        let mut center = detector();
        let center_warnings = drive_square(&mut center, 40, 100, 2_000);
        let mut edge = detector();
        let edge_warnings = drive_square(&mut edge, 40, 118, 2_000);
        assert!(
            edge_warnings < center_warnings,
            "dyadic analysis must lose fidelity off its grid: edge {edge_warnings} vs center {center_warnings}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one analysis scale")]
    fn empty_scales_panic() {
        let _ = HaarWindow::new(&[]);
    }
}
