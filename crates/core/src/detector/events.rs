//! Resonant-event identification and repetition counting
//! (Sections 3.1.1–3.1.3).
//!
//! Each cycle, the quarter-period adders are compared against `M·T/8`; a
//! crossing flags a **resonant event** of high-to-low or low-to-high
//! polarity, recorded one bit per cycle in the high-low / low-high history
//! shift registers. When a *new* event is detected (the first cycle of a
//! run — events of the same polarity in consecutive cycles count once), the
//! registers are probed at all half-period offsets in the resonance band,
//! chaining alternating-polarity events backward to produce the **resonant
//! event count**.

use crate::config::TuningConfig;
use crate::detector::history::CurrentHistory;

/// The polarity of a resonant event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Polarity {
    /// Current fell by more than the threshold over a half period.
    HighLow,
    /// Current rose by more than the threshold over a half period.
    LowHigh,
}

impl Polarity {
    /// The opposite polarity.
    pub fn opposite(self) -> Self {
        match self {
            Polarity::HighLow => Polarity::LowHigh,
            Polarity::LowHigh => Polarity::HighLow,
        }
    }
}

/// A newly detected resonant event together with its repetition count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResonantEvent {
    /// Polarity of the new event.
    pub polarity: Polarity,
    /// The resonant event count: this event plus the chain of
    /// alternating-polarity events at half-period spacings behind it.
    pub count: u32,
}

/// One polarity's event-history shift register (one bit per cycle).
#[derive(Debug, Clone)]
struct BitHistory {
    bits: Vec<bool>,
    head: usize, // position of the *current* cycle's bit
}

impl BitHistory {
    fn new(len: usize) -> Self {
        Self {
            bits: vec![false; len.max(8)],
            head: 0,
        }
    }

    /// Shift in an empty bit for the new cycle.
    fn advance(&mut self) {
        self.head = (self.head + 1) % self.bits.len();
        self.bits[self.head] = false;
    }

    fn set_current(&mut self) {
        self.bits[self.head] = true;
    }

    /// The bit `offset` cycles ago (0 = current cycle).
    fn get(&self, offset: usize) -> bool {
        if offset >= self.bits.len() {
            return false;
        }
        let n = self.bits.len();
        self.bits[(self.head + n - offset) % n]
    }

    /// Any bit set in `[from, to]` cycles ago? Returns the smallest such
    /// offset.
    fn first_in(&self, from: usize, to: usize) -> Option<usize> {
        (from..=to).find(|&o| self.get(o))
    }
}

/// The resonant-behavior detector: current history + band-wide event
/// identification + repetition counting.
///
/// Feed it one whole-amp current sample per cycle with
/// [`EventDetector::observe`]; it returns `Some(ResonantEvent)` on the first
/// cycle of each newly detected event run, with the current resonant event
/// count.
#[derive(Debug, Clone)]
pub struct EventDetector {
    config: TuningConfig,
    history: CurrentHistory,
    high_low: BitHistory,
    low_high: BitHistory,
    events_detected: u64,
}

impl EventDetector {
    /// Creates a detector for the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: TuningConfig) -> Self {
        config.validate();
        let q = config.quarter_periods();
        let len = config.history_length();
        Self {
            history: CurrentHistory::new(*q.start(), *q.end()),
            high_low: BitHistory::new(len),
            low_high: BitHistory::new(len),
            config,
            events_detected: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &TuningConfig {
        &self.config
    }

    /// Total new (deduplicated) events detected so far.
    pub fn events_detected(&self) -> u64 {
        self.events_detected
    }

    /// Observes one cycle's current (whole amps) and reports a newly
    /// detected resonant event, if any, with its repetition count.
    pub fn observe(&mut self, whole_amps: i64) -> Option<ResonantEvent> {
        self.history.push(whole_amps);
        self.high_low.advance();
        self.low_high.advance();
        if !self.history.warm() {
            return None;
        }

        // Identify: any quarter period whose |recent − older| ≥ M·T/8.
        let mut rose = false;
        let mut fell = false;
        for q in self.config.quarter_periods() {
            let diff = self.history.quarter_diff(q);
            let thr = self.config.event_threshold(q);
            if diff as f64 >= thr {
                rose = true;
            } else if (diff as f64) <= -thr {
                fell = true;
            }
        }
        // Record this cycle's bits (both can fire at different periods; the
        // dominant, first-detected polarity wins for counting).
        let polarity = match (fell, rose) {
            (true, _) => {
                self.high_low.set_current();
                if rose {
                    self.low_high.set_current();
                }
                Polarity::HighLow
            }
            (false, true) => {
                self.low_high.set_current();
                Polarity::LowHigh
            }
            (false, false) => return None,
        };

        // Dedup: same polarity in the immediately preceding cycle means this
        // is a continuation of the same event run, not a new event.
        let register = match polarity {
            Polarity::HighLow => &self.high_low,
            Polarity::LowHigh => &self.low_high,
        };
        if register.get(1) {
            return None;
        }
        self.events_detected += 1;

        // Count: chain alternating polarities backward at half-period
        // offsets anywhere in the band.
        let h_min = *self.config.half_periods().start() as usize;
        let h_max = *self.config.half_periods().end() as usize;
        let mut count = 1u32;
        let mut look_polarity = polarity.opposite();
        let mut base = 0usize;
        while count < self.config.max_repetition_tolerance + 4 {
            let register = match look_polarity {
                Polarity::HighLow => &self.high_low,
                Polarity::LowHigh => &self.low_high,
            };
            match register.first_in(base + h_min, base + h_max) {
                Some(offset) => {
                    count += 1;
                    look_polarity = look_polarity.opposite();
                    base = offset;
                }
                None => break,
            }
        }
        Some(ResonantEvent { polarity, count })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector() -> EventDetector {
        EventDetector::new(TuningConfig::isca04_table1(100))
    }

    /// Feeds a square wave of the given peak-to-peak amplitude and period,
    /// returning the maximum event count seen.
    fn drive_square(det: &mut EventDetector, p2p: i64, period: u64, cycles: u64) -> u32 {
        let mid = 70i64;
        let mut max_count = 0;
        for c in 0..cycles {
            let i = if (c / (period / 2)).is_multiple_of(2) {
                mid + p2p / 2
            } else {
                mid - p2p / 2
            };
            if let Some(ev) = det.observe(i) {
                max_count = max_count.max(ev.count);
            }
        }
        max_count
    }

    #[test]
    fn constant_current_produces_no_events() {
        let mut det = detector();
        for _ in 0..2000 {
            assert!(det.observe(70).is_none());
        }
        assert_eq!(det.events_detected(), 0);
    }

    #[test]
    fn resonant_square_wave_counts_up() {
        let mut det = detector();
        let max = drive_square(&mut det, 40, 100, 1000);
        assert!(
            max >= 4,
            "sustained resonant wave should reach the tolerance, got {max}"
        );
        assert!(det.events_detected() >= 8);
    }

    #[test]
    fn small_variations_are_ignored() {
        // For a square wave the quarter-sum difference is X·T/4, so the
        // M·T/8 rule fires at X = M/2 = 16 A; 12 A stays below it.
        let mut det = detector();
        let max = drive_square(&mut det, 12, 100, 4000);
        assert_eq!(max, 0, "sub-threshold variations must not register");
    }

    #[test]
    fn square_wave_detection_threshold_is_half_m() {
        // Boundary check of the M·T/8 rule for square shapes.
        let mut below = detector();
        assert_eq!(drive_square(&mut below, 14, 100, 2000), 0);
        let mut above = detector();
        assert!(drive_square(&mut above, 20, 100, 2000) > 0);
    }

    #[test]
    fn off_band_variations_are_ignored() {
        // A 40 A wave at a 24-cycle period: its quarter period (6) is far
        // below the band's adders (21–29) and the in-band quarter sums of a
        // fast wave average out.
        let mut det = detector();
        let max = drive_square(&mut det, 40, 24, 4000);
        assert_eq!(
            max, 0,
            "off-band variations must not register, got count {max}"
        );
    }

    #[test]
    fn band_edge_periods_are_detected() {
        for period in [84u64, 100, 118] {
            let mut det = detector();
            let max = drive_square(&mut det, 40, period, 1200);
            assert!(
                max >= 3,
                "period {period} should be detected in-band, got {max}"
            );
        }
    }

    #[test]
    fn isolated_step_counts_one_ish() {
        // A single step change is one event (maybe two as the wavefront
        // passes both window halves) but no sustained chain.
        let mut det = detector();
        let mut max_count = 0;
        for c in 0..1500u64 {
            let i = if c < 700 { 50 } else { 90 };
            if let Some(ev) = det.observe(i) {
                max_count = max_count.max(ev.count);
            }
        }
        assert!(
            max_count <= 2,
            "isolated step must not chain, got {max_count}"
        );
    }

    #[test]
    fn alternating_polarities_chain() {
        let mut det = detector();
        let mut polarities = Vec::new();
        for c in 0..600u64 {
            let i = if (c / 50) % 2 == 0 { 90 } else { 50 };
            if let Some(ev) = det.observe(i) {
                polarities.push(ev.polarity);
            }
        }
        assert!(polarities.len() >= 6);
        // Consecutive new events alternate polarity.
        for w in polarities.windows(2) {
            assert_eq!(w[0].opposite(), w[1], "polarities must alternate");
        }
    }

    #[test]
    fn count_decreases_after_wave_stops() {
        let mut det = detector();
        // Drive resonance, then go quiet, then a lone step: its count must
        // be small because old events left the history registers.
        let _ = drive_square(&mut det, 40, 100, 800);
        for _ in 0..1500 {
            let _ = det.observe(70);
        }
        let mut last = 0;
        for c in 0..200u64 {
            let i = if c < 50 { 70 } else { 40 };
            if let Some(ev) = det.observe(i) {
                last = last.max(ev.count);
            }
        }
        assert!(last <= 2, "stale events must age out, got count {last}");
    }

    #[test]
    fn polarity_opposite_is_involutive() {
        assert_eq!(Polarity::HighLow.opposite(), Polarity::LowHigh);
        assert_eq!(Polarity::LowHigh.opposite().opposite(), Polarity::LowHigh);
    }

    #[test]
    fn whole_amp_quantization_is_sufficient() {
        // Same wave ±0.4 A of noise quantized to whole amps: detection is
        // unaffected (Section 5.1.2's precision claim).
        let mut det = detector();
        let mut max_count = 0;
        for c in 0..1000u64 {
            let base = if (c / 50) % 2 == 0 { 90.0 } else { 50.0 };
            let noisy = base + 0.4 * ((c as f64 * 0.7).sin());
            if let Some(ev) = det.observe(noisy.round() as i64) {
                max_count = max_count.max(ev.count);
            }
        }
        assert!(
            max_count >= 4,
            "quantized detection should still chain, got {max_count}"
        );
    }
}
