//! Detection of nascent resonant behavior (Section 3.1): the current
//! history register with band-wide quarter-period adders, the high-low /
//! low-high event histories, and the resonant event count.

mod events;
mod history;
mod wavelet;

pub use events::{EventDetector, Polarity, ResonantEvent};
pub use history::CurrentHistory;
pub use wavelet::{HaarWindow, WaveletConfig, WaveletDetector, WaveletWarning};
