//! Structured observability: cycle-stamped event tracing, waveform capture
//! around violations, and a counter registry aggregated across worker tiers.
//!
//! The paper's analysis lives in its traces — supply-voltage-vs-time plots
//! around resonance buildup (Figures 3/4) and the detector's view of current
//! swings — and this module makes the reproduction emit the same raw
//! material. Three pieces:
//!
//! * **Event log** — cycle-stamped simulation events (detector fire,
//!   response entry/exit, noise-margin violation, fault injection) and
//!   wall-stamped engine events (suite/run lifecycle, retry/backoff,
//!   warnings), written as JSON lines through a pluggable [`TraceSink`].
//! * **Waveform capture** — a fixed-size [`rlc::WaveformRing`] taps the
//!   supply's per-cycle current/noise so a compact trace window around each
//!   violation and detector event can be dumped ([`CycleTracer`]).
//! * **Counter registry** — named monotonic counters, merged across worker
//!   tiers: a process-isolated worker runs with `RESTUNE_TRACE=wire`, which
//!   buffers its events and counters for forwarding home over an RSTF
//!   `KIND_OBS` frame instead of writing them locally.
//!
//! Tracing is **off by default** and bit-exact-neutral: every emission point
//! is an observer of values the simulation already computes, so enabling a
//! sink never changes a result. Enable it with `RESTUNE_TRACE=PATH` (or
//! `--trace-out PATH` on the harnesses); `RESTUNE_TRACE=wire` is the
//! internal forwarding mode the process-isolation tier uses.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use rlc::units::Volts;
use rlc::WaveformRing;

use crate::sim::CycleRecord;

/// Where emitted JSON lines go. Implementations must tolerate being called
/// from multiple threads in sequence (the global sink is mutex-guarded) and
/// should buffer internally — `write_line` sits on event paths.
pub trait TraceSink: Send {
    /// Writes one complete JSON-lines record (no trailing newline).
    fn write_line(&mut self, line: &str);
    /// Flushes any buffered lines to the underlying store.
    fn flush(&mut self) {}
}

/// The global sink: what happens to an emitted line.
enum SinkState {
    /// `RESTUNE_TRACE` has not been consulted yet.
    Unconfigured,
    /// Tracing disabled: lines are dropped before being built.
    Off,
    /// Lines append to a JSON-lines file.
    File(std::io::BufWriter<std::fs::File>),
    /// Lines buffer in memory for forwarding over the wire (`KIND_OBS`).
    Forward(Vec<String>),
    /// A caller-installed sink (tests, embedders).
    Custom(Box<dyn TraceSink>),
}

static SINK: Mutex<SinkState> = Mutex::new(SinkState::Unconfigured);
/// Fast-path mirror of whether the sink is active, so disabled runs pay one
/// relaxed load per emission site instead of a mutex.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The process-wide epoch wall-stamped events are measured from.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// What a `RESTUNE_TRACE` value asks for.
#[derive(Debug, PartialEq, Eq)]
enum TraceMode {
    Off,
    Wire,
    File(std::path::PathBuf),
}

fn mode_from_env(value: Option<&str>) -> TraceMode {
    match value {
        None => TraceMode::Off,
        Some(v) => match v.trim() {
            "" | "0" | "off" => TraceMode::Off,
            "wire" => TraceMode::Wire,
            path => TraceMode::File(std::path::PathBuf::from(path)),
        },
    }
}

/// Consults `RESTUNE_TRACE` on first use; later calls see the cached state.
fn ensure_init(state: &mut SinkState) {
    if !matches!(state, SinkState::Unconfigured) {
        return;
    }
    let env = std::env::var("RESTUNE_TRACE").ok();
    *state = match mode_from_env(env.as_deref()) {
        TraceMode::Off => SinkState::Off,
        TraceMode::Wire => SinkState::Forward(Vec::new()),
        TraceMode::File(path) => match open_trace_file(&path) {
            Ok(file) => SinkState::File(file),
            Err(e) => {
                eprintln!(
                    "restune: cannot open RESTUNE_TRACE file {}: {e}; tracing disabled",
                    path.display()
                );
                SinkState::Off
            }
        },
    };
    let _ = epoch();
    ENABLED.store(!matches!(state, SinkState::Off), Ordering::Relaxed);
}

fn open_trace_file(path: &Path) -> std::io::Result<std::io::BufWriter<std::fs::File>> {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)?;
    }
    Ok(std::io::BufWriter::new(std::fs::File::create(path)?))
}

/// `true` when a sink is active and events will be recorded. The first call
/// consults `RESTUNE_TRACE`; explicit configuration ([`trace_to_file`],
/// [`set_sink`]) overrides the environment.
pub fn trace_enabled() -> bool {
    if ENABLED.load(Ordering::Relaxed) {
        return true;
    }
    let mut state = SINK.lock().expect("trace sink poisoned");
    ensure_init(&mut state);
    !matches!(*state, SinkState::Off)
}

/// Routes all subsequent events to a fresh JSON-lines file at `path`
/// (parents created, existing file truncated), overriding `RESTUNE_TRACE`.
///
/// # Errors
///
/// Returns the error when the file cannot be created; the previous sink
/// state is kept.
pub fn trace_to_file(path: &Path) -> std::io::Result<()> {
    let file = open_trace_file(path)?;
    let mut state = SINK.lock().expect("trace sink poisoned");
    *state = SinkState::File(file);
    let _ = epoch();
    ENABLED.store(true, Ordering::Relaxed);
    Ok(())
}

/// Installs a custom sink (tests, embedders), overriding `RESTUNE_TRACE`.
pub fn set_sink(sink: Box<dyn TraceSink>) {
    let mut state = SINK.lock().expect("trace sink poisoned");
    *state = SinkState::Custom(sink);
    let _ = epoch();
    ENABLED.store(true, Ordering::Relaxed);
}

/// Disables tracing: subsequent events are dropped. The counter registry is
/// left untouched.
pub fn disable_trace() {
    let mut state = SINK.lock().expect("trace sink poisoned");
    *state = SinkState::Off;
    ENABLED.store(false, Ordering::Relaxed);
}

/// Emits the final counter snapshot (one `counter` event per entry) and
/// flushes the sink. Harness mains call this once on exit via the
/// `init_trace` guard; calling it with tracing disabled is a no-op.
pub fn finish_trace() {
    if !trace_enabled() {
        return;
    }
    for (name, value) in snapshot_counters() {
        Event::engine("counter")
            .str_field("name", &name)
            .u64_field("value", value)
            .emit();
    }
    let mut state = SINK.lock().expect("trace sink poisoned");
    match &mut *state {
        SinkState::File(file) => {
            let _ = file.flush();
        }
        SinkState::Custom(sink) => sink.flush(),
        _ => {}
    }
}

fn emit_line(line: String) {
    let mut state = SINK.lock().expect("trace sink poisoned");
    ensure_init(&mut state);
    match &mut *state {
        SinkState::Unconfigured => unreachable!("ensure_init leaves a configured state"),
        SinkState::Off => {}
        SinkState::File(file) => {
            let _ = file.write_all(line.as_bytes()).and_then(|()| {
                // Line-buffered on purpose: a crashed run keeps every
                // complete event written before the crash.
                file.write_all(b"\n")
            });
            let _ = file.flush();
        }
        SinkState::Forward(lines) => lines.push(line),
        SinkState::Custom(sink) => sink.write_line(&line),
    }
}

/// Takes the buffered events and counters of this process's `wire`
/// (forwarding) sink, or `None` when the sink is not in forwarding mode.
/// A process-isolated worker calls this once before writing its reply frame
/// so the parent can splice the worker's observability into its own.
#[allow(clippy::type_complexity)]
pub fn take_forwarded() -> Option<(Vec<(String, u64)>, Vec<String>)> {
    let lines = {
        let mut state = SINK.lock().expect("trace sink poisoned");
        ensure_init(&mut state);
        match &mut *state {
            SinkState::Forward(lines) => std::mem::take(lines),
            _ => return None,
        }
    };
    Some((take_counters(), lines))
}

/// Splices a worker's forwarded observability into this process: its event
/// lines are written to the local sink verbatim and its counters merge
/// (by addition) into the local registry.
pub fn absorb_forwarded(counters: &[(String, u64)], lines: &[String]) {
    for (name, value) in counters {
        counter_add(name, *value);
    }
    for line in lines {
        emit_line(line.clone());
    }
}

/// A shared in-memory sink for tests: clone it, install it with
/// [`TraceBuffer::install`], and read back [`TraceBuffer::lines`].
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    lines: Arc<Mutex<Vec<String>>>,
}

struct TraceBufferSink(Arc<Mutex<Vec<String>>>);

impl TraceSink for TraceBufferSink {
    fn write_line(&mut self, line: &str) {
        self.0
            .lock()
            .expect("trace buffer poisoned")
            .push(line.to_string());
    }
}

impl TraceBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs this buffer as the global sink (see [`set_sink`]).
    pub fn install(&self) {
        set_sink(Box::new(TraceBufferSink(Arc::clone(&self.lines))));
    }

    /// The lines captured so far.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().expect("trace buffer poisoned").clone()
    }
}

// ---------------------------------------------------------------------------
// Counter registry
// ---------------------------------------------------------------------------

static COUNTERS: Mutex<BTreeMap<String, u64>> = Mutex::new(BTreeMap::new());

/// Adds `delta` to the named monotonic counter. Counters are cheap but not
/// free — call this at event granularity (a detector fire, a retry), never
/// per cycle.
pub fn counter_add(name: &str, delta: u64) {
    let mut counters = COUNTERS.lock().expect("counter registry poisoned");
    *counters.entry(name.to_string()).or_insert(0) += delta;
}

/// The current counter values, sorted by name.
pub fn snapshot_counters() -> Vec<(String, u64)> {
    let counters = COUNTERS.lock().expect("counter registry poisoned");
    counters.iter().map(|(k, v)| (k.clone(), *v)).collect()
}

/// Drains the counter registry, returning the final values sorted by name.
pub fn take_counters() -> Vec<(String, u64)> {
    let mut counters = COUNTERS.lock().expect("counter registry poisoned");
    std::mem::take(&mut *counters).into_iter().collect()
}

// ---------------------------------------------------------------------------
// Event construction
// ---------------------------------------------------------------------------

/// Builder for one JSON-lines event. Constructed pre-stamped as either a
/// cycle-stamped simulation event ([`Event::sim`]) or a wall-stamped engine
/// event ([`Event::engine`]); when tracing is disabled every method is a
/// no-op, so call sites need no `if` of their own.
#[derive(Debug)]
pub struct Event {
    buf: Option<String>,
}

fn json_escape_into(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

impl Event {
    /// A cycle-stamped simulation event: carries `kind`, `app`, `cycle`.
    pub fn sim(kind: &str, app: &str, cycle: u64) -> Self {
        if !trace_enabled() {
            return Self { buf: None };
        }
        let mut buf = String::with_capacity(96);
        buf.push_str("{\"kind\":\"");
        json_escape_into(&mut buf, kind);
        buf.push_str("\",\"app\":\"");
        json_escape_into(&mut buf, app);
        let _ = write!(buf, "\",\"cycle\":{cycle}");
        Self { buf: Some(buf) }
    }

    /// A wall-stamped engine event: carries `kind` and `wall` (seconds
    /// since the first observability use in this process).
    pub fn engine(kind: &str) -> Self {
        if !trace_enabled() {
            return Self { buf: None };
        }
        let wall = epoch().elapsed().as_secs_f64();
        let mut buf = String::with_capacity(96);
        buf.push_str("{\"kind\":\"");
        json_escape_into(&mut buf, kind);
        let _ = write!(buf, "\",\"wall\":{wall}");
        Self { buf: Some(buf) }
    }

    /// Adds a string field.
    #[must_use]
    pub fn str_field(mut self, name: &str, value: &str) -> Self {
        if let Some(buf) = &mut self.buf {
            buf.push_str(",\"");
            json_escape_into(buf, name);
            buf.push_str("\":\"");
            json_escape_into(buf, value);
            buf.push('"');
        }
        self
    }

    /// Adds an unsigned integer field.
    #[must_use]
    pub fn u64_field(mut self, name: &str, value: u64) -> Self {
        if let Some(buf) = &mut self.buf {
            buf.push_str(",\"");
            json_escape_into(buf, name);
            let _ = write!(buf, "\":{value}");
        }
        self
    }

    /// Adds a floating-point field (`null` for non-finite values).
    #[must_use]
    pub fn f64_field(mut self, name: &str, value: f64) -> Self {
        if let Some(buf) = &mut self.buf {
            buf.push_str(",\"");
            json_escape_into(buf, name);
            if value.is_finite() {
                let _ = write!(buf, "\":{value}");
            } else {
                buf.push_str("\":null");
            }
        }
        self
    }

    /// Adds a pre-rendered JSON value (for arrays such as waveform
    /// samples). The caller is responsible for `raw` being valid JSON.
    #[must_use]
    pub fn raw_field(mut self, name: &str, raw: &str) -> Self {
        if let Some(buf) = &mut self.buf {
            buf.push_str(",\"");
            json_escape_into(buf, name);
            buf.push_str("\":");
            buf.push_str(raw);
        }
        self
    }

    /// Closes the record and sends it to the sink.
    pub fn emit(self) {
        if let Some(mut buf) = self.buf {
            buf.push('}');
            emit_line(buf);
        }
    }
}

/// Reports an engine warning: one line on stderr (the pre-observability
/// behavior, kept so interactive users still see it) plus a structured
/// `warn` event and a `warn.<category>` counter when tracing is active.
pub fn warn(category: &str, message: &str) {
    eprintln!("restune: {message}");
    counter_add(&format!("warn.{category}"), 1);
    Event::engine("warn")
        .str_field("category", category)
        .str_field("message", message)
        .emit();
}

// ---------------------------------------------------------------------------
// Cycle-level tracer with waveform capture
// ---------------------------------------------------------------------------

/// Cycles of context kept before a trigger in a waveform window.
const PRE_TRIGGER_CYCLES: u64 = 64;
/// Cycles captured after a trigger before the window is dumped.
const POST_TRIGGER_CYCLES: u64 = 32;
/// Cap on dumped windows per run, so a pathological run cannot flood the
/// trace (violation episodes beyond the cap still emit their point events).
const MAX_WINDOWS_PER_RUN: u32 = 8;

/// The per-run observer wired into the simulation loop when tracing is
/// active: detects event edges in the per-cycle [`CycleRecord`] stream,
/// emits cycle-stamped events, and taps every cycle's supply current/noise
/// into a [`WaveformRing`] so a window around each violation and detector
/// event can be dumped (the paper's Figure 3/4-style traces).
///
/// Strictly read-only over the simulation state: a run traced by this
/// observer is bit-exact with an untraced run.
#[derive(Debug)]
pub struct CycleTracer {
    enabled: bool,
    app: &'static str,
    margin: f64,
    ring: WaveformRing,
    in_violation: bool,
    restricted: bool,
    /// `(trigger_cycle, reason)` of the window waiting for its post-trigger
    /// context.
    pending: Option<(u64, &'static str)>,
    windows: u32,
    last_cycle: u64,
}

impl CycleTracer {
    /// Builds the tracer for one run. `margin` is the supply's noise margin
    /// in volts (the violation threshold). When tracing is disabled the
    /// tracer is dormant: [`CycleTracer::observe`] returns immediately.
    pub fn new(app: &'static str, technique: &str, margin: Volts) -> Self {
        let enabled = trace_enabled();
        if enabled {
            Event::sim("run-start", app, 0)
                .str_field("technique", technique)
                .f64_field("margin_volts", margin.volts())
                .emit();
        }
        Self {
            enabled,
            app,
            margin: margin.volts(),
            ring: WaveformRing::new((PRE_TRIGGER_CYCLES + POST_TRIGGER_CYCLES) as usize),
            in_violation: false,
            restricted: false,
            pending: None,
            windows: 0,
            last_cycle: 0,
        }
    }

    /// Observes one simulated cycle.
    pub fn observe(&mut self, rec: &CycleRecord) {
        if !self.enabled {
            return;
        }
        self.last_cycle = rec.cycle;
        self.ring.record(rec.cycle, rec.current, rec.noise);

        if let Some(count) = rec.event_count {
            counter_add("sim.detector_fires", 1);
            Event::sim("detector-fire", self.app, rec.cycle)
                .u64_field("count", u64::from(count))
                .f64_field("current_amps", rec.current.amps())
                .emit();
            self.trigger(rec.cycle, "detector-fire");
        }

        if rec.restricted != self.restricted {
            self.restricted = rec.restricted;
            let kind = if rec.restricted {
                counter_add("sim.response_entries", 1);
                "response-enter"
            } else {
                "response-exit"
            };
            Event::sim(kind, self.app, rec.cycle).emit();
        }

        let violating = rec.noise.abs().volts() > self.margin;
        if violating != self.in_violation {
            self.in_violation = violating;
            if violating {
                counter_add("sim.violation_episodes", 1);
                Event::sim("violation", self.app, rec.cycle)
                    .f64_field("noise_volts", rec.noise.volts())
                    .f64_field("margin_volts", self.margin)
                    .emit();
                self.trigger(rec.cycle, "violation");
            }
        }

        if let Some((trigger, reason)) = self.pending {
            if rec.cycle >= trigger + POST_TRIGGER_CYCLES {
                self.dump_window(trigger, reason);
            }
        }
    }

    /// Arms a waveform window at `cycle` unless one is already pending (the
    /// earliest trigger wins — its pre-context is the interesting part) or
    /// the per-run cap is exhausted.
    fn trigger(&mut self, cycle: u64, reason: &'static str) {
        if self.pending.is_none() && self.windows < MAX_WINDOWS_PER_RUN {
            self.pending = Some((cycle, reason));
        }
    }

    fn dump_window(&mut self, trigger: u64, reason: &'static str) {
        self.pending = None;
        self.windows += 1;
        counter_add("sim.waveform_windows", 1);
        let samples = self.ring.snapshot();
        let mut raw = String::with_capacity(samples.len() * 24 + 2);
        raw.push('[');
        for (i, s) in samples.iter().enumerate() {
            if i > 0 {
                raw.push(',');
            }
            let _ = write!(
                raw,
                "[{},{},{}]",
                s.cycle,
                s.current.amps(),
                s.noise.volts()
            );
        }
        raw.push(']');
        Event::sim("waveform", self.app, trigger)
            .str_field("trigger", reason)
            .u64_field("samples_len", samples.len() as u64)
            .raw_field("samples", &raw)
            .emit();
    }

    /// Flushes a still-pending window (a trigger near the end of the run)
    /// with whatever context the ring holds. Call once after the run.
    pub fn finish(&mut self) {
        if !self.enabled {
            return;
        }
        if let Some((trigger, reason)) = self.pending {
            self.dump_window(trigger, reason);
        }
    }
}

// ---------------------------------------------------------------------------
// JSON-lines parsing and schema validation
// ---------------------------------------------------------------------------

/// A parsed JSON value, as produced by [`parse_json`]. Only what the trace
/// tooling needs: no number-precision guarantees beyond `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key of an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(x) => Some(*x),
            _ => None,
        }
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected byte '{}' at {}",
                char::from(other),
                self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("malformed literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "non-ascii \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape '{hex}'"))?;
                            // Surrogates are not produced by our emitter;
                            // map unpaired ones to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str upstream).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let ch = rest.chars().next().ok_or("unterminated string")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid utf-8 in number".to_string())?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("malformed number '{text}'"))
    }
}

/// Parses one JSON document (as emitted on a trace line).
///
/// # Errors
///
/// Returns a byte-positioned description of the first syntax error, or of
/// trailing garbage after the document.
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let mut parser = JsonParser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing garbage at byte {}", parser.pos));
    }
    Ok(value)
}

/// Validates one trace line against the event-log schema: it must parse as
/// a JSON object carrying a string `kind` and either a numeric `cycle`
/// (with a string `app` — simulation events) or a numeric `wall` (engine
/// events).
///
/// # Errors
///
/// Returns what is malformed or missing.
pub fn validate_line(line: &str) -> Result<(), String> {
    let value = parse_json(line)?;
    if !matches!(value, JsonValue::Object(_)) {
        return Err("event is not a JSON object".to_string());
    }
    if value.get("kind").and_then(JsonValue::as_str).is_none() {
        return Err("event lacks a string 'kind'".to_string());
    }
    let cycle = value.get("cycle").and_then(JsonValue::as_f64);
    let wall = value.get("wall").and_then(JsonValue::as_f64);
    match (cycle, wall) {
        (None, None) => Err("event carries neither 'cycle' nor 'wall'".to_string()),
        (Some(_), _) if value.get("app").and_then(JsonValue::as_str).is_none() => {
            Err("cycle-stamped event lacks a string 'app'".to_string())
        }
        _ => Ok(()),
    }
}

/// Emits the cycle-stamped `fault-armed` events for the specs injected into
/// one run — called by the supervised runner before the simulation starts,
/// so the trace shows what was armed even when the fault kills the run.
pub(crate) fn note_armed_faults(app: &str, specs: &[crate::fault::FaultSpec]) {
    if specs.is_empty() || !trace_enabled() {
        return;
    }
    for spec in specs {
        counter_add("sim.faults_armed", 1);
        Event::sim("fault-armed", app, 0)
            .str_field("class", spec.class())
            .emit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlc::units::Amps;

    /// Global-sink tests must not interleave; reuse the env lock that
    /// already serializes environment-sensitive tests.
    fn with_trace_buffer(f: impl FnOnce(&TraceBuffer)) {
        crate::testenv::with_env(&[("RESTUNE_TRACE", None)], || {
            let buffer = TraceBuffer::new();
            buffer.install();
            f(&buffer);
            disable_trace();
        });
    }

    #[test]
    fn mode_parsing() {
        assert_eq!(mode_from_env(None), TraceMode::Off);
        assert_eq!(mode_from_env(Some("")), TraceMode::Off);
        assert_eq!(mode_from_env(Some("0")), TraceMode::Off);
        assert_eq!(mode_from_env(Some("off")), TraceMode::Off);
        assert_eq!(mode_from_env(Some("wire")), TraceMode::Wire);
        assert_eq!(
            mode_from_env(Some("/tmp/t.jsonl")),
            TraceMode::File(std::path::PathBuf::from("/tmp/t.jsonl"))
        );
    }

    #[test]
    fn events_are_schema_valid_and_escaped() {
        with_trace_buffer(|buffer| {
            Event::sim("detector-fire", "gzip", 42)
                .u64_field("count", 3)
                .f64_field("current_amps", 82.5)
                .emit();
            Event::engine("warn")
                .str_field("message", "weird \"quote\"\nand newline")
                .f64_field("bad", f64::NAN)
                .emit();
            let lines = buffer.lines();
            assert_eq!(lines.len(), 2);
            for line in &lines {
                validate_line(line).unwrap_or_else(|e| panic!("{e}: {line}"));
            }
            let first = parse_json(&lines[0]).unwrap();
            assert_eq!(
                first.get("kind").and_then(JsonValue::as_str),
                Some("detector-fire")
            );
            assert_eq!(first.get("cycle").and_then(JsonValue::as_f64), Some(42.0));
            assert_eq!(first.get("count").and_then(JsonValue::as_f64), Some(3.0));
            let second = parse_json(&lines[1]).unwrap();
            assert_eq!(
                second.get("message").and_then(JsonValue::as_str),
                Some("weird \"quote\"\nand newline")
            );
            assert_eq!(second.get("bad"), Some(&JsonValue::Null));
        });
    }

    #[test]
    fn disabled_tracing_emits_nothing() {
        with_trace_buffer(|buffer| {
            disable_trace();
            Event::sim("violation", "mcf", 7).emit();
            assert!(buffer.lines().is_empty());
            assert!(!trace_enabled());
        });
    }

    #[test]
    fn counters_accumulate_and_drain() {
        with_trace_buffer(|_| {
            let _ = take_counters();
            counter_add("test.a", 2);
            counter_add("test.a", 3);
            counter_add("test.b", 1);
            let snap = snapshot_counters();
            assert!(snap.contains(&("test.a".to_string(), 5)));
            assert!(snap.contains(&("test.b".to_string(), 1)));
            let taken = take_counters();
            assert_eq!(taken, snap);
            assert!(snapshot_counters().is_empty());
        });
    }

    #[test]
    fn forwarding_buffers_and_absorbs() {
        crate::testenv::with_env(&[("RESTUNE_TRACE", None)], || {
            let _ = take_counters();
            // Simulate the worker side: a forwarding sink.
            {
                let mut state = SINK.lock().unwrap();
                *state = SinkState::Forward(Vec::new());
            }
            ENABLED.store(true, Ordering::Relaxed);
            Event::sim("violation", "swim", 9)
                .f64_field("noise_volts", -0.06)
                .emit();
            counter_add("sim.violation_episodes", 1);
            let (counters, lines) = take_forwarded().expect("forward mode");
            assert_eq!(lines.len(), 1);
            assert_eq!(counters, vec![("sim.violation_episodes".to_string(), 1)]);
            assert!(take_forwarded().expect("still forwarding").1.is_empty());

            // Simulate the parent side: absorb into a buffer sink.
            let buffer = TraceBuffer::new();
            buffer.install();
            counter_add("sim.violation_episodes", 2);
            absorb_forwarded(&counters, &lines);
            assert_eq!(buffer.lines(), lines);
            assert!(snapshot_counters().contains(&("sim.violation_episodes".to_string(), 3)));
            assert!(take_forwarded().is_none(), "buffer sink does not forward");
            let _ = take_counters();
            disable_trace();
        });
    }

    #[test]
    fn file_sink_writes_lines() {
        crate::testenv::with_env(&[("RESTUNE_TRACE", None)], || {
            let path =
                std::env::temp_dir().join(format!("restune_obs_file_{}.jsonl", std::process::id()));
            trace_to_file(&path).unwrap();
            Event::engine("suite-start")
                .str_field("scope", "base")
                .emit();
            finish_trace();
            disable_trace();
            let body = std::fs::read_to_string(&path).unwrap();
            assert!(body.lines().count() >= 1);
            for line in body.lines() {
                validate_line(line).unwrap();
            }
            let _ = std::fs::remove_file(&path);
        });
    }

    #[test]
    fn tracer_detects_edges_and_dumps_windows() {
        use cpusim::CycleEvents;
        with_trace_buffer(|buffer| {
            let mut tracer = CycleTracer::new("testapp", "tuning", Volts::new(0.05));
            let record =
                |cycle: u64, noise: f64, count: Option<u32>, restricted: bool| CycleRecord {
                    cycle,
                    current: Amps::new(70.0 + cycle as f64 * 0.01),
                    noise: Volts::new(noise),
                    event_count: count,
                    restricted,
                    events: CycleEvents::default(),
                };
            for c in 0..200u64 {
                let noise = if (150..=160).contains(&c) { 0.08 } else { 0.01 };
                let count = if c == 100 { Some(2) } else { None };
                let restricted = (100..140).contains(&c);
                tracer.observe(&record(c, noise, count, restricted));
            }
            tracer.finish();

            let lines = buffer.lines();
            for line in &lines {
                validate_line(line).unwrap_or_else(|e| panic!("{e}: {line}"));
            }
            let kinds: Vec<String> = lines
                .iter()
                .map(|l| {
                    parse_json(l)
                        .unwrap()
                        .get("kind")
                        .and_then(JsonValue::as_str)
                        .unwrap()
                        .to_string()
                })
                .collect();
            for expected in [
                "run-start",
                "detector-fire",
                "response-enter",
                "response-exit",
                "violation",
                "waveform",
            ] {
                assert!(
                    kinds.iter().any(|k| k == expected),
                    "missing {expected}: {kinds:?}"
                );
            }
            // The detector window dumps once its post-trigger context is in;
            // the violation at 150 arms a second window.
            let waveforms: Vec<&String> = lines
                .iter()
                .filter(|l| l.contains("\"kind\":\"waveform\""))
                .collect();
            assert_eq!(waveforms.len(), 2, "one window per trigger");
            let wf = parse_json(waveforms[0]).unwrap();
            assert_eq!(
                wf.get("trigger").and_then(JsonValue::as_str),
                Some("detector-fire")
            );
            let JsonValue::Array(samples) = wf.get("samples").unwrap() else {
                panic!("samples must be an array");
            };
            assert!(!samples.is_empty());
            // Samples are chronological [cycle, current, noise] triples
            // ending at (or after) the trigger cycle.
            let JsonValue::Array(first) = &samples[0] else {
                panic!("sample must be a triple");
            };
            assert_eq!(first.len(), 3);
            let cycles: Vec<f64> = samples
                .iter()
                .map(|s| match s {
                    JsonValue::Array(t) => t[0].as_f64().unwrap(),
                    _ => panic!("sample must be a triple"),
                })
                .collect();
            assert!(cycles.windows(2).all(|w| w[0] < w[1]), "chronological");
            assert!(cycles.iter().any(|&c| c >= 100.0), "covers the trigger");
            assert!(cycles.iter().any(|&c| c < 100.0), "has pre-trigger context");
        });
    }

    #[test]
    fn tracer_caps_windows_per_run() {
        use cpusim::CycleEvents;
        with_trace_buffer(|buffer| {
            let mut tracer = CycleTracer::new("testapp", "base", Volts::new(0.05));
            // Violation episodes every 200 cycles, far more than the cap.
            for c in 0..((MAX_WINDOWS_PER_RUN as u64 + 6) * 200) {
                let noise = if c % 200 < 3 { 0.09 } else { 0.0 };
                tracer.observe(&CycleRecord {
                    cycle: c,
                    current: Amps::new(70.0),
                    noise: Volts::new(noise),
                    event_count: None,
                    restricted: false,
                    events: CycleEvents::default(),
                });
            }
            tracer.finish();
            let windows = buffer
                .lines()
                .iter()
                .filter(|l| l.contains("\"kind\":\"waveform\""))
                .count();
            assert_eq!(windows as u32, MAX_WINDOWS_PER_RUN);
        });
    }

    #[test]
    fn json_parser_round_trips_tricky_documents() {
        let doc = r#"{"kind":"x","wall":1.5e-3,"neg":-2,"arr":[[1,2.5,-3e2],[]],"s":"a\"b\\c\ndA","t":true,"n":null}"#;
        let v = parse_json(doc).unwrap();
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some("a\"b\\c\ndA"));
        assert_eq!(v.get("neg").and_then(JsonValue::as_f64), Some(-2.0));
        assert_eq!(v.get("t"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("n"), Some(&JsonValue::Null));
        let JsonValue::Array(arr) = v.get("arr").unwrap() else {
            panic!("arr");
        };
        assert_eq!(arr.len(), 2);

        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "{\"a\":1} trailing",
            "\"unterminated",
            "{\"a\" 1}",
            "nul",
        ] {
            assert!(parse_json(bad).is_err(), "must reject: {bad}");
        }
    }

    #[test]
    fn schema_validation_rules() {
        assert!(validate_line(r#"{"kind":"warn","wall":0.5}"#).is_ok());
        assert!(validate_line(r#"{"kind":"violation","app":"swim","cycle":9}"#).is_ok());
        // Not an object.
        assert!(validate_line("[1,2]").is_err());
        // Missing kind.
        assert!(validate_line(r#"{"app":"swim","cycle":9}"#).is_err());
        // Neither cycle nor wall.
        assert!(validate_line(r#"{"kind":"x","app":"swim"}"#).is_err());
        // Cycle-stamped without app.
        assert!(validate_line(r#"{"kind":"x","cycle":9}"#).is_err());
        // Unparsable.
        assert!(validate_line("not json").is_err());
    }
}
