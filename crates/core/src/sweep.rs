//! Declarative parameter-grid sweeps over the technique × PDN × workload
//! space, backed by a content-addressed store of individual run results.
//!
//! A [`GridSpec`] names the axes — workload classes (the synthetic SPEC2K
//! profiles and the RISC-V corpus), PDN inductance scales, tuning response
//! times, sensor thresholds, damping deltas — and expands into one suite
//! per (class, PDN, technique) point. Every *individual application run*
//! inside those suites is keyed by a [`CacheKey`] (64-bit FNV-1a
//! fingerprint plus the full config identity string, verified on read) and
//! persisted in a [`RunStore`] under `store/` in the baseline cache
//! directory, so overlapping sweeps share every common run: a second sweep
//! that widens one axis re-simulates only the new points.
//!
//! Execution routes through [`run_suite_supervised`], so sweeps inherit
//! the whole supervision stack — watchdogs, retries, checkpoint/resume
//! (an interrupted sweep resumes bit-identically), lane parallelism, and
//! `--connect` mesh offload — without any sweep-specific scheduling. Each
//! (class, PDN) group finally reports its Pareto frontier over (violation
//! cycles, slowdown, energy-delay); because every execution path is
//! bit-exact, the frontier is byte-identical however the runs were
//! produced.

use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

use rlc::params::SupplyParams;
use rlc::units::Henries;
use workloads::{corpus, spec2k, WorkloadProfile};

use crate::baselines::{DampingConfig, SensorConfig};
use crate::config::{RunPolicy, TuningConfig};
use crate::engine::{
    atomic_write, baseline_cache_dir, crc_line, discard_stale, run_suite_supervised,
    split_crc_line, warn_identity_mismatch, CacheKey,
};
use crate::metrics::{RelativeOutcome, Summary};
use crate::obs;
use crate::sim::{SimConfig, SimResult, Technique};

/// Bumped when the run-store row format or the meaning of a stored run
/// changes; stale files are discarded on read.
const RUN_SCHEMA: u32 = 1;

/// Default size bound of the run store (256 MiB).
const STORE_MAX_BYTES: u64 = 256 * 1024 * 1024;

/// Default age past which an untouched store record is evicted (30 days).
const STORE_MAX_AGE: Duration = Duration::from_secs(30 * 24 * 3600);

/// [`CacheKey`] of one application run: the workload profile, the technique
/// (with its full config), and the machine configuration. The `Debug`
/// representations include every field recursively, so any parameter change
/// yields a new fingerprint.
pub fn run_key(profile: &WorkloadProfile, technique: &Technique, sim: &SimConfig) -> CacheKey {
    CacheKey::from_identity(format!(
        "run-v{RUN_SCHEMA}|{profile:?}|{technique:?}|{sim:?}"
    ))
}

/// What [`RunStore::evict`] removed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvictStats {
    /// Records removed.
    pub files: u64,
    /// Bytes reclaimed.
    pub bytes: u64,
}

/// A content-addressed store of individual run results: one small TSV file
/// per (profile, technique, machine) point, named by fingerprint, carrying
/// the full identity string and per-line CRC32s.
///
/// The store generalizes the recorded-baseline cache from whole base
/// suites to *every* run a sweep produces. Its integrity contract matches
/// the other cache planes: a fingerprint hit whose stored identity differs
/// (a 64-bit collision) is a miss with an `obs::warn`, never a silent
/// wrong-result reuse, and the colliding file — valid for its own
/// configuration — is left in place. Torn or damaged records are deleted
/// and re-simulated. Writes are crash-consistent (`atomic_write`).
#[derive(Debug, Clone)]
pub struct RunStore {
    dir: PathBuf,
}

impl RunStore {
    /// A store rooted at `dir` (created lazily on first put).
    pub fn open(dir: PathBuf) -> RunStore {
        RunStore { dir }
    }

    /// The default store: `store/` under the baseline cache directory
    /// (`$RESTUNE_CACHE_DIR` or `target/restune-cache`).
    pub fn open_default() -> RunStore {
        RunStore::open(baseline_cache_dir().join("store"))
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, fingerprint: u64) -> PathBuf {
        self.dir.join(format!("run-{fingerprint:016x}.tsv"))
    }

    fn header(key: &CacheKey) -> String {
        format!("restune-run v{RUN_SCHEMA} fp={:016x}", key.fingerprint)
    }

    /// Looks up the stored result for `key`, verifying the fingerprint,
    /// the full identity string, and the row CRC. Every outcome bumps the
    /// `store.hits` / `store.misses` counters; an identity mismatch also
    /// bumps `store.identity_mismatches`.
    pub fn get(&self, key: &CacheKey) -> Option<SimResult> {
        let result = self.read(key);
        let counter = if result.is_some() {
            "store.hits"
        } else {
            "store.misses"
        };
        obs::counter_add(counter, 1);
        result
    }

    fn read(&self, key: &CacheKey) -> Option<SimResult> {
        let path = self.path_for(key.fingerprint);
        let text = std::fs::read_to_string(&path).ok()?;
        let mut lines = text.lines();
        if lines.next() != Some(Self::header(key).as_str()) {
            discard_stale(&path, "stale or corrupt run record");
            return None;
        }
        match lines.next().and_then(split_crc_line) {
            Some((core, true)) => match core.strip_prefix("id=") {
                Some(identity) if identity == key.identity => {}
                Some(identity) => {
                    warn_identity_mismatch("store", &path, &key.identity, identity);
                    return None;
                }
                None => {
                    discard_stale(&path, "run record missing its identity row");
                    return None;
                }
            },
            _ => {
                discard_stale(&path, "run record with a torn or damaged identity row");
                return None;
            }
        }
        let row = lines
            .next()
            .and_then(split_crc_line)
            .and_then(|(core, intact)| intact.then(|| crate::engine::parse_row(core))?);
        if row.is_none() {
            discard_stale(&path, "run record with a torn or damaged result row");
        }
        row
    }

    /// Records `result` under `key`, crash-consistently.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn put(&self, key: &CacheKey, result: &SimResult) -> io::Result<()> {
        let mut body = Self::header(key);
        body.push('\n');
        body.push_str(&crc_line(&format!("id={}", key.identity)));
        body.push('\n');
        body.push_str(&crc_line(&crate::engine::result_row(result)));
        body.push('\n');
        atomic_write(&self.path_for(key.fingerprint), body.as_bytes())
    }

    /// Bounds the store: removes records untouched for longer than
    /// `RESTUNE_STORE_MAX_AGE_SECS` (default 30 days), then — oldest first —
    /// until the store fits in `RESTUNE_STORE_MAX_BYTES` (default 256 MiB).
    /// Evictions are surfaced on the `store.evictions` counter. Called
    /// automatically at the end of every [`run_sweep`]; without a bound,
    /// a long-lived cache directory would accumulate every run any sweep
    /// ever produced.
    pub fn evict(&self) -> EvictStats {
        let max_age = crate::envcfg::positive_f64(
            "RESTUNE_STORE_MAX_AGE_SECS",
            "store",
            "the 30-day default store age bound",
        )
        .map(Duration::from_secs_f64)
        .unwrap_or(STORE_MAX_AGE);
        let max_bytes = crate::envcfg::positive_usize(
            "RESTUNE_STORE_MAX_BYTES",
            "store",
            "the 256 MiB default store size bound",
        )
        .map(|b| b as u64)
        .unwrap_or(STORE_MAX_BYTES);

        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return EvictStats::default();
        };
        // (modified, name, path, len) — name breaks mtime ties so the
        // eviction order is deterministic even for records written within
        // one filesystem timestamp granule.
        let mut records = Vec::new();
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str().map(str::to_string) else {
                continue;
            };
            if !(name.starts_with("run-") && name.ends_with(".tsv")) {
                continue;
            }
            let Ok(meta) = entry.metadata() else { continue };
            let Ok(modified) = meta.modified() else {
                continue;
            };
            records.push((modified, name, entry.path(), meta.len()));
        }
        records.sort();

        let mut stats = EvictStats::default();
        let mut total: u64 = records.iter().map(|(_, _, _, len)| len).sum();
        for (modified, _, path, len) in &records {
            let expired = modified.elapsed().is_ok_and(|age| age > max_age);
            if !(expired || total > max_bytes) {
                continue;
            }
            if std::fs::remove_file(path).is_ok() {
                stats.files += 1;
                stats.bytes += len;
                total -= len;
            }
        }
        if stats.files > 0 {
            obs::counter_add("store.evictions", stats.files);
        }
        stats
    }
}

/// A workload class a sweep can cover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadClass {
    /// The synthetic SPEC2K profile suite.
    Spec2k,
    /// The RISC-V real-program corpus.
    Corpus,
}

impl WorkloadClass {
    /// The class name used in grid specs and reports.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadClass::Spec2k => "spec2k",
            WorkloadClass::Corpus => "corpus",
        }
    }

    /// Every profile in the class, in suite order.
    pub fn profiles(self) -> Vec<WorkloadProfile> {
        match self {
            WorkloadClass::Spec2k => spec2k::all(),
            WorkloadClass::Corpus => corpus::all(),
        }
    }

    fn parse(raw: &str) -> Result<WorkloadClass, String> {
        match raw {
            "spec2k" => Ok(WorkloadClass::Spec2k),
            "corpus" => Ok(WorkloadClass::Corpus),
            other => Err(format!(
                "unknown workload class '{other}' (expected spec2k or corpus)"
            )),
        }
    }
}

/// One sensor design point: `THRESHOLD_MV:NOISE_MV:DELAY` in a grid spec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorPoint {
    /// Detection threshold in millivolts below nominal.
    pub threshold_mv: f64,
    /// Sensor noise floor in millivolts.
    pub noise_mv: f64,
    /// Sensing-to-response delay in cycles.
    pub delay: u32,
}

/// The declarative axes of one sweep. Parsed from repeatable
/// `--grid KEY=VALUE` arguments; every unset axis keeps its default, and
/// the cross product of all axes is the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSpec {
    /// Workload classes to cover (`workloads=spec2k,corpus`).
    pub workloads: Vec<WorkloadClass>,
    /// PDN inductance scale factors (`pdn=1.0,1.5`); 1.0 is the paper's
    /// Table 1 network, exactly.
    pub pdn_scales: Vec<f64>,
    /// Tuning initial response times in cycles (`tuning=75,100`).
    pub tuning: Vec<u32>,
    /// Sensor design points (`sensor=THR:NOISE:DELAY,..`).
    pub sensor: Vec<SensorPoint>,
    /// Damping deltas relative to Table 5 (`damping=0.5,1.0`).
    pub damping: Vec<f64>,
    /// Committed instructions per run (`instructions=N`).
    pub instructions: u64,
}

impl GridSpec {
    /// Parses `KEY=VALUE` pairs into a spec, starting from the defaults
    /// (spec2k, the paper's PDN, tuning at 100 cycles,
    /// `default_instructions`).
    ///
    /// # Errors
    ///
    /// Returns a one-line description of the first malformed pair — an
    /// unknown key, an unparseable value, or a PDN scale that produces an
    /// invalid (non-underdamped) supply network.
    pub fn parse(
        pairs: &[(String, String)],
        default_instructions: u64,
    ) -> Result<GridSpec, String> {
        let mut spec = GridSpec {
            workloads: vec![WorkloadClass::Spec2k],
            pdn_scales: vec![1.0],
            tuning: vec![100],
            sensor: Vec::new(),
            damping: Vec::new(),
            instructions: default_instructions,
        };
        for (key, value) in pairs {
            if value.is_empty() {
                return Err(format!("grid axis '{key}' has an empty value"));
            }
            match key.as_str() {
                "workloads" => {
                    spec.workloads = split_list(value, WorkloadClass::parse)?;
                }
                "pdn" => {
                    spec.pdn_scales = split_list(value, |v| {
                        let scale = parse_positive_f64(v, "PDN scale")?;
                        // Validate eagerly: a scale that breaks the
                        // underdamped invariant should fail at parse time,
                        // not halfway through a sweep.
                        sim_for(scale, spec.instructions)?;
                        Ok(scale)
                    })?;
                }
                "tuning" => {
                    spec.tuning = split_list(value, |v| {
                        v.parse::<u32>()
                            .ok()
                            .filter(|&t| t > 0)
                            .ok_or_else(|| format!("invalid tuning response time '{v}'"))
                    })?;
                }
                "sensor" => {
                    spec.sensor = split_list(value, parse_sensor_point)?;
                }
                "damping" => {
                    spec.damping = split_list(value, |v| parse_positive_f64(v, "damping delta"))?;
                }
                "instructions" => {
                    spec.instructions = value
                        .parse::<u64>()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| format!("invalid instruction count '{value}'"))?;
                }
                other => {
                    return Err(format!(
                        "unknown grid axis '{other}' (expected workloads, pdn, tuning, \
                         sensor, damping, or instructions)"
                    ));
                }
            }
        }
        Ok(spec)
    }

    /// Every technique point in the spec, labeled: the base machine plus
    /// one point per tuning / sensor / damping configuration.
    pub fn technique_points(&self) -> Vec<(String, Technique)> {
        let mut points = vec![(String::from("base"), Technique::Base)];
        for &t in &self.tuning {
            points.push((
                format!("tuning[{t}]"),
                Technique::Tuning(TuningConfig::isca04_table1(t)),
            ));
        }
        for s in &self.sensor {
            points.push((
                format!("sensor[{}:{}:{}]", s.threshold_mv, s.noise_mv, s.delay),
                Technique::Sensor(SensorConfig::table4(s.threshold_mv, s.noise_mv, s.delay)),
            ));
        }
        for &d in &self.damping {
            points.push((
                format!("damping[{d}]"),
                Technique::Damping(DampingConfig::isca04_table5(d)),
            ));
        }
        points
    }
}

fn split_list<T>(value: &str, parse: impl Fn(&str) -> Result<T, String>) -> Result<Vec<T>, String> {
    let items: Vec<T> = value
        .split(',')
        .map(str::trim)
        .filter(|v| !v.is_empty())
        .map(parse)
        .collect::<Result<_, _>>()?;
    if items.is_empty() {
        return Err(String::from("a grid axis needs at least one value"));
    }
    Ok(items)
}

fn parse_positive_f64(raw: &str, what: &str) -> Result<f64, String> {
    raw.parse::<f64>()
        .ok()
        .filter(|v| v.is_finite() && *v > 0.0)
        .ok_or_else(|| format!("invalid {what} '{raw}' (need a positive number)"))
}

fn parse_sensor_point(raw: &str) -> Result<SensorPoint, String> {
    let mut fields = raw.split(':');
    let point = (|| {
        let threshold_mv = fields
            .next()?
            .parse::<f64>()
            .ok()
            .filter(|v| v.is_finite())?;
        let noise_mv = fields
            .next()?
            .parse::<f64>()
            .ok()
            .filter(|v| v.is_finite())?;
        let delay = fields.next()?.parse::<u32>().ok()?;
        fields.next().is_none().then_some(SensorPoint {
            threshold_mv,
            noise_mv,
            delay,
        })
    })();
    point.ok_or_else(|| format!("invalid sensor point '{raw}' (expected THR_MV:NOISE_MV:DELAY)"))
}

/// The machine configuration for one PDN scale: scale 1.0 is *exactly*
/// [`SimConfig::isca04`] (so those runs stay wire-encodable and can be
/// served by a `restuned` mesh); other scales multiply the Table 1 loop
/// inductance, moving the resonant frequency by `1/sqrt(scale)`.
///
/// # Errors
///
/// Returns the RLC validation error when the scaled network is no longer
/// underdamped.
pub fn sim_for(pdn_scale: f64, instructions: u64) -> Result<SimConfig, String> {
    let mut sim = SimConfig::isca04(instructions);
    if pdn_scale == 1.0 {
        return Ok(sim);
    }
    let base = sim.supply;
    sim.supply = SupplyParams::new(
        base.resistance(),
        Henries::from_pico(base.inductance().henries() * 1e12 * pdn_scale),
        base.capacitance(),
        base.vdd(),
        base.noise_margin(),
    )
    .map_err(|e| format!("PDN scale {pdn_scale}: {e}"))?;
    Ok(sim)
}

/// One evaluated sweep point: a technique on one (class, PDN) group,
/// summarized relative to that group's base machine.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Workload class name.
    pub class: &'static str,
    /// PDN inductance scale.
    pub pdn_scale: f64,
    /// Technique label (`base`, `tuning[100]`, ...).
    pub technique: String,
    /// Suite summary relative to the group's base machine (the base point
    /// summarizes against itself: slowdown 1.0, its own violations).
    pub summary: Summary,
    /// Whether the point is Pareto-optimal within its (class, PDN) group
    /// over (violation cycles, slowdown, energy-delay), all minimized.
    pub on_frontier: bool,
}

/// The result of one [`run_sweep`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// Every evaluated point, in deterministic grid order.
    pub points: Vec<SweepPoint>,
    /// Individual application runs the grid required.
    pub runs: u64,
    /// Runs served from the store.
    pub store_hits: u64,
    /// Runs that had to simulate.
    pub store_misses: u64,
    /// What the end-of-sweep eviction pass removed.
    pub evicted: EvictStats,
}

impl SweepOutcome {
    /// The Pareto-optimal points, in grid order.
    pub fn frontier(&self) -> Vec<&SweepPoint> {
        self.points.iter().filter(|p| p.on_frontier).collect()
    }

    /// Fraction of runs served from the store (0.0 for an empty sweep).
    pub fn hit_rate(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.store_hits as f64 / self.runs as f64
        }
    }
}

/// Expands `spec` and executes every point, sharing individual runs
/// through `store` and supervising suites with `policy` (so `--resume`
/// checkpointing, watchdogs, fault plans, lanes, and `--connect` all
/// apply). Emits `sweep-start` / `sweep-point` / `frontier-point` /
/// `sweep-end` trace events and finishes with a store eviction pass.
///
/// When the policy's fault plan carries result-perturbing faults the store
/// is bypassed entirely — perturbed results must never poison the clean
/// store, and clean records must never mask an injected fault.
///
/// # Errors
///
/// Returns a description of the first suite whose applications exhausted
/// their retries; previously completed suites stay in the store, and the
/// failed suite's completed applications stay in its checkpoint, so a
/// re-run resumes instead of restarting.
pub fn run_sweep(
    spec: &GridSpec,
    policy: &RunPolicy,
    store: &RunStore,
) -> Result<SweepOutcome, String> {
    let techniques = spec.technique_points();
    let groups = spec.workloads.len() * spec.pdn_scales.len();
    obs::Event::engine("sweep-start")
        .u64_field("groups", groups as u64)
        .u64_field("points", (groups * techniques.len()) as u64)
        .u64_field("instructions", spec.instructions)
        .emit();

    let use_store = !policy.plan.has_result_faults();
    let mut outcome = SweepOutcome {
        points: Vec::new(),
        runs: 0,
        store_hits: 0,
        store_misses: 0,
        evicted: EvictStats::default(),
    };

    for &class in &spec.workloads {
        let profiles = class.profiles();
        for &pdn_scale in &spec.pdn_scales {
            let sim = sim_for(pdn_scale, spec.instructions)?;
            let mut group = Vec::with_capacity(techniques.len());
            for (label, technique) in &techniques {
                let results = suite_results(
                    &profiles,
                    technique,
                    &sim,
                    policy,
                    store,
                    use_store,
                    &mut outcome,
                )
                .map_err(|e| format!("{}/pdn={pdn_scale}/{label}: {e}", class.name()))?;
                group.push((label.clone(), results));
            }
            let base = &group[0].1;
            let summaries: Vec<(String, Summary)> = group
                .iter()
                .map(|(label, results)| {
                    let outcomes: Vec<RelativeOutcome> = base
                        .iter()
                        .zip(results)
                        .map(|(b, r)| RelativeOutcome::new(b, r))
                        .collect();
                    (label.clone(), Summary::from_outcomes(&outcomes))
                })
                .collect();
            for (index, (label, summary)) in summaries.iter().enumerate() {
                let on_frontier = summaries
                    .iter()
                    .enumerate()
                    .all(|(other, (_, s))| other == index || !dominates(s, summary));
                let point = SweepPoint {
                    class: class.name(),
                    pdn_scale,
                    technique: label.clone(),
                    summary: *summary,
                    on_frontier,
                };
                emit_point("sweep-point", &point);
                if on_frontier {
                    // A frontier point is still a sweep point: both shapes
                    // are emitted so histograms count every point once.
                    emit_point("frontier-point", &point);
                }
                outcome.points.push(point);
            }
        }
    }

    outcome.evicted = store.evict();
    obs::Event::engine("sweep-end")
        .u64_field("points", outcome.points.len() as u64)
        .u64_field("frontier", outcome.frontier().len() as u64)
        .u64_field("store_hits", outcome.store_hits)
        .u64_field("store_misses", outcome.store_misses)
        .emit();
    Ok(outcome)
}

/// Strict Pareto dominance over (violations, slowdown, energy-delay), all
/// minimized: no worse on every axis, strictly better on at least one.
fn dominates(a: &Summary, b: &Summary) -> bool {
    let no_worse = a.total_violation_cycles <= b.total_violation_cycles
        && a.avg_slowdown <= b.avg_slowdown
        && a.avg_energy_delay <= b.avg_energy_delay;
    let better = a.total_violation_cycles < b.total_violation_cycles
        || a.avg_slowdown < b.avg_slowdown
        || a.avg_energy_delay < b.avg_energy_delay;
    no_worse && better
}

fn emit_point(kind: &str, point: &SweepPoint) {
    obs::Event::engine(kind)
        .str_field("class", point.class)
        .f64_field("pdn", point.pdn_scale)
        .str_field("technique", &point.technique)
        .u64_field("violations", point.summary.total_violation_cycles)
        .f64_field("slowdown", point.summary.avg_slowdown)
        .f64_field("energy_delay", point.summary.avg_energy_delay)
        .emit();
}

/// One suite's results in profile order: store-served where possible, the
/// missing subset simulated through [`run_suite_supervised`] and recorded.
#[allow(clippy::too_many_arguments)]
fn suite_results(
    profiles: &[WorkloadProfile],
    technique: &Technique,
    sim: &SimConfig,
    policy: &RunPolicy,
    store: &RunStore,
    use_store: bool,
    outcome: &mut SweepOutcome,
) -> Result<Vec<SimResult>, String> {
    let keys: Vec<CacheKey> = profiles
        .iter()
        .map(|p| run_key(p, technique, sim))
        .collect();
    outcome.runs += profiles.len() as u64;
    let mut results: Vec<Option<SimResult>> = if use_store {
        keys.iter().map(|k| store.get(k)).collect()
    } else {
        vec![None; profiles.len()]
    };
    if use_store {
        let hits = results.iter().filter(|r| r.is_some()).count() as u64;
        outcome.store_hits += hits;
        outcome.store_misses += profiles.len() as u64 - hits;
    } else {
        outcome.store_misses += profiles.len() as u64;
    }

    let missing: Vec<usize> = (0..profiles.len())
        .filter(|&i| results[i].is_none())
        .collect();
    if missing.is_empty() {
        return Ok(results.into_iter().flatten().collect());
    }
    let subset: Vec<WorkloadProfile> = missing.iter().map(|&i| profiles[i]).collect();
    let suite = run_suite_supervised(&subset, technique, sim, &policy.supervisor, &policy.plan);
    let Some(fresh) = suite.all_results() else {
        let failed: Vec<String> = suite
            .outcomes
            .iter()
            .filter_map(|o| o.as_ref().err())
            .map(|f| f.to_string())
            .collect();
        return Err(failed.join("; "));
    };
    for (&slot, result) in missing.iter().zip(fresh) {
        if use_store {
            if let Err(e) = store.put(&keys[slot], &result) {
                obs::warn(
                    "store",
                    &format!("cannot record run {:016x}: {e}", keys[slot].fingerprint),
                );
            }
        }
        results[slot] = Some(result);
    }
    Ok(results.into_iter().flatten().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testenv::with_env;

    fn pairs(raw: &[(&str, &str)]) -> Vec<(String, String)> {
        raw.iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn grid_parses_every_axis_and_rejects_nonsense() {
        let spec = GridSpec::parse(
            &pairs(&[
                ("workloads", "spec2k, corpus"),
                ("pdn", "1.0,1.5"),
                ("tuning", "75,100"),
                ("sensor", "10:2.5:5"),
                ("damping", "0.5"),
                ("instructions", "9000"),
            ]),
            120_000,
        )
        .expect("spec parses");
        assert_eq!(
            spec.workloads,
            vec![WorkloadClass::Spec2k, WorkloadClass::Corpus]
        );
        assert_eq!(spec.pdn_scales, vec![1.0, 1.5]);
        assert_eq!(spec.tuning, vec![75, 100]);
        assert_eq!(
            spec.sensor,
            vec![SensorPoint {
                threshold_mv: 10.0,
                noise_mv: 2.5,
                delay: 5
            }]
        );
        assert_eq!(spec.damping, vec![0.5]);
        assert_eq!(spec.instructions, 9_000);
        // base + 2 tuning + 1 sensor + 1 damping
        assert_eq!(spec.technique_points().len(), 5);

        for bad in [
            ("workloads", "spec9k"),
            ("pdn", "-1"),
            ("pdn", "0.0001"), // breaks the underdamped invariant
            ("tuning", "0"),
            ("sensor", "10:2.5"),
            ("instructions", "0"),
            ("orientation", "sideways"),
            ("pdn", ""),
        ] {
            let result = GridSpec::parse(&pairs(&[bad]), 120_000);
            assert!(result.is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn pdn_scale_one_is_exactly_the_paper_machine() {
        let sim = sim_for(1.0, 10_000).expect("scale 1.0 is valid");
        assert_eq!(
            sim,
            SimConfig::isca04(10_000),
            "wire-encodability depends on this"
        );
        let scaled = sim_for(2.0, 10_000).expect("scale 2.0 is valid");
        let ratio = scaled.supply.inductance().henries() / sim.supply.inductance().henries();
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn store_round_trips_and_treats_collisions_as_misses() {
        let dir = std::env::temp_dir().join(format!("restune-sweep-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = RunStore::open(dir.clone());
        let profile = spec2k::by_name("mcf").expect("mcf is in the suite");
        let sim = SimConfig::isca04(4_000);
        let result = crate::sim::run(&profile, &Technique::Base, &sim);
        let key = run_key(&profile, &Technique::Base, &sim);

        assert_eq!(store.get(&key), None, "empty store misses");
        store.put(&key, &result).expect("put succeeds");
        assert_eq!(store.get(&key), Some(result), "round trip is bit-exact");

        // A forced 64-bit collision: same fingerprint, different identity.
        // The impostor must miss (and count the mismatch) without evicting
        // the rightful owner's record.
        let impostor = CacheKey {
            fingerprint: key.fingerprint,
            identity: format!("{}|impostor", key.identity),
        };
        let mismatches_before = counter("store.identity_mismatches");
        assert_eq!(store.get(&impostor), None, "collision is a miss");
        assert_eq!(counter("store.identity_mismatches"), mismatches_before + 1);
        assert_eq!(store.get(&key), Some(result), "owner's record survives");

        // Damage is discarded, not trusted.
        let path = store.path_for(key.fingerprint);
        let body = std::fs::read_to_string(&path).expect("record exists");
        std::fs::write(&path, body.replace("id=", "xx=")).expect("damage lands");
        assert_eq!(store.get(&key), None, "damaged record misses");
        assert!(!path.exists(), "damaged record is deleted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_bounds_the_store_oldest_first() {
        let dir = std::env::temp_dir().join(format!("restune-sweep-evict-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = RunStore::open(dir.clone());
        let profile = spec2k::by_name("mcf").expect("mcf is in the suite");
        let sims: Vec<SimConfig> = (1..=3).map(|i| SimConfig::isca04(1_000 * i)).collect();
        for sim in &sims {
            let result = crate::sim::run(&profile, &Technique::Base, sim);
            store
                .put(&run_key(&profile, &Technique::Base, sim), &result)
                .expect("put succeeds");
        }

        // Generous bounds: nothing to evict.
        let kept = store.evict();
        assert_eq!(kept, EvictStats::default());

        // A one-byte size bound evicts everything, oldest first.
        let evicted = with_env(&[("RESTUNE_STORE_MAX_BYTES", Some("1"))], || store.evict());
        assert_eq!(evicted.files, 3, "all records exceed a 1-byte bound");
        assert!(evicted.bytes > 0);
        for sim in &sims {
            assert_eq!(store.get(&run_key(&profile, &Technique::Base, sim)), None);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn frontier_marks_exactly_the_nondominated_points() {
        let summary = |violations, slowdown, ed| Summary {
            avg_slowdown: slowdown,
            worst_slowdown: slowdown,
            worst_app: "mcf",
            apps_over_15_percent: 0,
            avg_energy_delay: ed,
            avg_first_level_fraction: 0.0,
            avg_second_level_fraction: 0.0,
            avg_sensor_response_fraction: 0.0,
            total_violation_cycles: violations,
        };
        let a = summary(100, 1.0, 1.0); // base: violations, no slowdown
        let b = summary(0, 1.05, 1.1); // clean but slower
        let c = summary(0, 1.08, 1.2); // dominated by b
        assert!(
            !dominates(&a, &b) && !dominates(&b, &a),
            "a and b trade off"
        );
        assert!(dominates(&b, &c));
        assert!(!dominates(&c, &b));
        assert!(!dominates(&b, &b), "a point never dominates itself");
    }

    fn counter(name: &str) -> u64 {
        obs::snapshot_counters()
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }
}
