//! Shared parsing for the `RESTUNE_*` tuning knobs.
//!
//! `RESTUNE_WORKERS`, `RESTUNE_BATCH`, and `RESTUNE_LANES` all follow the
//! same contract: a positive integer is honored, anything else warns once
//! per knob on stderr (through [`crate::obs::warn`], so the warning also
//! lands in the trace stream and warn counters) and falls back to the
//! knob's default. [`positive_usize`] is that contract in one place; the
//! callers keep their own defaults, clamps, and warn categories.

use std::collections::HashSet;
use std::sync::{Mutex, OnceLock};

/// Which knobs have already warned this process. Keyed by variable name so
/// each knob warns at most once — these parsers run on every simulation,
/// and a per-call warning would flood a suite.
fn warned() -> &'static Mutex<HashSet<&'static str>> {
    static WARNED: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    WARNED.get_or_init(|| Mutex::new(HashSet::new()))
}

/// Resets the warn-once registry so tests can observe the warning again.
#[cfg(test)]
pub(crate) fn reset_warnings() {
    warned().lock().unwrap().clear();
}

/// Reads environment variable `name` as a positive integer.
///
/// Returns `Some(n)` for a valid positive value, `None` when the variable
/// is unset **or** invalid; an invalid value additionally warns once per
/// process through `obs::warn` under `category`, naming `fallback_desc` as
/// what will be used instead.
pub(crate) fn positive_usize(
    name: &'static str,
    category: &'static str,
    fallback_desc: &str,
) -> Option<usize> {
    match std::env::var(name) {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n > 0 => Some(n),
            _ => {
                if warned().lock().unwrap().insert(name) {
                    crate::obs::warn(
                        category,
                        &format!(
                            "invalid {name}='{raw}' (need a positive integer); \
                             using {fallback_desc}"
                        ),
                    );
                }
                None
            }
        },
        Err(_) => None,
    }
}

/// Reads environment variable `name` as a positive, finite float (seconds,
/// typically). Same warn-once contract as [`positive_usize`].
pub(crate) fn positive_f64(
    name: &'static str,
    category: &'static str,
    fallback_desc: &str,
) -> Option<f64> {
    match std::env::var(name) {
        Ok(raw) => match raw.trim().parse::<f64>() {
            Ok(v) if v.is_finite() && v > 0.0 => Some(v),
            _ => {
                if warned().lock().unwrap().insert(name) {
                    crate::obs::warn(
                        category,
                        &format!(
                            "invalid {name}='{raw}' (need a positive number); \
                             using {fallback_desc}"
                        ),
                    );
                }
                None
            }
        },
        Err(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testenv::with_env;

    #[test]
    fn parses_positive_and_rejects_everything_else() {
        let cases: [(Option<&str>, Option<usize>); 6] = [
            (None, None),
            (Some("3"), Some(3)),
            (Some(" 64 "), Some(64)),
            (Some("0"), None),
            (Some("-2"), None),
            (Some("lots"), None),
        ];
        for (value, expected) in cases {
            let got = with_env(&[("RESTUNE_ENVCFG_TEST", value)], || {
                positive_usize("RESTUNE_ENVCFG_TEST", "engine", "the default")
            });
            assert_eq!(got, expected, "value {value:?}");
        }
    }

    #[test]
    fn float_knob_requires_positive_finite_values() {
        let cases: [(Option<&str>, Option<f64>); 7] = [
            (None, None),
            (Some("2.5"), Some(2.5)),
            (Some(" 30 "), Some(30.0)),
            (Some("0"), None),
            (Some("-1.5"), None),
            (Some("inf"), None),
            (Some("soon"), None),
        ];
        for (value, expected) in cases {
            let got = with_env(&[("RESTUNE_ENVCFG_F64_TEST", value)], || {
                positive_f64("RESTUNE_ENVCFG_F64_TEST", "server", "the default")
            });
            assert_eq!(got, expected, "value {value:?}");
        }
    }

    #[test]
    fn warns_once_per_knob() {
        reset_warnings();
        let warn_count = || {
            crate::obs::snapshot_counters()
                .into_iter()
                .find(|(name, _)| name == "warn.engine")
                .map(|(_, v)| v)
                .unwrap_or(0)
        };
        with_env(&[("RESTUNE_ENVCFG_WARN_TEST", Some("nope"))], || {
            let before = warn_count();
            let _ = positive_usize("RESTUNE_ENVCFG_WARN_TEST", "engine", "the default");
            let after_first = warn_count();
            let _ = positive_usize("RESTUNE_ENVCFG_WARN_TEST", "engine", "the default");
            let after_second = warn_count();
            assert_eq!(after_first, before + 1, "first invalid read warns");
            assert_eq!(after_second, after_first, "second read is silent");
        });
    }
}
