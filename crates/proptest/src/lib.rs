//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the subset of proptest's API its property tests use: the [`proptest!`]
//! macro, `prop_assert*` / `prop_assume!`, range and tuple strategies,
//! [`any`], `option::of`, and [`Strategy::prop_map`]. Cases are sampled
//! from a generator seeded deterministically from the test name, so runs
//! are reproducible; there is no shrinking — a failing case panics with
//! the sampled values' debug representation instead.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};
use std::ops::{Range, RangeInclusive};

/// Runner configuration (the `cases` subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// The deterministic case generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seeds a generator from a test's name so each property gets a
    /// stable, distinct stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            inner: StdRng::seed_from_u64(h),
        }
    }
}

/// A value generator: the sampling core of proptest's `Strategy`.
pub trait Strategy {
    /// The type of the generated values.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: std::fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: std::fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, usize, i32, i64, f64);

macro_rules! impl_tuple_strategies {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategies! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.inner.gen_bool(0.5)
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.inner.gen()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.inner.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, spanning several orders of magnitude.
        let mag: f64 = rng.inner.gen_range(0.0..1.0);
        let exp: f64 = rng.inner.gen_range(-8.0..8.0);
        let v = mag * 10f64.powf(exp);
        if rng.inner.gen_bool(0.5) {
            v
        } else {
            -v
        }
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategies over `Option`.
pub mod option {
    use super::{Strategy, TestRng};
    use rand::Rng as _;

    /// The strategy returned by [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.inner.gen_bool(0.5) {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }

    /// Yields `None` half the time and a value of `inner` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

/// Strategies over collections.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng as _;
    use std::ops::Range;

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.inner.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Yields a `Vec` whose length is drawn from `len` and whose elements
    /// are drawn independently from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
    };

    /// Namespaced strategy combinators (`prop::option::of`,
    /// `prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Asserts a condition inside a property, reporting the formatted message
/// on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Skips the current case when its sampled inputs are not interesting.
/// Expands to `continue` in the per-case loop generated by [`proptest!`].
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat_param in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(stringify!($name));
            for _ in 0..__config.cases {
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)*
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u32..10, y in 0.25..0.75f64, z in 5u64..=6) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.25..0.75).contains(&y));
            prop_assert!(z == 5 || z == 6, "z = {z}");
        }

        #[test]
        fn tuples_and_maps_compose(
            pair in (1u32..5, 0.0..1.0f64).prop_map(|(n, f)| (n * 2, f / 2.0)),
            opt in prop::option::of(1u32..3),
        ) {
            prop_assert!(pair.0 % 2 == 0);
            prop_assert!(pair.1 < 0.5);
            if let Some(v) = opt {
                prop_assert_eq!(v.min(2), v);
            }
        }

        #[test]
        fn assume_skips_cases(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::deterministic("t");
        let mut b = crate::TestRng::deterministic("t");
        let s = 0u32..1000;
        for _ in 0..100 {
            assert_eq!(
                crate::Strategy::generate(&s, &mut a),
                crate::Strategy::generate(&s, &mut b)
            );
        }
    }

    #[test]
    fn any_produces_varied_values() {
        let mut rng = crate::TestRng::deterministic("any");
        let bools: Vec<bool> = (0..64)
            .map(|_| crate::Arbitrary::arbitrary(&mut rng))
            .collect();
        assert!(bools.iter().any(|&b| b) && bools.iter().any(|&b| !b));
        let a: u64 = crate::Arbitrary::arbitrary(&mut rng);
        let b: u64 = crate::Arbitrary::arbitrary(&mut rng);
        assert_ne!(a, b);
    }
}
