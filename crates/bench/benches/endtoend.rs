//! Criterion end-to-end benchmarks: the full integrated simulation loop
//! (CPU + power model + supply + controller) per technique — the cost of
//! regenerating one application-run of the paper's tables.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use restune::{run, DampingConfig, SensorConfig, SimConfig, Technique, TuningConfig};
use workloads::spec2k;

const INSTRUCTIONS: u64 = 20_000;

fn bench_full_loop(c: &mut Criterion) {
    let parser = spec2k::by_name("parser").expect("parser is in the suite");
    let sim = SimConfig::isca04(INSTRUCTIONS);
    let mut g = c.benchmark_group("endtoend");
    g.throughput(Throughput::Elements(INSTRUCTIONS));
    g.sample_size(10);

    let techniques: Vec<(&str, Technique)> = vec![
        ("base", Technique::Base),
        (
            "tuning",
            Technique::Tuning(TuningConfig::isca04_table1(100)),
        ),
        (
            "sensor",
            Technique::Sensor(SensorConfig::table4(20.0, 10.0, 5)),
        ),
        (
            "damping",
            Technique::Damping(DampingConfig::isca04_table5(0.5)),
        ),
    ];
    for (name, technique) in &techniques {
        g.bench_function(format!("parser_20k_{name}"), |b| {
            b.iter(|| black_box(run(&parser, technique, &sim)).cycles)
        });
    }
    g.finish();
}

criterion_group!(benches, bench_full_loop);
criterion_main!(benches);
