//! Criterion microbenchmarks of the per-cycle hot paths: the supply
//! integrator, the resonance detector, the CPU core, and the power model.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use cpusim::isa::LoopStream;
use cpusim::{Cpu, CpuConfig, CycleEvents, PipelineControls, SynthInst};
use powermodel::{PowerConfig, PowerModel};
use restune::{EventDetector, TuningConfig};
use rlc::units::{Amps, Hertz};
use rlc::{PowerSupply, SupplyParams};

const CYCLES: u64 = 10_000;

fn bench_supply_tick(c: &mut Criterion) {
    let mut g = c.benchmark_group("supply");
    g.throughput(Throughput::Elements(CYCLES));
    g.bench_function("heun_tick_10k", |b| {
        b.iter(|| {
            let mut s = PowerSupply::new(
                SupplyParams::isca04_table1(),
                Hertz::from_giga(10.0),
                Amps::new(70.0),
            );
            for k in 0..CYCLES {
                let i = if (k / 50).is_multiple_of(2) {
                    90.0
                } else {
                    50.0
                };
                black_box(s.tick(Amps::new(i)));
            }
            s.violation_cycles()
        })
    });
    g.finish();
}

fn bench_detector(c: &mut Criterion) {
    let mut g = c.benchmark_group("detector");
    g.throughput(Throughput::Elements(CYCLES));
    g.bench_function("observe_resonant_10k", |b| {
        b.iter(|| {
            let mut d = EventDetector::new(TuningConfig::isca04_table1(100));
            let mut events = 0u64;
            for k in 0..CYCLES {
                let i = if (k / 50).is_multiple_of(2) { 90 } else { 50 };
                if d.observe(black_box(i)).is_some() {
                    events += 1;
                }
            }
            events
        })
    });
    g.bench_function("observe_quiet_10k", |b| {
        b.iter(|| {
            let mut d = EventDetector::new(TuningConfig::isca04_table1(100));
            for _ in 0..CYCLES {
                black_box(d.observe(black_box(70)));
            }
            d.events_detected()
        })
    });
    g.finish();
}

fn bench_cpu(c: &mut Criterion) {
    let mut g = c.benchmark_group("cpu");
    g.throughput(Throughput::Elements(CYCLES));
    g.bench_function("ooo_tick_alu_10k", |b| {
        b.iter(|| {
            let mut cpu = Cpu::new(
                CpuConfig::isca04_table1(),
                LoopStream::new(vec![SynthInst::int_alu(); 8]),
            );
            for _ in 0..CYCLES {
                black_box(cpu.tick(PipelineControls::free()));
            }
            cpu.stats().committed
        })
    });
    g.finish();
}

fn bench_power_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("power");
    g.throughput(Throughput::Elements(CYCLES));
    g.bench_function("current_for_10k", |b| {
        let mut issued = [0u32; 9];
        issued[0] = 6;
        issued[6] = 2;
        let busy = CycleEvents {
            fetched: 8,
            dispatched: 8,
            issued,
            completed: 8,
            committed: 8,
            l1d_accesses: 2,
            l1i_accesses: 1,
            ..CycleEvents::default()
        };
        b.iter(|| {
            let mut m = PowerModel::new(PowerConfig::isca04_table1(), CpuConfig::isca04_table1());
            let mut total = 0.0;
            for _ in 0..CYCLES {
                total += m.current_for(black_box(&busy)).amps();
            }
            total
        })
    });
    g.finish();
}

fn bench_wavelet(c: &mut Criterion) {
    use restune::{WaveletConfig, WaveletDetector};
    let mut g = c.benchmark_group("wavelet");
    g.throughput(Throughput::Elements(CYCLES));
    g.bench_function("observe_resonant_10k", |b| {
        b.iter(|| {
            let mut d = WaveletDetector::new(WaveletConfig::isca04_table1());
            let mut warnings = 0u64;
            for k in 0..CYCLES {
                let i = if (k / 50).is_multiple_of(2) { 90 } else { 50 };
                if d.observe(black_box(i)).is_some() {
                    warnings += 1;
                }
            }
            warnings
        })
    });
    g.finish();
}

fn bench_two_stage(c: &mut Criterion) {
    use rlc::{TwoStageParams, TwoStageSupply};
    let mut g = c.benchmark_group("two_stage");
    g.throughput(Throughput::Elements(CYCLES));
    g.bench_function("tick_10k", |b| {
        b.iter(|| {
            let mut s = TwoStageSupply::new(
                TwoStageParams::isca04_low_frequency(),
                Hertz::from_giga(10.0),
                Amps::new(70.0),
            );
            for k in 0..CYCLES {
                let i = if (k / 50).is_multiple_of(2) {
                    90.0
                } else {
                    50.0
                };
                black_box(s.tick(Amps::new(i)));
            }
            s.violation_cycles()
        })
    });
    g.finish();
}

fn bench_spectrum(c: &mut Criterion) {
    use rlc::power_at;
    let trace: Vec<Amps> = (0..10_000)
        .map(|k| Amps::new(70.0 + 20.0 * (k as f64 * 0.0628).sin()))
        .collect();
    let mut g = c.benchmark_group("spectrum");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("goertzel_10k_samples", |b| {
        b.iter(|| {
            black_box(power_at(
                black_box(&trace),
                Hertz::from_giga(10.0),
                Hertz::from_mega(100.0),
            ))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_supply_tick,
    bench_detector,
    bench_cpu,
    bench_power_model,
    bench_wavelet,
    bench_two_stage,
    bench_spectrum
);
criterion_main!(benches);
