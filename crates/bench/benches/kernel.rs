//! Kernel benchmark: the fused batched engine ([`EnginePath::Fused`])
//! against the per-cycle pre-kernel reference loop
//! ([`EnginePath::Reference`]) and the SoA lane pack
//! ([`restune::run_suite_lanes`]), on three scales:
//!
//! * **hot loop** — one base-machine run, reported as ns/cycle of the
//!   controller → CPU → power → supply chain;
//! * **full app** — one resonance-tuning run, reported as simulated
//!   cycles/second;
//! * **table3 suite** — the Table 3 workload shape (every SPEC2K app under
//!   the base machine and the 100-cycle tuning point), reported as suite
//!   wall time and aggregate cycles/second. The suite is where the lane
//!   pack applies (it packs same-config runs), so it is measured on all
//!   three paths — with the passes *alternated* round-robin rather than
//!   timed back-to-back, so slow VM drift hits every path equally instead
//!   of biasing whichever ran last.
//!
//! Besides the criterion output, the harness writes a machine-readable
//! `BENCH_kernel.json` (at the repository root, or wherever
//! `RESTUNE_BENCH_OUT` points) with every measurement, the fused-vs-
//! reference suite speedup, and the lanes-vs-fused / lanes-vs-reference
//! suite speedups. Under `--test` the benchmark bodies run once on shrunk
//! workloads and the JSON is still produced from a single timed pass, so CI
//! can validate the schema cheaply.

use std::time::Instant;

use criterion::{black_box, BenchmarkGroup, Criterion, Throughput};
use restune::{
    lane_count, run_on_path, run_suite_lanes, EnginePath, SimConfig, Technique, TuningConfig,
};
use workloads::{spec2k, WorkloadProfile};

/// Instructions per run at full measurement scale.
const FULL_SINGLE: u64 = 40_000;
const FULL_SUITE: u64 = 20_000;
/// Alternating suite passes per path at full measurement scale.
const FULL_ROUNDS: usize = 5;
/// Instructions per run in `--test` (smoke) mode.
const SMOKE_SINGLE: u64 = 2_000;
const SMOKE_SUITE: u64 = 1_000;
/// Apps in the smoke-mode suite (full mode uses all of SPEC2K).
const SMOKE_APPS: usize = 6;

/// One (application, technique) run of a benchmark's workload set.
struct RunSpec {
    profile: WorkloadProfile,
    technique: Technique,
}

/// One benchmark point, fully measured: a workload set on one engine path.
struct Point {
    name: &'static str,
    path: &'static str,
    instructions_per_run: u64,
    runs: usize,
    cycles: u64,
    wall_seconds: f64,
}

impl Point {
    fn cycles_per_second(&self) -> f64 {
        self.cycles as f64 / self.wall_seconds
    }

    fn ns_per_cycle(&self) -> f64 {
        self.wall_seconds * 1e9 / self.cycles as f64
    }
}

fn path_label(path: EnginePath) -> &'static str {
    match path {
        EnginePath::Fused => "fused",
        EnginePath::Reference => "reference",
    }
}

/// Executes every run of a workload set on one path, returning total cycles.
fn run_set(set: &[RunSpec], sim: &SimConfig, path: EnginePath) -> u64 {
    set.iter()
        .map(|r| run_on_path(&r.profile, &r.technique, sim, path).cycles)
        .sum()
}

/// Benchmarks one workload set on one path and captures the measurement.
/// The first pass (outside the timing loop) doubles as warm-up and as the
/// deterministic cycle count.
fn bench_point(
    g: &mut BenchmarkGroup<'_>,
    name: &'static str,
    set: &[RunSpec],
    sim: &SimConfig,
    path: EnginePath,
) -> Point {
    let cycles = run_set(set, sim, path);
    g.throughput(Throughput::Elements(cycles));
    let measured = g.bench_function(path_label(path), |b| {
        b.iter(|| black_box(run_set(set, sim, path)))
    });
    let wall_seconds = match measured {
        Some(m) => m.seconds_per_iter(),
        // --test mode: criterion times nothing, so take one direct pass —
        // the workloads are shrunk, and the JSON schema still gets real
        // numbers.
        None => {
            let t0 = Instant::now();
            black_box(run_set(set, sim, path));
            t0.elapsed().as_secs_f64()
        }
    };
    Point {
        name,
        path: path_label(path),
        instructions_per_run: sim.instructions,
        runs: set.len(),
        cycles,
        wall_seconds,
    }
}

/// Measures several suite runners with round-robin alternation: one warm-up
/// pass per runner (which also fixes the deterministic cycle count), then
/// `rounds` rounds that each time one full pass of every runner in turn.
/// Reported wall time is the per-pass mean.
fn measure_alternating(
    name: &'static str,
    instructions_per_run: u64,
    runs: usize,
    rounds: usize,
    runners: &[(&'static str, &dyn Fn() -> u64)],
) -> Vec<Point> {
    let cycles: Vec<u64> = runners.iter().map(|(_, r)| black_box(r())).collect();
    let mut walls = vec![0.0f64; runners.len()];
    for _ in 0..rounds {
        for (k, (_, r)) in runners.iter().enumerate() {
            let t0 = Instant::now();
            black_box(r());
            walls[k] += t0.elapsed().as_secs_f64();
        }
    }
    runners
        .iter()
        .zip(cycles)
        .zip(walls)
        .map(|(((label, _), cycles), wall)| Point {
            name,
            path: label,
            instructions_per_run,
            runs,
            cycles,
            wall_seconds: wall / rounds as f64,
        })
        .collect()
}

fn single(app: &str, technique: Technique) -> Vec<RunSpec> {
    vec![RunSpec {
        profile: spec2k::by_name(app).expect("app is in the suite"),
        technique,
    }]
}

/// The Table 3 workload shape: every app under the base machine (the
/// denominator of its slowdown columns) and under the paper's default
/// 100-cycle initial-response tuning point.
fn table3_suite(apps: usize) -> Vec<RunSpec> {
    let mut set = Vec::new();
    for profile in spec2k::all().into_iter().take(apps) {
        set.push(RunSpec {
            profile,
            technique: Technique::Base,
        });
        set.push(RunSpec {
            profile,
            technique: Technique::Tuning(TuningConfig::isca04_table1(100)),
        });
    }
    set
}

/// Renders a finite float for JSON (JSON has no NaN/inf literals).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        String::from("null")
    }
}

fn json_point(p: &Point) -> String {
    format!(
        "    {{\"name\": \"{}\", \"path\": \"{}\", \"instructions_per_run\": {}, \
         \"runs\": {}, \"cycles\": {}, \"wall_seconds\": {}, \
         \"ns_per_cycle\": {}, \"cycles_per_second\": {}}}",
        p.name,
        p.path,
        p.instructions_per_run,
        p.runs,
        p.cycles,
        json_f64(p.wall_seconds),
        json_f64(p.ns_per_cycle()),
        json_f64(p.cycles_per_second()),
    )
}

/// The whole `BENCH_kernel.json` document. Schema `restune-kernel-bench-v2`
/// — a strict superset of v1 plus the lane-pack suite measurement. CI
/// validates exactly these keys, so extend rather than rename.
fn json_document(mode: &str, points: &[Point], suite: (&Point, &Point, &Point)) -> String {
    let (fused, reference, lanes) = suite;
    let speedup = fused.cycles_per_second() / reference.cycles_per_second();
    let lanes_vs_fused = lanes.cycles_per_second() / fused.cycles_per_second();
    let lanes_vs_reference = lanes.cycles_per_second() / reference.cycles_per_second();
    let rows: Vec<String> = points.iter().map(json_point).collect();
    format!(
        "{{\n  \"schema\": \"restune-kernel-bench-v2\",\n  \"mode\": \"{mode}\",\n  \
         \"batch_size\": {batch},\n  \"lane_width\": {width},\n  \
         \"benchmarks\": [\n{rows}\n  ],\n  \
         \"table3_suite\": {{\n    \"apps\": {apps},\n    \
         \"instructions_per_app\": {instr},\n    \
         \"fused_wall_seconds\": {fw},\n    \
         \"fused_cycles_per_second\": {fc},\n    \
         \"reference_wall_seconds\": {rw},\n    \
         \"reference_cycles_per_second\": {rc},\n    \
         \"lanes_wall_seconds\": {lw},\n    \
         \"lanes_cycles_per_second\": {lc},\n    \
         \"lane_width\": {width},\n    \
         \"speedup_cycles_per_second\": {sp},\n    \
         \"speedup_lanes_vs_fused\": {slf},\n    \
         \"speedup_lanes_vs_reference\": {slr}\n  }}\n}}\n",
        batch = restune::kernel::batch_size(),
        width = lane_count(),
        rows = rows.join(",\n"),
        apps = fused.runs / 2,
        instr = fused.instructions_per_run,
        fw = json_f64(fused.wall_seconds),
        fc = json_f64(fused.cycles_per_second()),
        rw = json_f64(reference.wall_seconds),
        rc = json_f64(reference.cycles_per_second()),
        lw = json_f64(lanes.wall_seconds),
        lc = json_f64(lanes.cycles_per_second()),
        sp = json_f64(speedup),
        slf = json_f64(lanes_vs_fused),
        slr = json_f64(lanes_vs_reference),
    )
}

fn output_path() -> std::path::PathBuf {
    std::env::var_os("RESTUNE_BENCH_OUT")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_kernel.json")
        })
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let (mode, n_single, n_suite, apps, rounds) = if test_mode {
        ("smoke", SMOKE_SINGLE, SMOKE_SUITE, SMOKE_APPS, 1)
    } else {
        (
            "full",
            FULL_SINGLE,
            FULL_SUITE,
            spec2k::all().len(),
            FULL_ROUNDS,
        )
    };
    let sim_single = SimConfig::isca04(n_single);
    let sim_suite = SimConfig::isca04(n_suite);
    let mut criterion = Criterion::from_args();
    let mut points = Vec::new();

    let hot = single("swim", Technique::Base);
    let mut g = criterion.benchmark_group("kernel_hot_loop");
    g.sample_size(10);
    for path in [EnginePath::Fused, EnginePath::Reference] {
        points.push(bench_point(&mut g, "hot_loop", &hot, &sim_single, path));
    }
    g.finish();

    let app = single("gcc", Technique::Tuning(TuningConfig::isca04_table1(100)));
    let mut g = criterion.benchmark_group("kernel_full_app");
    g.sample_size(10);
    for path in [EnginePath::Fused, EnginePath::Reference] {
        points.push(bench_point(&mut g, "full_app", &app, &sim_single, path));
    }
    g.finish();

    // The suite: the lane pack packs same-config runs, so it executes the
    // suite as two lane groups (every app under Base, then every app under
    // Tuning) — the same work the per-run paths do run-by-run. All three
    // paths run single-threaded in this process; the engine parallelizes
    // packs across workers, but that is a scheduling concern this kernel
    // benchmark deliberately excludes.
    let suite = table3_suite(apps);
    let profiles: Vec<WorkloadProfile> = spec2k::all().into_iter().take(apps).collect();
    let techniques = [
        Technique::Base,
        Technique::Tuning(TuningConfig::isca04_table1(100)),
    ];
    let lane_width = lane_count();
    let fused_runner = || run_set(&suite, &sim_suite, EnginePath::Fused);
    let reference_runner = || run_set(&suite, &sim_suite, EnginePath::Reference);
    let lanes_runner = || {
        techniques
            .iter()
            .map(|t| {
                run_suite_lanes(&profiles, t, &sim_suite, lane_width)
                    .iter()
                    .map(|r| r.cycles)
                    .sum::<u64>()
            })
            .sum()
    };
    let suite_points = measure_alternating(
        "table3_suite",
        sim_suite.instructions,
        suite.len(),
        rounds,
        &[
            ("fused", &fused_runner),
            ("reference", &reference_runner),
            ("lanes", &lanes_runner),
        ],
    );
    let [fused, reference, lanes]: [Point; 3] = suite_points
        .try_into()
        .unwrap_or_else(|_| unreachable!("three suite runners produce three points"));
    assert_eq!(
        fused.cycles, lanes.cycles,
        "lane pack must simulate exactly the suite's cycles"
    );

    let speedup = fused.cycles_per_second() / reference.cycles_per_second();
    let lanes_vs_fused = lanes.cycles_per_second() / fused.cycles_per_second();
    let lanes_vs_reference = lanes.cycles_per_second() / reference.cycles_per_second();
    let doc = json_document(mode, &points, (&fused, &reference, &lanes));
    points.push(fused);
    points.push(reference);
    points.push(lanes);
    let out = output_path();
    std::fs::write(&out, doc).expect("write BENCH_kernel.json");

    println!("\nkernel vs reference ({} runs/path groups):", points.len());
    for p in &points {
        println!(
            "  {:13} {:9}: {:8.1} ns/cycle, {:11.0} cycles/s ({} runs, {:.3} s)",
            p.name,
            p.path,
            p.ns_per_cycle(),
            p.cycles_per_second(),
            p.runs,
            p.wall_seconds,
        );
    }
    println!(
        "table3 suite speedup: fused vs reference {speedup:.2}x, \
         lanes (width {lane_width}) vs fused {lanes_vs_fused:.2}x, \
         lanes vs reference {lanes_vs_reference:.2}x — wrote {}",
        out.display()
    );
    if mode == "full" && speedup < 2.0 {
        eprintln!("WARNING: table3 suite fused speedup below the 2x target");
    }
    if mode == "full" && lanes_vs_fused < 1.8 {
        eprintln!("WARNING: table3 suite lane-pack speedup below the 1.8x target");
    }
}
