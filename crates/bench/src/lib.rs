//! Shared plumbing for the experiment harnesses: tiny argument parsing,
//! ASCII plotting, and table formatting.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper;
//! see `DESIGN.md` for the index. All binaries accept
//! `--instructions N` to scale run length (default 120 000 per application)
//! and print the same rows/series the paper reports.

pub mod report;

/// Run-length options shared by the suite harnesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HarnessArgs {
    /// Committed instructions per application run.
    pub instructions: u64,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        Self { instructions: 120_000 }
    }
}

impl HarnessArgs {
    /// Parses `--instructions N` (or `-n N`) from `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn parse() -> Self {
        let mut args = Self::default();
        let mut iter = std::env::args().skip(1);
        while let Some(a) = iter.next() {
            match a.as_str() {
                "--instructions" | "-n" => {
                    let v = iter
                        .next()
                        .unwrap_or_else(|| panic!("{a} requires a value"));
                    args.instructions = v
                        .parse()
                        .unwrap_or_else(|_| panic!("invalid instruction count: {v}"));
                }
                "--help" | "-h" => {
                    println!("usage: <harness> [--instructions N]");
                    std::process::exit(0);
                }
                other => panic!("unknown argument: {other} (try --help)"),
            }
        }
        args
    }
}

/// Renders a simple ASCII line chart of `series` (y values) with `height`
/// rows, labelling the y-axis with `unit`.
pub fn ascii_chart(series: &[f64], height: usize, unit: &str) -> String {
    if series.is_empty() {
        return String::from("(empty series)\n");
    }
    let max = series.iter().cloned().fold(f64::MIN, f64::max);
    let min = series.iter().cloned().fold(f64::MAX, f64::min);
    let span = (max - min).max(1e-12);
    let mut out = String::new();
    for row in 0..height {
        let level = max - span * row as f64 / (height - 1).max(1) as f64;
        let mark = format!("{level:10.4} {unit} |");
        out.push_str(&mark);
        for &y in series {
            let cell = (max - y) / span * (height - 1) as f64;
            out.push(if (cell.round() as usize) == row { '*' } else { ' ' });
        }
        out.push('\n');
    }
    out
}

/// Downsamples a series to at most `n` points by taking the extreme value
/// (largest magnitude) in each bucket — keeps violation peaks visible.
pub fn downsample_extreme(series: &[f64], n: usize) -> Vec<f64> {
    if series.len() <= n || n == 0 {
        return series.to_vec();
    }
    let bucket = series.len() as f64 / n as f64;
    (0..n)
        .map(|k| {
            let lo = (k as f64 * bucket) as usize;
            let hi = (((k + 1) as f64 * bucket) as usize).min(series.len());
            series[lo..hi.max(lo + 1)]
                .iter()
                .cloned()
                .max_by(|a, b| a.abs().partial_cmp(&b.abs()).expect("finite series"))
                .expect("bucket non-empty")
        })
        .collect()
}

/// Formats a ruled table: `headers` then rows of equal arity.
///
/// # Panics
///
/// Panics if any row's arity differs from the header's.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row arity mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let rule: String =
        widths.iter().map(|w| format!("+{}", "-".repeat(w + 2))).collect::<String>() + "+\n";
    let mut out = rule.clone();
    let fmt_row = |cells: &[String]| -> String {
        let mut line = String::new();
        for (w, cell) in widths.iter().zip(cells) {
            line.push_str(&format!("| {cell:w$} "));
        }
        line.push_str("|\n");
        line
    };
    out.push_str(&fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>()));
    out.push_str(&rule);
    for row in rows {
        out.push_str(&fmt_row(row));
    }
    out.push_str(&rule);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_marks_extremes() {
        let chart = ascii_chart(&[0.0, 1.0, 0.5], 3, "V");
        assert!(chart.contains('*'));
        assert_eq!(chart.lines().count(), 3);
    }

    #[test]
    fn chart_handles_empty() {
        assert!(ascii_chart(&[], 5, "V").contains("empty"));
    }

    #[test]
    fn downsample_keeps_peaks() {
        let mut series = vec![0.0; 1000];
        series[537] = -9.0;
        let ds = downsample_extreme(&series, 10);
        assert_eq!(ds.len(), 10);
        assert!(ds.contains(&-9.0), "peak must survive downsampling");
    }

    #[test]
    fn downsample_passthrough_when_small() {
        let series = vec![1.0, 2.0];
        assert_eq!(downsample_extreme(&series, 10), series);
    }

    #[test]
    fn table_is_ruled_and_aligned() {
        let t = format_table(
            &["app", "ipc"],
            &[vec!["parser".into(), "1.71".into()], vec!["mcf".into(), "0.38".into()]],
        );
        assert!(t.contains("| parser |"));
        assert!(t.starts_with('+'));
        // All lines equal width.
        let mut lens: Vec<usize> = t.lines().map(|l| l.len()).collect();
        lens.dedup();
        assert_eq!(lens.len(), 1, "table must be rectangular:\n{t}");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn ragged_rows_panic() {
        let _ = format_table(&["a", "b"], &[vec!["x".into()]]);
    }

    #[test]
    fn default_args() {
        assert_eq!(HarnessArgs::default().instructions, 120_000);
    }
}
