//! Shared plumbing for the experiment harnesses: argument parsing, ASCII
//! plotting, table formatting, and machine-readable reports.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper;
//! see `DESIGN.md` for the index. All binaries accept
//! `--instructions N` to scale run length (default 120 000 per application)
//! and print the same rows/series the paper reports; `--json` switches the
//! output to a machine-readable JSON document instead.

pub mod report;

pub use report::Report;

/// The usage text every harness prints for `--help` and argument errors.
pub const USAGE: &str =
    "usage: <harness> [--instructions N] [--json] [--faults SEED] [--fault APP=KIND]
                 [--timeout SECS] [--resume] [--trace-out PATH]
                 [--connect ENDPOINT[,ENDPOINT..]]
  --instructions N, -n N  committed instructions per application run
                          (default 120000)
  --json                  print results as a JSON document on stdout
                          instead of human-readable tables
  --connect ENDPOINTS     run the suite through restuned server(s) instead
                          of in-process: each comma-separated ENDPOINT is a
                          unix socket path or tcp:HOST:PORT. Reports are
                          byte-identical to local runs. Two or more
                          endpoints arm the shard-aware mesh: jobs shard by
                          rendezvous hashing on their fingerprint, a downed
                          host opens its circuit breaker and jobs fail over
                          to the next host in rendezvous order, and probe
                          frames re-admit it once it answers again.
                          RESTUNE_NET_FAULT=SPEC[,SPEC..] injects
                          client-side network faults (truncate:N,
                          stall:N:MILLIS, disconnect:N) for chaos testing
  --trace-out PATH        write a structured JSON-lines event trace (cycle-
                          stamped sim events, waveform windows around
                          violations, engine events, counters) to PATH;
                          equivalent to RESTUNE_TRACE=PATH. Tracing never
                          changes simulation results.
  --faults SEED           enable deterministic fault injection from SEED
                          (off by default; clean runs are bit-exact)
  --fault APP=KIND        inject a persistent targeted fault into APP; KIND
                          is panic, stall[:MILLIS], abort, or kill
                          (abort/kill need RESTUNE_ISOLATION=process to be
                          contained for real); repeatable
  --timeout SECS          per-application watchdog deadline in seconds
                          (fractions allowed; off by default)
  --resume                checkpoint completed applications and resume an
                          interrupted suite from its checkpoint
  --help, -h              print this message";

/// Exit code for malformed command-line arguments.
pub const EXIT_USAGE: i32 = 2;

/// Options shared by the suite harnesses.
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessArgs {
    /// Committed instructions per application run.
    pub instructions: u64,
    /// Emit machine-readable JSON instead of human tables.
    pub json: bool,
    /// Seed of the deterministic fault plan; `None` disables injection.
    pub faults: Option<u64>,
    /// Explicit `--fault APP=KIND` injections, applied persistently on top
    /// of any seeded plan.
    pub targeted_faults: Vec<(String, restune::FaultSpec)>,
    /// Per-application watchdog deadline in seconds.
    pub timeout_secs: Option<f64>,
    /// Checkpoint completed applications and resume interrupted suites.
    pub resume: bool,
    /// Write the structured JSON-lines event trace to this path.
    pub trace_out: Option<std::path::PathBuf>,
    /// Run suites through `restuned` server(s) instead of in-process: a
    /// comma-separated endpoint list (each a unix socket path, or
    /// `tcp:HOST:PORT`). Two or more endpoints arm the shard-aware mesh.
    pub connect: Option<String>,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        Self {
            instructions: 120_000,
            json: false,
            faults: None,
            targeted_faults: Vec::new(),
            timeout_secs: None,
            resume: false,
            trace_out: None,
            connect: None,
        }
    }
}

/// What [`HarnessArgs::try_parse`] found on the command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Parsed {
    /// Options to run with.
    Args(HarnessArgs),
    /// `--help` was requested; print [`USAGE`] and exit 0.
    Help,
}

impl HarnessArgs {
    /// Parses harness options from an argument list (without the program
    /// name).
    ///
    /// # Errors
    ///
    /// Returns a one-line description of the first malformed argument.
    pub fn try_parse<I>(args: I) -> Result<Parsed, String>
    where
        I: IntoIterator<Item = String>,
    {
        let mut parsed = Self::default();
        let mut iter = args.into_iter();
        while let Some(a) = iter.next() {
            match a.as_str() {
                "--instructions" | "-n" => {
                    let v = iter.next().ok_or_else(|| format!("{a} requires a value"))?;
                    parsed.instructions = v
                        .parse()
                        .map_err(|_| format!("invalid instruction count: {v}"))?;
                    if parsed.instructions == 0 {
                        return Err(String::from("instruction count must be positive"));
                    }
                }
                "--json" => parsed.json = true,
                "--faults" => {
                    let v = iter.next().ok_or_else(|| format!("{a} requires a value"))?;
                    parsed.faults =
                        Some(v.parse().map_err(|_| format!("invalid fault seed: {v}"))?);
                }
                "--timeout" => {
                    let v = iter.next().ok_or_else(|| format!("{a} requires a value"))?;
                    let secs: f64 = v.parse().map_err(|_| format!("invalid timeout: {v}"))?;
                    if !(secs > 0.0 && secs.is_finite()) {
                        return Err(String::from("timeout must be a positive number of seconds"));
                    }
                    parsed.timeout_secs = Some(secs);
                }
                "--fault" => {
                    let v = iter.next().ok_or_else(|| format!("{a} requires a value"))?;
                    parsed.targeted_faults.push(parse_fault_arg(&v)?);
                }
                "--resume" => parsed.resume = true,
                "--trace-out" => {
                    let v = iter.next().ok_or_else(|| format!("{a} requires a value"))?;
                    if v.is_empty() {
                        return Err(String::from("--trace-out requires a non-empty path"));
                    }
                    parsed.trace_out = Some(std::path::PathBuf::from(v));
                }
                "--connect" => {
                    let v = iter.next().ok_or_else(|| format!("{a} requires a value"))?;
                    if v.is_empty() {
                        return Err(String::from("--connect requires a non-empty endpoint"));
                    }
                    parsed.connect = Some(v);
                }
                "--help" | "-h" => return Ok(Parsed::Help),
                other => return Err(format!("unknown argument: {other}")),
            }
        }
        Ok(Parsed::Args(parsed))
    }

    /// Builds the engine [`restune::RunPolicy`] these options describe: the
    /// seeded fault plan (or none), the watchdog timeout, and checkpointing.
    /// With none of the supervision flags given, the policy is inert and
    /// every harness output is bit-identical to the unsupervised engine.
    pub fn policy(&self) -> restune::RunPolicy {
        let mut plan = self
            .faults
            .map(restune::FaultPlan::seeded)
            .unwrap_or_else(restune::FaultPlan::none);
        for (app, spec) in &self.targeted_faults {
            // Persistent on purpose: a `--fault` must survive retries, so
            // the chaos stage exercises the terminal-failure path.
            plan = plan.with_persistent_fault(app, *spec);
        }
        restune::RunPolicy {
            supervisor: restune::SupervisorConfig {
                timeout: self.timeout_secs.map(std::time::Duration::from_secs_f64),
                resume: self.resume,
                ..restune::SupervisorConfig::default()
            },
            plan,
        }
    }

    /// Parses `std::env::args`, printing [`USAGE`] and exiting — with code 0
    /// for `--help`, [`EXIT_USAGE`] for malformed arguments — when the
    /// process should not continue.
    pub fn parse() -> Self {
        match Self::try_parse(std::env::args().skip(1)) {
            Ok(Parsed::Args(args)) => args,
            Ok(Parsed::Help) => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            Err(message) => {
                eprintln!("error: {message}\n{USAGE}");
                std::process::exit(EXIT_USAGE);
            }
        }
    }
}

/// Parses one `--fault APP=KIND` argument into its targeted fault spec.
fn parse_fault_arg(value: &str) -> Result<(String, restune::FaultSpec), String> {
    let (app, kind) = value
        .split_once('=')
        .ok_or_else(|| format!("invalid --fault '{value}' (expected APP=KIND)"))?;
    if app.is_empty() {
        return Err(format!(
            "invalid --fault '{value}' (empty application name)"
        ));
    }
    let spec = match kind {
        "panic" => restune::FaultSpec::WorkerPanic,
        "abort" => restune::FaultSpec::WorkerAbort,
        "kill" => restune::FaultSpec::WorkerKill,
        stall if stall == "stall" || stall.starts_with("stall:") => {
            let millis = match stall.strip_prefix("stall:") {
                None => 1500,
                Some(ms) => ms
                    .parse()
                    .map_err(|_| format!("invalid --fault stall duration: {ms}"))?,
            };
            restune::FaultSpec::WorkerStall { millis }
        }
        other => {
            return Err(format!(
                "unknown --fault kind '{other}' (expected panic, stall[:MILLIS], abort, or kill)"
            ))
        }
    };
    Ok((app.to_string(), spec))
}

/// Everything a harness `main` must do before touching its arguments:
/// install this binary's worker entry (so `RESTUNE_ISOLATION=process` can
/// self-exec it) and arm the SIGINT/SIGTERM graceful-shutdown handlers.
/// Bind the returned guard for the whole of `main` — when a shutdown signal
/// arrived during the run, its drop exits 130 after the partial report has
/// been printed.
#[must_use = "bind the guard for the whole of main so the interrupted exit fires"]
pub fn harness_init() -> ShutdownGuard {
    restune::maybe_run_worker();
    restune::install_signal_handlers();
    ShutdownGuard { _priv: () }
}

/// See [`harness_init`].
#[derive(Debug)]
pub struct ShutdownGuard {
    _priv: (),
}

impl Drop for ShutdownGuard {
    fn drop(&mut self) {
        if restune::shutdown_requested() {
            eprintln!("restune: interrupted by signal; reported results are partial");
            // 130 = 128 + SIGINT, the conventional interrupted exit.
            std::process::exit(130);
        }
    }
}

/// Arms structured tracing for a harness run when `--trace-out` was given
/// (`RESTUNE_TRACE=PATH` works without any flag and is handled inside the
/// core). Bind the returned guard for the whole of `main`: its drop emits
/// the final counter snapshot and flushes the sink so the trace file is
/// complete even on early returns.
#[must_use = "bind the guard for the whole of main so the trace is flushed"]
pub fn init_trace(args: &HarnessArgs) -> TraceGuard {
    if let Some(path) = &args.trace_out {
        if let Err(e) = restune::obs::trace_to_file(path) {
            eprintln!(
                "error: cannot open trace file {}: {e}\n{USAGE}",
                path.display()
            );
            std::process::exit(EXIT_USAGE);
        }
    }
    TraceGuard { _priv: () }
}

/// See [`init_trace`].
#[derive(Debug)]
pub struct TraceGuard {
    _priv: (),
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        restune::obs::finish_trace();
    }
}

/// Routes suite execution through a `restuned` server when `--connect` was
/// given; a no-op otherwise. `RESTUNE_NET_FAULT` (a `parse_net_faults`
/// spec list) arms client-side network faults on the first connection —
/// exercised by the chaos stages, harmless in normal use. Bind the
/// returned guard for the whole of `main`: its drop tears the connection
/// down so in-flight requests are cancelled on early exits.
///
/// Exits with [`EXIT_USAGE`] on a malformed fault spec and with 1 when the
/// server is unreachable — a thin client that cannot reach its server
/// should fail fast, not silently fall back to a local run.
#[must_use = "bind the guard for the whole of main so the connection is torn down"]
pub fn init_connect(args: &HarnessArgs) -> ConnectGuard {
    let Some(endpoint) = &args.connect else {
        return ConnectGuard { active: false };
    };
    if let Ok(spec) = std::env::var("RESTUNE_NET_FAULT") {
        match restune::parse_net_faults(&spec) {
            Ok(faults) => restune::set_net_faults(faults),
            Err(e) => {
                eprintln!("error: invalid RESTUNE_NET_FAULT: {e}\n{USAGE}");
                std::process::exit(EXIT_USAGE);
            }
        }
    }
    if let Err(e) = restune::set_connect(endpoint) {
        eprintln!("error: cannot connect to restuned at {endpoint}: {e}");
        std::process::exit(1);
    }
    ConnectGuard { active: true }
}

/// See [`init_connect`].
#[derive(Debug)]
pub struct ConnectGuard {
    active: bool,
}

impl Drop for ConnectGuard {
    fn drop(&mut self) {
        if self.active {
            restune::clear_connect();
        }
    }
}

/// Renders a JSON object mapping each named section to its rows — the
/// single document a harness prints under `--json`.
pub fn json_document(sections: &[(&str, report::Report)]) -> String {
    let mut out = String::from("{\n");
    for (i, (name, rows)) in sections.iter().enumerate() {
        out.push_str(&format!(
            "\"{}\": {}",
            report::json_escape(name),
            rows.to_json()
        ));
        out.push_str(if i + 1 < sections.len() { ",\n" } else { "\n" });
    }
    out.push('}');
    out
}

/// The standard machine-readable rows for per-run engine metrics, shared by
/// every harness's `--json` output.
pub fn run_metrics_report(metrics: &[restune::RunMetrics]) -> report::Report {
    let mut r = report::Report::new(&[
        "app",
        "technique",
        "replayed",
        "wall_seconds",
        "cycles",
        "committed",
        "sim_cycles_per_second",
        "violation_cycles",
        "first_level_fraction",
        "second_level_fraction",
        "sensor_response_fraction",
        "detector_events",
        "base_cache_hits",
        "base_cache_misses",
        "phase_controller_seconds",
        "phase_cpu_seconds",
        "phase_power_seconds",
        "phase_supply_seconds",
    ]);
    for m in metrics {
        r.push(vec![
            m.app.into(),
            m.technique.into(),
            m.replayed.into(),
            m.wall_seconds.into(),
            m.cycles.into(),
            m.committed.into(),
            m.sim_cycles_per_second.into(),
            m.violation_cycles.into(),
            m.first_level_fraction.into(),
            m.second_level_fraction.into(),
            m.sensor_response_fraction.into(),
            m.detector_events.into(),
            m.base_cache_hits.into(),
            m.base_cache_misses.into(),
            m.phase_controller_seconds.into(),
            m.phase_cpu_seconds.into(),
            m.phase_power_seconds.into(),
            m.phase_supply_seconds.into(),
        ]);
    }
    r
}

/// The machine-readable rows of one or more scope-labelled failure
/// reports: every injection, recovery, terminal failure, and storage
/// incident the supervisor observed. Appended as a `failures` section to
/// `--json` output when supervision is active.
pub fn failure_report_section(reports: &[restune::FailureReport]) -> report::Report {
    let mut r = report::Report::new(&["scope", "event", "app", "kind", "attempts", "detail"]);
    for rep in reports {
        for i in &rep.injections {
            r.push(vec![
                rep.scope.as_str().into(),
                "injected".into(),
                i.app.as_str().into(),
                i.class.into(),
                u64::from(i.attempt + 1).into(),
                "".into(),
            ]);
        }
        for rec in &rep.recoveries {
            r.push(vec![
                rep.scope.as_str().into(),
                "recovered".into(),
                rec.app.as_str().into(),
                rec.kind.as_str().into(),
                u64::from(rec.attempts).into(),
                rec.message.as_str().into(),
            ]);
        }
        for f in &rep.failures {
            r.push(vec![
                rep.scope.as_str().into(),
                "failed".into(),
                f.app.as_str().into(),
                f.kind.as_str().into(),
                u64::from(f.attempts).into(),
                f.message.as_str().into(),
            ]);
        }
        for s in &rep.storage {
            r.push(vec![
                rep.scope.as_str().into(),
                if s.recovered {
                    "storage-recovered".into()
                } else {
                    "storage".into()
                },
                s.path.as_str().into(),
                "storage".into(),
                0u64.into(),
                s.detail.as_str().into(),
            ]);
        }
        if rep.checkpoint_degraded {
            r.push(vec![
                rep.scope.as_str().into(),
                "checkpoint-degraded".into(),
                "".into(),
                "storage".into(),
                0u64.into(),
                "a checkpoint write failed; a resume would re-run the unrecorded apps".into(),
            ]);
        }
    }
    r
}

/// Prints the human-readable failure section: one summary line per
/// non-empty report, then each event indented beneath it.
pub fn print_failure_reports(reports: &[restune::FailureReport]) {
    let interesting: Vec<_> = reports.iter().filter(|r| !r.is_empty()).collect();
    if interesting.is_empty() {
        return;
    }
    println!("\n--- supervision report ---");
    for rep in interesting {
        println!("{}", rep.summary());
        for i in &rep.injections {
            println!(
                "  injected  {:10} attempt {} {}",
                i.app,
                i.attempt + 1,
                i.class
            );
        }
        for rec in &rep.recoveries {
            println!(
                "  recovered {:10} after {} attempts ({}: {})",
                rec.app, rec.attempts, rec.kind, rec.message
            );
        }
        for f in &rep.failures {
            println!(
                "  FAILED    {:10} after {} attempts ({}: {})",
                f.app, f.attempts, f.kind, f.message
            );
        }
        for s in &rep.storage {
            println!(
                "  storage   {} — {}{}",
                s.path,
                s.detail,
                if s.recovered { " (recovered)" } else { "" }
            );
        }
        if rep.checkpoint_degraded {
            println!("  WARNING   checkpoint writes failed; this suite will not fully resume");
        }
    }
}

/// An empty per-app outcome report; fill with [`push_outcomes`].
pub fn outcomes_report() -> report::Report {
    report::Report::new(&[
        "design_point",
        "app",
        "slowdown",
        "relative_energy",
        "relative_energy_delay",
        "first_level_fraction",
        "second_level_fraction",
        "sensor_response_fraction",
        "violation_cycles",
    ])
}

/// Appends one design point's per-app outcomes to an [`outcomes_report`].
pub fn push_outcomes(
    r: &mut report::Report,
    design_point: &str,
    outcomes: &[restune::RelativeOutcome],
) {
    for o in outcomes {
        r.push(vec![
            design_point.into(),
            o.app.into(),
            o.slowdown.into(),
            o.relative_energy.into(),
            o.relative_energy_delay.into(),
            o.first_level_fraction.into(),
            o.second_level_fraction.into(),
            o.sensor_response_fraction.into(),
            o.violation_cycles.into(),
        ]);
    }
}

/// Renders a simple ASCII line chart of `series` (y values) with `height`
/// rows, labelling the y-axis with `unit`.
pub fn ascii_chart(series: &[f64], height: usize, unit: &str) -> String {
    if series.is_empty() {
        return String::from("(empty series)\n");
    }
    let max = series.iter().cloned().fold(f64::MIN, f64::max);
    let min = series.iter().cloned().fold(f64::MAX, f64::min);
    let span = (max - min).max(1e-12);
    let mut out = String::new();
    for row in 0..height {
        let level = max - span * row as f64 / (height - 1).max(1) as f64;
        let mark = format!("{level:10.4} {unit} |");
        out.push_str(&mark);
        for &y in series {
            let cell = (max - y) / span * (height - 1) as f64;
            out.push(if (cell.round() as usize) == row {
                '*'
            } else {
                ' '
            });
        }
        out.push('\n');
    }
    out
}

/// Downsamples a series to at most `n` points by taking the extreme value
/// (largest magnitude) in each bucket — keeps violation peaks visible.
pub fn downsample_extreme(series: &[f64], n: usize) -> Vec<f64> {
    if series.len() <= n || n == 0 {
        return series.to_vec();
    }
    let bucket = series.len() as f64 / n as f64;
    (0..n)
        .map(|k| {
            let lo = (k as f64 * bucket) as usize;
            let hi = (((k + 1) as f64 * bucket) as usize).min(series.len());
            series[lo..hi.max(lo + 1)]
                .iter()
                .cloned()
                .max_by(|a, b| a.abs().total_cmp(&b.abs()))
                .expect("bucket non-empty")
        })
        .collect()
}

/// Formats a ruled table: `headers` then rows of equal arity.
///
/// # Panics
///
/// Panics if any row's arity differs from the header's.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row arity mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let rule: String = widths
        .iter()
        .map(|w| format!("+{}", "-".repeat(w + 2)))
        .collect::<String>()
        + "+\n";
    let mut out = rule.clone();
    let fmt_row = |cells: &[String]| -> String {
        let mut line = String::new();
        for (w, cell) in widths.iter().zip(cells) {
            line.push_str(&format!("| {cell:w$} "));
        }
        line.push_str("|\n");
        line
    };
    out.push_str(&fmt_row(
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    ));
    out.push_str(&rule);
    for row in rows {
        out.push_str(&fmt_row(row));
    }
    out.push_str(&rule);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_marks_extremes() {
        let chart = ascii_chart(&[0.0, 1.0, 0.5], 3, "V");
        assert!(chart.contains('*'));
        assert_eq!(chart.lines().count(), 3);
    }

    #[test]
    fn chart_handles_empty() {
        assert!(ascii_chart(&[], 5, "V").contains("empty"));
    }

    #[test]
    fn downsample_keeps_peaks() {
        let mut series = vec![0.0; 1000];
        series[537] = -9.0;
        let ds = downsample_extreme(&series, 10);
        assert_eq!(ds.len(), 10);
        assert!(ds.contains(&-9.0), "peak must survive downsampling");
    }

    #[test]
    fn downsample_passthrough_when_small() {
        let series = vec![1.0, 2.0];
        assert_eq!(downsample_extreme(&series, 10), series);
    }

    #[test]
    fn table_is_ruled_and_aligned() {
        let t = format_table(
            &["app", "ipc"],
            &[
                vec!["parser".into(), "1.71".into()],
                vec!["mcf".into(), "0.38".into()],
            ],
        );
        assert!(t.contains("| parser |"));
        assert!(t.starts_with('+'));
        // All lines equal width.
        let mut lens: Vec<usize> = t.lines().map(|l| l.len()).collect();
        lens.dedup();
        assert_eq!(lens.len(), 1, "table must be rectangular:\n{t}");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn ragged_rows_panic() {
        let _ = format_table(&["a", "b"], &[vec!["x".into()]]);
    }

    #[test]
    fn default_args() {
        let args = HarnessArgs::default();
        assert_eq!(args.instructions, 120_000);
        assert!(!args.json);
    }

    fn parse(args: &[&str]) -> Result<Parsed, String> {
        HarnessArgs::try_parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_instructions_and_json() {
        let Ok(Parsed::Args(args)) = parse(&["--instructions", "5000", "--json"]) else {
            panic!("well-formed arguments must parse");
        };
        assert_eq!(args.instructions, 5_000);
        assert!(args.json);
        let Ok(Parsed::Args(short)) = parse(&["-n", "42"]) else {
            panic!("-n must parse");
        };
        assert_eq!(short.instructions, 42);
    }

    #[test]
    fn help_is_not_an_error() {
        assert_eq!(parse(&["--help"]), Ok(Parsed::Help));
        assert_eq!(parse(&["-h"]), Ok(Parsed::Help));
        assert!(USAGE.contains("--json"), "--help must document --json");
        for flag in [
            "--faults",
            "--fault APP=KIND",
            "--timeout",
            "--resume",
            "--trace-out",
            "RESTUNE_TRACE",
            "--connect",
            "RESTUNE_NET_FAULT",
        ] {
            assert!(USAGE.contains(flag), "--help must document {flag}");
        }
    }

    #[test]
    fn parses_targeted_faults() {
        let Ok(Parsed::Args(args)) = parse(&[
            "--fault",
            "mcf=abort",
            "--fault",
            "swim=kill",
            "--fault",
            "gzip=stall:250",
            "--fault",
            "art=panic",
        ]) else {
            panic!("--fault flags must parse");
        };
        assert_eq!(
            args.targeted_faults,
            vec![
                ("mcf".to_string(), restune::FaultSpec::WorkerAbort),
                ("swim".to_string(), restune::FaultSpec::WorkerKill),
                (
                    "gzip".to_string(),
                    restune::FaultSpec::WorkerStall { millis: 250 }
                ),
                ("art".to_string(), restune::FaultSpec::WorkerPanic),
            ]
        );
        let policy = args.policy();
        assert!(policy.plan.is_enabled());
        // Persistent: the fault applies on retries too.
        assert_eq!(
            policy.plan.faults_for("mcf", 2),
            vec![restune::FaultSpec::WorkerAbort]
        );

        for bad in ["mcf", "=abort", "mcf=melt", "mcf=stall:soon"] {
            assert!(
                parse(&["--fault", bad]).is_err(),
                "'{bad}' must be rejected"
            );
        }
        assert!(parse(&["--fault"]).unwrap_err().contains("requires"));
    }

    #[test]
    fn parses_supervision_flags() {
        let Ok(Parsed::Args(args)) = parse(&["--faults", "42", "--timeout", "2.5", "--resume"])
        else {
            panic!("supervision flags must parse");
        };
        assert_eq!(args.faults, Some(42));
        assert_eq!(args.timeout_secs, Some(2.5));
        assert!(args.resume);

        let policy = args.policy();
        assert!(policy.plan.is_enabled());
        assert_eq!(
            policy.supervisor.timeout,
            Some(std::time::Duration::from_secs_f64(2.5))
        );
        assert!(policy.supervisor.resume);
        assert!(!policy.is_inert());
    }

    #[test]
    fn default_policy_is_inert() {
        assert!(HarnessArgs::default().policy().is_inert());
    }

    #[test]
    fn parses_trace_out() {
        let Ok(Parsed::Args(args)) = parse(&["--trace-out", "/tmp/trace.jsonl"]) else {
            panic!("--trace-out must parse");
        };
        assert_eq!(
            args.trace_out,
            Some(std::path::PathBuf::from("/tmp/trace.jsonl"))
        );
        // Tracing is an observer: it must not change the run policy.
        assert!(args.policy().is_inert());
        assert!(parse(&["--trace-out"]).unwrap_err().contains("requires"));
        assert!(parse(&["--trace-out", ""]).unwrap_err().contains("path"));
    }

    #[test]
    fn parses_connect() {
        let Ok(Parsed::Args(args)) = parse(&["--connect", "/tmp/restuned.sock"]) else {
            panic!("--connect must parse");
        };
        assert_eq!(args.connect.as_deref(), Some("/tmp/restuned.sock"));
        // Thin-client mode is an execution transport: the run policy stays
        // whatever the other flags say.
        assert!(args.policy().is_inert());

        let Ok(Parsed::Args(tcp)) = parse(&["--connect", "tcp:127.0.0.1:9000"]) else {
            panic!("tcp endpoints must parse");
        };
        assert_eq!(tcp.connect.as_deref(), Some("tcp:127.0.0.1:9000"));

        assert!(parse(&["--connect"]).unwrap_err().contains("requires"));
        assert!(parse(&["--connect", ""]).unwrap_err().contains("endpoint"));
    }

    #[test]
    fn connect_guard_without_connect_is_inert() {
        let args = HarnessArgs::default();
        let guard = init_connect(&args);
        assert!(!restune::connect_active());
        drop(guard);
        assert!(!restune::connect_active());
    }

    #[test]
    fn malformed_supervision_flags_are_reported() {
        assert!(parse(&["--faults"]).unwrap_err().contains("requires"));
        assert!(parse(&["--faults", "xyz"]).unwrap_err().contains("invalid"));
        assert!(parse(&["--timeout", "-1"])
            .unwrap_err()
            .contains("positive"));
        assert!(parse(&["--timeout", "soon"])
            .unwrap_err()
            .contains("invalid"));
    }

    #[test]
    fn failure_section_covers_every_event_class() {
        use restune::{AppFailure, FailureKind, FailureReport, StorageIncident};

        let mut rep = FailureReport::new("tuning-100");
        rep.injections.push(restune::fault::InjectionEvent {
            app: "gzip".into(),
            attempt: 0,
            class: "worker-panic",
        });
        rep.recoveries.push(restune::fault::RecoveryEvent {
            app: "gzip".into(),
            kind: FailureKind::Panic,
            message: "injected worker panic".into(),
            attempts: 2,
        });
        rep.failures.push(AppFailure {
            app: "mcf".into(),
            kind: FailureKind::Timeout,
            message: "watchdog deadline exceeded at cycle 4096".into(),
            attempts: 3,
        });
        rep.storage.push(StorageIncident {
            path: "/tmp/base.tsv".into(),
            detail: "injected storage-truncate — re-simulated".into(),
            recovered: true,
        });
        rep.checkpoint_degraded = true;
        let section = failure_report_section(&[rep]);
        assert_eq!(section.len(), 5);
        let json = section.to_json();
        for needle in [
            "\"event\": \"injected\"",
            "\"event\": \"recovered\"",
            "\"event\": \"failed\"",
            "\"event\": \"storage-recovered\"",
            "\"event\": \"checkpoint-degraded\"",
            "\"scope\": \"tuning-100\"",
            "\"kind\": \"timeout\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn malformed_arguments_are_reported_not_panicked() {
        assert!(parse(&["--instructions"])
            .unwrap_err()
            .contains("requires a value"));
        assert!(parse(&["--instructions", "many"])
            .unwrap_err()
            .contains("invalid"));
        assert!(parse(&["--instructions", "0"])
            .unwrap_err()
            .contains("positive"));
        assert!(parse(&["--wat"]).unwrap_err().contains("unknown argument"));
    }

    #[test]
    fn json_document_combines_sections() {
        let mut a = report::Report::new(&["x"]);
        a.push(vec![1u64.into()]);
        let b = report::Report::new(&["y"]);
        let doc = json_document(&[("first", a), ("empty", b)]);
        assert!(doc.starts_with('{') && doc.ends_with('}'));
        assert!(doc.contains("\"first\": ["));
        assert!(doc.contains("\"empty\": ["));
        assert!(doc.contains("\"x\": 1"));
    }

    #[test]
    fn metrics_and_outcome_reports_have_aligned_arity() {
        let m = restune::RunMetrics {
            app: "gzip",
            technique: "base",
            wall_seconds: 0.5,
            cycles: 1000,
            committed: 900,
            sim_cycles_per_second: 2000.0,
            violation_cycles: 0,
            first_level_fraction: 0.0,
            second_level_fraction: 0.0,
            sensor_response_fraction: 0.0,
            detector_events: 0,
            base_cache_hits: 0,
            base_cache_misses: 1,
            phase_controller_seconds: 0.1,
            phase_cpu_seconds: 0.2,
            phase_power_seconds: 0.1,
            phase_supply_seconds: 0.1,
            replayed: false,
            attempts: 1,
        };
        let r = run_metrics_report(&[m]);
        assert_eq!(r.len(), 1);
        assert!(r.to_json().contains("\"app\": \"gzip\""));

        let o = restune::RelativeOutcome {
            app: "gzip",
            slowdown: 1.05,
            relative_energy: 1.01,
            relative_energy_delay: 1.06,
            first_level_fraction: 0.1,
            second_level_fraction: 0.0,
            sensor_response_fraction: 0.0,
            violation_cycles: 0,
        };
        let mut rows = outcomes_report();
        push_outcomes(&mut rows, "tuning-100", &[o]);
        assert_eq!(rows.len(), 1);
        assert!(rows.to_json().contains("\"design_point\": \"tuning-100\""));
    }
}
