//! Minimal CSV and JSON emitters for experiment results.
//!
//! The harnesses print human tables; `noise-lab` can additionally dump
//! machine-readable files for downstream plotting. Values are flat
//! (strings/numbers), so a dependency-free emitter suffices.

use std::fmt::Write as _;
use std::path::Path;

/// A single emitted value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Text (quoted/escaped on output).
    Text(String),
    /// A floating-point number.
    Number(f64),
    /// An integer.
    Integer(i64),
    /// A boolean.
    Bool(bool),
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Number(x)
    }
}

impl From<u64> for Value {
    fn from(x: u64) -> Self {
        Value::Integer(x as i64)
    }
}

impl From<u32> for Value {
    fn from(x: u32) -> Self {
        Value::Integer(x as i64)
    }
}

impl From<i64> for Value {
    fn from(x: i64) -> Self {
        Value::Integer(x)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

fn csv_escape(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A rectangular result set with named columns.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    columns: Vec<String>,
    rows: Vec<Vec<Value>>,
}

impl Report {
    /// Creates an empty report with the given column names.
    ///
    /// # Panics
    ///
    /// Panics if `columns` is empty.
    pub fn new(columns: &[&str]) -> Self {
        assert!(!columns.is_empty(), "report needs at least one column");
        Self {
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch.
    pub fn push(&mut self, row: Vec<Value>) {
        assert_eq!(row.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows have been pushed.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders RFC-4180-style CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(
            &self
                .columns
                .iter()
                .map(|c| csv_escape(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .map(|v| match v {
                    Value::Text(s) => csv_escape(s),
                    Value::Number(x) => format!("{x}"),
                    Value::Integer(x) => format!("{x}"),
                    Value::Bool(b) => format!("{b}"),
                })
                .collect();
            out.push_str(&line.join(","));
            out.push('\n');
        }
        out
    }

    /// Renders a JSON array of objects.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str("  {");
            for (j, (col, v)) in self.columns.iter().zip(row).enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = match v {
                    Value::Text(s) => {
                        write!(out, "\"{}\": \"{}\"", json_escape(col), json_escape(s))
                    }
                    Value::Number(x) => {
                        if x.is_finite() {
                            write!(out, "\"{}\": {x}", json_escape(col))
                        } else {
                            write!(out, "\"{}\": null", json_escape(col))
                        }
                    }
                    Value::Integer(x) => write!(out, "\"{}\": {x}", json_escape(col)),
                    Value::Bool(b) => write!(out, "\"{}\": {b}", json_escape(col)),
                };
            }
            out.push_str(if i + 1 < self.rows.len() {
                "},\n"
            } else {
                "}\n"
            });
        }
        out.push(']');
        out
    }

    /// Writes CSV or JSON based on the path extension (`.json` → JSON,
    /// anything else → CSV).
    ///
    /// The file appears atomically: the body is written to a sibling
    /// temporary file, fsynced, and renamed over `path`, so a harness
    /// killed mid-write (routine under the chaos/SIGINT paths) never
    /// leaves a torn report behind.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        use std::io::Write as _;
        let body = if path.extension().is_some_and(|e| e == "json") {
            self.to_json()
        } else {
            self.to_csv()
        };
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)?;
        }
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        let result = (|| {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(body.as_bytes())?;
            file.sync_all()?;
            std::fs::rename(&tmp, path)
        })();
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new(&["app", "slowdown", "violations"]);
        r.push(vec!["parser".into(), 1.021.into(), 19u64.into()]);
        r.push(vec!["he said \"hi\", ok".into(), 2.0.into(), 0u64.into()]);
        r
    }

    #[test]
    fn csv_round_trips_simple_values() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "app,slowdown,violations");
        assert_eq!(lines[1], "parser,1.021,19");
        assert!(lines[2].starts_with("\"he said \"\"hi\"\", ok\""));
    }

    #[test]
    fn json_is_wellformed_and_escaped() {
        let json = sample().to_json();
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        assert!(json.contains("\"app\": \"parser\""));
        assert!(json.contains("\\\"hi\\\""));
        assert!(json.contains("\"violations\": 19"));
        // Balanced braces: one pair per row.
        assert_eq!(json.matches('{').count(), 2);
        assert_eq!(json.matches('}').count(), 2);
    }

    #[test]
    fn write_to_picks_format_by_extension() {
        let dir = std::env::temp_dir();
        let csv_path = dir.join("restune_report_test.csv");
        let json_path = dir.join("restune_report_test.json");
        sample().write_to(&csv_path).unwrap();
        sample().write_to(&json_path).unwrap();
        assert!(std::fs::read_to_string(&csv_path)
            .unwrap()
            .starts_with("app,"));
        assert!(std::fs::read_to_string(&json_path)
            .unwrap()
            .starts_with('['));
        let _ = std::fs::remove_file(csv_path);
        let _ = std::fs::remove_file(json_path);
    }

    #[test]
    fn len_and_empty() {
        assert!(Report::new(&["x"]).is_empty());
        assert_eq!(sample().len(), 2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut r = Report::new(&["a", "b"]);
        r.push(vec!["only-one".into()]);
    }

    #[test]
    fn bools_render_bare_in_both_formats() {
        let mut r = Report::new(&["ok"]);
        r.push(vec![true.into()]);
        assert!(r.to_json().contains("\"ok\": true"));
        assert!(r.to_csv().ends_with("true\n"));
    }

    #[test]
    fn non_finite_numbers_become_null() {
        let mut r = Report::new(&["x"]);
        r.push(vec![f64::NAN.into()]);
        assert!(r.to_json().contains("null"));
    }

    #[test]
    fn carriage_returns_are_quoted_in_csv_and_escaped_in_json() {
        let mut r = Report::new(&["note"]);
        r.push(vec!["line one\r\nline two".into()]);
        r.push(vec!["bare\rreturn".into()]);
        let csv = r.to_csv();
        // RFC 4180: fields containing CR must be quoted; the raw bytes
        // survive inside the quotes.
        assert!(csv.contains("\"line one\r\nline two\""));
        assert!(csv.contains("\"bare\rreturn\""));
        let json = r.to_json();
        assert!(json.contains("line one\\r\\nline two"));
        assert!(json.contains("bare\\rreturn"));
        assert!(!json.contains('\r'), "raw CR must never reach JSON output");
    }

    #[test]
    fn csv_crlf_field_round_trips_through_quoting() {
        // A minimal RFC-4180 reader: a quoted field keeps its inner CR/LF.
        let mut r = Report::new(&["x"]);
        r.push(vec!["a\r\nb".into()]);
        let csv = r.to_csv();
        let body = csv.strip_prefix("x\n").unwrap();
        assert_eq!(body, "\"a\r\nb\"\n");
        let inner = body.trim_end_matches('\n');
        let unquoted = inner
            .strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .unwrap()
            .replace("\"\"", "\"");
        assert_eq!(unquoted, "a\r\nb");
    }

    #[test]
    fn write_to_is_atomic_and_leaves_no_temp_file() {
        let dir = std::env::temp_dir().join(format!("restune_atomic_{}", std::process::id()));
        let path = dir.join("report.csv");
        // Pre-existing (possibly torn) content is replaced wholesale.
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(&path, "torn,partial").unwrap();
        sample().write_to(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with("app,"));
        assert!(body.ends_with('\n'));
        // No stray temporaries remain next to the target.
        let stray: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n != "report.csv")
            .collect();
        assert!(stray.is_empty(), "leftover temp files: {stray:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_to_creates_missing_parent_dirs() {
        let dir = std::env::temp_dir().join(format!("restune_atomic_mkdir_{}", std::process::id()));
        let path = dir.join("nested").join("report.json");
        sample().write_to(&path).unwrap();
        assert!(std::fs::read_to_string(&path).unwrap().starts_with('['));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
