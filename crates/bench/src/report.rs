//! Minimal CSV and JSON emitters for experiment results.
//!
//! The harnesses print human tables; `noise-lab` can additionally dump
//! machine-readable files for downstream plotting. Values are flat
//! (strings/numbers), so a dependency-free emitter suffices.

use std::fmt::Write as _;
use std::path::Path;

/// A single emitted value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Text (quoted/escaped on output).
    Text(String),
    /// A floating-point number.
    Number(f64),
    /// An integer.
    Integer(i64),
    /// A boolean.
    Bool(bool),
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Number(x)
    }
}

impl From<u64> for Value {
    fn from(x: u64) -> Self {
        Value::Integer(x as i64)
    }
}

impl From<u32> for Value {
    fn from(x: u32) -> Self {
        Value::Integer(x as i64)
    }
}

impl From<i64> for Value {
    fn from(x: i64) -> Self {
        Value::Integer(x)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

fn csv_escape(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A rectangular result set with named columns.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    columns: Vec<String>,
    rows: Vec<Vec<Value>>,
}

impl Report {
    /// Creates an empty report with the given column names.
    ///
    /// # Panics
    ///
    /// Panics if `columns` is empty.
    pub fn new(columns: &[&str]) -> Self {
        assert!(!columns.is_empty(), "report needs at least one column");
        Self {
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch.
    pub fn push(&mut self, row: Vec<Value>) {
        assert_eq!(row.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows have been pushed.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders RFC-4180-style CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(
            &self
                .columns
                .iter()
                .map(|c| csv_escape(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .map(|v| match v {
                    Value::Text(s) => csv_escape(s),
                    Value::Number(x) => format!("{x}"),
                    Value::Integer(x) => format!("{x}"),
                    Value::Bool(b) => format!("{b}"),
                })
                .collect();
            out.push_str(&line.join(","));
            out.push('\n');
        }
        out
    }

    /// Renders a JSON array of objects.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str("  {");
            for (j, (col, v)) in self.columns.iter().zip(row).enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = match v {
                    Value::Text(s) => {
                        write!(out, "\"{}\": \"{}\"", json_escape(col), json_escape(s))
                    }
                    Value::Number(x) => {
                        if x.is_finite() {
                            write!(out, "\"{}\": {x}", json_escape(col))
                        } else {
                            write!(out, "\"{}\": null", json_escape(col))
                        }
                    }
                    Value::Integer(x) => write!(out, "\"{}\": {x}", json_escape(col)),
                    Value::Bool(b) => write!(out, "\"{}\": {b}", json_escape(col)),
                };
            }
            out.push_str(if i + 1 < self.rows.len() {
                "},\n"
            } else {
                "}\n"
            });
        }
        out.push(']');
        out
    }

    /// Writes CSV or JSON based on the path extension (`.json` → JSON,
    /// anything else → CSV).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        let body = if path.extension().is_some_and(|e| e == "json") {
            self.to_json()
        } else {
            self.to_csv()
        };
        std::fs::write(path, body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new(&["app", "slowdown", "violations"]);
        r.push(vec!["parser".into(), 1.021.into(), 19u64.into()]);
        r.push(vec!["he said \"hi\", ok".into(), 2.0.into(), 0u64.into()]);
        r
    }

    #[test]
    fn csv_round_trips_simple_values() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "app,slowdown,violations");
        assert_eq!(lines[1], "parser,1.021,19");
        assert!(lines[2].starts_with("\"he said \"\"hi\"\", ok\""));
    }

    #[test]
    fn json_is_wellformed_and_escaped() {
        let json = sample().to_json();
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        assert!(json.contains("\"app\": \"parser\""));
        assert!(json.contains("\\\"hi\\\""));
        assert!(json.contains("\"violations\": 19"));
        // Balanced braces: one pair per row.
        assert_eq!(json.matches('{').count(), 2);
        assert_eq!(json.matches('}').count(), 2);
    }

    #[test]
    fn write_to_picks_format_by_extension() {
        let dir = std::env::temp_dir();
        let csv_path = dir.join("restune_report_test.csv");
        let json_path = dir.join("restune_report_test.json");
        sample().write_to(&csv_path).unwrap();
        sample().write_to(&json_path).unwrap();
        assert!(std::fs::read_to_string(&csv_path)
            .unwrap()
            .starts_with("app,"));
        assert!(std::fs::read_to_string(&json_path)
            .unwrap()
            .starts_with('['));
        let _ = std::fs::remove_file(csv_path);
        let _ = std::fs::remove_file(json_path);
    }

    #[test]
    fn len_and_empty() {
        assert!(Report::new(&["x"]).is_empty());
        assert_eq!(sample().len(), 2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut r = Report::new(&["a", "b"]);
        r.push(vec!["only-one".into()]);
    }

    #[test]
    fn bools_render_bare_in_both_formats() {
        let mut r = Report::new(&["ok"]);
        r.push(vec![true.into()]);
        assert!(r.to_json().contains("\"ok\": true"));
        assert!(r.to_csv().ends_with("true\n"));
    }

    #[test]
    fn non_finite_numbers_become_null() {
        let mut r = Report::new(&["x"]);
        r.push(vec![f64::NAN.into()]);
        assert!(r.to_json().contains("null"));
    }
}
