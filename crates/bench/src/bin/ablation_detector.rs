//! Ablation: why the detector covers the whole resonance band, and how the
//! exact-period detector compares with the dyadic wavelet alternative.
//!
//! 1. **Band coverage** (Section 3.1.3): a detector with adders only at the
//!    resonant period (the flaw the paper attributes to damping \[14\])
//!    misses band-edge waveforms that still violate the margin.
//! 2. **Exact periods vs. dyadic wavelets** (\[11\]): the wavelet detector's
//!    dyadic scale grid loses fidelity toward the band edges.

use bench::format_table;
use restune::{EventDetector, TuningConfig, WaveletConfig, WaveletDetector};
use rlc::units::{Amps, Cycles, Hertz};
use rlc::{simulate_waveform, PeriodicWave, SupplyParams};

/// Max event count a detector reaches on a sustained 40 A square wave.
fn max_count(config: TuningConfig, period: u64) -> u32 {
    let mut det = EventDetector::new(config);
    let mut max = 0;
    for c in 0..2_500u64 {
        let i = if (c / (period / 2)).is_multiple_of(2) {
            90
        } else {
            50
        };
        if let Some(ev) = det.observe(i) {
            max = max.max(ev.count);
        }
    }
    max
}

fn wavelet_warnings(period: u64) -> u64 {
    let mut det = WaveletDetector::new(WaveletConfig::isca04_table1());
    for c in 0..2_500u64 {
        let i = if (c / (period / 2)).is_multiple_of(2) {
            90
        } else {
            50
        };
        det.observe(i);
    }
    det.warnings()
}

fn main() {
    let full_band = TuningConfig::isca04_table1(100);
    // The ablated detector: adders only at the resonant period ±2 cycles.
    let narrow = TuningConfig {
        band_min_period: Cycles::new(98),
        band_max_period: Cycles::new(102),
        ..full_band
    };

    println!("=== Ablation 1: band-wide vs resonant-period-only detection ===\n");
    let supply = SupplyParams::isca04_table1();
    let mut rows = Vec::new();
    for period in [84u64, 90, 96, 100, 104, 110, 118] {
        // Does the physical supply violate under this wave?
        let wave =
            PeriodicWave::sustained_square(Amps::new(70.0), Amps::new(40.0), Cycles::new(period));
        let violates =
            simulate_waveform(&supply, Hertz::from_giga(10.0), &wave, Cycles::new(2_500))
                .violated();
        rows.push(vec![
            format!("{period}"),
            if violates { "yes".into() } else { "no".into() },
            format!("{}", max_count(full_band, period)),
            format!("{}", max_count(narrow, period)),
            format!("{}", wavelet_warnings(period)),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "wave period (cy)",
                "violates margin",
                "count: band-wide",
                "count: resonant-only",
                "wavelet warnings"
            ],
            &rows
        )
    );
    println!(
        "A detector restricted to the resonant period (like damping's single-\n\
         frequency target) under-counts band-edge waveforms that physically\n\
         violate; the band-wide adders track every violating period. The dyadic\n\
         wavelet detector warns, but with fewer warnings toward the band edges\n\
         where its scale grid mismatches the half-periods."
    );
}
