//! Ablation: clock-gating aggressiveness versus inductive noise — the
//! paper's Section 4.1 observation that "more aggressive clock gating leads
//! to more variation", run on the violating applications.

use bench::{format_table, HarnessArgs};
use powermodel::{GatingStyle, PowerConfig};
use restune::{run, SimConfig, Technique};
use workloads::spec2k;

fn main() {
    let args = HarnessArgs::parse();
    println!("=== Ablation 3: clock-gating style vs inductive noise ===");
    println!(
        "({} instructions per application, violating apps)\n",
        args.instructions
    );

    let mut rows = Vec::new();
    for (label, style) in [
        ("aggressive (paper)", GatingStyle::Aggressive),
        ("moderate", GatingStyle::Moderate),
        ("none", GatingStyle::None),
    ] {
        let sim = SimConfig {
            power: PowerConfig::isca04_table1_with_gating(style),
            ..SimConfig::isca04(args.instructions)
        };
        let mut violations = 0u64;
        let mut worst: f64 = 0.0;
        let mut energy = 0.0;
        for p in spec2k::violating() {
            let r = run(&p, &Technique::Base, &sim);
            violations += r.violation_cycles;
            worst = worst.max(r.worst_noise.abs().volts());
            energy += r.energy_joules;
        }
        rows.push(vec![
            label.to_string(),
            format!("{:.1}", sim.power.idle_current.amps()),
            format!("{:.1}", sim.power.dynamic_range().amps()),
            format!("{violations}"),
            format!("{:.1}", worst * 1e3),
            format!("{:.2}", energy * 1e3),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "gating style",
                "idle (A)",
                "dyn range (A)",
                "violations",
                "worst noise (mV)",
                "energy (mJ)"
            ],
            &rows
        )
    );
    println!(
        "Aggressive gating saves energy but maximizes current swing — it is what\n\
         makes inductive noise an architectural problem at all (Section 4.1). With\n\
         no gating the chip burns far more energy and the margin is never stressed."
    );
}
