//! Section 2.1.3: design-time calibration of the resonance-tuning
//! parameters by circuit simulation — the resonant current variation
//! threshold, the band-edge tolerance, and the maximum repetition
//! tolerance — for both supplies discussed in the paper.

use bench::format_table;
use rlc::units::{Amps, Hertz};
use rlc::{calibrate, SupplyParams};

fn main() {
    println!("=== Section 2.1.3: calibration by circuit simulation ===\n");
    let cases = [
        (
            "Section 2 example @ 5 GHz",
            SupplyParams::isca04_section2_example(),
            Hertz::from_giga(5.0),
        ),
        (
            "Table 1 design @ 10 GHz",
            SupplyParams::isca04_table1(),
            Hertz::from_giga(10.0),
        ),
    ];

    let mut rows = Vec::new();
    for (label, params, clock) in cases {
        let cal = calibrate(&params, clock, Amps::new(70.0))
            .expect("both supplies violate within the 70 A processor swing");
        rows.push(vec![
            label.to_string(),
            format!("{:.1}", cal.variation_threshold.amps()),
            format!("{:.1}", cal.band_edge_tolerance.amps()),
            format!("{}", cal.max_repetition_tolerance),
            format!("{}", cal.resonant_period),
            format!(
                "{}–{}",
                cal.band_periods.0.count(),
                cal.band_periods.1.count()
            ),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "supply",
                "variation threshold (A)",
                "band-edge tolerance (A)",
                "max repetition tol",
                "resonant period",
                "band periods (cy)"
            ],
            &rows
        )
    );
    println!(
        "paper: Section 2 example — threshold 10 A, band-edge 13 A, tolerance 6;\n\
         Table 1 — threshold 32 A, tolerance 4, period 100 cycles, band 84–119 cycles.\n\
         (Thresholds are calibrated with square-wave excitation; the paper's excitation\n\
         shape is unreported, so absolute amps differ while the structure matches.)"
    );
}
