//! Section 2.2: low-frequency resonance, and resonance tuning applied to
//! it.
//!
//! The two-stage supply model adds the off-chip loop's impedance peak at a
//! few megahertz. This harness shows (1) the two impedance peaks, (2) a
//! current waveform at the low-frequency resonant period building toward
//! the margin over *thousands* of cycles, and (3) the same detector
//! machinery, reconfigured for the low band's periods, catching it with
//! enormous slack — the paper's point that tuning applies to both peaks.

use bench::{ascii_chart, downsample_extreme, format_table};
use restune::{EventDetector, TuningConfig};
use rlc::units::{Amps, Cycles, Hertz};
use rlc::TwoStageParams;

fn main() {
    let params = TwoStageParams::isca04_low_frequency();
    let clock = Hertz::from_giga(10.0);
    println!("=== Section 2.2: low-frequency resonance ===\n");

    // 1. The two impedance peaks.
    println!("impedance magnitude, 0.2–200 MHz (log-spaced sweep):");
    let series: Vec<f64> = (0..110)
        .map(|k| {
            let f = 0.2e6 * (1000.0f64).powf(k as f64 / 109.0); // 0.2 → 200 MHz
            params.impedance_at(Hertz::new(f)).magnitude() * 1e3
        })
        .collect();
    println!("{}", ascii_chart(&series, 12, "mΩ"));
    println!("(left peak: off-chip loop at a few MHz; right peak: on-die loop at ~100 MHz)\n");

    let f_low = params.low_resonant_frequency();
    let (lo, hi) = params.low_band_cycles(clock).expect("valid clock");
    println!(
        "low-frequency peak: {:.2} MHz (Q = {:.1}); band periods {}–{} cycles at 10 GHz",
        f_low.hertz() / 1e6,
        params.low_quality_factor(),
        lo.count(),
        hi.count()
    );

    // 2. Excite at the low resonant period and watch the build-up.
    let period = (clock.hertz() / f_low.hertz()).round() as u64;
    let mut supply = rlc::TwoStageSupply::new(params, clock, Amps::new(70.0));
    let total = period * 12;
    let mut noise = Vec::with_capacity(total as usize);
    let mut current = Vec::with_capacity(total as usize);
    for c in 0..total {
        let i = if (c / (period / 2)).is_multiple_of(2) {
            90.0
        } else {
            50.0
        };
        noise.push(supply.tick(Amps::new(i)).volts() * 1e3);
        current.push(i);
    }
    println!("\ndie-level voltage deviation (mV) under a 40 A square wave at the low peak:");
    println!(
        "{}",
        ascii_chart(&downsample_extreme(&noise, 110), 12, "mV")
    );
    println!(
        "worst deviation {:+.1} mV, margin ±50 mV, violations {}",
        supply.worst_noise().volts() * 1e3,
        supply.violation_cycles()
    );

    // 3. The same detector, reconfigured for the low band.
    let low_config = TuningConfig {
        band_min_period: Cycles::new(lo.count()),
        band_max_period: Cycles::new(hi.count()),
        ..TuningConfig::isca04_table1(100)
    };
    let mut det = EventDetector::new(low_config);
    let mut first_at = [None; 5];
    for (c, &i) in current.iter().enumerate() {
        if let Some(ev) = det.observe(i as i64) {
            for (level, slot) in first_at.iter_mut().enumerate().skip(1) {
                if ev.count >= level as u32 && slot.is_none() {
                    *slot = Some(c);
                }
            }
        }
    }
    let rows: Vec<Vec<String>> = (1..=4)
        .map(|level| {
            vec![
                format!("{level}"),
                first_at[level].map_or("never".into(), |c| format!("{c}")),
                first_at[level].map_or("-".into(), |c| format!("{:.1}", c as f64 / period as f64)),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(&["event count reached", "cycle", "periods elapsed"], &rows)
    );
    println!(
        "At this peak a quarter period is ~{} cycles: the response timing that was\n\
         already lenient at 100 MHz becomes enormous at a few MHz — scaling favors\n\
         resonance tuning (Section 3.2).",
        period / 4
    );
}
