//! Figure 4: a ~400-cycle excerpt of *parser* around a noise-margin
//! violation, showing voltage variation, core current, and the resonant
//! event count giving advance warning of the violation.

use bench::{ascii_chart, downsample_extreme, json_document, HarnessArgs, Report};
use restune::{run_observed, SimConfig, Technique};
use workloads::spec2k;

fn main() {
    let args = HarnessArgs::parse();
    let parser = spec2k::by_name("parser").expect("parser is in the suite");
    let sim = SimConfig::isca04(args.instructions.max(150_000));

    // Record the base machine (violations allowed) with the detector
    // running passively: Technique::Tuning would *prevent* the violation we
    // want to show, so we re-run detection offline on the recorded current.
    let mut current = Vec::new();
    let mut noise = Vec::new();
    let result = run_observed(&parser, &Technique::Base, &sim, |rec| {
        current.push(rec.current.amps());
        noise.push(rec.noise.volts());
    });

    let mut detector = restune::EventDetector::new(restune::TuningConfig::isca04_table1(100));
    let mut counts = vec![0u32; current.len()];
    for (c, i) in current.iter().enumerate() {
        if let Some(ev) = detector.observe(i.round() as i64) {
            counts[c] = ev.count;
        }
    }

    let margin = 0.05;
    let violation = noise.iter().position(|v| v.abs() > margin);

    if args.json {
        let mut summary = Report::new(&[
            "app",
            "cycles",
            "violation_cycles",
            "worst_noise_mv",
            "first_violation_cycle",
        ]);
        summary.push(vec![
            "parser".into(),
            result.cycles.into(),
            result.violation_cycles.into(),
            (result.worst_noise.volts() * 1e3).into(),
            violation.map(|v| v as i64).unwrap_or(-1).into(),
        ]);
        let mut warnings = Report::new(&["count_level", "cycles_before_violation"]);
        if let Some(violation_at) = violation {
            let lo = violation_at.saturating_sub(330);
            for level in 2..=4u32 {
                let at = counts[lo..=violation_at].iter().position(|&c| c >= level);
                warnings.push(vec![
                    level.into(),
                    at.map(|p| (violation_at - (lo + p)) as i64)
                        .unwrap_or(-1)
                        .into(),
                ]);
            }
        }
        println!(
            "{}",
            json_document(&[("fig4", summary), ("advance_warning", warnings)])
        );
        return;
    }

    println!("=== Figure 4: voltage and current variation in parser ===");
    println!(
        "base run: {} cycles, {} violation cycles, worst noise {:+.1} mV",
        result.cycles,
        result.violation_cycles,
        result.worst_noise.volts() * 1e3
    );

    let Some(violation_at) = violation else {
        println!("no violation in this run; increase --instructions");
        return;
    };
    let lo = violation_at.saturating_sub(330);
    let hi = (violation_at + 70).min(noise.len());
    println!("\nwindow: cycles {lo}–{hi} (violation at cycle {violation_at})");

    println!("\nvoltage variation (mV):");
    let mv: Vec<f64> = noise[lo..hi].iter().map(|v| v * 1e3).collect();
    println!("{}", ascii_chart(&downsample_extreme(&mv, 110), 13, "mV"));

    println!("processor core current (A):");
    println!(
        "{}",
        ascii_chart(&downsample_extreme(&current[lo..hi], 110), 9, "A")
    );

    println!("resonant event count:");
    // Hold the last count for readability, as the paper's Figure 4 does.
    let mut held = Vec::with_capacity(hi - lo);
    let mut last = 0u32;
    for &c in &counts[lo..hi] {
        if c > 0 {
            last = c;
        }
        held.push(last as f64);
    }
    println!("{}", ascii_chart(&downsample_extreme(&held, 110), 6, "ct"));

    // Advance-warning summary: cycles before the violation at which each
    // count level was first reached within this window.
    for level in 2..=4u32 {
        let at = counts[lo..=violation_at].iter().position(|&c| c >= level);
        match at {
            Some(p) => println!(
                "count {level} first reached {} cycles before the violation",
                violation_at - (lo + p)
            ),
            None => println!("count {level} not reached before the violation"),
        }
    }
    println!("(paper: count 2 ≈ 150 cycles, count 3 ≈ 100, count 4 ≈ 75 cycles before)");
}
