//! Table 4: the voltage-threshold technique of \[10\] swept over detection
//! threshold, sensor noise, and sensing-to-response delay.

use bench::{
    format_table, json_document, outcomes_report, push_outcomes, run_metrics_report, HarnessArgs,
    Report,
};
use restune::engine::cached_base_suite;
use restune::experiment::table4;
use restune::{SensorConfig, SimConfig};

fn main() {
    let args = HarnessArgs::parse();
    let sim = SimConfig::isca04(args.instructions);

    let base_suite = cached_base_suite(&sim);
    let base = &base_suite.results;
    // The paper's five rows: (target threshold mV, noise mV p-p, delay).
    let configs = [
        SensorConfig::table4(30.0, 0.0, 0),
        SensorConfig::table4(20.0, 0.0, 0),
        SensorConfig::table4(30.0, 15.0, 0),
        SensorConfig::table4(20.0, 10.0, 5),
        SensorConfig::table4(20.0, 15.0, 3),
    ];
    let rows = table4(&sim, &configs, base);

    if args.json {
        let mut table = Report::new(&[
            "target_threshold_mv",
            "sensor_noise_mv",
            "actual_threshold_mv",
            "delay_cycles",
            "avg_sensor_response_fraction",
            "worst_slowdown",
            "worst_app",
            "avg_slowdown",
            "avg_energy_delay",
        ]);
        let mut outcomes = outcomes_report();
        for r in &rows {
            let s = &r.summary;
            let label = format!(
                "sensor-{:.0}mV-{:.0}mV-{}cy",
                r.config.target_threshold.volts() * 1e3,
                r.config.sensor_noise_pp.volts() * 1e3,
                r.config.delay_cycles
            );
            table.push(vec![
                (r.config.target_threshold.volts() * 1e3).into(),
                (r.config.sensor_noise_pp.volts() * 1e3).into(),
                (r.config.actual_threshold().volts() * 1e3).into(),
                u64::from(r.config.delay_cycles).into(),
                s.avg_sensor_response_fraction.into(),
                s.worst_slowdown.into(),
                s.worst_app.into(),
                s.avg_slowdown.into(),
                s.avg_energy_delay.into(),
            ]);
            push_outcomes(&mut outcomes, &label, &r.outcomes);
        }
        let metrics = run_metrics_report(&base_suite.metrics);
        println!(
            "{}",
            json_document(&[
                ("table4", table),
                ("outcomes", outcomes),
                ("run_metrics", metrics),
            ])
        );
        return;
    }

    println!("=== Table 4: technique of [10] (voltage-threshold sensing) ===");
    println!("({} instructions per application)\n", args.instructions);

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let s = &r.summary;
            vec![
                format!("{:.0}", r.config.target_threshold.volts() * 1e3),
                format!("{:.0}", r.config.sensor_noise_pp.volts() * 1e3),
                format!("{:.0}", r.config.actual_threshold().volts() * 1e3),
                format!("{}", r.config.delay_cycles),
                format!("{:.3}", s.avg_sensor_response_fraction),
                format!("{:.3} ({})", s.worst_slowdown, s.worst_app),
                format!("{:.3}", s.avg_slowdown),
                format!("{:.3}", s.avg_energy_delay),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "target (mV)",
                "noise (mV)",
                "actual (mV)",
                "delay",
                "frac in resp",
                "worst slowdown",
                "avg slowdown",
                "avg E·D"
            ],
            &table
        )
    );
    println!(
        "paper: frac 0.002→0.27, avg slowdown 1.005→1.236, avg energy-delay 1.030→1.460\n\
         (ideal sensors are cheap; realistic noise + delay make [10] expensive)"
    );
}
