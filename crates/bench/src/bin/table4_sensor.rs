//! Table 4: the voltage-threshold technique of \[10\] swept over detection
//! threshold, sensor noise, and sensing-to-response delay.

use bench::{
    failure_report_section, format_table, json_document, outcomes_report, print_failure_reports,
    push_outcomes, run_metrics_report, HarnessArgs, Report,
};
use restune::engine::cached_base_suite;
use restune::experiment::{base_suite_supervised, table4, table4_supervised};
use restune::{SensorConfig, SimConfig};

fn main() {
    let _shutdown = bench::harness_init();
    let args = HarnessArgs::parse();
    let _trace = bench::init_trace(&args);
    let _connect = bench::init_connect(&args);
    let policy = args.policy();
    let sim = SimConfig::isca04(args.instructions);

    // The paper's five rows: (target threshold mV, noise mV p-p, delay).
    let configs = [
        SensorConfig::table4(30.0, 0.0, 0),
        SensorConfig::table4(20.0, 0.0, 0),
        SensorConfig::table4(30.0, 15.0, 0),
        SensorConfig::table4(20.0, 10.0, 5),
        SensorConfig::table4(20.0, 15.0, 3),
    ];
    let (rows, metrics, reports) = if policy.is_inert() {
        let base_suite = cached_base_suite(&sim);
        let rows = table4(&sim, &configs, &base_suite.results);
        (rows, base_suite.metrics.clone(), Vec::new())
    } else {
        let base = base_suite_supervised(&sim, &policy);
        let (rows, mut reports) = table4_supervised(&sim, &configs, &base, &policy);
        reports.insert(0, base.report.clone());
        let metrics: Vec<_> = base.metrics.iter().filter_map(|m| *m).collect();
        (rows, metrics, reports)
    };

    if args.json {
        let mut table = Report::new(&[
            "target_threshold_mv",
            "sensor_noise_mv",
            "actual_threshold_mv",
            "delay_cycles",
            "avg_sensor_response_fraction",
            "worst_slowdown",
            "worst_app",
            "avg_slowdown",
            "avg_energy_delay",
        ]);
        let mut outcomes = outcomes_report();
        for r in &rows {
            let s = &r.summary;
            let label = format!(
                "sensor-{:.0}mV-{:.0}mV-{}cy",
                r.config.target_threshold.volts() * 1e3,
                r.config.sensor_noise_pp.volts() * 1e3,
                r.config.delay_cycles
            );
            table.push(vec![
                (r.config.target_threshold.volts() * 1e3).into(),
                (r.config.sensor_noise_pp.volts() * 1e3).into(),
                (r.config.actual_threshold().volts() * 1e3).into(),
                u64::from(r.config.delay_cycles).into(),
                s.avg_sensor_response_fraction.into(),
                s.worst_slowdown.into(),
                s.worst_app.into(),
                s.avg_slowdown.into(),
                s.avg_energy_delay.into(),
            ]);
            push_outcomes(&mut outcomes, &label, &r.outcomes);
        }
        let metrics = run_metrics_report(&metrics);
        let mut sections = vec![
            ("table4", table),
            ("outcomes", outcomes),
            ("run_metrics", metrics),
        ];
        if !policy.is_inert() {
            sections.push(("failures", failure_report_section(&reports)));
        }
        println!("{}", json_document(&sections));
        return;
    }

    println!("=== Table 4: technique of [10] (voltage-threshold sensing) ===");
    println!("({} instructions per application)\n", args.instructions);

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let s = &r.summary;
            vec![
                format!("{:.0}", r.config.target_threshold.volts() * 1e3),
                format!("{:.0}", r.config.sensor_noise_pp.volts() * 1e3),
                format!("{:.0}", r.config.actual_threshold().volts() * 1e3),
                format!("{}", r.config.delay_cycles),
                format!("{:.3}", s.avg_sensor_response_fraction),
                format!("{:.3} ({})", s.worst_slowdown, s.worst_app),
                format!("{:.3}", s.avg_slowdown),
                format!("{:.3}", s.avg_energy_delay),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "target (mV)",
                "noise (mV)",
                "actual (mV)",
                "delay",
                "frac in resp",
                "worst slowdown",
                "avg slowdown",
                "avg E·D"
            ],
            &table
        )
    );
    println!(
        "paper: frac 0.002→0.27, avg slowdown 1.005→1.236, avg energy-delay 1.030→1.460\n\
         (ideal sensors are cheap; realistic noise + delay make [10] expensive)"
    );
    print_failure_reports(&reports);
}
