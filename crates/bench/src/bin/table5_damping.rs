//! Table 5: pipeline damping \[14\] with δ at 1, 0.5, and 0.25 of the
//! resonant current variation threshold (tightening δ is damping's only way
//! to cover the whole resonance band).

use bench::{
    format_table, json_document, outcomes_report, push_outcomes, run_metrics_report, HarnessArgs,
    Report,
};
use restune::engine::cached_base_suite;
use restune::experiment::table5;
use restune::SimConfig;

fn main() {
    let args = HarnessArgs::parse();
    let sim = SimConfig::isca04(args.instructions);

    let base_suite = cached_base_suite(&sim);
    let rows = table5(&sim, &[1.0, 0.5, 0.25], &base_suite.results);

    if args.json {
        let mut table = Report::new(&[
            "delta_relative",
            "worst_slowdown",
            "worst_app",
            "avg_slowdown",
            "avg_energy_delay",
            "residual_violation_cycles",
        ]);
        let mut outcomes = outcomes_report();
        for r in &rows {
            let s = &r.summary;
            table.push(vec![
                r.delta_relative.into(),
                s.worst_slowdown.into(),
                s.worst_app.into(),
                s.avg_slowdown.into(),
                s.avg_energy_delay.into(),
                s.total_violation_cycles.into(),
            ]);
            push_outcomes(
                &mut outcomes,
                &format!("damping-{}", r.delta_relative),
                &r.outcomes,
            );
        }
        let metrics = run_metrics_report(&base_suite.metrics);
        println!(
            "{}",
            json_document(&[
                ("table5", table),
                ("outcomes", outcomes),
                ("run_metrics", metrics),
            ])
        );
        return;
    }

    println!("=== Table 5: pipeline damping [14] ===");
    println!("({} instructions per application)\n", args.instructions);

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let s = &r.summary;
            vec![
                format!("{}", r.delta_relative),
                format!("{:.3} ({})", s.worst_slowdown, s.worst_app),
                format!("{:.3}", s.avg_slowdown),
                format!("{:.3}", s.avg_energy_delay),
                format!("{}", s.total_violation_cycles),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "δ / variation threshold",
                "worst slowdown",
                "avg slowdown",
                "avg E·D",
                "resid viol"
            ],
            &table
        )
    );
    println!(
        "paper: avg slowdown 1.10 / 1.15 / 1.24, avg energy-delay 1.12 / 1.17 / 1.26\n\
         (worst: fma3d — high-ILP apps pay most under per-cycle current caps)"
    );
}
