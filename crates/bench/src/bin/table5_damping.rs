//! Table 5: pipeline damping \[14\] with δ at 1, 0.5, and 0.25 of the
//! resonant current variation threshold (tightening δ is damping's only way
//! to cover the whole resonance band).

use bench::{
    failure_report_section, format_table, json_document, outcomes_report, print_failure_reports,
    push_outcomes, run_metrics_report, HarnessArgs, Report,
};
use restune::engine::cached_base_suite;
use restune::experiment::{base_suite_supervised, table5, table5_supervised};
use restune::SimConfig;

fn main() {
    let _shutdown = bench::harness_init();
    let args = HarnessArgs::parse();
    let _trace = bench::init_trace(&args);
    let _connect = bench::init_connect(&args);
    let policy = args.policy();
    let sim = SimConfig::isca04(args.instructions);

    let deltas = [1.0, 0.5, 0.25];
    let (rows, metrics, reports) = if policy.is_inert() {
        let base_suite = cached_base_suite(&sim);
        let rows = table5(&sim, &deltas, &base_suite.results);
        (rows, base_suite.metrics.clone(), Vec::new())
    } else {
        let base = base_suite_supervised(&sim, &policy);
        let (rows, mut reports) = table5_supervised(&sim, &deltas, &base, &policy);
        reports.insert(0, base.report.clone());
        let metrics: Vec<_> = base.metrics.iter().filter_map(|m| *m).collect();
        (rows, metrics, reports)
    };

    if args.json {
        let mut table = Report::new(&[
            "delta_relative",
            "worst_slowdown",
            "worst_app",
            "avg_slowdown",
            "avg_energy_delay",
            "residual_violation_cycles",
        ]);
        let mut outcomes = outcomes_report();
        for r in &rows {
            let s = &r.summary;
            table.push(vec![
                r.delta_relative.into(),
                s.worst_slowdown.into(),
                s.worst_app.into(),
                s.avg_slowdown.into(),
                s.avg_energy_delay.into(),
                s.total_violation_cycles.into(),
            ]);
            push_outcomes(
                &mut outcomes,
                &format!("damping-{}", r.delta_relative),
                &r.outcomes,
            );
        }
        let metrics = run_metrics_report(&metrics);
        let mut sections = vec![
            ("table5", table),
            ("outcomes", outcomes),
            ("run_metrics", metrics),
        ];
        if !policy.is_inert() {
            sections.push(("failures", failure_report_section(&reports)));
        }
        println!("{}", json_document(&sections));
        return;
    }

    println!("=== Table 5: pipeline damping [14] ===");
    println!("({} instructions per application)\n", args.instructions);

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let s = &r.summary;
            vec![
                format!("{}", r.delta_relative),
                format!("{:.3} ({})", s.worst_slowdown, s.worst_app),
                format!("{:.3}", s.avg_slowdown),
                format!("{:.3}", s.avg_energy_delay),
                format!("{}", s.total_violation_cycles),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "δ / variation threshold",
                "worst slowdown",
                "avg slowdown",
                "avg E·D",
                "resid viol"
            ],
            &table
        )
    );
    println!(
        "paper: avg slowdown 1.10 / 1.15 / 1.24, avg energy-delay 1.12 / 1.17 / 1.26\n\
         (worst: fma3d — high-ILP apps pay most under per-cycle current caps)"
    );
    print_failure_reports(&reports);
}
