//! Summarizes a JSON-lines trace written by `--trace-out` / `RESTUNE_TRACE`:
//! event histogram, per-app violation and waveform-window breakdown, engine
//! span timings, mesh routing activity (per-host job counts, reroutes,
//! breaker transitions), sweep activity (points and frontier sizes per
//! workload class), and the final counter registry. With `--check` it
//! validates every line against the event-log schema — including the mesh
//! event shapes (`mesh-reroute` and `mesh-breaker` must carry a numeric
//! `host`; `mesh-breaker` a string `state`; `chaos-step` a string `class`)
//! and the sweep event shapes (`sweep-point` / `frontier-point` must carry
//! a string `class` and `technique` plus numeric `pdn`, `violations`,
//! `slowdown`, and `energy_delay`) — and exits non-zero on the first
//! malformed record; the CI trace stage runs it in that mode.

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::process::ExitCode;

use restune::obs::{parse_json, validate_line, JsonValue};

const USAGE: &str = "\
usage: trace_report [--check] PATH

  Summarize a restune JSON-lines trace (event histogram, per-app
  violation/waveform windows, engine span timings, counters).

  --check   validate every line against the event schema; exit 1 on the
            first malformed record instead of summarizing past it
";

fn main() -> ExitCode {
    let mut check = false;
    let mut path = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--check" => check = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if path.is_none() && !other.starts_with('-') => {
                path = Some(other.to_string());
            }
            other => {
                eprintln!("error: unexpected argument '{other}'\n{USAGE}");
                return ExitCode::from(bench::EXIT_USAGE as u8);
            }
        }
    }
    let Some(path) = path else {
        eprintln!("error: a trace path is required\n{USAGE}");
        return ExitCode::from(bench::EXIT_USAGE as u8);
    };
    let body = match std::fs::read_to_string(&path) {
        Ok(body) => body,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::from(bench::EXIT_USAGE as u8);
        }
    };

    let mut histogram: BTreeMap<String, u64> = BTreeMap::new();
    // app -> (violation episodes, waveform windows, window trigger cycles)
    let mut apps: BTreeMap<String, (u64, u64, Vec<u64>)> = BTreeMap::new();
    let mut counters: Vec<(String, u64)> = Vec::new();
    let mut spans: Vec<(String, f64)> = Vec::new();
    // breaker state -> transitions, chaos class -> steps
    let mut breaker_transitions: BTreeMap<String, u64> = BTreeMap::new();
    let mut chaos_steps: BTreeMap<String, u64> = BTreeMap::new();
    // workload class -> (sweep points, frontier points)
    let mut sweep_classes: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    let mut suite_start: Option<f64> = None;
    let mut total = 0u64;

    for (lineno, line) in body.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        total += 1;
        let validity = validate_line(line).and_then(|()| {
            let event = parse_json(line).expect("validate_line parsed it");
            validate_mesh_shape(&event)?;
            validate_sweep_shape(&event)?;
            Ok(event)
        });
        let event = match validity {
            Ok(event) => event,
            Err(e) => {
                if check {
                    eprintln!("error: line {}: {e}", lineno + 1);
                    return ExitCode::FAILURE;
                }
                eprintln!("warning: skipping malformed line {}: {e}", lineno + 1);
                continue;
            }
        };
        let kind = event
            .get("kind")
            .and_then(JsonValue::as_str)
            .expect("validated events carry a kind")
            .to_string();
        *histogram.entry(kind.clone()).or_insert(0) += 1;

        let app = event.get("app").and_then(JsonValue::as_str);
        match kind.as_str() {
            "violation" => {
                if let Some(app) = app {
                    apps.entry(app.to_string()).or_default().0 += 1;
                }
            }
            "waveform" => {
                if let Some(app) = app {
                    let entry = apps.entry(app.to_string()).or_default();
                    entry.1 += 1;
                    if let Some(cycle) = event.get("cycle").and_then(JsonValue::as_f64) {
                        entry.2.push(cycle as u64);
                    }
                }
            }
            "counter" => {
                if let (Some(name), Some(value)) = (
                    event.get("name").and_then(JsonValue::as_str),
                    event.get("value").and_then(JsonValue::as_f64),
                ) {
                    counters.push((name.to_string(), value as u64));
                }
            }
            "mesh-breaker" => {
                if let Some(state) = event.get("state").and_then(JsonValue::as_str) {
                    *breaker_transitions.entry(state.to_string()).or_insert(0) += 1;
                }
            }
            "chaos-step" => {
                if let Some(class) = event.get("class").and_then(JsonValue::as_str) {
                    *chaos_steps.entry(class.to_string()).or_insert(0) += 1;
                }
            }
            "sweep-point" | "frontier-point" => {
                if let Some(class) = event.get("class").and_then(JsonValue::as_str) {
                    let entry = sweep_classes.entry(class.to_string()).or_default();
                    if kind == "sweep-point" {
                        entry.0 += 1;
                    } else {
                        entry.1 += 1;
                    }
                }
            }
            "suite-start" => {
                suite_start = event.get("wall").and_then(JsonValue::as_f64);
            }
            "suite-end" => {
                if let (Some(start), Some(end)) = (
                    suite_start.take(),
                    event.get("wall").and_then(JsonValue::as_f64),
                ) {
                    let technique = event
                        .get("technique")
                        .and_then(JsonValue::as_str)
                        .unwrap_or("?");
                    spans.push((format!("suite[{technique}]"), end - start));
                }
            }
            _ => {}
        }
    }

    let mesh = MeshSummary::from_trace(&counters, &histogram, breaker_transitions, chaos_steps);

    // A closed pipe (`trace_report ... | head`) is a normal way to consume
    // the summary, so a broken-pipe write ends the program quietly instead
    // of panicking like println! would.
    let out = io::stdout().lock();
    match print_report(
        out,
        &path,
        total,
        &histogram,
        &apps,
        &spans,
        &counters,
        &mesh,
        &sweep_classes,
    ) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) if e.kind() == io::ErrorKind::BrokenPipe => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: cannot write report: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The `--check` schema gate for mesh events: beyond the generic event-log
/// schema, mesh records carry typed routing fields the chaos stages (and
/// this report) depend on.
fn validate_mesh_shape(event: &JsonValue) -> Result<(), String> {
    let kind = event.get("kind").and_then(JsonValue::as_str).unwrap_or("");
    let needs_host = matches!(kind, "mesh-reroute" | "mesh-breaker" | "chaos-step");
    if needs_host && event.get("host").and_then(JsonValue::as_f64).is_none() {
        return Err(format!("{kind} event without a numeric 'host' field"));
    }
    if kind == "mesh-breaker" && event.get("state").and_then(JsonValue::as_str).is_none() {
        return Err("mesh-breaker event without a string 'state' field".to_string());
    }
    if kind == "chaos-step" && event.get("class").and_then(JsonValue::as_str).is_none() {
        return Err("chaos-step event without a string 'class' field".to_string());
    }
    Ok(())
}

/// The `--check` schema gate for sweep events: point records carry the
/// typed fields the frontier report (and this summary) depend on, and the
/// end record carries the store totals.
fn validate_sweep_shape(event: &JsonValue) -> Result<(), String> {
    let kind = event.get("kind").and_then(JsonValue::as_str).unwrap_or("");
    if matches!(kind, "sweep-point" | "frontier-point") {
        for field in ["class", "technique"] {
            if event.get(field).and_then(JsonValue::as_str).is_none() {
                return Err(format!("{kind} event without a string '{field}' field"));
            }
        }
        for field in ["pdn", "violations", "slowdown", "energy_delay"] {
            if event.get(field).and_then(JsonValue::as_f64).is_none() {
                return Err(format!("{kind} event without a numeric '{field}' field"));
            }
        }
    }
    if kind == "sweep-end" {
        for field in ["points", "frontier", "store_hits", "store_misses"] {
            if event.get(field).and_then(JsonValue::as_f64).is_none() {
                return Err(format!("sweep-end event without a numeric '{field}' field"));
            }
        }
    }
    Ok(())
}

/// Aggregated mesh routing activity: per-host job/failure counters plus the
/// failover and breaker totals.
#[derive(Default)]
struct MeshSummary {
    /// host index -> (jobs, failures)
    per_host: BTreeMap<u64, (u64, u64)>,
    /// `mesh.*` totals by counter name (reroutes, breaker_opens, ...).
    totals: BTreeMap<String, u64>,
    /// breaker state -> transition events observed.
    breaker_transitions: BTreeMap<String, u64>,
    /// chaos step class -> steps applied.
    chaos_steps: BTreeMap<String, u64>,
}

impl MeshSummary {
    fn from_trace(
        counters: &[(String, u64)],
        histogram: &BTreeMap<String, u64>,
        breaker_transitions: BTreeMap<String, u64>,
        chaos_steps: BTreeMap<String, u64>,
    ) -> MeshSummary {
        let mut mesh = MeshSummary {
            breaker_transitions,
            chaos_steps,
            ..MeshSummary::default()
        };
        for (name, value) in counters {
            let Some(rest) = name.strip_prefix("mesh.") else {
                continue;
            };
            if let Some(per_host) = rest.strip_prefix("host") {
                if let Some((index, field)) = per_host.split_once('.') {
                    if let Ok(index) = index.parse::<u64>() {
                        let entry = mesh.per_host.entry(index).or_default();
                        match field {
                            "jobs" => entry.0 += value,
                            "failures" => entry.1 += value,
                            _ => {}
                        }
                        continue;
                    }
                }
            }
            *mesh.totals.entry(rest.to_string()).or_insert(0) += value;
        }
        for kind in ["mesh-reroute", "mesh-breaker", "chaos-step"] {
            if let Some(count) = histogram.get(kind) {
                *mesh.totals.entry(format!("{kind} events")).or_insert(0) += count;
            }
        }
        mesh
    }

    fn is_empty(&self) -> bool {
        self.per_host.is_empty()
            && self.totals.is_empty()
            && self.breaker_transitions.is_empty()
            && self.chaos_steps.is_empty()
    }
}

#[allow(clippy::too_many_arguments, clippy::type_complexity)]
fn print_report(
    mut out: impl Write,
    path: &str,
    total: u64,
    histogram: &BTreeMap<String, u64>,
    apps: &BTreeMap<String, (u64, u64, Vec<u64>)>,
    spans: &[(String, f64)],
    counters: &[(String, u64)],
    mesh: &MeshSummary,
    sweep_classes: &BTreeMap<String, (u64, u64)>,
) -> io::Result<()> {
    writeln!(out, "trace: {path} ({total} events)")?;
    writeln!(out)?;
    writeln!(out, "event histogram:")?;
    for (kind, count) in histogram {
        writeln!(out, "  {kind:<18} {count:>8}")?;
    }

    if !apps.is_empty() {
        writeln!(out)?;
        writeln!(out, "per-app violations and waveform windows:")?;
        for (app, (violations, windows, triggers)) in apps {
            let preview: Vec<String> = triggers.iter().take(4).map(u64::to_string).collect();
            let suffix = if triggers.len() > 4 { ", ..." } else { "" };
            writeln!(
                out,
                "  {app:<10} violations={violations:<6} windows={windows:<4} \
                 trigger_cycles=[{}{suffix}]",
                preview.join(", ")
            )?;
        }
    }

    if !spans.is_empty() {
        writeln!(out)?;
        writeln!(out, "span timings:")?;
        for (label, seconds) in spans {
            writeln!(out, "  {label:<18} {seconds:.3}s")?;
        }
    }

    if !mesh.is_empty() {
        writeln!(out)?;
        writeln!(out, "mesh:")?;
        for (host, (jobs, failures)) in &mesh.per_host {
            writeln!(out, "  host{host:<24} jobs={jobs:<8} failures={failures}")?;
        }
        for (name, value) in &mesh.totals {
            writeln!(out, "  {name:<28} {value:>10}")?;
        }
        for (state, count) in &mesh.breaker_transitions {
            writeln!(out, "  breaker->{state:<19} {count:>10}")?;
        }
        for (class, count) in &mesh.chaos_steps {
            writeln!(out, "  {class:<28} {count:>10}")?;
        }
    }

    if !sweep_classes.is_empty() {
        writeln!(out)?;
        writeln!(out, "sweep:")?;
        for (class, (points, frontier)) in sweep_classes {
            writeln!(out, "  {class:<18} points={points:<6} frontier={frontier}")?;
        }
        let store: Vec<&(String, u64)> = counters
            .iter()
            .filter(|(name, _)| name.starts_with("store."))
            .collect();
        for (name, value) in store {
            writeln!(out, "  {name:<28} {value:>10}")?;
        }
    }

    if !counters.is_empty() {
        writeln!(out)?;
        writeln!(out, "counters:")?;
        for (name, value) in counters {
            writeln!(out, "  {name:<28} {value:>10}")?;
        }
    }

    out.flush()
}
