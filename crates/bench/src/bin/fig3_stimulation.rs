//! Figure 3: stimulate the Table 1 supply with a 34 A square wave at the
//! resonant frequency (cycles 100–500) and show (a) supply-voltage
//! variation growing to a noise-margin violation at resonant event count =
//! maximum repetition tolerance, and (b) post-stimulus ringing dissipating
//! at the damping rate.

use bench::{ascii_chart, downsample_extreme, json_document, HarnessArgs, Report};
use restune::{EventDetector, TuningConfig};
use rlc::units::{Amps, Cycles, Hertz};
use rlc::{simulate_waveform, PeriodicWave, Shape, SupplyParams};

fn main() {
    let args = HarnessArgs::parse();
    let params = SupplyParams::isca04_table1();
    let clock = Hertz::from_giga(10.0);
    let period = params
        .resonant_period_cycles(clock)
        .expect("10 GHz clock is valid");

    let wave = PeriodicWave::new(
        Shape::Square,
        Amps::new(70.0),
        Amps::new(34.0),
        period,
        Cycles::new(100),
        Cycles::new(500),
    );
    let horizon = Cycles::new(1_000);
    let trace = simulate_waveform(&params, clock, &wave, horizon);

    // Resonant event counts along the way, from the paper's detector.
    let mut detector = EventDetector::new(TuningConfig::isca04_table1(100));
    let mut events = Vec::new();
    for (c, i) in trace.current.iter().enumerate() {
        if let Some(ev) = detector.observe(i.amps().round() as i64) {
            events.push((c, ev.count));
        }
    }

    let mv: Vec<f64> = trace.noise.iter().map(|v| v.volts() * 1e3).collect();
    let first = trace.first_violation();
    let count_at_violation = first.map(|f| {
        events
            .iter()
            .filter(|(c, _)| (*c as u64) <= f.count())
            .map(|(_, n)| *n)
            .max()
            .unwrap_or(0)
    });

    // Post-stimulus dissipation rate.
    let peak_in =
        |lo: usize, hi: usize| -> f64 { mv[lo..hi].iter().map(|v| v.abs()).fold(0.0, f64::max) };
    let p1 = peak_in(520, 620);
    let p2 = peak_in(620, 720);

    if args.json {
        let mut summary = Report::new(&[
            "quality_factor",
            "resonant_period_cycles",
            "noise_margin_mv",
            "first_violation_cycle",
            "count_at_violation",
            "post_peak_mv",
            "post_peak_next_period_mv",
            "dissipated_fraction",
        ]);
        summary.push(vec![
            params.quality_factor().into(),
            period.count().into(),
            (params.noise_margin().volts() * 1e3).into(),
            first.map(|f| f.count() as i64).unwrap_or(-1).into(),
            count_at_violation.map(|n| n as i64).unwrap_or(-1).into(),
            p1.into(),
            p2.into(),
            (1.0 - p2 / p1).into(),
        ]);
        let mut event_rows = Report::new(&["cycle", "count"]);
        for (c, n) in &events {
            event_rows.push(vec![(*c as u64).into(), (*n).into()]);
        }
        println!(
            "{}",
            json_document(&[("fig3", summary), ("events", event_rows)])
        );
        return;
    }

    println!("=== Figure 3: stimulation at the resonant frequency ===");
    println!(
        "supply: Q = {:.2}, resonant period = {period}, margin = ±{:.0} mV",
        params.quality_factor(),
        params.noise_margin().volts() * 1e3
    );

    println!("\nsupply-voltage variation (mV), cycles 0–1000:");
    println!("{}", ascii_chart(&downsample_extreme(&mv, 110), 15, "mV"));

    println!("processor current (A):");
    let amps: Vec<f64> = trace.current.iter().map(|a| a.amps()).collect();
    println!("{}", ascii_chart(&downsample_extreme(&amps, 110), 7, "A"));

    println!("resonant events (cycle: count): {events:?}");

    println!("\nfirst noise-margin violation: {first:?}");
    println!(
        "resonant event count reached by the violation: {:?} (paper: 4 = max repetition tolerance)",
        count_at_violation
    );

    println!(
        "\npost-stimulus dissipation: peak {:.1} mV → {:.1} mV over one period \
         ({:.0} % dissipated; paper: 66 %, e^(−π/Q) = {:.2})",
        p1,
        p2,
        (1.0 - p2 / p1) * 100.0,
        params.decay_per_period()
    );
}
