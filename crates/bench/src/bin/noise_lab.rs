//! `noise-lab` — the umbrella command-line interface over the whole
//! library: supply analysis, calibration, guarantee analysis, single runs,
//! and the paper's table sweeps, with optional CSV/JSON output.
//!
//! ```console
//! $ cargo run --release -p bench --bin noise_lab -- help
//! $ cargo run --release -p bench --bin noise_lab -- calibrate
//! $ cargo run --release -p bench --bin noise_lab -- run --app swim --technique tuning
//! $ cargo run --release -p bench --bin noise_lab -- classify -n 60000 --out table2.csv
//! $ cargo run --release -p bench --bin noise_lab -- table3 --out table3.json
//! ```

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;

use bench::format_table;
use bench::report::Report;
use restune::experiment::{run_base_suite, table2, table3, table4, table5};
use restune::{
    analyze, run, DampingConfig, RelativeOutcome, SensorConfig, SimConfig, Technique, TuningConfig,
};
use rlc::units::{Amps, Hertz};
use rlc::{calibrate, fit_supply, ImpedanceSample, ImpedanceSweep, SupplyParams};
use workloads::spec2k;

const USAGE: &str = "\
noise-lab — inductive-noise laboratory (ISCA'04 resonance-tuning reproduction)

usage: noise_lab <command> [options]

commands:
  impedance   sweep supply impedance      [--supply table1|section2] [--lo MHZ] [--hi MHZ] [--points N]
  calibrate   derive tuning parameters    [--supply table1|section2] [--clock GHZ] [--max-variation A]
  analyze     analytic guarantee report   [--max-variation A] [--response-time CY]
  fit         round-trip impedance fit    [--supply table1|section2]
  run         one application, one technique
              --app NAME [--technique base|tuning|sensor|damping] [-n INSTRUCTIONS]
  classify    Table 2 classification      [-n INSTRUCTIONS]
  table3      tuning sweep                [-n INSTRUCTIONS]
  table4      [10] sensor sweep           [-n INSTRUCTIONS]
  table5      [14] damping sweep          [-n INSTRUCTIONS]

common options:
  --out PATH  also write results as CSV (or JSON when PATH ends in .json)
  --help      this text
";

#[derive(Debug)]
struct Args {
    command: String,
    options: HashMap<String, String>,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or_else(|| USAGE.to_string())?;
    let mut options = HashMap::new();
    while let Some(key) = argv.next() {
        let key = key.trim_start_matches('-').to_string();
        if key == "help" {
            return Err(USAGE.to_string());
        }
        let value = argv
            .next()
            .ok_or(format!("option --{key} requires a value"))?;
        options.insert(key, value);
    }
    Ok(Args { command, options })
}

impl Args {
    fn get_f64(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("invalid --{key}: {v}")),
        }
    }

    fn get_u64(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("invalid --{key}: {v}")),
        }
    }

    fn supply(&self) -> Result<SupplyParams, String> {
        match self
            .options
            .get("supply")
            .map(String::as_str)
            .unwrap_or("table1")
        {
            "table1" => Ok(SupplyParams::isca04_table1()),
            "section2" => Ok(SupplyParams::isca04_section2_example()),
            other => Err(format!("unknown supply: {other} (table1|section2)")),
        }
    }

    fn out(&self) -> Option<PathBuf> {
        self.options.get("out").map(PathBuf::from)
    }
}

fn emit(report: &Report, args: &Args) -> Result<(), String> {
    if let Some(path) = args.out() {
        report
            .write_to(&path)
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!("(wrote {} rows to {})", report.len(), path.display());
    }
    Ok(())
}

fn cmd_impedance(args: &Args) -> Result<(), String> {
    let supply = args.supply()?;
    let lo = args.get_f64("lo", 40.0)?;
    let hi = args.get_f64("hi", 160.0)?;
    let points = args.get_u64("points", 241)? as usize;
    if points < 2 || lo >= hi {
        return Err("need --points >= 2 and --lo < --hi".into());
    }
    let sweep = ImpedanceSweep::linear(&supply, Hertz::from_mega(lo), Hertz::from_mega(hi), points);
    let mut report = Report::new(&["frequency_mhz", "magnitude_mohm", "phase_rad"]);
    for p in sweep.points() {
        report.push(vec![
            (p.frequency.hertz() / 1e6).into(),
            (p.magnitude.ohms() * 1e3).into(),
            p.phase_radians.into(),
        ]);
    }
    let peak = sweep.peak();
    let (b_lo, b_hi) = sweep.half_energy_band();
    println!(
        "peak {:.3} mΩ at {:.1} MHz; half-energy band {:.1}–{:.1} MHz; Q = {:.2}",
        peak.magnitude.ohms() * 1e3,
        peak.frequency.hertz() / 1e6,
        b_lo.hertz() / 1e6,
        b_hi.hertz() / 1e6,
        supply.quality_factor()
    );
    emit(&report, args)
}

fn cmd_calibrate(args: &Args) -> Result<(), String> {
    let supply = args.supply()?;
    let clock = Hertz::from_giga(args.get_f64("clock", 10.0)?);
    let max_variation = Amps::new(args.get_f64("max-variation", 70.0)?);
    let cal = calibrate(&supply, clock, max_variation).map_err(|e| e.to_string())?;
    println!(
        "variation threshold   {:.1} A\nband-edge tolerance   {:.1} A\nmax repetition tol    {}\nresonant period       {}\nband periods          {}–{} cycles",
        cal.variation_threshold.amps(),
        cal.band_edge_tolerance.amps(),
        cal.max_repetition_tolerance,
        cal.resonant_period,
        cal.band_periods.0.count(),
        cal.band_periods.1.count(),
    );
    let mut report = Report::new(&[
        "variation_threshold_a",
        "band_edge_tolerance_a",
        "max_repetition_tolerance",
        "resonant_period_cycles",
        "band_min_cycles",
        "band_max_cycles",
    ]);
    report.push(vec![
        cal.variation_threshold.amps().into(),
        cal.band_edge_tolerance.amps().into(),
        u64::from(cal.max_repetition_tolerance).into(),
        cal.resonant_period.count().into(),
        cal.band_periods.0.count().into(),
        cal.band_periods.1.count().into(),
    ]);
    emit(&report, args)
}

fn cmd_analyze(args: &Args) -> Result<(), String> {
    let supply = args.supply()?;
    let clock = Hertz::from_giga(args.get_f64("clock", 10.0)?);
    let response_time = args.get_u64("response-time", 100)? as u32;
    let max_variation = Amps::new(args.get_f64("max-variation", 40.0)?);
    let config = TuningConfig::isca04_table1(response_time);
    let r = analyze(&supply, clock, &config, max_variation).map_err(|e| e.to_string())?;
    println!(
        "resonant period        {}\npeak impedance         {:.3} mΩ\nhalf waves to violate  {}\nguaranteed variation   {:.1} A\nresponse budget        {} cycles",
        r.resonant_period,
        r.peak_impedance_ohms * 1e3,
        r.half_waves_to_violation.map_or("never".to_string(), |n| n.to_string()),
        r.guaranteed_variation.amps(),
        r.response_budget_cycles,
    );
    Ok(())
}

fn cmd_fit(args: &Args) -> Result<(), String> {
    let truth = args.supply()?;
    let f0 = truth.resonant_frequency().hertz() / 1e6;
    let sweep = ImpedanceSweep::linear(
        &truth,
        Hertz::from_mega(f0 * 0.3),
        Hertz::from_mega(f0 * 2.0),
        120,
    );
    let samples: Vec<ImpedanceSample> = sweep
        .points()
        .iter()
        .map(|p| ImpedanceSample {
            frequency: p.frequency,
            magnitude: p.magnitude,
        })
        .collect();
    let fit = fit_supply(&samples, truth.vdd(), truth.noise_margin()).map_err(|e| e.to_string())?;
    println!(
        "truth:  R = {:.1} µΩ  L = {:.3} pH  C = {:.0} nF  (f₀ {:.1} MHz, Q {:.2})",
        truth.resistance().ohms() * 1e6,
        truth.inductance().henries() * 1e12,
        truth.capacitance().farads() * 1e9,
        truth.resonant_frequency().hertz() / 1e6,
        truth.quality_factor()
    );
    println!(
        "fitted: R = {:.1} µΩ  L = {:.3} pH  C = {:.0} nF  (f₀ {:.1} MHz, Q {:.2}); rms err {:.2}%",
        fit.params.resistance().ohms() * 1e6,
        fit.params.inductance().henries() * 1e12,
        fit.params.capacitance().farads() * 1e9,
        fit.params.resonant_frequency().hertz() / 1e6,
        fit.params.quality_factor(),
        fit.rms_relative_error * 100.0
    );
    Ok(())
}

fn technique_from(args: &Args) -> Result<Technique, String> {
    match args
        .options
        .get("technique")
        .map(String::as_str)
        .unwrap_or("tuning")
    {
        "base" => Ok(Technique::Base),
        "tuning" => {
            let t = args.get_u64("response-time", 100)? as u32;
            Ok(Technique::Tuning(TuningConfig::isca04_table1(t)))
        }
        "sensor" => Ok(Technique::Sensor(SensorConfig::table4(
            args.get_f64("threshold-mv", 20.0)?,
            args.get_f64("noise-mv", 10.0)?,
            args.get_u64("delay", 5)? as u32,
        ))),
        "damping" => Ok(Technique::Damping(DampingConfig::isca04_table5(
            args.get_f64("delta", 0.5)?,
        ))),
        other => Err(format!("unknown technique: {other}")),
    }
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let app = args.options.get("app").ok_or("run requires --app NAME")?;
    let profile = spec2k::by_name(app).ok_or(format!("unknown application: {app}"))?;
    let sim = SimConfig::isca04(args.get_u64("n", 120_000)?);
    let technique = technique_from(args)?;

    let base = run(&profile, &Technique::Base, &sim);
    let result = run(&profile, &technique, &sim);
    println!(
        "{app} under {}: {} cycles, IPC {:.2}, {} violation cycles (base {})",
        technique.name(),
        result.cycles,
        result.ipc,
        result.violation_cycles,
        base.violation_cycles
    );
    if !matches!(technique, Technique::Base) {
        let o = RelativeOutcome::new(&base, &result);
        println!(
            "slowdown {:.3}, relative energy {:.3}, relative energy-delay {:.3}",
            o.slowdown, o.relative_energy, o.relative_energy_delay
        );
    }
    Ok(())
}

fn cmd_classify(args: &Args) -> Result<(), String> {
    let sim = SimConfig::isca04(args.get_u64("n", 120_000)?);
    let rows = table2(&sim);
    let mut report = Report::new(&[
        "app",
        "ipc",
        "violation_fraction",
        "violating",
        "paper_violating",
    ]);
    let mut printed = Vec::new();
    for r in &rows {
        report.push(vec![
            r.app.into(),
            r.ipc.into(),
            r.violation_fraction.into(),
            u64::from(r.violation_fraction > 0.0).into(),
            u64::from(r.paper_violating).into(),
        ]);
        printed.push(vec![
            r.app.to_string(),
            format!("{:.2}", r.ipc),
            format!("{:.2e}", r.violation_fraction),
            if r.violation_fraction > 0.0 {
                "violating".into()
            } else {
                "clean".into()
            },
        ]);
    }
    println!(
        "{}",
        format_table(&["app", "IPC", "viol frac", "class"], &printed)
    );
    emit(&report, args)
}

fn summary_report(rows: &[(String, restune::Summary)]) -> Report {
    let mut report = Report::new(&[
        "config",
        "avg_slowdown",
        "worst_slowdown",
        "worst_app",
        "avg_energy_delay",
        "frac_first_level",
        "frac_second_level",
        "frac_sensor_response",
        "residual_violations",
    ]);
    for (label, s) in rows {
        report.push(vec![
            label.as_str().into(),
            s.avg_slowdown.into(),
            s.worst_slowdown.into(),
            s.worst_app.into(),
            s.avg_energy_delay.into(),
            s.avg_first_level_fraction.into(),
            s.avg_second_level_fraction.into(),
            s.avg_sensor_response_fraction.into(),
            s.total_violation_cycles.into(),
        ]);
    }
    report
}

fn print_summaries(rows: &[(String, restune::Summary)]) {
    let printed: Vec<Vec<String>> = rows
        .iter()
        .map(|(label, s)| {
            vec![
                label.clone(),
                format!("{:.3}", s.avg_slowdown),
                format!("{:.3} ({})", s.worst_slowdown, s.worst_app),
                format!("{:.3}", s.avg_energy_delay),
                format!("{}", s.total_violation_cycles),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "config",
                "avg slowdown",
                "worst slowdown",
                "avg E·D",
                "resid viol"
            ],
            &printed
        )
    );
}

fn cmd_table3(args: &Args) -> Result<(), String> {
    let sim = SimConfig::isca04(args.get_u64("n", 120_000)?);
    let base = run_base_suite(&sim);
    let rows = table3(&sim, &[75, 100, 125, 150, 200], &base);
    let labeled: Vec<(String, restune::Summary)> = rows
        .iter()
        .map(|r| (format!("tuning {} cy", r.initial_response_time), r.summary))
        .collect();
    print_summaries(&labeled);
    emit(&summary_report(&labeled), args)
}

fn cmd_table4(args: &Args) -> Result<(), String> {
    let sim = SimConfig::isca04(args.get_u64("n", 120_000)?);
    let base = run_base_suite(&sim);
    let configs = [
        SensorConfig::table4(30.0, 0.0, 0),
        SensorConfig::table4(20.0, 0.0, 0),
        SensorConfig::table4(30.0, 15.0, 0),
        SensorConfig::table4(20.0, 10.0, 5),
        SensorConfig::table4(20.0, 15.0, 3),
    ];
    let rows = table4(&sim, &configs, &base);
    let labeled: Vec<(String, restune::Summary)> = rows
        .iter()
        .map(|r| {
            (
                format!(
                    "[10] {:.0}mV/{:.0}mV/{}cy",
                    r.config.target_threshold.volts() * 1e3,
                    r.config.sensor_noise_pp.volts() * 1e3,
                    r.config.delay_cycles
                ),
                r.summary,
            )
        })
        .collect();
    print_summaries(&labeled);
    emit(&summary_report(&labeled), args)
}

fn cmd_table5(args: &Args) -> Result<(), String> {
    let sim = SimConfig::isca04(args.get_u64("n", 120_000)?);
    let base = run_base_suite(&sim);
    let rows = table5(&sim, &[1.0, 0.5, 0.25], &base);
    let labeled: Vec<(String, restune::Summary)> = rows
        .iter()
        .map(|r| (format!("damping δ={}", r.delta_relative), r.summary))
        .collect();
    print_summaries(&labeled);
    emit(&summary_report(&labeled), args)
}

fn dispatch() -> Result<(), String> {
    let args = parse_args()?;
    match args.command.as_str() {
        "impedance" => cmd_impedance(&args),
        "calibrate" => cmd_calibrate(&args),
        "analyze" => cmd_analyze(&args),
        "fit" => cmd_fit(&args),
        "run" => cmd_run(&args),
        "classify" => cmd_classify(&args),
        "table3" => cmd_table3(&args),
        "table4" => cmd_table4(&args),
        "table5" => cmd_table5(&args),
        "help" | "--help" | "-h" => Err(USAGE.to_string()),
        other => Err(format!("unknown command: {other}\n\n{USAGE}")),
    }
}

fn main() -> ExitCode {
    match dispatch() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
