//! Ablation: the value of repetition counting and of the two-level
//! response (the design choices of Sections 3.1.2 and 3.2).
//!
//! Variants compared on the violating applications:
//!
//! * **paper**: first level at count ≥ 2, second at ≥ 3 (the default);
//! * **react-on-first**: first level at every detected event (count ≥ 1) —
//!   the magnitude-based philosophy of \[10\] applied to this detector;
//! * **second-level-only**: the first-level response is made a no-op
//!   (issue width and ports unchanged), so only the stall-with-phantoms
//!   backstop protects the margin.

use bench::{format_table, HarnessArgs};
use restune::experiment::{compare_suites, run_suite};
use restune::{SimConfig, Summary, Technique, TuningConfig};
use workloads::spec2k;

fn main() {
    let args = HarnessArgs::parse();
    let sim = SimConfig::isca04(args.instructions);
    println!("=== Ablation 2: repetition counting and the two-level response ===");
    println!(
        "({} instructions per application, violating apps)\n",
        args.instructions
    );

    let paper = TuningConfig::isca04_table1(100);
    let react_on_first = TuningConfig {
        initial_response_threshold: 1,
        ..paper
    };
    let second_only = TuningConfig {
        first_level_issue_width: 8, // first level becomes a no-op
        first_level_mem_ports: 2,
        ..paper
    };

    let apps = spec2k::violating();
    let base = run_suite(&apps, &Technique::Base, &sim);
    let base_violations: u64 = base.iter().map(|r| r.violation_cycles).sum();

    let mut rows = Vec::new();
    for (label, config) in [
        ("paper (count ≥ 2, two-level)", paper),
        ("react on first event", react_on_first),
        ("second-level only", second_only),
    ] {
        let results = run_suite(&apps, &Technique::Tuning(config), &sim);
        let outcomes = compare_suites(&base, &results);
        let s = Summary::from_outcomes(&outcomes);
        rows.push(vec![
            label.to_string(),
            format!("{:.3}", s.avg_first_level_fraction),
            format!("{:.4}", s.avg_second_level_fraction),
            format!("{:.3}", s.avg_slowdown),
            format!("{:.3}", s.avg_energy_delay),
            format!("{}", s.total_violation_cycles),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "variant",
                "frac L1",
                "frac L2",
                "avg slowdown",
                "avg E·D",
                "resid viol"
            ],
            &rows
        )
    );
    println!("(base machine violation cycles across these apps: {base_violations})\n");
    println!(
        "Reacting to isolated events multiplies first-level time (and cost) for\n\
         no additional protection; removing the gentle first level shifts the\n\
         entire burden onto expensive full stalls and lets more energy build\n\
         before each one — the two observations the paper's design rests on."
    );
}
