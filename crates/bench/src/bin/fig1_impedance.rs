//! Figure 1(c): power-supply impedance versus frequency, with the resonant
//! peak and the half-energy resonance band marked.

use bench::{ascii_chart, format_table};
use rlc::units::Hertz;
use rlc::{ImpedanceSweep, SupplyParams};

fn report(label: &str, params: &SupplyParams, lo_mhz: f64, hi_mhz: f64) {
    println!("=== Figure 1(c): impedance of the {label} supply ===");
    let sweep = ImpedanceSweep::linear(
        params,
        Hertz::from_mega(lo_mhz),
        Hertz::from_mega(hi_mhz),
        4001,
    );
    let series: Vec<f64> = sweep
        .points()
        .iter()
        .step_by(4001 / 110)
        .map(|p| p.magnitude.ohms() * 1e3)
        .collect();
    println!("{}", ascii_chart(&series, 14, "mΩ"));
    println!("(x axis: {lo_mhz} MHz to {hi_mhz} MHz, linear)");

    let peak = sweep.peak();
    let (b_lo, b_hi) = sweep.half_energy_band();
    let (a_lo, a_hi) = params.resonance_band();
    let rows = vec![
        vec![
            "measured (sweep)".to_string(),
            format!("{:.1}", peak.frequency.hertz() / 1e6),
            format!("{:.3}", peak.magnitude.ohms() * 1e3),
            format!("{:.1}", b_lo.hertz() / 1e6),
            format!("{:.1}", b_hi.hertz() / 1e6),
        ],
        vec![
            "analytic".to_string(),
            format!("{:.1}", params.resonant_frequency().hertz() / 1e6),
            format!(
                "{:.3}",
                params.quality_factor() * params.characteristic_impedance().ohms() * 1e3
            ),
            format!("{:.1}", a_lo.hertz() / 1e6),
            format!("{:.1}", a_hi.hertz() / 1e6),
        ],
    ];
    println!(
        "{}",
        format_table(
            &["source", "f_res (MHz)", "peak |Z| (mΩ)", "band lo (MHz)", "band hi (MHz)"],
            &rows
        )
    );
    println!(
        "Q = {:.2}, dissipation per resonant period = {:.0} %\n",
        params.quality_factor(),
        (1.0 - params.decay_per_period()) * 100.0
    );
}

fn main() {
    // The motivating example of Section 2 (92–108 MHz band, Q ≈ 6.2)...
    report("Section 2 example", &SupplyParams::isca04_section2_example(), 40.0, 160.0);
    // ...and the evaluated Table 1 design (84–119-cycle band at 10 GHz).
    report("Table 1 (evaluated)", &SupplyParams::isca04_table1(), 40.0, 160.0);
}
