//! Figure 1(c): power-supply impedance versus frequency, with the resonant
//! peak and the half-energy resonance band marked.

use bench::{ascii_chart, format_table, json_document, HarnessArgs, Report};
use rlc::units::Hertz;
use rlc::{ImpedanceSweep, SupplyParams};

struct BandNumbers {
    measured: [f64; 4],
    analytic: [f64; 4],
}

fn sweep_supply(params: &SupplyParams, lo_mhz: f64, hi_mhz: f64) -> (ImpedanceSweep, BandNumbers) {
    let sweep = ImpedanceSweep::linear(
        params,
        Hertz::from_mega(lo_mhz),
        Hertz::from_mega(hi_mhz),
        4001,
    );
    let peak = sweep.peak();
    let (b_lo, b_hi) = sweep.half_energy_band();
    let (a_lo, a_hi) = params.resonance_band();
    let numbers = BandNumbers {
        measured: [
            peak.frequency.hertz() / 1e6,
            peak.magnitude.ohms() * 1e3,
            b_lo.hertz() / 1e6,
            b_hi.hertz() / 1e6,
        ],
        analytic: [
            params.resonant_frequency().hertz() / 1e6,
            params.quality_factor() * params.characteristic_impedance().ohms() * 1e3,
            a_lo.hertz() / 1e6,
            a_hi.hertz() / 1e6,
        ],
    };
    (sweep, numbers)
}

fn report(label: &str, params: &SupplyParams, lo_mhz: f64, hi_mhz: f64) {
    println!("=== Figure 1(c): impedance of the {label} supply ===");
    let (sweep, numbers) = sweep_supply(params, lo_mhz, hi_mhz);
    let series: Vec<f64> = sweep
        .points()
        .iter()
        .step_by(4001 / 110)
        .map(|p| p.magnitude.ohms() * 1e3)
        .collect();
    println!("{}", ascii_chart(&series, 14, "mΩ"));
    println!("(x axis: {lo_mhz} MHz to {hi_mhz} MHz, linear)");

    let rows = vec![
        std::iter::once("measured (sweep)".to_string())
            .chain(numbers.measured.iter().map(|v| format!("{v:.1}")))
            .collect::<Vec<_>>(),
        std::iter::once("analytic".to_string())
            .chain(numbers.analytic.iter().map(|v| format!("{v:.1}")))
            .collect::<Vec<_>>(),
    ];
    println!(
        "{}",
        format_table(
            &[
                "source",
                "f_res (MHz)",
                "peak |Z| (mΩ)",
                "band lo (MHz)",
                "band hi (MHz)"
            ],
            &rows
        )
    );
    println!(
        "Q = {:.2}, dissipation per resonant period = {:.0} %\n",
        params.quality_factor(),
        (1.0 - params.decay_per_period()) * 100.0
    );
}

fn main() {
    let args = HarnessArgs::parse();
    let supplies: [(&str, SupplyParams); 2] = [
        // The motivating example of Section 2 (92–108 MHz band, Q ≈ 6.2)...
        ("section2_example", SupplyParams::isca04_section2_example()),
        // ...and the evaluated Table 1 design (84–119-cycle band at 10 GHz).
        ("table1_evaluated", SupplyParams::isca04_table1()),
    ];

    if args.json {
        let mut rows = Report::new(&[
            "supply",
            "source",
            "f_res_mhz",
            "peak_impedance_mohm",
            "band_lo_mhz",
            "band_hi_mhz",
            "quality_factor",
        ]);
        for (name, params) in &supplies {
            let (_, numbers) = sweep_supply(params, 40.0, 160.0);
            for (source, n) in [
                ("measured", &numbers.measured),
                ("analytic", &numbers.analytic),
            ] {
                rows.push(vec![
                    (*name).into(),
                    source.into(),
                    n[0].into(),
                    n[1].into(),
                    n[2].into(),
                    n[3].into(),
                    params.quality_factor().into(),
                ]);
            }
        }
        println!("{}", json_document(&[("fig1", rows)]));
        return;
    }

    report("Section 2 example", &supplies[0].1, 40.0, 160.0);
    report("Table 1 (evaluated)", &supplies[1].1, 40.0, 160.0);
}
