//! Table 2: classification of the 26 SPEC2K applications by noise-margin
//! violations on the base machine, with IPCs and violation-cycle fractions.

use bench::{
    failure_report_section, format_table, json_document, print_failure_reports, run_metrics_report,
    HarnessArgs, Report,
};
use restune::engine::cached_base_suite;
use restune::experiment::{base_suite_supervised, table2, table2_from_supervised};
use restune::SimConfig;

fn main() {
    let _shutdown = bench::harness_init();
    let args = HarnessArgs::parse();
    let _trace = bench::init_trace(&args);
    let _connect = bench::init_connect(&args);
    let policy = args.policy();
    let sim = SimConfig::isca04(args.instructions);
    let supervised = (!policy.is_inert()).then(|| base_suite_supervised(&sim, &policy));
    let rows = match &supervised {
        Some(base) => table2_from_supervised(base),
        None => table2(&sim),
    };

    if args.json {
        let mut table = Report::new(&[
            "app",
            "ipc",
            "violation_fraction",
            "violating",
            "paper_violating",
            "matches_paper",
        ]);
        for r in &rows {
            let violating = r.violation_fraction > 0.0;
            table.push(vec![
                r.app.into(),
                r.ipc.into(),
                r.violation_fraction.into(),
                violating.into(),
                r.paper_violating.into(),
                (violating == r.paper_violating).into(),
            ]);
        }
        match &supervised {
            Some(base) => {
                let metrics: Vec<_> = base.metrics.iter().filter_map(|m| *m).collect();
                println!(
                    "{}",
                    json_document(&[
                        ("table2", table),
                        ("run_metrics", run_metrics_report(&metrics)),
                        (
                            "failures",
                            failure_report_section(std::slice::from_ref(&base.report)),
                        ),
                    ])
                );
            }
            None => {
                let metrics = run_metrics_report(&cached_base_suite(&sim).metrics);
                println!(
                    "{}",
                    json_document(&[("table2", table), ("run_metrics", metrics)])
                );
            }
        }
        return;
    }

    println!("=== Table 2: classification of SPEC2K applications ===");
    println!("({} instructions per application)\n", args.instructions);

    let mut violating = Vec::new();
    let mut clean = Vec::new();
    for r in &rows {
        let row = vec![
            r.app.to_string(),
            format!("{:.2}", r.ipc),
            format!("{:.3}", r.violation_fraction * 1e3),
            if r.paper_violating {
                "violating".into()
            } else {
                "clean".into()
            },
            if (r.violation_fraction > 0.0) == r.paper_violating {
                "✓".into()
            } else {
                "✗".into()
            },
        ];
        if r.violation_fraction > 0.0 {
            violating.push(row);
        } else {
            clean.push(row);
        }
    }

    println!(
        "Applications with noise-margin violations ({}):",
        violating.len()
    );
    println!(
        "{}",
        format_table(
            &["app", "IPC", "viol frac ×10⁻³", "paper class", "match"],
            &violating
        )
    );
    println!(
        "Applications without noise-margin violations ({}):",
        clean.len()
    );
    println!(
        "{}",
        format_table(
            &["app", "IPC", "viol frac ×10⁻³", "paper class", "match"],
            &clean
        )
    );

    let matches = rows
        .iter()
        .filter(|r| (r.violation_fraction > 0.0) == r.paper_violating)
        .count();
    println!(
        "classification agreement with the paper: {matches}/{}",
        rows.len()
    );
    println!("(paper: 12 violating / 14 clean; violation fractions 3.2e-8 … 5.6e-3)");
    if let Some(base) = &supervised {
        print_failure_reports(std::slice::from_ref(&base.report));
    }
}
