//! Table 3 over the RISC-V corpus: the real-program workload class run
//! under every technique of the paper — resonance tuning swept over
//! initial response times, plus one voltage-sensor and one
//! pipeline-damping design point — reporting violations, slowdown, and
//! energy-delay relative to the corpus base suite.
//!
//! Unlike the synthetic suite, every instruction here comes from an
//! assembled RV32IM program executed to completion and lowered onto the
//! pipeline, so this harness is the end-to-end check that real code
//! drives the noise model: the `resonance` microbench must violate on
//! the base machine and be contained by every technique.

use bench::{
    failure_report_section, format_table, json_document, outcomes_report, print_failure_reports,
    push_outcomes, run_metrics_report, HarnessArgs, Report,
};
use restune::engine::cached_corpus_base_suite;
use restune::experiment::{
    compare_suites, corpus_base_suite_supervised, paired_outcomes, run_suite, run_suite_policed,
    table3_riscv, table3_riscv_supervised, Table3Row,
};
use restune::{DampingConfig, RelativeOutcome, SensorConfig, SimConfig, Summary, Technique};
use workloads::corpus;

fn tuning_report(rows: &[Table3Row]) -> (Report, Report) {
    let mut table = Report::new(&[
        "initial_response_time",
        "avg_first_level_fraction",
        "avg_second_level_fraction",
        "worst_slowdown",
        "worst_app",
        "apps_over_15_percent",
        "avg_slowdown",
        "avg_energy_delay",
        "residual_violation_cycles",
    ]);
    let mut outcomes = outcomes_report();
    for r in rows {
        let s = &r.summary;
        table.push(vec![
            u64::from(r.initial_response_time).into(),
            s.avg_first_level_fraction.into(),
            s.avg_second_level_fraction.into(),
            s.worst_slowdown.into(),
            s.worst_app.into(),
            (s.apps_over_15_percent as u64).into(),
            s.avg_slowdown.into(),
            s.avg_energy_delay.into(),
            s.total_violation_cycles.into(),
        ]);
        push_outcomes(
            &mut outcomes,
            &format!("tuning-{}", r.initial_response_time),
            &r.outcomes,
        );
    }
    (table, outcomes)
}

/// The embedded programs' architectural identity: what actually executed,
/// independent of any noise technique. Pinned by the blessed goldens in
/// `tests/riscv_frontend.rs`.
fn programs_report() -> Report {
    let mut r = Report::new(&["app", "dyn_insts", "exit_code", "regs_crc", "mem_crc"]);
    for p in corpus::all() {
        let t = corpus::trace(p.name).expect("corpus app has a trace");
        let s = &t.summary;
        r.push(vec![
            p.name.into(),
            s.dyn_insts.into(),
            u64::from(s.exit_code).into(),
            format!("{:016x}", s.regs_crc).into(),
            format!("{:016x}", s.mem_crc).into(),
        ]);
    }
    r
}

fn main() {
    let _shutdown = bench::harness_init();
    let args = HarnessArgs::parse();
    let _trace = bench::init_trace(&args);
    let _connect = bench::init_connect(&args);
    let policy = args.policy();
    let sim = SimConfig::isca04(args.instructions);
    let response_times = [75, 100, 125, 150, 200];
    // One representative design point each for the paper's other two
    // techniques, so the corpus reports cover every technique.
    let sensor_technique = Technique::Sensor(SensorConfig::table4(20.0, 10.0, 5));
    let damping_technique = Technique::Damping(DampingConfig::isca04_table5(1.0));

    let (rows, sensor_outcomes, damping_outcomes, metrics, reports) = if policy.is_inert() {
        let base_suite = cached_corpus_base_suite(&sim);
        let base = &base_suite.results;
        let rows = table3_riscv(&sim, &response_times, base);
        let sensor = run_suite(&corpus::all(), &sensor_technique, &sim);
        let damping = run_suite(&corpus::all(), &damping_technique, &sim);
        (
            rows,
            compare_suites(base, &sensor),
            compare_suites(base, &damping),
            base_suite.metrics.clone(),
            Vec::new(),
        )
    } else {
        let base = corpus_base_suite_supervised(&sim, &policy);
        let (rows, mut reports) = table3_riscv_supervised(&sim, &response_times, &base, &policy);
        let sensor = run_suite_policed(
            &corpus::all(),
            &sensor_technique,
            &sim,
            &policy,
            "sensor-20mV-10mV-5cy",
        );
        let damping = run_suite_policed(
            &corpus::all(),
            &damping_technique,
            &sim,
            &policy,
            "damping-1",
        );
        let sensor_outcomes = paired_outcomes(&base, &sensor);
        let damping_outcomes = paired_outcomes(&base, &damping);
        reports.insert(0, base.report.clone());
        reports.push(sensor.report);
        reports.push(damping.report);
        let metrics: Vec<_> = base.metrics.iter().filter_map(|m| *m).collect();
        (rows, sensor_outcomes, damping_outcomes, metrics, reports)
    };

    let technique_summaries: Vec<(&str, Summary, &[RelativeOutcome])> = [
        ("sensor-20mV-10mV-5cy", &sensor_outcomes),
        ("damping-1", &damping_outcomes),
    ]
    .into_iter()
    .filter(|(_, o)| !o.is_empty())
    .map(|(name, o)| (name, Summary::from_outcomes(o), o.as_slice()))
    .collect();

    if args.json {
        let (table, mut outcomes) = tuning_report(&rows);
        let mut techniques = Report::new(&[
            "design_point",
            "worst_slowdown",
            "worst_app",
            "avg_slowdown",
            "avg_energy_delay",
            "residual_violation_cycles",
        ]);
        for (name, s, o) in &technique_summaries {
            techniques.push(vec![
                (*name).into(),
                s.worst_slowdown.into(),
                s.worst_app.into(),
                s.avg_slowdown.into(),
                s.avg_energy_delay.into(),
                s.total_violation_cycles.into(),
            ]);
            push_outcomes(&mut outcomes, name, o);
        }
        let metrics = run_metrics_report(&metrics);
        let mut sections = vec![
            ("programs", programs_report()),
            ("table3_riscv", table),
            ("techniques", techniques),
            ("outcomes", outcomes),
            ("run_metrics", metrics),
        ];
        if !policy.is_inert() {
            sections.push(("failures", failure_report_section(&reports)));
        }
        println!("{}", json_document(&sections));
        return;
    }

    println!("=== Table 3 (RISC-V corpus): techniques on real programs ===");
    println!("({} instructions per application)\n", args.instructions);

    let programs: Vec<Vec<String>> = corpus::all()
        .iter()
        .map(|p| {
            let t = corpus::trace(p.name).expect("corpus app has a trace");
            let s = &t.summary;
            vec![
                p.name.to_string(),
                format!("{}", s.dyn_insts),
                format!("{}", s.exit_code),
                format!("{:016x}", s.regs_crc),
                format!("{:016x}", s.mem_crc),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["program", "dyn insts", "exit code", "regs crc", "mem crc"],
            &programs
        )
    );

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let s = &r.summary;
            vec![
                format!("{} cycles", r.initial_response_time),
                format!("{:.3}", s.avg_first_level_fraction),
                format!("{:.4}", s.avg_second_level_fraction),
                format!("{:.3} ({})", s.worst_slowdown, s.worst_app),
                format!("{}", s.apps_over_15_percent),
                format!("{:.3}", s.avg_slowdown),
                format!("{:.3}", s.avg_energy_delay),
                format!("{}", s.total_violation_cycles),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "initial response",
                "frac L1 resp",
                "frac L2 resp",
                "worst slowdown",
                ">15%",
                "avg slowdown",
                "avg E·D",
                "resid viol"
            ],
            &table
        )
    );

    if !technique_summaries.is_empty() {
        println!("--- other techniques on the corpus ---");
        let rows: Vec<Vec<String>> = technique_summaries
            .iter()
            .map(|(name, s, _)| {
                vec![
                    (*name).to_string(),
                    format!("{:.3} ({})", s.worst_slowdown, s.worst_app),
                    format!("{:.3}", s.avg_slowdown),
                    format!("{:.3}", s.avg_energy_delay),
                    format!("{}", s.total_violation_cycles),
                ]
            })
            .collect();
        println!(
            "{}",
            format_table(
                &[
                    "design point",
                    "worst slowdown",
                    "avg slowdown",
                    "avg E·D",
                    "resid viol"
                ],
                &rows
            )
        );
    }
    println!(
        "expectation: only `resonance` violates on the base machine; every\n\
         technique contains it at a small slowdown on the compute kernels"
    );
    print_failure_reports(&reports);
}
