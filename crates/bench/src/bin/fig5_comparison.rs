//! Figure 5: energy-delay comparison of the three techniques at two design
//! points each — resonance tuning (initial response 75 and 100 cycles), the
//! voltage-sensor technique of \[10\] (20/10/5 and 20/15/3), and pipeline
//! damping \[14\] (δ = 0.5 and 0.25).

use bench::{
    failure_report_section, format_table, json_document, outcomes_report, print_failure_reports,
    push_outcomes, run_metrics_report, HarnessArgs, Report,
};
use restune::engine::{cached_base_suite, SupervisedSuite};
use restune::experiment::{
    base_suite_supervised, compare_suites, paired_outcomes, run_suite, run_suite_policed,
};
use restune::{DampingConfig, SensorConfig, SimConfig, Summary, Technique, TuningConfig};
use workloads::spec2k;

fn main() {
    let _shutdown = bench::harness_init();
    let args = HarnessArgs::parse();
    let _trace = bench::init_trace(&args);
    let _connect = bench::init_connect(&args);
    let policy = args.policy();
    let sim = SimConfig::isca04(args.instructions);

    let profiles = spec2k::all();
    let supervised_base: Option<SupervisedSuite> =
        (!policy.is_inert()).then(|| base_suite_supervised(&sim, &policy));
    let plain_base = policy.is_inert().then(|| cached_base_suite(&sim));
    let base: Vec<_> = match (&plain_base, &supervised_base) {
        (Some(suite), _) => suite.results.clone(),
        (None, Some(_)) => Vec::new(),
        (None, None) => unreachable!("one base path is always taken"),
    };

    let points: Vec<(&str, Technique)> = vec![
        (
            "A: tuning, 75-cycle response",
            Technique::Tuning(TuningConfig::isca04_table1(75)),
        ),
        (
            "B: tuning, 100-cycle response",
            Technique::Tuning(TuningConfig::isca04_table1(100)),
        ),
        (
            "C: [10], 20mV/10mV/5cy",
            Technique::Sensor(SensorConfig::table4(20.0, 10.0, 5)),
        ),
        (
            "D: [10], 20mV/15mV/3cy",
            Technique::Sensor(SensorConfig::table4(20.0, 15.0, 3)),
        ),
        (
            "E: damping, δ = 0.5",
            Technique::Damping(DampingConfig::isca04_table5(0.5)),
        ),
        (
            "F: damping, δ = 0.25",
            Technique::Damping(DampingConfig::isca04_table5(0.25)),
        ),
    ];

    let mut rows = Vec::new();
    let mut bars = Vec::new();
    let mut fig5 = Report::new(&["design_point", "avg_energy_delay", "avg_slowdown"]);
    let mut outcome_rows = outcomes_report();
    let mut reports = Vec::new();
    if let Some(b) = &supervised_base {
        reports.push(b.report.clone());
    }
    for (label, technique) in &points {
        let outcomes = match &supervised_base {
            None => {
                let results = run_suite(&profiles, technique, &sim);
                compare_suites(&base, &results)
            }
            Some(b) => {
                let suite = run_suite_policed(&profiles, technique, &sim, &policy, label);
                let outcomes = paired_outcomes(b, &suite);
                reports.push(suite.report);
                outcomes
            }
        };
        if outcomes.is_empty() {
            continue; // every pair failed at this design point
        }
        let s = Summary::from_outcomes(&outcomes);
        rows.push(vec![
            label.to_string(),
            format!("{:.3}", s.avg_energy_delay),
            format!("{:.3}", s.avg_slowdown),
        ]);
        bars.push((label.to_string(), s.avg_energy_delay));
        fig5.push(vec![
            (*label).into(),
            s.avg_energy_delay.into(),
            s.avg_slowdown.into(),
        ]);
        push_outcomes(&mut outcome_rows, label, &outcomes);
    }

    if args.json {
        let metrics = match (&plain_base, &supervised_base) {
            (Some(suite), _) => run_metrics_report(&suite.metrics),
            (_, Some(b)) => {
                run_metrics_report(&b.metrics.iter().filter_map(|m| *m).collect::<Vec<_>>())
            }
            (None, None) => unreachable!("one base path is always taken"),
        };
        let mut sections = vec![
            ("fig5", fig5),
            ("outcomes", outcome_rows),
            ("run_metrics", metrics),
        ];
        if !policy.is_inert() {
            sections.push(("failures", failure_report_section(&reports)));
        }
        println!("{}", json_document(&sections));
        return;
    }

    println!("=== Figure 5: energy-delay comparison of techniques ===");
    println!("({} instructions per application)\n", args.instructions);

    println!(
        "{}",
        format_table(&["design point", "avg relative E·D", "avg slowdown"], &rows)
    );

    println!("relative energy-delay (bar chart):");
    let max = bars.iter().map(|(_, v)| *v).fold(1.0, f64::max);
    for (label, v) in &bars {
        let width = (((v - 1.0) / (max - 1.0).max(1e-9)) * 60.0).round() as usize;
        println!("{label:32} |{} {v:.3}", "#".repeat(width.max(1)));
    }
    println!(
        "\npaper: tuning 1.052/1.057 < damping 1.17/1.26 < [10] 1.19/1.46\n\
         (resonance tuning outperforms both prior schemes at realistic design points)"
    );
    print_failure_reports(&reports);
}
