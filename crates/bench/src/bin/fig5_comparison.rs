//! Figure 5: energy-delay comparison of the three techniques at two design
//! points each — resonance tuning (initial response 75 and 100 cycles), the
//! voltage-sensor technique of \[10\] (20/10/5 and 20/15/3), and pipeline
//! damping \[14\] (δ = 0.5 and 0.25).

use bench::{
    format_table, json_document, outcomes_report, push_outcomes, run_metrics_report, HarnessArgs,
    Report,
};
use restune::engine::cached_base_suite;
use restune::experiment::{compare_suites, run_suite};
use restune::{DampingConfig, SensorConfig, SimConfig, Summary, Technique, TuningConfig};
use workloads::spec2k;

fn main() {
    let args = HarnessArgs::parse();
    let sim = SimConfig::isca04(args.instructions);

    let profiles = spec2k::all();
    let base_suite = cached_base_suite(&sim);
    let base = &base_suite.results;

    let points: Vec<(&str, Technique)> = vec![
        (
            "A: tuning, 75-cycle response",
            Technique::Tuning(TuningConfig::isca04_table1(75)),
        ),
        (
            "B: tuning, 100-cycle response",
            Technique::Tuning(TuningConfig::isca04_table1(100)),
        ),
        (
            "C: [10], 20mV/10mV/5cy",
            Technique::Sensor(SensorConfig::table4(20.0, 10.0, 5)),
        ),
        (
            "D: [10], 20mV/15mV/3cy",
            Technique::Sensor(SensorConfig::table4(20.0, 15.0, 3)),
        ),
        (
            "E: damping, δ = 0.5",
            Technique::Damping(DampingConfig::isca04_table5(0.5)),
        ),
        (
            "F: damping, δ = 0.25",
            Technique::Damping(DampingConfig::isca04_table5(0.25)),
        ),
    ];

    let mut rows = Vec::new();
    let mut bars = Vec::new();
    let mut fig5 = Report::new(&["design_point", "avg_energy_delay", "avg_slowdown"]);
    let mut outcome_rows = outcomes_report();
    for (label, technique) in &points {
        let results = run_suite(&profiles, technique, &sim);
        let outcomes = compare_suites(base, &results);
        let s = Summary::from_outcomes(&outcomes);
        rows.push(vec![
            label.to_string(),
            format!("{:.3}", s.avg_energy_delay),
            format!("{:.3}", s.avg_slowdown),
        ]);
        bars.push((label.to_string(), s.avg_energy_delay));
        fig5.push(vec![
            (*label).into(),
            s.avg_energy_delay.into(),
            s.avg_slowdown.into(),
        ]);
        push_outcomes(&mut outcome_rows, label, &outcomes);
    }

    if args.json {
        let metrics = run_metrics_report(&base_suite.metrics);
        println!(
            "{}",
            json_document(&[
                ("fig5", fig5),
                ("outcomes", outcome_rows),
                ("run_metrics", metrics),
            ])
        );
        return;
    }

    println!("=== Figure 5: energy-delay comparison of techniques ===");
    println!("({} instructions per application)\n", args.instructions);

    println!(
        "{}",
        format_table(&["design point", "avg relative E·D", "avg slowdown"], &rows)
    );

    println!("relative energy-delay (bar chart):");
    let max = bars.iter().map(|(_, v)| *v).fold(1.0, f64::max);
    for (label, v) in &bars {
        let width = (((v - 1.0) / (max - 1.0).max(1e-9)) * 60.0).round() as usize;
        println!("{label:32} |{} {v:.3}", "#".repeat(width.max(1)));
    }
    println!(
        "\npaper: tuning 1.052/1.057 < damping 1.17/1.26 < [10] 1.19/1.46\n\
         (resonance tuning outperforms both prior schemes at realistic design points)"
    );
}
