//! Parameter-grid sweeps over the technique × PDN × workload space, with
//! per-run result sharing through the content-addressed store and a Pareto
//! frontier per (workload class, PDN) group.

use bench::{format_table, json_document, HarnessArgs, Parsed, Report, EXIT_USAGE};
use restune::{run_sweep, GridSpec, RunStore, SweepOutcome, SweepPoint};

const SWEEP_USAGE: &str = "\
usage: sweep [--grid KEY=VALUES]... [harness options]

  Expand a declarative grid over workload classes, PDN scales, and
  technique configurations; run every point (sharing individual runs
  through the content-addressed store under the cache directory); report
  each (class, PDN) group's Pareto frontier over violations, slowdown,
  and energy-delay.

  --grid KEY=VALUES   one sweep axis (repeatable). Axes:
                        workloads=spec2k,corpus     workload classes
                        pdn=1.0,1.5                 PDN inductance scales
                        tuning=75,100               tuning response times
                        sensor=THR_MV:NOISE_MV:DELAY[,..]
                        damping=0.5,1.0             damping deltas
                        instructions=N              per-run instructions
                      defaults: workloads=spec2k pdn=1.0 tuning=100
                      (instructions defaults to the harness -n value)

  All harness options apply; --resume checkpoints suites so an
  interrupted sweep resumes bit-identically, and --connect fans runs out
  across a restuned mesh.
";

fn main() {
    let _shutdown = bench::harness_init();
    let (grid, args) = parse_args();
    let _trace = bench::init_trace(&args);
    let _connect = bench::init_connect(&args);
    let policy = args.policy();

    let spec = match GridSpec::parse(&grid, args.instructions) {
        Ok(spec) => spec,
        Err(message) => {
            eprintln!("error: {message}\n{SWEEP_USAGE}");
            std::process::exit(EXIT_USAGE);
        }
    };
    let store = RunStore::open_default();
    let outcome = match run_sweep(&spec, &policy, &store) {
        Ok(outcome) => outcome,
        Err(message) => {
            eprintln!("error: sweep failed at {message}");
            std::process::exit(1);
        }
    };

    if args.json {
        print_json(&outcome);
    } else {
        print_human(&spec, &outcome);
    }
}

/// Splits repeatable `--grid KEY=VALUES` arguments off the command line
/// and hands everything else to the shared harness parser.
fn parse_args() -> (Vec<(String, String)>, HarnessArgs) {
    let mut grid = Vec::new();
    let mut rest = Vec::new();
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        if arg == "--grid" {
            let Some(value) = iter.next() else {
                eprintln!("error: --grid requires a KEY=VALUES argument\n{SWEEP_USAGE}");
                std::process::exit(EXIT_USAGE);
            };
            let Some((key, values)) = value.split_once('=') else {
                eprintln!("error: invalid --grid '{value}' (expected KEY=VALUES)\n{SWEEP_USAGE}");
                std::process::exit(EXIT_USAGE);
            };
            grid.push((key.to_string(), values.to_string()));
        } else {
            rest.push(arg);
        }
    }
    match HarnessArgs::try_parse(rest) {
        Ok(Parsed::Args(args)) => (grid, args),
        Ok(Parsed::Help) => {
            println!("{SWEEP_USAGE}\n{}", bench::USAGE);
            std::process::exit(0);
        }
        Err(message) => {
            eprintln!("error: {message}\n{SWEEP_USAGE}");
            std::process::exit(EXIT_USAGE);
        }
    }
}

fn point_row(p: &SweepPoint) -> Vec<bench::report::Value> {
    let s = &p.summary;
    vec![
        p.class.into(),
        p.pdn_scale.into(),
        p.technique.as_str().into(),
        s.total_violation_cycles.into(),
        s.avg_slowdown.into(),
        s.worst_slowdown.into(),
        s.avg_energy_delay.into(),
        u64::from(p.on_frontier).into(),
    ]
}

const POINT_COLUMNS: [&str; 8] = [
    "class",
    "pdn_scale",
    "technique",
    "violation_cycles",
    "avg_slowdown",
    "worst_slowdown",
    "avg_energy_delay",
    "on_frontier",
];

fn print_json(outcome: &SweepOutcome) {
    let mut sweep = Report::new(&POINT_COLUMNS);
    for p in &outcome.points {
        sweep.push(point_row(p));
    }
    // The frontier section repeats only the Pareto-optimal rows: it is the
    // byte-identity surface CI compares across execution paths.
    let mut frontier = Report::new(&POINT_COLUMNS);
    for p in outcome.frontier() {
        frontier.push(point_row(p));
    }
    let mut store = Report::new(&[
        "runs",
        "store_hits",
        "store_misses",
        "hit_rate",
        "evicted_files",
        "evicted_bytes",
    ]);
    store.push(vec![
        outcome.runs.into(),
        outcome.store_hits.into(),
        outcome.store_misses.into(),
        outcome.hit_rate().into(),
        outcome.evicted.files.into(),
        outcome.evicted.bytes.into(),
    ]);
    let sections = vec![("sweep", sweep), ("frontier", frontier), ("store", store)];
    println!("{}", json_document(&sections));
}

fn print_human(spec: &GridSpec, outcome: &SweepOutcome) {
    println!(
        "=== Sweep: {} points over {} technique configurations ===",
        outcome.points.len(),
        spec.technique_points().len()
    );
    println!("({} instructions per application run)\n", spec.instructions);

    let rows: Vec<Vec<String>> = outcome
        .points
        .iter()
        .map(|p| {
            let s = &p.summary;
            vec![
                p.class.to_string(),
                format!("{}", p.pdn_scale),
                p.technique.clone(),
                format!("{}", s.total_violation_cycles),
                format!("{:.3}", s.avg_slowdown),
                format!("{:.3} ({})", s.worst_slowdown, s.worst_app),
                format!("{:.3}", s.avg_energy_delay),
                if p.on_frontier {
                    "*".to_string()
                } else {
                    String::new()
                },
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "class",
                "pdn",
                "technique",
                "violations",
                "avg slowdown",
                "worst slowdown",
                "avg E·D",
                "frontier"
            ],
            &rows
        )
    );
    println!(
        "frontier: {} of {} points are Pareto-optimal over (violations, slowdown, energy-delay)",
        outcome.frontier().len(),
        outcome.points.len()
    );
    println!(
        "store: {}/{} runs served from the store (hit rate {:.2}), {} evicted",
        outcome.store_hits,
        outcome.runs,
        outcome.hit_rate(),
        outcome.evicted.files
    );
}
