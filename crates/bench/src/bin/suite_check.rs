//! Internal sanity sweep: base vs tuning violations across the full suite
//! (not a paper artifact; used to re-verify workload calibration quickly).
//!
//! This is also the supervision smoke harness: `--faults SEED` injects a
//! deterministic fault plan, `--timeout SECS` arms the watchdog, and
//! `--resume` checkpoints completed applications. Under an active policy
//! the sweep degrades gracefully — failed applications are reported, the
//! rest still print — and the process exits 0 as long as every failure was
//! injected (a clean run that fails still exits 1).

use bench::{
    failure_report_section, json_document, print_failure_reports, run_metrics_report, HarnessArgs,
    Report,
};
use restune::experiment::{base_suite_supervised, run_suite_policed};
use restune::{SimConfig, Technique, TuningConfig};
use workloads::spec2k;

fn main() {
    let _shutdown = bench::harness_init();
    let args = HarnessArgs::parse();
    let _trace = bench::init_trace(&args);
    let _connect = bench::init_connect(&args);
    let policy = args.policy();
    let sim = SimConfig::isca04(args.instructions);
    let tun = Technique::Tuning(TuningConfig::isca04_table1(100));
    let profiles = spec2k::all();

    let base = base_suite_supervised(&sim, &policy);
    let tuned = run_suite_policed(&profiles, &tun, &sim, &policy, "tuning-100");
    let reports = [base.report.clone(), tuned.report.clone()];

    if args.json {
        let mut rows = Report::new(&[
            "app",
            "base_violation_cycles",
            "tuned_violation_cycles",
            "slowdown",
            "first_level_fraction",
            "classification_ok",
        ]);
        for ((p, b), t) in profiles.iter().zip(&base.outcomes).zip(&tuned.outcomes) {
            let (Ok(b), Ok(t)) = (b, t) else { continue };
            rows.push(vec![
                p.name.into(),
                b.violation_cycles.into(),
                t.violation_cycles.into(),
                (t.cycles as f64 / b.cycles as f64).into(),
                t.first_level_fraction().into(),
                ((b.violation_cycles > 0) == p.paper_violating).into(),
            ]);
        }
        let metrics: Vec<_> = base
            .metrics
            .iter()
            .chain(&tuned.metrics)
            .filter_map(|m| *m)
            .collect();
        let mut sections = vec![
            ("suite_check", rows),
            ("run_metrics", run_metrics_report(&metrics)),
        ];
        if policy.is_inert() {
            // Clean mode stays bit-identical to the pre-supervision output
            // shape: no failures section.
            println!("{}", json_document(&sections));
        } else {
            sections.push(("failures", failure_report_section(&reports)));
            println!("{}", json_document(&sections));
        }
    } else {
        let (mut tb, mut tt) = (0u64, 0u64);
        let mut misclassified = 0;
        let mut failed = 0;
        for ((p, b), t) in profiles.iter().zip(&base.outcomes).zip(&tuned.outcomes) {
            let (Ok(b), Ok(t)) = (b, t) else {
                failed += 1;
                println!("{:10} FAILED (see supervision report)", p.name);
                continue;
            };
            tb += b.violation_cycles;
            tt += t.violation_cycles;
            let ok = (b.violation_cycles > 0) == p.paper_violating;
            if !ok {
                misclassified += 1;
            }
            println!(
                "{:10} base_viol={:6} tuned_viol={:5} slowdown={:.3} L1f={:.3} class_ok={}",
                p.name,
                b.violation_cycles,
                t.violation_cycles,
                t.cycles as f64 / b.cycles as f64,
                t.first_level_fraction(),
                ok
            );
        }
        println!("TOTAL base={tb} tuned={tt} misclassified={misclassified} failed={failed}");
        println!(
            "engine: base suite {:.1}s (recorded: {}), tuned suite {:.1}s",
            base.wall_seconds,
            base.metrics
                .first()
                .is_some_and(|m| m.as_ref().is_some_and(|m| m.replayed)),
            tuned.wall_seconds
        );
        print_failure_reports(&reports);
    }

    // Degraded mode (an active fault plan) exits 0: injected failures are
    // the experiment, not an error. A genuinely clean run that fails exits 1.
    let clean = reports.iter().all(|r| r.failures.is_empty());
    if !clean && !policy.plan.is_enabled() {
        std::process::exit(1);
    }
}
