//! Internal sanity sweep: base vs tuning violations across the full suite
//! (not a paper artifact; used to re-verify workload calibration quickly).

use restune::engine::{cached_base_suite, try_run_suite};
use restune::{SimConfig, Technique, TuningConfig};
use workloads::spec2k;

fn main() {
    let sim = SimConfig::isca04(120_000);
    let tun = Technique::Tuning(TuningConfig::isca04_table1(100));
    let profiles = spec2k::all();
    let base = cached_base_suite(&sim);
    let tuned = match try_run_suite(&profiles, &tun, &sim) {
        Ok(suite) => suite,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let (mut tb, mut tt) = (0u64, 0u64);
    let mut misclassified = 0;
    for ((p, b), t) in profiles.iter().zip(&base.results).zip(&tuned.results) {
        tb += b.violation_cycles;
        tt += t.violation_cycles;
        let ok = (b.violation_cycles > 0) == p.paper_violating;
        if !ok {
            misclassified += 1;
        }
        println!(
            "{:10} base_viol={:6} tuned_viol={:5} slowdown={:.3} L1f={:.3} class_ok={}",
            p.name,
            b.violation_cycles,
            t.violation_cycles,
            t.cycles as f64 / b.cycles as f64,
            t.first_level_fraction(),
            ok
        );
    }
    println!("TOTAL base={tb} tuned={tt} misclassified={misclassified}");
    println!(
        "engine: base suite {:.1}s (recorded: {}), tuned suite {:.1}s",
        base.wall_seconds,
        base.metrics.first().is_some_and(|m| m.replayed),
        tuned.wall_seconds
    );
}
