//! Table 3: resonance tuning swept over initial response times of 75–200
//! cycles — fractions of cycles in first/second-level response, worst and
//! average slowdowns, apps over 15 % slowdown, and relative energy-delay.

use bench::{format_table, HarnessArgs};
use restune::experiment::{run_base_suite, table3};
use restune::SimConfig;

fn main() {
    let args = HarnessArgs::parse();
    let sim = SimConfig::isca04(args.instructions);
    println!("=== Table 3: resonance tuning ===");
    println!("({} instructions per application)\n", args.instructions);

    let base = run_base_suite(&sim);
    let rows = table3(&sim, &[75, 100, 125, 150, 200], &base);

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let s = &r.summary;
            vec![
                format!("{} cycles", r.initial_response_time),
                format!("{:.3}", s.avg_first_level_fraction),
                format!("{:.4}", s.avg_second_level_fraction),
                format!("{:.3} ({})", s.worst_slowdown, s.worst_app),
                format!("{}", s.apps_over_15_percent),
                format!("{:.3}", s.avg_slowdown),
                format!("{:.3}", s.avg_energy_delay),
                format!("{}", s.total_violation_cycles),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "initial response",
                "frac L1 resp",
                "frac L2 resp",
                "worst slowdown",
                ">15%",
                "avg slowdown",
                "avg E·D",
                "resid viol"
            ],
            &table
        )
    );
    println!(
        "paper: L1 frac 0.10→0.20, L2 frac 0.0040→0.0027, avg slowdown 1.043→1.075,\n\
         avg energy-delay 1.052→1.088, worst 1.19–1.35 (wupwise/galgel), zero violations"
    );

    // The delay-sensitivity experiment of Section 5.2: 5-cycle response
    // delay at a 100-cycle initial response time.
    println!("\n--- sensing-to-response delay sensitivity (initial response 100) ---");
    let delayed = restune::experiment::run_suite(
        &workloads::spec2k::all(),
        &restune::Technique::Tuning(
            restune::TuningConfig::isca04_table1(100).with_response_delay(5),
        ),
        &sim,
    );
    let outcomes = restune::experiment::compare_suites(&base, &delayed);
    let s = restune::Summary::from_outcomes(&outcomes);
    println!(
        "delay 5 cycles: avg slowdown {:.3}, avg energy-delay {:.3}, residual violations {}",
        s.avg_slowdown, s.avg_energy_delay, s.total_violation_cycles
    );
    println!("(paper: 5.8 % slowdown and 6.6 % energy-delay — ~1–2 % above the no-delay case)");
}
