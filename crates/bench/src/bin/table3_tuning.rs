//! Table 3: resonance tuning swept over initial response times of 75–200
//! cycles — fractions of cycles in first/second-level response, worst and
//! average slowdowns, apps over 15 % slowdown, and relative energy-delay.

use bench::{
    failure_report_section, format_table, json_document, outcomes_report, print_failure_reports,
    push_outcomes, run_metrics_report, HarnessArgs, Report,
};
use restune::engine::cached_base_suite;
use restune::experiment::{
    base_suite_supervised, compare_suites, paired_outcomes, run_suite, run_suite_policed, table3,
    table3_supervised, Table3Row,
};
use restune::{SimConfig, Summary};

fn summary_report(rows: &[Table3Row]) -> (Report, Report) {
    let mut table = Report::new(&[
        "initial_response_time",
        "avg_first_level_fraction",
        "avg_second_level_fraction",
        "worst_slowdown",
        "worst_app",
        "apps_over_15_percent",
        "avg_slowdown",
        "avg_energy_delay",
        "residual_violation_cycles",
    ]);
    let mut outcomes = outcomes_report();
    for r in rows {
        let s = &r.summary;
        table.push(vec![
            u64::from(r.initial_response_time).into(),
            s.avg_first_level_fraction.into(),
            s.avg_second_level_fraction.into(),
            s.worst_slowdown.into(),
            s.worst_app.into(),
            (s.apps_over_15_percent as u64).into(),
            s.avg_slowdown.into(),
            s.avg_energy_delay.into(),
            s.total_violation_cycles.into(),
        ]);
        push_outcomes(
            &mut outcomes,
            &format!("tuning-{}", r.initial_response_time),
            &r.outcomes,
        );
    }
    (table, outcomes)
}

fn main() {
    let _shutdown = bench::harness_init();
    let args = HarnessArgs::parse();
    let _trace = bench::init_trace(&args);
    let _connect = bench::init_connect(&args);
    let policy = args.policy();
    let sim = SimConfig::isca04(args.instructions);
    let response_times = [75, 100, 125, 150, 200];
    let delayed_technique = restune::Technique::Tuning(
        restune::TuningConfig::isca04_table1(100).with_response_delay(5),
    );

    // The delay-sensitivity experiment of Section 5.2 rides along: 5-cycle
    // response delay at a 100-cycle initial response time.
    let (rows, delayed_outcomes, metrics, reports) = if policy.is_inert() {
        let base_suite = cached_base_suite(&sim);
        let base = &base_suite.results;
        let rows = table3(&sim, &response_times, base);
        let delayed = run_suite(&workloads::spec2k::all(), &delayed_technique, &sim);
        let delayed_outcomes = compare_suites(base, &delayed);
        (
            rows,
            delayed_outcomes,
            base_suite.metrics.clone(),
            Vec::new(),
        )
    } else {
        let base = base_suite_supervised(&sim, &policy);
        let (rows, mut reports) = table3_supervised(&sim, &response_times, &base, &policy);
        let delayed = run_suite_policed(
            &workloads::spec2k::all(),
            &delayed_technique,
            &sim,
            &policy,
            "tuning-100-delay-5",
        );
        let delayed_outcomes = paired_outcomes(&base, &delayed);
        reports.insert(0, base.report.clone());
        reports.push(delayed.report);
        let metrics: Vec<_> = base.metrics.iter().filter_map(|m| *m).collect();
        (rows, delayed_outcomes, metrics, reports)
    };
    let delayed_summary =
        (!delayed_outcomes.is_empty()).then(|| Summary::from_outcomes(&delayed_outcomes));

    if args.json {
        let (table, mut outcomes) = summary_report(&rows);
        push_outcomes(&mut outcomes, "tuning-100-delay-5", &delayed_outcomes);
        let metrics = run_metrics_report(&metrics);
        let mut sections = vec![
            ("table3", table),
            ("outcomes", outcomes),
            ("run_metrics", metrics),
        ];
        if !policy.is_inert() {
            sections.push(("failures", failure_report_section(&reports)));
        }
        println!("{}", json_document(&sections));
        return;
    }

    println!("=== Table 3: resonance tuning ===");
    println!("({} instructions per application)\n", args.instructions);

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let s = &r.summary;
            vec![
                format!("{} cycles", r.initial_response_time),
                format!("{:.3}", s.avg_first_level_fraction),
                format!("{:.4}", s.avg_second_level_fraction),
                format!("{:.3} ({})", s.worst_slowdown, s.worst_app),
                format!("{}", s.apps_over_15_percent),
                format!("{:.3}", s.avg_slowdown),
                format!("{:.3}", s.avg_energy_delay),
                format!("{}", s.total_violation_cycles),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "initial response",
                "frac L1 resp",
                "frac L2 resp",
                "worst slowdown",
                ">15%",
                "avg slowdown",
                "avg E·D",
                "resid viol"
            ],
            &table
        )
    );
    println!(
        "paper: L1 frac 0.10→0.20, L2 frac 0.0040→0.0027, avg slowdown 1.043→1.075,\n\
         avg energy-delay 1.052→1.088, worst 1.19–1.35 (wupwise/galgel), zero violations"
    );

    if let Some(delayed_summary) = &delayed_summary {
        println!("\n--- sensing-to-response delay sensitivity (initial response 100) ---");
        println!(
            "delay 5 cycles: avg slowdown {:.3}, avg energy-delay {:.3}, residual violations {}",
            delayed_summary.avg_slowdown,
            delayed_summary.avg_energy_delay,
            delayed_summary.total_violation_cycles
        );
        println!("(paper: 5.8 % slowdown and 6.6 % energy-delay — ~1–2 % above the no-delay case)");
    }
    print_failure_reports(&reports);
}
