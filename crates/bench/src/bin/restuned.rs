//! `restuned`: the long-running multi-tenant suite server. Harnesses
//! connect with `--connect ENDPOINT` and submit simulation jobs over the
//! RSTF framing; the server schedules them fairly across tenants onto a
//! supervised worker pool, shares one cross-tenant result cache (same job
//! fingerprint is never simulated twice), and contains per-client faults —
//! a torn frame, a slow-loris writer, or a mid-stream disconnect kills that
//! connection only. SIGTERM/SIGINT drain gracefully: queued and in-flight
//! jobs finish, completed results persist, and the process exits 0.

use std::time::Duration;

/// Usage text for `--help` and argument errors.
const USAGE: &str = "usage: restuned [--socket PATH | --tcp HOST:PORT] [--queue N] [--clients N]
                [--deadline SECS] [--workers N] [--faults SEED]
                [--mesh-peer ENDPOINT]...
  --socket PATH    listen on a unix socket at PATH
                   (default target/restuned.sock)
  --tcp HOST:PORT  listen on a TCP address instead of a unix socket
  --queue N        admission queue bound; requests beyond it are rejected
                   with a busy/retry-after frame (RESTUNE_SERVER_QUEUE,
                   default 256)
  --clients N      simultaneous client bound; connections beyond it are
                   refused (RESTUNE_SERVER_CLIENTS, default 64)
  --deadline SECS  watchdog deadline for requests that carry none of their
                   own (RESTUNE_SERVER_DEADLINE, default 120)
  --workers N      worker threads (RESTUNE_WORKERS, default: available
                   parallelism)
  --faults SEED    arm deterministic network-fault injection on a seeded
                   subset of accepted connections (chaos testing; off by
                   default)
  --mesh-peer E    advertise endpoint E as a mesh peer in the hello frame
                   sent to every client (repeatable; informational — the
                   client's own --connect list decides its routing)
  --help, -h       print this message

Flags override their environment knobs. SIGTERM or SIGINT drains: in-flight
jobs finish, results persist to the shared cache, and the exit code is 0.";

/// Exit code for malformed command-line arguments.
const EXIT_USAGE: i32 = 2;

fn fail(message: &str) -> ! {
    eprintln!("error: {message}\n{USAGE}");
    std::process::exit(EXIT_USAGE);
}

fn main() {
    restune::maybe_run_worker();
    restune::install_signal_handlers();
    // The server's workers execute every job in an isolated child process
    // when a worker entry exists (it does: `maybe_run_worker` above), so a
    // hard-crashing job cannot take the server down. Respect an explicit
    // operator override, default to process isolation otherwise.
    if std::env::var_os("RESTUNE_ISOLATION").is_none() {
        std::env::set_var("RESTUNE_ISOLATION", "auto");
    }

    let mut cfg = restune::ServerConfig::from_env();
    let mut endpoint = restune::Endpoint::parse("target/restuned.sock");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| -> String {
            match args.next() {
                Some(v) => v,
                None => fail(&format!("{flag} requires a value")),
            }
        };
        match a.as_str() {
            "--socket" => endpoint = restune::Endpoint::parse(&value("--socket")),
            "--tcp" => endpoint = restune::Endpoint::parse(&format!("tcp:{}", value("--tcp"))),
            "--queue" => match value("--queue").parse() {
                Ok(n) if n > 0 => cfg.queue_limit = n,
                _ => fail("--queue requires a positive integer"),
            },
            "--clients" => match value("--clients").parse() {
                Ok(n) if n > 0 => cfg.max_clients = n,
                _ => fail("--clients requires a positive integer"),
            },
            "--deadline" => match value("--deadline").parse::<f64>() {
                Ok(s) if s > 0.0 && s.is_finite() => {
                    cfg.default_deadline = Some(Duration::from_secs_f64(s));
                }
                _ => fail("--deadline requires a positive number of seconds"),
            },
            "--workers" => match value("--workers").parse() {
                Ok(n) if n > 0 => cfg.workers = n,
                _ => fail("--workers requires a positive integer"),
            },
            "--faults" => match value("--faults").parse() {
                Ok(seed) => cfg.net_fault_seed = Some(seed),
                Err(_) => fail("--faults requires an integer seed"),
            },
            "--mesh-peer" => {
                let peer = value("--mesh-peer");
                if peer.trim().is_empty() {
                    fail("--mesh-peer requires a non-empty endpoint");
                }
                cfg.mesh_peers.push(peer);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown argument: {other}")),
        }
    }

    let server = match restune::Server::start(endpoint, cfg.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot start restuned: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "restuned: listening on {} ({} workers, queue {}, clients {}{})",
        server.endpoint(),
        cfg.workers,
        cfg.queue_limit,
        cfg.max_clients,
        match cfg.net_fault_seed {
            Some(seed) => format!(", injecting network faults from seed {seed}"),
            None => String::new(),
        }
    );
    if !cfg.mesh_peers.is_empty() {
        eprintln!(
            "restuned: advertising {} mesh peer(s): {}",
            cfg.mesh_peers.len(),
            cfg.mesh_peers.join(", ")
        );
    }

    while !restune::shutdown_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }

    eprintln!("restuned: draining (queued and in-flight jobs will finish)");
    let stats = server.drain_and_stop();
    eprintln!(
        "restuned: drained; connections={} jobs_run={} failures={} cache_hits={} \
         cache_misses={} busy_rejections={} protocol_errors={} slow_loris_kills={} cancelled={} \
         probes={}",
        stats.connections,
        stats.jobs_run,
        stats.job_failures,
        stats.cache_hits,
        stats.cache_misses,
        stats.busy_rejections,
        stats.protocol_errors,
        stats.slow_loris_kills,
        stats.cancelled,
        stats.probes,
    );
    // The signal handler re-arms SIG_DFL after the first signal; exiting
    // explicitly with 0 makes "SIGTERM drains cleanly" observable to ci.
    std::process::exit(0);
}
