//! Newtype wrappers for the physical quantities used throughout the crate.
//!
//! The power-supply math mixes ohms, henries, farads, amps, volts, hertz, and
//! processor cycles. Newtypes keep those statically distinct ([C-NEWTYPE])
//! while staying zero-cost: each wraps a single `f64` (or `u64` for cycle
//! counts) and is `Copy`.
//!
//! All types expose their raw value through an explicit getter named after
//! the unit (e.g. [`Ohms::ohms`]) rather than `Deref`, so arithmetic with
//! mixed units must be written out deliberately.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

macro_rules! unit_f64 {
    ($(#[$meta:meta])* $name:ident, $getter:ident, $sym:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            /// Wraps a raw value in this unit.
            #[inline]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw value in this unit.
            #[inline]
            pub const fn $getter(self) -> f64 {
                self.0
            }

            /// Returns the absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns `true` if the value is finite (neither NaN nor infinite).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Returns the larger of `self` and `other`.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of `self` and `other`.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $sym)
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl From<f64> for $name {
            #[inline]
            fn from(value: f64) -> Self {
                Self(value)
            }
        }
    };
}

unit_f64!(
    /// Electrical resistance in ohms.
    Ohms,
    ohms,
    "Ω"
);
unit_f64!(
    /// Inductance in henries.
    Henries,
    henries,
    "H"
);
unit_f64!(
    /// Capacitance in farads.
    Farads,
    farads,
    "F"
);
unit_f64!(
    /// Electric current in amperes.
    Amps,
    amps,
    "A"
);
unit_f64!(
    /// Electric potential in volts.
    Volts,
    volts,
    "V"
);
unit_f64!(
    /// Frequency in hertz.
    Hertz,
    hertz,
    "Hz"
);
unit_f64!(
    /// Time in seconds.
    Seconds,
    seconds,
    "s"
);

impl Ohms {
    /// Convenience constructor from micro-ohms (the natural scale for
    /// power-supply impedance, e.g. the paper's 375 µΩ supply).
    #[inline]
    pub const fn from_micro(micro_ohms: f64) -> Self {
        Self::new(micro_ohms * 1e-6)
    }

    /// Convenience constructor from milli-ohms.
    #[inline]
    pub const fn from_milli(milli_ohms: f64) -> Self {
        Self::new(milli_ohms * 1e-3)
    }
}

impl Henries {
    /// Convenience constructor from picohenries (solder-bump parasitics,
    /// e.g. the paper's 1.69 pH).
    #[inline]
    pub const fn from_pico(pico_henries: f64) -> Self {
        Self::new(pico_henries * 1e-12)
    }

    /// Convenience constructor from nanohenries.
    #[inline]
    pub const fn from_nano(nano_henries: f64) -> Self {
        Self::new(nano_henries * 1e-9)
    }
}

impl Farads {
    /// Convenience constructor from nanofarads (on-die decoupling caps,
    /// e.g. the paper's 1500 nF).
    #[inline]
    pub const fn from_nano(nano_farads: f64) -> Self {
        Self::new(nano_farads * 1e-9)
    }

    /// Convenience constructor from microfarads.
    #[inline]
    pub const fn from_micro(micro_farads: f64) -> Self {
        Self::new(micro_farads * 1e-6)
    }
}

impl Hertz {
    /// Convenience constructor from megahertz (resonant frequencies are
    /// typically tens to hundreds of MHz).
    #[inline]
    pub const fn from_mega(mega_hertz: f64) -> Self {
        Self::new(mega_hertz * 1e6)
    }

    /// Convenience constructor from gigahertz (processor clocks).
    #[inline]
    pub const fn from_giga(giga_hertz: f64) -> Self {
        Self::new(giga_hertz * 1e9)
    }

    /// The period corresponding to this frequency.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero.
    #[inline]
    pub fn period(self) -> Seconds {
        assert!(self.hertz() != 0.0, "period of zero frequency is undefined");
        Seconds::new(1.0 / self.hertz())
    }
}

impl Seconds {
    /// The frequency corresponding to this period.
    ///
    /// # Panics
    ///
    /// Panics if the period is zero.
    #[inline]
    pub fn frequency(self) -> Hertz {
        assert!(
            self.seconds() != 0.0,
            "frequency of zero period is undefined"
        );
        Hertz::new(1.0 / self.seconds())
    }
}

/// A count of processor clock cycles.
///
/// Cycle counts are exact integers; they index per-cycle current histories
/// and measure periods of the resonance band expressed in clock ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(u64);

impl Cycles {
    /// Wraps a raw cycle count.
    #[inline]
    pub const fn new(count: u64) -> Self {
        Self(count)
    }

    /// Returns the raw cycle count.
    #[inline]
    pub const fn count(self) -> u64 {
        self.0
    }

    /// Returns the count as `usize` for indexing.
    #[inline]
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }

    /// Saturating subtraction.
    #[inline]
    pub const fn saturating_sub(self, rhs: Self) -> Self {
        Self(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

impl Add for Cycles {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl Sub for Cycles {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self(self.0 - rhs.0)
    }
}

impl From<u64> for Cycles {
    #[inline]
    fn from(count: u64) -> Self {
        Self(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ohms_from_micro() {
        assert!((Ohms::from_micro(375.0).ohms() - 375e-6).abs() < 1e-15);
    }

    #[test]
    fn henries_from_pico() {
        assert!((Henries::from_pico(1.69).henries() - 1.69e-12).abs() < 1e-24);
    }

    #[test]
    fn farads_from_nano() {
        assert!((Farads::from_nano(1500.0).farads() - 1.5e-6).abs() < 1e-15);
    }

    #[test]
    fn hertz_period_roundtrip() {
        let f = Hertz::from_mega(100.0);
        let t = f.period();
        assert!((t.seconds() - 10e-9).abs() < 1e-18);
        assert!((t.frequency().hertz() - f.hertz()).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "period of zero frequency")]
    fn zero_frequency_period_panics() {
        let _ = Hertz::new(0.0).period();
    }

    #[test]
    fn amps_arithmetic() {
        let a = Amps::new(105.0) - Amps::new(35.0);
        assert_eq!(a, Amps::new(70.0));
        assert_eq!(-a, Amps::new(-70.0));
        assert_eq!(a * 0.5, Amps::new(35.0));
        assert_eq!(a / 2.0, Amps::new(35.0));
        assert_eq!(Amps::new(-3.0).abs(), Amps::new(3.0));
    }

    #[test]
    fn amps_min_max() {
        let lo = Amps::new(35.0);
        let hi = Amps::new(105.0);
        assert_eq!(lo.max(hi), hi);
        assert_eq!(lo.min(hi), lo);
    }

    #[test]
    fn cycles_arithmetic() {
        let a = Cycles::new(100);
        let b = Cycles::new(42);
        assert_eq!(a + b, Cycles::new(142));
        assert_eq!(a - b, Cycles::new(58));
        assert_eq!(b.saturating_sub(a), Cycles::new(0));
        assert_eq!(a.as_usize(), 100usize);
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(Amps::new(13.0).to_string(), "13 A");
        assert_eq!(Cycles::new(7).to_string(), "7 cycles");
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Volts::default(), Volts::new(0.0));
        assert_eq!(Cycles::default(), Cycles::new(0));
    }
}
