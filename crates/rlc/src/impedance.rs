//! Frequency-domain impedance of the power-supply network (Figure 1(c)).
//!
//! The impedance seen by the CPU current source is the series R–L branch in
//! parallel with the on-die decoupling capacitance:
//!
//! ```text
//! Z(jω) = (R + jωL) / (1 − ω²LC + jωRC)
//! ```
//!
//! The magnitude peaks near the resonant frequency; the half-energy points
//! define the resonance band. [`ImpedanceSweep`] regenerates the paper's
//! Figure 1(c).

use crate::params::SupplyParams;
use crate::units::{Hertz, Ohms};

/// A complex number, just enough for impedance math.
///
/// Kept private to the crate's needs rather than pulling in a complex-number
/// dependency.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number from real and imaginary parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// The magnitude |z|.
    pub fn magnitude(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// The phase angle in radians.
    pub fn phase(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex division.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the divisor is exactly zero.
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, rhs: Self) -> Self {
        let denom = rhs.re * rhs.re + rhs.im * rhs.im;
        debug_assert!(denom != 0.0, "complex division by zero");
        Self {
            re: (self.re * rhs.re + self.im * rhs.im) / denom,
            im: (self.im * rhs.re - self.re * rhs.im) / denom,
        }
    }
}

/// Computes the complex impedance of the supply network at frequency `f`.
///
/// At DC this is exactly `R`; at the resonant frequency the magnitude peaks
/// at roughly Q·√(L/C).
///
/// # Examples
///
/// ```
/// use rlc::{SupplyParams, impedance_at};
/// use rlc::units::Hertz;
///
/// let p = SupplyParams::isca04_table1();
/// let dc = impedance_at(&p, Hertz::new(1.0)).magnitude();
/// assert!((dc - p.resistance().ohms()).abs() / p.resistance().ohms() < 1e-3);
/// ```
pub fn impedance_at(params: &SupplyParams, f: Hertz) -> Complex {
    let omega = 2.0 * std::f64::consts::PI * f.hertz();
    let r = params.resistance().ohms();
    let l = params.inductance().henries();
    let c = params.capacitance().farads();
    let numerator = Complex::new(r, omega * l);
    let denominator = Complex::new(1.0 - omega * omega * l * c, omega * r * c);
    numerator.div(denominator)
}

/// One sample point of an impedance sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImpedancePoint {
    /// Sample frequency.
    pub frequency: Hertz,
    /// Impedance magnitude at that frequency.
    pub magnitude: Ohms,
    /// Impedance phase in radians.
    pub phase_radians: f64,
}

/// A sampled impedance-versus-frequency curve (the paper's Figure 1(c)).
#[derive(Debug, Clone, PartialEq)]
pub struct ImpedanceSweep {
    points: Vec<ImpedancePoint>,
}

impl ImpedanceSweep {
    /// Sweeps the impedance over `[f_start, f_end]` with `n` linearly spaced
    /// samples (inclusive of both endpoints).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or if `f_start >= f_end`.
    pub fn linear(params: &SupplyParams, f_start: Hertz, f_end: Hertz, n: usize) -> Self {
        assert!(n >= 2, "need at least two sweep points");
        assert!(
            f_start.hertz() < f_end.hertz(),
            "sweep range must be increasing"
        );
        let step = (f_end.hertz() - f_start.hertz()) / (n - 1) as f64;
        let points = (0..n)
            .map(|k| {
                let f = Hertz::new(f_start.hertz() + step * k as f64);
                let z = impedance_at(params, f);
                ImpedancePoint {
                    frequency: f,
                    magnitude: Ohms::new(z.magnitude()),
                    phase_radians: z.phase(),
                }
            })
            .collect();
        Self { points }
    }

    /// The sampled points in ascending frequency order.
    pub fn points(&self) -> &[ImpedancePoint] {
        &self.points
    }

    /// The sample with the largest impedance magnitude (the resonant peak).
    pub fn peak(&self) -> ImpedancePoint {
        *self
            .points
            .iter()
            .max_by(|a, b| a.magnitude.ohms().total_cmp(&b.magnitude.ohms()))
            .expect("sweep has at least two points")
    }

    /// The measured half-energy band: the lowest and highest sampled
    /// frequencies whose impedance magnitude is at least `peak / √2`.
    ///
    /// This is the empirical counterpart of
    /// [`SupplyParams::resonance_band`]; the two agree to sweep resolution.
    pub fn half_energy_band(&self) -> (Hertz, Hertz) {
        let cutoff = self.peak().magnitude.ohms() / std::f64::consts::SQRT_2;
        let mut lo = None;
        let mut hi = None;
        for p in &self.points {
            if p.magnitude.ohms() >= cutoff {
                if lo.is_none() {
                    lo = Some(p.frequency);
                }
                hi = Some(p.frequency);
            }
        }
        (
            lo.expect("peak itself exceeds the cutoff"),
            hi.expect("peak itself exceeds the cutoff"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table1() -> SupplyParams {
        SupplyParams::isca04_table1()
    }

    #[test]
    fn dc_impedance_is_r() {
        let p = table1();
        let z = impedance_at(&p, Hertz::new(0.0));
        assert!((z.magnitude() - p.resistance().ohms()).abs() < 1e-12);
    }

    #[test]
    fn peak_is_near_resonant_frequency() {
        let p = table1();
        let sweep =
            ImpedanceSweep::linear(&p, Hertz::from_mega(40.0), Hertz::from_mega(160.0), 2401);
        let peak = sweep.peak();
        let f0 = p.resonant_frequency().hertz();
        assert!(
            (peak.frequency.hertz() - f0).abs() / f0 < 0.02,
            "peak at {} vs f0 {}",
            peak.frequency,
            p.resonant_frequency()
        );
    }

    #[test]
    fn peak_magnitude_is_about_q_times_z0() {
        let p = table1();
        let sweep =
            ImpedanceSweep::linear(&p, Hertz::from_mega(80.0), Hertz::from_mega(120.0), 4001);
        let expected = p.quality_factor() * p.characteristic_impedance().ohms();
        let got = sweep.peak().magnitude.ohms();
        assert!(
            (got - expected).abs() / expected < 0.10,
            "peak |Z| = {got}, Q·Z0 = {expected}"
        );
    }

    #[test]
    fn half_energy_band_matches_analytic_band() {
        let p = table1();
        let sweep =
            ImpedanceSweep::linear(&p, Hertz::from_mega(40.0), Hertz::from_mega(200.0), 16001);
        let (lo, hi) = sweep.half_energy_band();
        let (alo, ahi) = p.resonance_band();
        assert!(
            (lo.hertz() - alo.hertz()).abs() / alo.hertz() < 0.02,
            "lo {} vs analytic {}",
            lo,
            alo
        );
        assert!(
            (hi.hertz() - ahi.hertz()).abs() / ahi.hertz() < 0.02,
            "hi {} vs analytic {}",
            hi,
            ahi
        );
    }

    #[test]
    fn impedance_far_above_resonance_falls_off() {
        let p = table1();
        let at_peak = impedance_at(&p, p.resonant_frequency()).magnitude();
        let far = impedance_at(&p, Hertz::from_giga(2.0)).magnitude();
        assert!(far < at_peak / 10.0, "far {far} vs peak {at_peak}");
    }

    #[test]
    fn complex_div_basics() {
        let z = Complex::new(1.0, 1.0).div(Complex::new(1.0, -1.0));
        // (1+i)/(1-i) = i
        assert!(z.re.abs() < 1e-12 && (z.im - 1.0).abs() < 1e-12);
        assert!((z.magnitude() - 1.0).abs() < 1e-12);
        assert!((z.phase() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least two sweep points")]
    fn sweep_rejects_single_point() {
        let p = table1();
        let _ = ImpedanceSweep::linear(&p, Hertz::new(1.0), Hertz::new(2.0), 1);
    }

    #[test]
    #[should_panic(expected = "increasing")]
    fn sweep_rejects_reversed_range() {
        let p = table1();
        let _ = ImpedanceSweep::linear(&p, Hertz::new(2.0), Hertz::new(1.0), 10);
    }

    #[test]
    fn sweep_points_are_monotone_in_frequency() {
        let p = table1();
        let sweep = ImpedanceSweep::linear(&p, Hertz::from_mega(10.0), Hertz::from_mega(20.0), 11);
        let pts = sweep.points();
        assert_eq!(pts.len(), 11);
        for w in pts.windows(2) {
            assert!(w[0].frequency.hertz() < w[1].frequency.hertz());
        }
        assert!((pts[0].frequency.hertz() - 10e6).abs() < 1.0);
        assert!((pts[10].frequency.hertz() - 20e6).abs() < 1.0);
    }
}
