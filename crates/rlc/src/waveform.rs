//! Per-cycle current waveform generators.
//!
//! The paper's circuit-level experiments (Figure 3 and the Section 2.1.3
//! calibration) excite the supply with known periodic waveforms. A
//! [`Waveform`] maps a cycle index to a CPU current; generators compose so
//! the calibration and figure harnesses can build square/sine/triangle waves
//! with arbitrary start/stop windows around a baseline current.

use crate::units::{Amps, Cycles};

/// A deterministic per-cycle current waveform.
///
/// Implementors map an absolute cycle index to a current. The trait is
/// object-safe so harnesses can store heterogeneous waveform lists.
pub trait Waveform {
    /// The CPU current drawn during `cycle`.
    fn current_at(&self, cycle: Cycles) -> Amps;
}

impl<F: Fn(Cycles) -> Amps> Waveform for F {
    fn current_at(&self, cycle: Cycles) -> Amps {
        self(cycle)
    }
}

/// A constant current.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constant {
    level: Amps,
}

impl Constant {
    /// Creates a constant waveform at `level`.
    pub const fn new(level: Amps) -> Self {
        Self { level }
    }
}

impl Waveform for Constant {
    fn current_at(&self, _cycle: Cycles) -> Amps {
        self.level
    }
}

/// The shape of a periodic excitation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Shape {
    /// Alternates between the two extremes each half period (the paper's
    /// Figure 3 stimulus).
    Square,
    /// A sine between the two extremes.
    Sine,
    /// A symmetric triangle between the two extremes.
    Triangle,
}

/// A periodic wave of a given [`Shape`] active only inside
/// `[start, end)`, sitting at `baseline` outside that window.
///
/// Amplitude is expressed peak-to-peak around the baseline: the wave spans
/// `baseline ± peak_to_peak/2`.
///
/// # Examples
///
/// The 34 A square wave of Figure 3, beginning at cycle 100 and ending at
/// cycle 500, around a 70 A mid-level current:
///
/// ```
/// use rlc::units::{Amps, Cycles};
/// use rlc::waveform::{PeriodicWave, Shape, Waveform};
///
/// let wave = PeriodicWave::new(
///     Shape::Square,
///     Amps::new(70.0),
///     Amps::new(34.0),
///     Cycles::new(100), // period: resonant frequency at 10 GHz
///     Cycles::new(100),
///     Cycles::new(500),
/// );
/// assert_eq!(wave.current_at(Cycles::new(0)), Amps::new(70.0));   // before
/// assert_eq!(wave.current_at(Cycles::new(100)), Amps::new(87.0)); // high half
/// assert_eq!(wave.current_at(Cycles::new(150)), Amps::new(53.0)); // low half
/// assert_eq!(wave.current_at(Cycles::new(600)), Amps::new(70.0)); // after
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeriodicWave {
    shape: Shape,
    baseline: Amps,
    peak_to_peak: Amps,
    period: Cycles,
    start: Cycles,
    end: Cycles,
}

impl PeriodicWave {
    /// Creates a periodic wave.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero or `peak_to_peak` is negative.
    pub fn new(
        shape: Shape,
        baseline: Amps,
        peak_to_peak: Amps,
        period: Cycles,
        start: Cycles,
        end: Cycles,
    ) -> Self {
        assert!(period.count() > 0, "waveform period must be nonzero");
        assert!(
            peak_to_peak.amps() >= 0.0,
            "peak-to-peak amplitude must be non-negative"
        );
        Self {
            shape,
            baseline,
            peak_to_peak,
            period,
            start,
            end,
        }
    }

    /// A square wave running forever from cycle 0 (calibration stimulus).
    pub fn sustained_square(baseline: Amps, peak_to_peak: Amps, period: Cycles) -> Self {
        Self::new(
            Shape::Square,
            baseline,
            peak_to_peak,
            period,
            Cycles::new(0),
            Cycles::new(u64::MAX),
        )
    }

    /// The wave's period in cycles.
    pub fn period(&self) -> Cycles {
        self.period
    }

    /// The peak-to-peak amplitude.
    pub fn peak_to_peak(&self) -> Amps {
        self.peak_to_peak
    }
}

impl Waveform for PeriodicWave {
    fn current_at(&self, cycle: Cycles) -> Amps {
        if cycle < self.start || cycle >= self.end {
            return self.baseline;
        }
        let phase_cycles = (cycle.count() - self.start.count()) % self.period.count();
        let phase = phase_cycles as f64 / self.period.count() as f64; // [0, 1)
        let half_amp = self.peak_to_peak.amps() / 2.0;
        let offset = match self.shape {
            Shape::Square => {
                if phase < 0.5 {
                    half_amp
                } else {
                    -half_amp
                }
            }
            Shape::Sine => half_amp * (2.0 * std::f64::consts::PI * phase).sin(),
            Shape::Triangle => {
                // Rise 0→1 over the first half, fall back over the second.
                let tri = if phase < 0.5 {
                    4.0 * phase - 1.0
                } else {
                    3.0 - 4.0 * phase
                };
                half_amp * tri
            }
        };
        Amps::new(self.baseline.amps() + offset)
    }
}

/// Samples any waveform into a per-cycle vector `[0, n)`.
pub fn sample<W: Waveform + ?Sized>(wave: &W, n: Cycles) -> Vec<Amps> {
    (0..n.count())
        .map(|c| wave.current_at(Cycles::new(c)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let w = Constant::new(Amps::new(42.0));
        assert_eq!(w.current_at(Cycles::new(0)), Amps::new(42.0));
        assert_eq!(w.current_at(Cycles::new(1_000_000)), Amps::new(42.0));
    }

    #[test]
    fn square_alternates_half_periods() {
        let w = PeriodicWave::sustained_square(Amps::new(70.0), Amps::new(34.0), Cycles::new(100));
        for c in 0..50 {
            assert_eq!(w.current_at(Cycles::new(c)), Amps::new(87.0), "cycle {c}");
        }
        for c in 50..100 {
            assert_eq!(w.current_at(Cycles::new(c)), Amps::new(53.0), "cycle {c}");
        }
        assert_eq!(w.current_at(Cycles::new(100)), Amps::new(87.0));
    }

    #[test]
    fn sine_peaks_at_quarter_period() {
        let w = PeriodicWave::new(
            Shape::Sine,
            Amps::new(0.0),
            Amps::new(2.0),
            Cycles::new(100),
            Cycles::new(0),
            Cycles::new(u64::MAX),
        );
        assert!((w.current_at(Cycles::new(25)).amps() - 1.0).abs() < 1e-12);
        assert!((w.current_at(Cycles::new(75)).amps() + 1.0).abs() < 1e-12);
        assert!(w.current_at(Cycles::new(0)).amps().abs() < 1e-12);
    }

    #[test]
    fn triangle_is_symmetric_and_bounded() {
        let w = PeriodicWave::new(
            Shape::Triangle,
            Amps::new(10.0),
            Amps::new(8.0),
            Cycles::new(40),
            Cycles::new(0),
            Cycles::new(u64::MAX),
        );
        let samples = sample(&w, Cycles::new(40));
        let max = samples.iter().map(|a| a.amps()).fold(f64::MIN, f64::max);
        let min = samples.iter().map(|a| a.amps()).fold(f64::MAX, f64::min);
        assert!((13.0..=14.0 + 1e-12).contains(&max), "max {max}");
        assert!((6.0 - 1e-12..7.0).contains(&min), "min {min}");
        // Mean over one period is the baseline.
        let mean: f64 = samples.iter().map(|a| a.amps()).sum::<f64>() / 40.0;
        assert!((mean - 10.0).abs() < 0.3, "mean {mean}");
    }

    #[test]
    fn window_gating_returns_baseline_outside() {
        let w = PeriodicWave::new(
            Shape::Square,
            Amps::new(70.0),
            Amps::new(34.0),
            Cycles::new(100),
            Cycles::new(100),
            Cycles::new(500),
        );
        assert_eq!(w.current_at(Cycles::new(99)), Amps::new(70.0));
        assert_eq!(w.current_at(Cycles::new(100)), Amps::new(87.0));
        assert_eq!(w.current_at(Cycles::new(499)), Amps::new(53.0));
        assert_eq!(w.current_at(Cycles::new(500)), Amps::new(70.0));
    }

    #[test]
    fn closure_implements_waveform() {
        let w = |c: Cycles| Amps::new(c.count() as f64);
        assert_eq!(w.current_at(Cycles::new(5)), Amps::new(5.0));
        let v = sample(&w, Cycles::new(3));
        assert_eq!(v, vec![Amps::new(0.0), Amps::new(1.0), Amps::new(2.0)]);
    }

    #[test]
    #[should_panic(expected = "period must be nonzero")]
    fn zero_period_panics() {
        let _ = PeriodicWave::sustained_square(Amps::new(0.0), Amps::new(1.0), Cycles::new(0));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_amplitude_panics() {
        let _ = PeriodicWave::sustained_square(Amps::new(0.0), Amps::new(-1.0), Cycles::new(10));
    }
}
