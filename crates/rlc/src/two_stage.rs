//! Two-stage power-distribution model: low-frequency resonance
//! (Section 2.2 of the paper).
//!
//! Beyond the medium-frequency loop of [`SupplyParams`], real packages have
//! a second peak of high impedance at a few megahertz, formed by the
//! off-chip inductance (board + package leads) against the bulk on-chip
//! decoupling capacitance. This module cascades the two loops:
//!
//! ```text
//!        R1     L1        R2     L2
//!  ┌───/\/\──OOOO───┬───/\/\──OOOO───┬──────┐
//! (V)              ===C1            ===C2  (I) CPU
//!  └────────────────┴────────────────┴──────┘
//! ```
//!
//! Stage 1 (`R1, L1, C1`) is the off-chip loop (milliohms, nanohenries,
//! microfarads: resonance at a few MHz); stage 2 (`R2, L2, C2`) is the
//! on-die loop of the main model (≈100 MHz). The same resonance-tuning
//! machinery applies to both peaks — only the period lengths (thousands of
//! cycles instead of ~100) change.

use crate::error::RlcError;
use crate::impedance::Complex;
use crate::params::SupplyParams;
use crate::units::{Amps, Cycles, Farads, Henries, Hertz, Ohms, Seconds, Volts};

/// Parameters of the cascaded two-loop supply network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoStageParams {
    /// Off-chip loop resistance (regulator + board).
    pub r1: Ohms,
    /// Off-chip loop inductance (board + package leads).
    pub l1: Henries,
    /// Bulk on-chip/package capacitance.
    pub c1: Farads,
    /// On-die loop (the medium-frequency model).
    pub on_die: SupplyParams,
}

impl TwoStageParams {
    /// Builds a two-stage network, validating both loops.
    ///
    /// # Errors
    ///
    /// Returns [`RlcError::InvalidElement`] for non-finite or non-positive
    /// stage-1 elements (the on-die stage validates at its own
    /// construction), and [`RlcError::NotUnderdamped`] when the off-chip
    /// loop cannot oscillate.
    pub fn new(r1: Ohms, l1: Henries, c1: Farads, on_die: SupplyParams) -> Result<Self, RlcError> {
        let check = |element: &'static str, value: f64| -> Result<(), RlcError> {
            if !value.is_finite() || value <= 0.0 {
                Err(RlcError::InvalidElement { element, value })
            } else {
                Ok(())
            }
        };
        check("R1", r1.ohms())?;
        check("L1", l1.henries())?;
        check("C1", c1.farads())?;
        let r_squared = r1.ohms() * r1.ohms();
        let four_l_over_c = 4.0 * l1.henries() / c1.farads();
        if r_squared >= four_l_over_c {
            return Err(RlcError::NotUnderdamped {
                r_squared,
                four_l_over_c,
            });
        }
        Ok(Self { r1, l1, c1, on_die })
    }

    /// A representative future package: the Table 1 on-die loop behind a
    /// 2 mΩ / 0.4 nH / 25 µF off-chip loop, placing the low-frequency peak
    /// near 1.6 MHz ("a few megahertz", Section 2.2) with a fairly small
    /// impedance peak, as the paper describes for current technology.
    pub fn isca04_low_frequency() -> Self {
        Self::new(
            Ohms::from_milli(2.0),
            Henries::from_nano(0.4),
            Farads::from_micro(25.0),
            SupplyParams::isca04_table1(),
        )
        .expect("preset parameters are valid by construction")
    }

    /// The approximate low-frequency resonant peak: the off-chip inductance
    /// against the *total* downstream capacitance.
    pub fn low_resonant_frequency(&self) -> Hertz {
        let c_total = self.c1.farads() + self.on_die.capacitance().farads();
        Hertz::new(1.0 / (2.0 * std::f64::consts::PI * (self.l1.henries() * c_total).sqrt()))
    }

    /// The quality factor of the low-frequency loop.
    pub fn low_quality_factor(&self) -> f64 {
        let c_total = self.c1.farads() + self.on_die.capacitance().farads();
        (self.l1.henries() / c_total).sqrt() / self.r1.ohms()
    }

    /// The low-frequency resonance band expressed as clock-cycle periods
    /// `(short, long)` — thousands of cycles at GHz clocks, which is what
    /// gives resonance tuning even more time at this peak.
    ///
    /// # Errors
    ///
    /// Returns [`RlcError::InvalidElement`] for a bad clock.
    pub fn low_band_cycles(&self, clock: Hertz) -> Result<(Cycles, Cycles), RlcError> {
        if !clock.hertz().is_finite() || clock.hertz() <= 0.0 {
            return Err(RlcError::InvalidElement {
                element: "clock",
                value: clock.hertz(),
            });
        }
        let f0 = self.low_resonant_frequency().hertz();
        let q = self.low_quality_factor();
        let half = 1.0 / (2.0 * q);
        let root = (1.0 + half * half).sqrt();
        let f_low = f0 * (root - half);
        let f_high = f0 * (root + half);
        Ok((
            Cycles::new((clock.hertz() / f_high).round() as u64),
            Cycles::new((clock.hertz() / f_low).round() as u64),
        ))
    }

    /// The complex impedance seen by the CPU current source at frequency
    /// `f`: stage-2 capacitance in parallel with (stage-2 branch in series
    /// with the stage-1 node impedance).
    pub fn impedance_at(&self, f: Hertz) -> Complex {
        let w = 2.0 * std::f64::consts::PI * f.hertz();
        let parallel = |a: Complex, b: Complex| -> Complex {
            // a·b / (a+b)
            let prod = Complex::new(a.re * b.re - a.im * b.im, a.re * b.im + a.im * b.re);
            prod.div(Complex::new(a.re + b.re, a.im + b.im))
        };
        // At DC the capacitor impedances are infinite; return series R.
        if w == 0.0 {
            return Complex::new(self.r1.ohms() + self.on_die.resistance().ohms(), 0.0);
        }
        let z_l1 = Complex::new(self.r1.ohms(), w * self.l1.henries());
        let z_c1 = Complex::new(0.0, -1.0 / (w * self.c1.farads()));
        let z_node1 = parallel(z_l1, z_c1);
        let z_branch2 = Complex::new(
            z_node1.re + self.on_die.resistance().ohms(),
            z_node1.im + w * self.on_die.inductance().henries(),
        );
        let z_c2 = Complex::new(0.0, -1.0 / (w * self.on_die.capacitance().farads()));
        parallel(z_branch2, z_c2)
    }
}

/// State of the four-element cascade.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TwoStageState {
    /// Voltage across the bulk capacitance C1.
    pub v1: f64,
    /// Current in the off-chip branch (R1, L1).
    pub i1: f64,
    /// Voltage across the on-die capacitance C2.
    pub v2: f64,
    /// Current in the die-attach branch (R2, L2).
    pub i2: f64,
}

impl TwoStageState {
    /// The steady state for a constant CPU current.
    pub fn steady(params: &TwoStageParams, i_cpu: Amps) -> Self {
        let i = i_cpu.amps();
        let v1 = -params.r1.ohms() * i;
        Self {
            v1,
            i1: i,
            v2: v1 - params.on_die.resistance().ohms() * i,
            i2: i,
        }
    }

    /// The inductive-noise voltage at the die with both stages' quasi-static
    /// IR drops removed (zero at any constant current).
    pub fn noise_voltage(&self, params: &TwoStageParams) -> Volts {
        Volts::new(
            self.v2 + params.on_die.resistance().ohms() * self.i2 + params.r1.ohms() * self.i1,
        )
    }
}

#[derive(Debug, Clone, Copy)]
struct Derivative {
    dv1: f64,
    di1: f64,
    dv2: f64,
    di2: f64,
}

fn derivative(p: &TwoStageParams, s: TwoStageState, i_cpu: f64) -> Derivative {
    Derivative {
        dv1: (s.i1 - s.i2) / p.c1.farads(),
        di1: (-s.v1 - p.r1.ohms() * s.i1) / p.l1.henries(),
        dv2: (s.i2 - i_cpu) / p.on_die.capacitance().farads(),
        di2: (s.v1 - s.v2 - p.on_die.resistance().ohms() * s.i2) / p.on_die.inductance().henries(),
    }
}

/// One Heun step of the cascade.
pub fn step_two_stage(
    params: &TwoStageParams,
    state: TwoStageState,
    i_start: Amps,
    i_end: Amps,
    dt: Seconds,
) -> TwoStageState {
    let h = dt.seconds();
    let k1 = derivative(params, state, i_start.amps());
    let predictor = TwoStageState {
        v1: state.v1 + h * k1.dv1,
        i1: state.i1 + h * k1.di1,
        v2: state.v2 + h * k1.dv2,
        i2: state.i2 + h * k1.di2,
    };
    let k2 = derivative(params, predictor, i_end.amps());
    TwoStageState {
        v1: state.v1 + 0.5 * h * (k1.dv1 + k2.dv1),
        i1: state.i1 + 0.5 * h * (k1.di1 + k2.di1),
        v2: state.v2 + 0.5 * h * (k1.dv2 + k2.dv2),
        i2: state.i2 + 0.5 * h * (k1.di2 + k2.di2),
    }
}

/// A stateful two-stage supply advanced one clock cycle at a time (the
/// low-frequency counterpart of [`crate::PowerSupply`]).
#[derive(Debug, Clone)]
pub struct TwoStageSupply {
    params: TwoStageParams,
    dt: Seconds,
    state: TwoStageState,
    prev_current: Amps,
    cycle: Cycles,
    violations: u64,
    worst_noise: Volts,
}

impl TwoStageSupply {
    /// Creates a supply pre-settled at `initial_current`.
    ///
    /// # Panics
    ///
    /// Panics if `clock` is not finite and positive.
    pub fn new(params: TwoStageParams, clock: Hertz, initial_current: Amps) -> Self {
        assert!(
            clock.hertz().is_finite() && clock.hertz() > 0.0,
            "clock frequency must be finite and positive"
        );
        Self {
            state: TwoStageState::steady(&params, initial_current),
            params,
            dt: clock.period(),
            prev_current: initial_current,
            cycle: Cycles::new(0),
            violations: 0,
            worst_noise: Volts::new(0.0),
        }
    }

    /// The parameters.
    pub fn params(&self) -> &TwoStageParams {
        &self.params
    }

    /// Advances one cycle at the given CPU current; returns the die-level
    /// noise voltage.
    pub fn tick(&mut self, current: Amps) -> Volts {
        self.state = step_two_stage(
            &self.params,
            self.state,
            self.prev_current,
            current,
            self.dt,
        );
        self.prev_current = current;
        self.cycle = self.cycle + Cycles::new(1);
        let noise = self.state.noise_voltage(&self.params);
        if noise.abs().volts() > self.params.on_die.noise_margin().volts() {
            self.violations += 1;
        }
        if noise.abs().volts() > self.worst_noise.abs().volts() {
            self.worst_noise = noise;
        }
        noise
    }

    /// Cycles whose noise exceeded the on-die margin.
    pub fn violation_cycles(&self) -> u64 {
        self.violations
    }

    /// The largest-magnitude noise seen.
    pub fn worst_noise(&self) -> Volts {
        self.worst_noise
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn preset() -> TwoStageParams {
        TwoStageParams::isca04_low_frequency()
    }

    const GHZ10: Hertz = Hertz::new(10e9);

    #[test]
    fn low_peak_is_a_few_megahertz() {
        let p = preset();
        let f = p.low_resonant_frequency().hertz() / 1e6;
        assert!((1.0..5.0).contains(&f), "low peak at {f} MHz");
        assert!(
            p.low_quality_factor() > 1.0,
            "low loop must be underdamped-resonant"
        );
    }

    #[test]
    fn low_band_is_thousands_of_cycles() {
        let (lo, hi) = preset().low_band_cycles(GHZ10).unwrap();
        assert!(lo.count() > 1_000, "short period {lo}");
        assert!(hi.count() > lo.count());
        assert!(hi.count() < 20_000, "long period {hi}");
    }

    #[test]
    fn impedance_has_two_peaks() {
        let p = preset();
        let max_in = |lo_mhz: f64, hi_mhz: f64| -> f64 {
            (0..400)
                .map(|k| {
                    let f = lo_mhz + (hi_mhz - lo_mhz) * k as f64 / 399.0;
                    p.impedance_at(Hertz::from_mega(f)).magnitude()
                })
                .fold(0.0, f64::max)
        };
        let min_in = |lo_mhz: f64, hi_mhz: f64| -> f64 {
            (0..400)
                .map(|k| {
                    let f = lo_mhz + (hi_mhz - lo_mhz) * k as f64 / 399.0;
                    p.impedance_at(Hertz::from_mega(f)).magnitude()
                })
                .fold(f64::MAX, f64::min)
        };
        // Low peak around a few MHz, medium peak around 100 MHz, with a
        // valley between them.
        let z_low = max_in(0.5, 6.0);
        let z_mid = max_in(60.0, 140.0);
        let z_valley = min_in(8.0, 50.0);
        assert!(
            z_low > 2.0 * z_valley,
            "low peak {z_low} vs valley {z_valley}"
        );
        assert!(
            z_mid > 1.5 * z_valley,
            "mid peak {z_mid} vs valley {z_valley}"
        );
        // The low peak's frequency is where the analytic estimate says.
        let f_est = p.low_resonant_frequency().hertz();
        let z_at_est = p.impedance_at(Hertz::new(f_est)).magnitude();
        assert!(
            z_at_est > 0.8 * z_low,
            "estimate {f_est} Hz should sit near the peak"
        );
    }

    #[test]
    fn dc_impedance_is_total_series_resistance() {
        let p = preset();
        let z = p.impedance_at(Hertz::new(0.0)).magnitude();
        let expect = p.r1.ohms() + p.on_die.resistance().ohms();
        assert!((z - expect).abs() < 1e-12);
    }

    #[test]
    fn constant_current_is_silent() {
        let p = preset();
        let mut s = TwoStageSupply::new(p, GHZ10, Amps::new(70.0));
        for _ in 0..20_000 {
            let n = s.tick(Amps::new(70.0));
            assert!(n.abs().volts() < 1e-9);
        }
        assert_eq!(s.violation_cycles(), 0);
    }

    #[test]
    fn low_frequency_square_wave_resonates() {
        // A modest swing at the low-frequency resonant period builds a much
        // larger response than the same swing far off that band.
        let p = preset();
        let period = (10e9 / p.low_resonant_frequency().hertz()).round() as u64;
        let drive = |per: u64| -> f64 {
            let mut s = TwoStageSupply::new(p, GHZ10, Amps::new(70.0));
            for c in 0..per * 30 {
                let i = if (c / (per / 2)).is_multiple_of(2) {
                    85.0
                } else {
                    55.0
                };
                s.tick(Amps::new(i));
            }
            s.worst_noise().abs().volts()
        };
        let resonant = drive(period);
        let off = drive(period / 8);
        assert!(
            resonant > 3.0 * off,
            "low-frequency resonance {resonant} should dwarf off-band {off}"
        );
    }

    #[test]
    fn medium_frequency_behavior_is_preserved() {
        // The on-die loop still resonates near 100 cycles within the
        // cascade.
        let p = preset();
        let mut s = TwoStageSupply::new(p, GHZ10, Amps::new(70.0));
        let mut worst: f64 = 0.0;
        for c in 0..3_000u64 {
            let i = if (c / 50) % 2 == 0 { 90.0 } else { 50.0 };
            worst = worst.max(s.tick(Amps::new(i)).abs().volts());
        }
        assert!(
            worst > 0.05,
            "medium-frequency resonance must persist, got {worst}"
        );
    }

    #[test]
    fn steady_state_is_fixed_point() {
        let p = preset();
        let s0 = TwoStageState::steady(&p, Amps::new(50.0));
        let s1 = step_two_stage(&p, s0, Amps::new(50.0), Amps::new(50.0), GHZ10.period());
        assert!((s1.v1 - s0.v1).abs() < 1e-12);
        assert!((s1.v2 - s0.v2).abs() < 1e-12);
        assert!(s0.noise_voltage(&p).volts().abs() < 1e-12);
    }

    #[test]
    fn rejects_overdamped_stage1() {
        let err = TwoStageParams::new(
            Ohms::new(1.0),
            Henries::from_nano(1.0),
            Farads::from_micro(5.0),
            SupplyParams::isca04_table1(),
        )
        .unwrap_err();
        assert!(matches!(err, RlcError::NotUnderdamped { .. }));
    }

    #[test]
    fn rejects_bad_elements() {
        let bad = TwoStageParams::new(
            Ohms::new(0.0),
            Henries::from_nano(1.0),
            Farads::from_micro(5.0),
            SupplyParams::isca04_table1(),
        );
        assert!(matches!(
            bad,
            Err(RlcError::InvalidElement { element: "R1", .. })
        ));
    }
}
