//! Error types for power-supply model construction and simulation.

use std::error::Error as StdError;
use std::fmt;

/// Error returned when constructing or using an RLC power-supply model with
/// invalid parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum RlcError {
    /// A circuit element value was non-positive or non-finite.
    InvalidElement {
        /// Which element ("R", "L", "C", "Vdd", "clock", ...).
        element: &'static str,
        /// The offending value, in base SI units.
        value: f64,
    },
    /// The circuit is not underdamped (R² ≥ 4L/C), so it has no resonant
    /// oscillation and the resonance-band machinery does not apply.
    NotUnderdamped {
        /// R² in Ω².
        r_squared: f64,
        /// 4L/C in Ω².
        four_l_over_c: f64,
    },
    /// The requested noise margin was non-positive or non-finite.
    InvalidNoiseMargin {
        /// The offending margin in volts.
        margin: f64,
    },
    /// A calibration search failed to bracket a solution.
    CalibrationFailed {
        /// Human-readable description of what was being calibrated.
        what: &'static str,
    },
    /// The resonant period is too short relative to the clock for a
    /// cycle-granularity detector (fewer than 8 cycles per period).
    PeriodTooShort {
        /// Cycles in the resonant period.
        cycles: f64,
    },
}

impl fmt::Display for RlcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RlcError::InvalidElement { element, value } => {
                write!(f, "invalid circuit element {element}: {value} (must be finite and positive)")
            }
            RlcError::NotUnderdamped { r_squared, four_l_over_c } => write!(
                f,
                "circuit is not underdamped: R² = {r_squared} ≥ 4L/C = {four_l_over_c}; no resonant oscillation"
            ),
            RlcError::InvalidNoiseMargin { margin } => {
                write!(f, "invalid noise margin {margin} V (must be finite and positive)")
            }
            RlcError::CalibrationFailed { what } => {
                write!(f, "calibration failed to bracket a solution for {what}")
            }
            RlcError::PeriodTooShort { cycles } => write!(
                f,
                "resonant period of {cycles} cycles is too short for cycle-granularity detection"
            ),
        }
    }
}

impl StdError for RlcError {}

/// Error surfaced by the guarded integrator entry points
/// ([`crate::integrator::try_step`], [`crate::PowerSupply::try_tick`]) when a
/// step cannot produce a trustworthy state.
///
/// The integrator retries a failing step once at half the step size before
/// surfacing these (see [`crate::integrator::try_step`]), so an error here
/// means the failure survived the retry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IntegrationError {
    /// The requested step size was zero, negative, or non-finite.
    InvalidStep {
        /// The offending step size in seconds.
        h: f64,
    },
    /// The integrated state came back NaN or infinite — typically a
    /// non-finite current was fed in, or intermediate products overflowed.
    NonFiniteState {
        /// Node voltage after the failed step.
        v: f64,
        /// Inductor current after the failed step.
        i_l: f64,
    },
    /// The state stayed finite but the node voltage left the physically
    /// plausible envelope — the integration has diverged.
    BlowUp {
        /// Node voltage after the failed step.
        v: f64,
        /// The envelope that was exceeded, in volts.
        limit: f64,
    },
}

impl fmt::Display for IntegrationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntegrationError::InvalidStep { h } => {
                write!(f, "invalid step size {h} s (must be finite and positive)")
            }
            IntegrationError::NonFiniteState { v, i_l } => {
                write!(
                    f,
                    "non-finite supply state after step: v = {v}, i_l = {i_l}"
                )
            }
            IntegrationError::BlowUp { v, limit } => {
                write!(
                    f,
                    "supply integration blew up: |v| = {} exceeds {limit} V",
                    v.abs()
                )
            }
        }
    }
}

impl StdError for IntegrationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = RlcError::InvalidElement {
            element: "R",
            value: -1.0,
        };
        assert!(e.to_string().contains('R'));
        assert!(e.to_string().contains("-1"));

        let e = RlcError::NotUnderdamped {
            r_squared: 4.0,
            four_l_over_c: 1.0,
        };
        assert!(e.to_string().contains("underdamped"));

        let e = RlcError::InvalidNoiseMargin { margin: 0.0 };
        assert!(e.to_string().contains("margin"));

        let e = RlcError::CalibrationFailed { what: "threshold" };
        assert!(e.to_string().contains("threshold"));

        let e = RlcError::PeriodTooShort { cycles: 2.0 };
        assert!(e.to_string().contains("too short"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: StdError + Send + Sync + 'static>() {}
        assert_err::<RlcError>();
        assert_err::<IntegrationError>();
    }

    #[test]
    fn integration_error_messages_are_informative() {
        let e = IntegrationError::InvalidStep { h: -1e-12 };
        assert!(e.to_string().contains("step size"));

        let e = IntegrationError::NonFiniteState {
            v: f64::NAN,
            i_l: 0.0,
        };
        assert!(e.to_string().contains("non-finite"));

        let e = IntegrationError::BlowUp {
            v: -2e6,
            limit: 1e6,
        };
        assert!(e.to_string().contains("blew up"));
        assert!(e.to_string().contains("2000000"));
    }
}
