//! Error types for power-supply model construction and simulation.

use std::error::Error as StdError;
use std::fmt;

/// Error returned when constructing or using an RLC power-supply model with
/// invalid parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum RlcError {
    /// A circuit element value was non-positive or non-finite.
    InvalidElement {
        /// Which element ("R", "L", "C", "Vdd", "clock", ...).
        element: &'static str,
        /// The offending value, in base SI units.
        value: f64,
    },
    /// The circuit is not underdamped (R² ≥ 4L/C), so it has no resonant
    /// oscillation and the resonance-band machinery does not apply.
    NotUnderdamped {
        /// R² in Ω².
        r_squared: f64,
        /// 4L/C in Ω².
        four_l_over_c: f64,
    },
    /// The requested noise margin was non-positive or non-finite.
    InvalidNoiseMargin {
        /// The offending margin in volts.
        margin: f64,
    },
    /// A calibration search failed to bracket a solution.
    CalibrationFailed {
        /// Human-readable description of what was being calibrated.
        what: &'static str,
    },
    /// The resonant period is too short relative to the clock for a
    /// cycle-granularity detector (fewer than 8 cycles per period).
    PeriodTooShort {
        /// Cycles in the resonant period.
        cycles: f64,
    },
}

impl fmt::Display for RlcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RlcError::InvalidElement { element, value } => {
                write!(f, "invalid circuit element {element}: {value} (must be finite and positive)")
            }
            RlcError::NotUnderdamped { r_squared, four_l_over_c } => write!(
                f,
                "circuit is not underdamped: R² = {r_squared} ≥ 4L/C = {four_l_over_c}; no resonant oscillation"
            ),
            RlcError::InvalidNoiseMargin { margin } => {
                write!(f, "invalid noise margin {margin} V (must be finite and positive)")
            }
            RlcError::CalibrationFailed { what } => {
                write!(f, "calibration failed to bracket a solution for {what}")
            }
            RlcError::PeriodTooShort { cycles } => write!(
                f,
                "resonant period of {cycles} cycles is too short for cycle-granularity detection"
            ),
        }
    }
}

impl StdError for RlcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = RlcError::InvalidElement {
            element: "R",
            value: -1.0,
        };
        assert!(e.to_string().contains('R'));
        assert!(e.to_string().contains("-1"));

        let e = RlcError::NotUnderdamped {
            r_squared: 4.0,
            four_l_over_c: 1.0,
        };
        assert!(e.to_string().contains("underdamped"));

        let e = RlcError::InvalidNoiseMargin { margin: 0.0 };
        assert!(e.to_string().contains("margin"));

        let e = RlcError::CalibrationFailed { what: "threshold" };
        assert!(e.to_string().contains("threshold"));

        let e = RlcError::PeriodTooShort { cycles: 2.0 };
        assert!(e.to_string().contains("too short"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: StdError + Send + Sync + 'static>() {}
        assert_err::<RlcError>();
    }
}
