//! Lane-batched supply integration: up to [`MAX_LANES`] independent
//! supplies of the *same circuit* advanced through one flat
//! structure-of-arrays loop.
//!
//! [`SupplyLanes`] is the many-run counterpart of [`PowerSupply`]: where a
//! `PowerSupply` advances one simulation's RLC state cycle by cycle, a
//! `SupplyLanes` holds the `(v, i_l)` state, previous-cycle current, and
//! running statistics of N independent runs as flat `f64` arrays and
//! advances all of them per time step in a straight-line arithmetic loop —
//! the circuit coefficients and step size are shared (one
//! [`PreparedStep`]), only the state differs per lane, so the inner loop
//! over lanes is branch-free and autovectorization-friendly.
//!
//! Per-lane results are bit-exact with a serial [`PowerSupply`] ticking the
//! same current sequence: the lockstep loop runs the identical Heun (or
//! RK4) arithmetic on the identical values in the identical per-lane order,
//! and the blow-up/finiteness guards of [`PreparedStep::advance`] are
//! preserved by falling back to an exact serial replay of the whole chunk
//! (from a snapshot of the entry state) the moment any lane's unguarded
//! step looks unusable — so the halved-retry rescue and error semantics
//! match the serial path exactly, while the hot path pays only a compare
//! per lane-step.

use crate::error::IntegrationError;
use crate::integrator::{raw_step_coeffs, Method, PreparedStep, SupplyState, BLOW_UP_LIMIT_VOLTS};
use crate::params::SupplyParams;
use crate::supply::PowerSupply;
use crate::units::{Amps, Cycles, Hertz, Seconds, Volts};

/// Hard cap on lanes per pack: enough to saturate SIMD lanes and hide
/// retire jitter, small enough that per-lane scratch lives on the stack.
pub const MAX_LANES: usize = 16;

/// One lane's integration failure inside [`SupplyLanes::advance_chunks`].
#[derive(Debug, Clone, PartialEq)]
pub struct LaneFault {
    /// Which lane failed.
    pub lane: usize,
    /// Offset within that lane's chunk at which the step failed; the lane's
    /// state reflects exactly the `offset` completed cycles before it, as a
    /// serial [`PowerSupply::try_tick_batch`] would leave it.
    pub offset: usize,
    /// The surfaced integration error.
    pub error: IntegrationError,
}

/// N independent same-circuit power supplies in structure-of-arrays form.
///
/// # Examples
///
/// ```
/// use rlc::lanes::SupplyLanes;
/// use rlc::{SupplyParams, PowerSupply};
/// use rlc::units::{Amps, Hertz};
///
/// let params = SupplyParams::isca04_table1();
/// let clock = Hertz::from_giga(10.0);
/// let idle = Amps::new(70.0);
/// let mut lanes = SupplyLanes::new(params, clock, idle, 2);
/// let mut serial = PowerSupply::new(params, clock, idle);
///
/// // Two lanes advance through one call; each is bit-exact with a serial
/// // supply ticking the same currents.
/// lanes.advance_chunks(&[&[90.0, 75.0], &[70.0, 70.0]]).unwrap();
/// serial.tick(Amps::new(90.0));
/// serial.tick(Amps::new(75.0));
/// assert_eq!(lanes.state(0), serial.state());
/// assert_eq!(lanes.state(1).v, lanes.state(1).v); // lane 1 stayed steady
/// ```
#[derive(Debug, Clone)]
pub struct SupplyLanes {
    params: SupplyParams,
    dt: Seconds,
    prepared: PreparedStep,
    margin: f64,
    /// Per-lane node voltage deviation.
    v: Vec<f64>,
    /// Per-lane R–L branch current.
    i_l: Vec<f64>,
    /// Per-lane previous-cycle CPU current.
    prev: Vec<f64>,
    /// Per-lane cycles advanced.
    cycles: Vec<u64>,
    /// Per-lane violation-cycle count.
    violations: Vec<u64>,
    /// Per-lane worst (largest-magnitude, sign kept) noise voltage.
    worst: Vec<f64>,
}

/// Entry-state snapshot used to rewind a chunk when a guard trips.
struct Snapshot {
    v: [f64; MAX_LANES],
    i_l: [f64; MAX_LANES],
    prev: [f64; MAX_LANES],
    cycles: [u64; MAX_LANES],
    violations: [u64; MAX_LANES],
    worst: [f64; MAX_LANES],
}

impl SupplyLanes {
    /// Creates `lanes` supplies, each pre-settled at `initial_current`
    /// (matching [`PowerSupply::new`]), using the Heun integrator.
    ///
    /// # Panics
    ///
    /// Panics when `clock` is not finite and positive, or when `lanes` is
    /// zero or exceeds [`MAX_LANES`].
    pub fn new(params: SupplyParams, clock: Hertz, initial_current: Amps, lanes: usize) -> Self {
        Self::with_method(params, clock, initial_current, lanes, Method::Heun)
    }

    /// Creates the lanes with an explicit integration [`Method`].
    ///
    /// # Panics
    ///
    /// Same conditions as [`SupplyLanes::new`].
    pub fn with_method(
        params: SupplyParams,
        clock: Hertz,
        initial_current: Amps,
        lanes: usize,
        method: Method,
    ) -> Self {
        assert!(
            (1..=MAX_LANES).contains(&lanes),
            "lane count {lanes} outside 1..={MAX_LANES}"
        );
        let dt = clock.period();
        let prepared = PreparedStep::new(params, method, dt)
            .unwrap_or_else(|e| panic!("clock frequency must be finite and positive: {e}"));
        let steady = SupplyState::steady(&params, initial_current);
        Self {
            params,
            dt,
            prepared,
            margin: params.noise_margin().volts(),
            v: vec![steady.v; lanes],
            i_l: vec![steady.i_l; lanes],
            prev: vec![initial_current.amps(); lanes],
            cycles: vec![0; lanes],
            violations: vec![0; lanes],
            worst: vec![0.0; lanes],
        }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.v.len()
    }

    /// The shared circuit parameters.
    pub fn params(&self) -> &SupplyParams {
        &self.params
    }

    /// Resets lane `k` to rest at `current` with cleared statistics — the
    /// drain-and-refill hook when a retiring run hands its lane to the next.
    pub fn reset_lane(&mut self, k: usize, current: Amps) {
        let steady = SupplyState::steady(&self.params, current);
        self.v[k] = steady.v;
        self.i_l[k] = steady.i_l;
        self.prev[k] = current.amps();
        self.cycles[k] = 0;
        self.violations[k] = 0;
        self.worst[k] = 0.0;
    }

    /// Swaps the full state of lanes `a` and `b` (lane-pack compaction).
    pub fn swap_lanes(&mut self, a: usize, b: usize) {
        self.v.swap(a, b);
        self.i_l.swap(a, b);
        self.prev.swap(a, b);
        self.cycles.swap(a, b);
        self.violations.swap(a, b);
        self.worst.swap(a, b);
    }

    /// Lane `k`'s raw integrator state.
    pub fn state(&self, k: usize) -> SupplyState {
        SupplyState {
            v: self.v[k],
            i_l: self.i_l[k],
        }
    }

    /// Lane `k`'s current inductive-noise voltage (without advancing time).
    pub fn noise(&self, k: usize) -> Volts {
        self.state(k).noise_voltage(&self.params)
    }

    /// Cycles lane `k` has advanced since its last reset.
    pub fn cycles(&self, k: usize) -> u64 {
        self.cycles[k]
    }

    /// Lane `k`'s violation-cycle count.
    pub fn violation_cycles(&self, k: usize) -> u64 {
        self.violations[k]
    }

    /// Lane `k`'s largest-magnitude noise voltage so far.
    pub fn worst_noise(&self, k: usize) -> Volts {
        Volts::new(self.worst[k])
    }

    /// Extracts lane `k` as an ordinary [`PowerSupply`] carrying the lane's
    /// exact state and statistics — what a serial supply that ticked the
    /// same currents would be.
    pub fn lane_supply(&self, k: usize) -> PowerSupply {
        let (method, ..) = self.prepared.parts();
        PowerSupply::assemble(
            self.params,
            self.dt,
            method,
            self.state(k),
            Amps::new(self.prev[k]),
            Cycles::new(self.cycles[k]),
            self.violations[k],
            Volts::new(self.worst[k]),
        )
    }

    /// Advances lane `k` by one cycle per element of `chunks[k]` (amps),
    /// all lanes interleaved per time step through the flat lockstep loop.
    /// Chunks may be ragged (lanes retire at different cycle counts): the
    /// common prefix runs in lockstep, the tails serially per lane.
    ///
    /// # Errors
    ///
    /// Per-lane faults, at most one per lane. A faulted lane's state
    /// reflects exactly the cycles before [`LaneFault::offset`]; *other*
    /// lanes still complete their chunks (they are independent supplies).
    pub fn advance_chunks(&mut self, chunks: &[&[f64]]) -> Result<(), Vec<LaneFault>> {
        self.advance_impl(chunks, None)
    }

    /// [`SupplyLanes::advance_chunks`] with per-cycle noise capture: each
    /// completed cycle's noise voltage (volts) is appended to
    /// `noise_out[k]` — the traced-run form, bit-exact with the plain form.
    ///
    /// # Errors
    ///
    /// As [`SupplyLanes::advance_chunks`]; a faulted lane's `noise_out`
    /// holds exactly its completed cycles.
    pub fn advance_chunks_noise(
        &mut self,
        chunks: &[&[f64]],
        noise_out: &mut [Vec<f64>],
    ) -> Result<(), Vec<LaneFault>> {
        assert!(
            noise_out.len() >= chunks.len(),
            "noise_out shorter than chunks"
        );
        self.advance_impl(chunks, Some(noise_out))
    }

    fn snapshot(&self, n: usize) -> Snapshot {
        let mut s = Snapshot {
            v: [0.0; MAX_LANES],
            i_l: [0.0; MAX_LANES],
            prev: [0.0; MAX_LANES],
            cycles: [0; MAX_LANES],
            violations: [0; MAX_LANES],
            worst: [0.0; MAX_LANES],
        };
        s.v[..n].copy_from_slice(&self.v[..n]);
        s.i_l[..n].copy_from_slice(&self.i_l[..n]);
        s.prev[..n].copy_from_slice(&self.prev[..n]);
        s.cycles[..n].copy_from_slice(&self.cycles[..n]);
        s.violations[..n].copy_from_slice(&self.violations[..n]);
        s.worst[..n].copy_from_slice(&self.worst[..n]);
        s
    }

    fn restore(&mut self, s: &Snapshot, n: usize) {
        self.v[..n].copy_from_slice(&s.v[..n]);
        self.i_l[..n].copy_from_slice(&s.i_l[..n]);
        self.prev[..n].copy_from_slice(&s.prev[..n]);
        self.cycles[..n].copy_from_slice(&s.cycles[..n]);
        self.violations[..n].copy_from_slice(&s.violations[..n]);
        self.worst[..n].copy_from_slice(&s.worst[..n]);
    }

    fn advance_impl(
        &mut self,
        chunks: &[&[f64]],
        mut noise_out: Option<&mut [Vec<f64>]>,
    ) -> Result<(), Vec<LaneFault>> {
        let n = chunks.len();
        assert!(n <= self.lanes(), "more chunks than lanes");
        let mut entry_lens = [0usize; MAX_LANES];
        if let Some(out) = noise_out.as_deref_mut() {
            for k in 0..n {
                entry_lens[k] = out[k].len();
                out[k].reserve(chunks[k].len());
            }
        }
        let snap = self.snapshot(n);
        let rect = chunks.iter().map(|c| c.len()).min().unwrap_or(0);
        let (method, h, c, l, r) = self.prepared.parts();
        let margin = self.margin;
        let mut tmp_v = [0.0f64; MAX_LANES];
        let mut tmp_il = [0.0f64; MAX_LANES];
        let mut guard_tripped = false;

        // `t` indexes every lane's chunk (`chunks[k][t]`), not just one
        // slice, so the iterator rewrite clippy suggests does not apply.
        #[allow(clippy::needless_range_loop)]
        'rect: for t in 0..rect {
            // Unguarded lockstep pass: the success-path arithmetic of
            // PreparedStep::advance inlined over all lanes — pure loads,
            // FMA-able arithmetic, and stores, no branches per lane.
            for k in 0..n {
                let s = raw_step_coeffs(
                    c,
                    l,
                    r,
                    method,
                    SupplyState {
                        v: self.v[k],
                        i_l: self.i_l[k],
                    },
                    self.prev[k],
                    chunks[k][t],
                    h,
                );
                tmp_v[k] = s.v;
                tmp_il[k] = s.i_l;
            }
            // Guard pass: any unusable result rewinds the whole chunk to
            // the exact serial replay (which performs the halved retry and
            // carries the serial error semantics).
            for k in 0..n {
                if !(tmp_v[k].is_finite()
                    && tmp_il[k].is_finite()
                    && tmp_v[k].abs() <= BLOW_UP_LIMIT_VOLTS)
                {
                    guard_tripped = true;
                    break 'rect;
                }
            }
            // Commit pass: state, statistics, and optional noise capture,
            // in the per-lane order of a serial try_tick.
            for k in 0..n {
                self.v[k] = tmp_v[k];
                self.i_l[k] = tmp_il[k];
                self.prev[k] = chunks[k][t];
                let noise = self.v[k] + r * self.i_l[k];
                if noise.abs() > margin {
                    self.violations[k] += 1;
                }
                if noise.abs() > self.worst[k].abs() {
                    self.worst[k] = noise;
                }
                self.cycles[k] += 1;
                if let Some(out) = noise_out.as_deref_mut() {
                    out[k].push(noise);
                }
            }
        }

        if guard_tripped {
            self.restore(&snap, n);
            if let Some(out) = noise_out.as_deref_mut() {
                for k in 0..n {
                    out[k].truncate(entry_lens[k]);
                }
            }
            return self.advance_serial(chunks, noise_out);
        }

        // Ragged tails: lanes whose chunks extend past the lockstep
        // rectangle finish serially — same per-lane cycle order either way,
        // so the split point cannot change a bit.
        let mut faults = Vec::new();
        for k in 0..n {
            if chunks[k].len() > rect {
                let out = noise_out.as_deref_mut().map(|o| &mut o[k]);
                if let Err(f) = self.lane_serial(k, &chunks[k][rect..], rect, out) {
                    faults.push(f);
                }
            }
        }
        if faults.is_empty() {
            Ok(())
        } else {
            Err(faults)
        }
    }

    /// Serial replay of every lane's whole chunk — the guard-trip fallback.
    fn advance_serial(
        &mut self,
        chunks: &[&[f64]],
        mut noise_out: Option<&mut [Vec<f64>]>,
    ) -> Result<(), Vec<LaneFault>> {
        let mut faults = Vec::new();
        for (k, chunk) in chunks.iter().enumerate() {
            let out = noise_out.as_deref_mut().map(|o| &mut o[k]);
            if let Err(f) = self.lane_serial(k, chunk, 0, out) {
                faults.push(f);
            }
        }
        if faults.is_empty() {
            Ok(())
        } else {
            Err(faults)
        }
    }

    /// Advances one lane serially with the full guarded step (halved retry
    /// included) — bit-exact with [`PowerSupply::try_tick_batch`].
    fn lane_serial(
        &mut self,
        k: usize,
        currents: &[f64],
        offset_base: usize,
        mut noise_out: Option<&mut Vec<f64>>,
    ) -> Result<(), LaneFault> {
        let (.., r) = self.prepared.parts();
        for (t, &amps) in currents.iter().enumerate() {
            let state = SupplyState {
                v: self.v[k],
                i_l: self.i_l[k],
            };
            match self
                .prepared
                .advance(state, Amps::new(self.prev[k]), Amps::new(amps))
            {
                Ok(s) => {
                    self.v[k] = s.v;
                    self.i_l[k] = s.i_l;
                    self.prev[k] = amps;
                    let noise = s.v + r * s.i_l;
                    if noise.abs() > self.margin {
                        self.violations[k] += 1;
                    }
                    if noise.abs() > self.worst[k].abs() {
                        self.worst[k] = noise;
                    }
                    self.cycles[k] += 1;
                    if let Some(out) = noise_out.as_deref_mut() {
                        out.push(noise);
                    }
                }
                Err(error) => {
                    return Err(LaneFault {
                        lane: k,
                        offset: offset_base + t,
                        error,
                    })
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table1() -> (SupplyParams, Hertz, Amps) {
        (
            SupplyParams::isca04_table1(),
            Hertz::from_giga(10.0),
            Amps::new(70.0),
        )
    }

    /// Deterministic per-lane current sequence with resonant content.
    fn current(lane: usize, t: usize) -> f64 {
        let phase = (t + 13 * lane) as f64;
        70.0 + 20.0 * (phase * 0.0628).sin() + 5.0 * ((t * (lane + 2)) % 7) as f64
    }

    fn assert_lane_matches_serial(lanes: &SupplyLanes, k: usize, serial: &PowerSupply) {
        assert_eq!(
            lanes.state(k).v.to_bits(),
            serial.state().v.to_bits(),
            "lane {k} v"
        );
        assert_eq!(
            lanes.state(k).i_l.to_bits(),
            serial.state().i_l.to_bits(),
            "lane {k} i_l"
        );
        assert_eq!(lanes.cycles(k), serial.cycles().count(), "lane {k} cycles");
        assert_eq!(
            lanes.violation_cycles(k),
            serial.violation_cycles(),
            "lane {k} violations"
        );
        assert_eq!(
            lanes.worst_noise(k).volts().to_bits(),
            serial.worst_noise().volts().to_bits(),
            "lane {k} worst"
        );
        assert_eq!(
            lanes.noise(k).volts().to_bits(),
            serial.noise().volts().to_bits(),
            "lane {k} noise"
        );
    }

    #[test]
    fn lockstep_lanes_match_serial_supplies_bit_exactly() {
        let (p, clock, idle) = table1();
        let n = 5;
        let mut lanes = SupplyLanes::new(p, clock, idle, n);
        let mut serials: Vec<PowerSupply> =
            (0..n).map(|_| PowerSupply::new(p, clock, idle)).collect();

        // Ragged chunks across several advances: lane k's chunk length
        // varies per round, including empty chunks.
        let mut offsets = vec![0usize; n];
        for round in 0..7 {
            let chunk_lens: Vec<usize> = (0..n).map(|k| (37 * (k + 1) + 11 * round) % 64).collect();
            let chunks: Vec<Vec<f64>> = (0..n)
                .map(|k| {
                    (0..chunk_lens[k])
                        .map(|t| current(k, offsets[k] + t))
                        .collect()
                })
                .collect();
            let refs: Vec<&[f64]> = chunks.iter().map(|c| c.as_slice()).collect();
            lanes.advance_chunks(&refs).expect("well-posed currents");
            for k in 0..n {
                let mut sink = Vec::new();
                serials[k]
                    .try_tick_batch(&chunks[k], &mut sink)
                    .expect("serial is well-posed");
                offsets[k] += chunk_lens[k];
            }
        }
        for (k, serial) in serials.iter().enumerate() {
            assert_lane_matches_serial(&lanes, k, serial);
        }
    }

    #[test]
    fn noise_capture_matches_serial_batch_output() {
        let (p, clock, idle) = table1();
        let mut lanes = SupplyLanes::new(p, clock, idle, 3);
        let chunks: Vec<Vec<f64>> = (0..3)
            .map(|k| (0..50).map(|t| current(k, t)).collect())
            .collect();
        let refs: Vec<&[f64]> = chunks.iter().map(|c| c.as_slice()).collect();
        let mut noise = vec![Vec::new(); 3];
        lanes
            .advance_chunks_noise(&refs, &mut noise)
            .expect("well-posed");
        for k in 0..3 {
            let mut serial = PowerSupply::new(p, clock, idle);
            let mut expect = Vec::new();
            serial.try_tick_batch(&chunks[k], &mut expect).unwrap();
            assert_eq!(noise[k].len(), expect.len());
            for (a, b) in noise[k].iter().zip(&expect) {
                assert_eq!(a.to_bits(), b.to_bits(), "lane {k} noise trace");
            }
        }
    }

    #[test]
    fn non_finite_current_faults_only_its_lane_with_serial_error_parity() {
        let (p, clock, idle) = table1();
        let mut lanes = SupplyLanes::new(p, clock, idle, 3);
        let clean: Vec<f64> = (0..32).map(|t| current(0, t)).collect();
        let mut poisoned = clean.clone();
        poisoned[17] = f64::NAN;
        let chunks: Vec<&[f64]> = vec![&clean, &poisoned, &clean];

        let faults = lanes.advance_chunks(&chunks).expect_err("lane 1 faults");
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].lane, 1);
        assert_eq!(faults[0].offset, 17);

        // Serial parity for both the faulted and the clean lanes.
        let mut serial_clean = PowerSupply::new(p, clock, idle);
        let mut sink = Vec::new();
        serial_clean.try_tick_batch(&clean, &mut sink).unwrap();
        assert_lane_matches_serial(&lanes, 0, &serial_clean);
        assert_lane_matches_serial(&lanes, 2, &serial_clean);

        let mut serial_poisoned = PowerSupply::new(p, clock, idle);
        sink.clear();
        let err = serial_poisoned
            .try_tick_batch(&poisoned, &mut sink)
            .expect_err("serial faults too");
        assert_eq!(err.0, 17);
        assert_eq!(format!("{}", faults[0].error), format!("{}", err.1));
        assert_lane_matches_serial(&lanes, 1, &serial_poisoned);
    }

    #[test]
    fn guard_trip_rescue_matches_serial_halved_retry() {
        // The gentle unit circuit from the integrator tests: at h = 3 s a
        // full Heun step from |v| = 4e5 overshoots the blow-up envelope but
        // the halved retry rescues it. The lockstep guard must detect the
        // overshoot and the serial replay must return the identical rescued
        // bits a serial supply produces.
        use crate::units::{Farads, Henries, Ohms};
        let p = SupplyParams::new(
            Ohms::new(0.01),
            Henries::new(1.0),
            Farads::new(1.0),
            Volts::new(1.0),
            Volts::new(0.05),
        )
        .unwrap();
        let clock = Hertz::new(1.0 / 3.0); // dt = 3 s
        let mut lanes = SupplyLanes::new(p, clock, Amps::new(0.0), 2);
        let mut serial = PowerSupply::new(p, clock, Amps::new(0.0));
        // Drive lane 0 into the marginal state, then step again; lane 1
        // stays tame throughout, exercising mixed rescue/no-rescue lanes.
        // A 4e5-amp spike produces the large swing deterministically.
        let spike = vec![4.0e5, 0.0, 0.0];
        let tame = vec![0.1, 0.2, 0.1];
        let chunks: Vec<&[f64]> = vec![&spike, &tame];
        let result = lanes.advance_chunks(&chunks);
        let mut sink = Vec::new();
        let serial_result = serial.try_tick_batch(&spike, &mut sink);
        match (&result, &serial_result) {
            (Ok(()), Ok(())) => assert_lane_matches_serial(&lanes, 0, &serial),
            (Err(faults), Err((k, e))) => {
                let f = faults.iter().find(|f| f.lane == 0).expect("lane 0 fault");
                assert_eq!(f.offset, *k);
                assert_eq!(format!("{}", f.error), format!("{e}"));
                assert_lane_matches_serial(&lanes, 0, &serial);
            }
            other => panic!("lane/serial outcome diverged: {other:?}"),
        }
        // Lane 1 must match its serial twin regardless.
        let mut serial_tame = PowerSupply::new(p, clock, Amps::new(0.0));
        sink.clear();
        serial_tame.try_tick_batch(&tame, &mut sink).unwrap();
        assert_lane_matches_serial(&lanes, 1, &serial_tame);
    }

    #[test]
    fn reset_swap_and_lane_supply_round_trip() {
        let (p, clock, idle) = table1();
        let mut lanes = SupplyLanes::new(p, clock, idle, 2);
        let a: Vec<f64> = (0..40).map(|t| current(0, t)).collect();
        let b: Vec<f64> = (0..40).map(|t| current(1, t)).collect();
        lanes.advance_chunks(&[&a, &b]).unwrap();

        // lane_supply carries the exact state: ticking it further matches
        // a serial supply that ran the whole sequence.
        let mut extracted = lanes.lane_supply(0);
        let mut serial = PowerSupply::new(p, clock, idle);
        let mut sink = Vec::new();
        serial.try_tick_batch(&a, &mut sink).unwrap();
        let tail: Vec<f64> = (40..80).map(|t| current(0, t)).collect();
        sink.clear();
        extracted.try_tick_batch(&tail, &mut sink).unwrap();
        sink.clear();
        serial.try_tick_batch(&tail, &mut sink).unwrap();
        assert_eq!(extracted.state(), serial.state());
        assert_eq!(extracted.violation_cycles(), serial.violation_cycles());

        // Swap then reset: lane 0 now holds lane 1's trajectory, lane 1 is
        // factory-fresh.
        lanes.swap_lanes(0, 1);
        let mut serial_b = PowerSupply::new(p, clock, idle);
        sink.clear();
        serial_b.try_tick_batch(&b, &mut sink).unwrap();
        assert_lane_matches_serial(&lanes, 0, &serial_b);
        lanes.reset_lane(1, idle);
        assert_eq!(lanes.cycles(1), 0);
        assert_eq!(lanes.state(1), SupplyState::steady(&p, idle));
    }
}
