//! Fitting supply parameters from measured impedance data.
//!
//! The paper assumes "design-time information about the resonant
//! characteristics of the package" (Section 2). In practice that
//! information arrives as an impedance-versus-frequency measurement; this
//! module recovers the second-order model `(R, L, C)` from such samples:
//!
//! 1. locate the resonant peak `f₀` and the half-power bandwidth `B`;
//! 2. invert the closed-form relations `Q = f₀/B`,
//!    `|Z(f₀)| = Q·Z₀·√(1 + 1/Q²)`, `Z₀ = √(L/C)`, `R = Z₀/Q`,
//!    `C = 1/(2π·f₀·Z₀)`, `L = Z₀/(2π·f₀)`;
//! 3. polish with a few rounds of coordinate descent on the squared
//!    log-magnitude error.

use crate::error::RlcError;
use crate::impedance::impedance_at;
use crate::params::SupplyParams;
use crate::units::{Farads, Henries, Hertz, Ohms, Volts};

/// One measured impedance sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImpedanceSample {
    /// Measurement frequency.
    pub frequency: Hertz,
    /// Measured impedance magnitude.
    pub magnitude: Ohms,
}

/// The result of a fit: the recovered parameters and the residual error.
#[derive(Debug, Clone, PartialEq)]
pub struct FitResult {
    /// Recovered supply parameters.
    pub params: SupplyParams,
    /// Root-mean-square relative magnitude error over the samples.
    pub rms_relative_error: f64,
}

fn rms_error(params: &SupplyParams, samples: &[ImpedanceSample]) -> f64 {
    let sum: f64 = samples
        .iter()
        .map(|s| {
            let model = impedance_at(params, s.frequency).magnitude();
            let rel = (model - s.magnitude.ohms()) / s.magnitude.ohms();
            rel * rel
        })
        .sum();
    (sum / samples.len() as f64).sqrt()
}

/// Fits `(R, L, C)` to impedance samples.
///
/// The samples must cover the resonant peak (including points below the
/// half-power level on both sides); `vdd` and `noise_margin` pass through
/// to the resulting [`SupplyParams`].
///
/// # Errors
///
/// Returns [`RlcError::CalibrationFailed`] when fewer than 8 samples are
/// given, when no interior peak exists, or when the half-power points do
/// not bracket the peak.
pub fn fit_supply(
    samples: &[ImpedanceSample],
    vdd: Volts,
    noise_margin: Volts,
) -> Result<FitResult, RlcError> {
    if samples.len() < 8 {
        return Err(RlcError::CalibrationFailed {
            what: "impedance fit (too few samples)",
        });
    }
    let mut sorted: Vec<ImpedanceSample> = samples.to_vec();
    sorted.sort_by(|a, b| a.frequency.hertz().total_cmp(&b.frequency.hertz()));

    // 1. Peak location (must be interior).
    let (peak_idx, peak) = sorted
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.magnitude.ohms().total_cmp(&b.1.magnitude.ohms()))
        .expect("non-empty samples");
    if peak_idx == 0 || peak_idx == sorted.len() - 1 {
        return Err(RlcError::CalibrationFailed {
            what: "impedance fit (peak not interior)",
        });
    }
    let f0 = peak.frequency.hertz();
    let z_peak = peak.magnitude.ohms();

    // 2. Half-power points on both sides (linear interpolation).
    let cutoff = z_peak / std::f64::consts::SQRT_2;
    let cross = |range: &mut dyn Iterator<Item = usize>| -> Option<f64> {
        let mut prev: Option<usize> = None;
        for i in range {
            if sorted[i].magnitude.ohms() < cutoff {
                let p = prev?;
                let (fa, za) = (sorted[i].frequency.hertz(), sorted[i].magnitude.ohms());
                let (fb, zb) = (sorted[p].frequency.hertz(), sorted[p].magnitude.ohms());
                let t = (cutoff - za) / (zb - za);
                return Some(fa + t * (fb - fa));
            }
            prev = Some(i);
        }
        None
    };
    let f_low = cross(&mut (0..=peak_idx).rev()).ok_or(RlcError::CalibrationFailed {
        what: "impedance fit (low half-power point)",
    })?;
    let f_high = cross(&mut (peak_idx..sorted.len())).ok_or(RlcError::CalibrationFailed {
        what: "impedance fit (high half-power point)",
    })?;

    // 3. Invert the closed forms.
    let q = f0 / (f_high - f_low);
    let z0 = z_peak / (q * (1.0 + 1.0 / (q * q)).sqrt());
    let r = z0 / q;
    let two_pi_f0 = 2.0 * std::f64::consts::PI * f0;
    let c = 1.0 / (two_pi_f0 * z0);
    let l = z0 / two_pi_f0;

    let mut best = SupplyParams::new(
        Ohms::new(r),
        Henries::new(l),
        Farads::new(c),
        vdd,
        noise_margin,
    )
    .map_err(|_| RlcError::CalibrationFailed {
        what: "impedance fit (degenerate seed)",
    })?;

    // 4. Coordinate-descent polish on (R, L, C), multiplicative steps.
    let mut best_err = rms_error(&best, &sorted);
    let mut step = 0.10;
    for _ in 0..40 {
        let mut improved = false;
        for dim in 0..3 {
            for dir in [1.0 + step, 1.0 / (1.0 + step)] {
                let (mut r, mut l, mut c) = (
                    best.resistance().ohms(),
                    best.inductance().henries(),
                    best.capacitance().farads(),
                );
                match dim {
                    0 => r *= dir,
                    1 => l *= dir,
                    _ => c *= dir,
                }
                if let Ok(candidate) = SupplyParams::new(
                    Ohms::new(r),
                    Henries::new(l),
                    Farads::new(c),
                    vdd,
                    noise_margin,
                ) {
                    let err = rms_error(&candidate, &sorted);
                    if err < best_err {
                        best = candidate;
                        best_err = err;
                        improved = true;
                    }
                }
            }
        }
        if !improved {
            step *= 0.5;
            if step < 1e-4 {
                break;
            }
        }
    }
    Ok(FitResult {
        params: best,
        rms_relative_error: best_err,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impedance::ImpedanceSweep;

    fn samples_of(
        params: &SupplyParams,
        lo_mhz: f64,
        hi_mhz: f64,
        n: usize,
    ) -> Vec<ImpedanceSample> {
        ImpedanceSweep::linear(
            params,
            Hertz::from_mega(lo_mhz),
            Hertz::from_mega(hi_mhz),
            n,
        )
        .points()
        .iter()
        .map(|p| ImpedanceSample {
            frequency: p.frequency,
            magnitude: p.magnitude,
        })
        .collect()
    }

    #[test]
    fn recovers_table1_from_clean_samples() {
        let truth = SupplyParams::isca04_table1();
        let samples = samples_of(&truth, 30.0, 200.0, 160);
        let fit = fit_supply(&samples, truth.vdd(), truth.noise_margin()).unwrap();
        assert!(
            fit.rms_relative_error < 0.01,
            "residual {}",
            fit.rms_relative_error
        );
        let f_err = (fit.params.resonant_frequency().hertz() - truth.resonant_frequency().hertz())
            .abs()
            / truth.resonant_frequency().hertz();
        assert!(f_err < 0.01, "resonant frequency error {f_err}");
        let q_err =
            (fit.params.quality_factor() - truth.quality_factor()).abs() / truth.quality_factor();
        assert!(q_err < 0.05, "Q error {q_err}");
    }

    #[test]
    fn recovered_tuning_parameters_match_truth() {
        // What downstream actually needs: the band in cycles and the
        // repetition tolerance derived from the fit match the truth's.
        let truth = SupplyParams::isca04_table1();
        let samples = samples_of(&truth, 30.0, 200.0, 120);
        let fit = fit_supply(&samples, truth.vdd(), truth.noise_margin()).unwrap();
        let clock = Hertz::from_giga(10.0);
        let (t_lo, t_hi) = truth.resonance_band_cycles(clock).unwrap();
        let (f_lo, f_hi) = fit.params.resonance_band_cycles(clock).unwrap();
        assert!(
            t_lo.count().abs_diff(f_lo.count()) <= 2,
            "band lo {f_lo} vs {t_lo}"
        );
        assert!(
            t_hi.count().abs_diff(f_hi.count()) <= 2,
            "band hi {f_hi} vs {t_hi}"
        );
    }

    #[test]
    fn tolerates_measurement_noise() {
        let truth = SupplyParams::isca04_section2_example();
        let mut samples = samples_of(&truth, 50.0, 170.0, 140);
        // ±3% deterministic multiplicative "measurement" noise.
        for (k, s) in samples.iter_mut().enumerate() {
            let wiggle = 1.0 + 0.03 * ((k as f64 * 0.7).sin());
            s.magnitude = Ohms::new(s.magnitude.ohms() * wiggle);
        }
        let fit = fit_supply(&samples, truth.vdd(), truth.noise_margin()).unwrap();
        let f_err = (fit.params.resonant_frequency().hertz() - truth.resonant_frequency().hertz())
            .abs()
            / truth.resonant_frequency().hertz();
        assert!(f_err < 0.03, "resonant frequency error {f_err} under noise");
    }

    #[test]
    fn rejects_too_few_samples() {
        let truth = SupplyParams::isca04_table1();
        let samples = samples_of(&truth, 80.0, 120.0, 5);
        assert!(matches!(
            fit_supply(&samples, truth.vdd(), truth.noise_margin()),
            Err(RlcError::CalibrationFailed { .. })
        ));
    }

    #[test]
    fn rejects_sweep_missing_the_peak() {
        // Sweep entirely below resonance: the peak sits at the edge.
        let truth = SupplyParams::isca04_table1();
        let samples = samples_of(&truth, 10.0, 60.0, 60);
        assert!(matches!(
            fit_supply(&samples, truth.vdd(), truth.noise_margin()),
            Err(RlcError::CalibrationFailed { .. })
        ));
    }

    #[test]
    fn rejects_sweep_missing_half_power_points() {
        // Narrow sweep straddling the peak but never dropping to half power.
        let truth = SupplyParams::isca04_table1();
        let samples = samples_of(&truth, 95.0, 105.0, 30);
        assert!(matches!(
            fit_supply(&samples, truth.vdd(), truth.noise_margin()),
            Err(RlcError::CalibrationFailed { .. })
        ));
    }
}
