//! Cycle-driven power-supply simulation: feed per-cycle CPU current in, get
//! per-cycle noise voltage and violation flags out.
//!
//! [`PowerSupply`] is the stateful object the integrated processor simulation
//! steps once per clock cycle. [`simulate_waveform`] is the batch driver used
//! by the circuit-level experiments (Figure 3, calibration).

use crate::error::IntegrationError;
use crate::integrator::{try_step, Method, PreparedStep, SupplyState};
use crate::params::SupplyParams;
use crate::units::{Amps, Cycles, Hertz, Seconds, Volts};
use crate::waveform::Waveform;

/// A stateful power supply advanced one clock cycle at a time.
///
/// # Examples
///
/// ```
/// use rlc::{PowerSupply, SupplyParams};
/// use rlc::units::{Amps, Hertz};
///
/// let mut supply = PowerSupply::new(
///     SupplyParams::isca04_table1(),
///     Hertz::from_giga(10.0),
///     Amps::new(70.0),
/// );
/// // A constant current never violates the noise margin.
/// for _ in 0..1000 {
///     let out = supply.tick(Amps::new(70.0));
///     assert!(!out.violation);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct PowerSupply {
    params: SupplyParams,
    dt: Seconds,
    method: Method,
    state: SupplyState,
    prev_current: Amps,
    cycle: Cycles,
    violations: u64,
    worst_noise: Volts,
}

/// Per-cycle output of [`PowerSupply::tick`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupplyOutput {
    /// The cycle index that was just completed.
    pub cycle: Cycles,
    /// The inductive-noise voltage at the end of the cycle (IR drop removed;
    /// 0 at any constant current).
    pub noise: Volts,
    /// `true` when `|noise|` exceeds the configured noise margin.
    pub violation: bool,
}

impl PowerSupply {
    /// Creates a supply at rest, pre-settled at `initial_current` (no startup
    /// transient).
    pub fn new(params: SupplyParams, clock: Hertz, initial_current: Amps) -> Self {
        Self::with_method(params, clock, initial_current, Method::Heun)
    }

    /// Creates a supply using a specific integration [`Method`].
    ///
    /// # Panics
    ///
    /// Panics if `clock` is not finite and positive.
    pub fn with_method(
        params: SupplyParams,
        clock: Hertz,
        initial_current: Amps,
        method: Method,
    ) -> Self {
        assert!(
            clock.hertz().is_finite() && clock.hertz() > 0.0,
            "clock frequency must be finite and positive"
        );
        Self {
            state: SupplyState::steady(&params, initial_current),
            params,
            dt: clock.period(),
            method,
            prev_current: initial_current,
            cycle: Cycles::new(0),
            violations: 0,
            worst_noise: Volts::new(0.0),
        }
    }

    /// Reassembles a supply from explicit component state — how the lane
    /// integrator ([`crate::lanes::SupplyLanes`]) hands one lane's final
    /// state back as an ordinary [`PowerSupply`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        params: SupplyParams,
        dt: Seconds,
        method: Method,
        state: SupplyState,
        prev_current: Amps,
        cycle: Cycles,
        violations: u64,
        worst_noise: Volts,
    ) -> Self {
        Self {
            params,
            dt,
            method,
            state,
            prev_current,
            cycle,
            violations,
            worst_noise,
        }
    }

    /// The circuit parameters.
    pub fn params(&self) -> &SupplyParams {
        &self.params
    }

    /// Advances one clock cycle during which the CPU draws `current`, and
    /// returns the end-of-cycle noise voltage and violation flag.
    ///
    /// # Panics
    ///
    /// Panics when the guarded integration step fails (see
    /// [`PowerSupply::try_tick`] for the fallible form).
    pub fn tick(&mut self, current: Amps) -> SupplyOutput {
        self.try_tick(current)
            .unwrap_or_else(|e| panic!("supply integration failed: {e}"))
    }

    /// The fallible form of [`PowerSupply::tick`]: advances one cycle, or
    /// returns the [`IntegrationError`] when the step produced an unusable
    /// state even after the integrator's halved retry. On error the supply
    /// state is left untouched, so a caller may recover by replaying the
    /// cycle with a sanitized current.
    pub fn try_tick(&mut self, current: Amps) -> Result<SupplyOutput, IntegrationError> {
        self.state = try_step(
            &self.params,
            self.method,
            self.state,
            self.prev_current,
            current,
            self.dt,
        )?;
        self.prev_current = current;
        let noise = self.state.noise_voltage(&self.params);
        let violation = noise.abs().volts() > self.params.noise_margin().volts();
        if violation {
            self.violations += 1;
        }
        if noise.abs().volts() > self.worst_noise.abs().volts() {
            self.worst_noise = noise;
        }
        let out = SupplyOutput {
            cycle: self.cycle,
            noise,
            violation,
        };
        self.cycle = self.cycle + Cycles::new(1);
        Ok(out)
    }

    /// Advances one clock cycle per element of `currents` (amps), appending
    /// each end-of-cycle noise voltage (volts) to `noise_out`.
    ///
    /// This is the batch form of [`PowerSupply::try_tick`] for flat-buffer
    /// hot loops: the step size is validated and the circuit coefficients
    /// are loaded once per call via [`PreparedStep`], then every element
    /// runs exactly the per-cycle operation sequence of `try_tick` — state
    /// step, previous-current update, noise evaluation, violation count,
    /// worst-noise update, cycle advance — so a batch call is bit-exact
    /// with the equivalent serial `try_tick` loop, for any batch size.
    ///
    /// # Errors
    ///
    /// On a failed step at index `k`, returns `(k, error)` with `noise_out`
    /// holding the `k` completed cycles and the supply state exactly as a
    /// serial loop would leave it after cycle `k - 1`: cycle `k` itself is
    /// untouched and may be replayed with a sanitized current.
    pub fn try_tick_batch(
        &mut self,
        currents: &[f64],
        noise_out: &mut Vec<f64>,
    ) -> Result<(), (usize, IntegrationError)> {
        let prepared = PreparedStep::new(self.params, self.method, self.dt).map_err(|e| (0, e))?;
        noise_out.reserve(currents.len());
        for (k, &amps) in currents.iter().enumerate() {
            let current = Amps::new(amps);
            self.state = prepared
                .advance(self.state, self.prev_current, current)
                .map_err(|e| (k, e))?;
            self.prev_current = current;
            let noise = self.state.noise_voltage(&self.params);
            let violation = noise.abs().volts() > self.params.noise_margin().volts();
            if violation {
                self.violations += 1;
            }
            if noise.abs().volts() > self.worst_noise.abs().volts() {
                self.worst_noise = noise;
            }
            self.cycle = self.cycle + Cycles::new(1);
            noise_out.push(noise.volts());
        }
        Ok(())
    }

    /// The current inductive-noise voltage without advancing time.
    pub fn noise(&self) -> Volts {
        self.state.noise_voltage(&self.params)
    }

    /// The raw integrator state (node voltage and inductor current).
    pub fn state(&self) -> SupplyState {
        self.state
    }

    /// Total cycles simulated so far.
    pub fn cycles(&self) -> Cycles {
        self.cycle
    }

    /// Total cycles whose noise exceeded the margin.
    pub fn violation_cycles(&self) -> u64 {
        self.violations
    }

    /// The largest-magnitude noise voltage observed so far.
    pub fn worst_noise(&self) -> Volts {
        self.worst_noise
    }

    /// Resets the supply to rest at `current` and clears statistics.
    pub fn reset(&mut self, current: Amps) {
        self.state = SupplyState::steady(&self.params, current);
        self.prev_current = current;
        self.cycle = Cycles::new(0);
        self.violations = 0;
        self.worst_noise = Volts::new(0.0);
    }
}

/// A full per-cycle trace from a batch waveform simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct WaveformTrace {
    /// Per-cycle CPU current fed to the supply.
    pub current: Vec<Amps>,
    /// Per-cycle noise voltage (IR drop removed).
    pub noise: Vec<Volts>,
    /// Cycle indices at which the noise margin was violated.
    pub violation_cycles: Vec<Cycles>,
    /// The largest-magnitude noise voltage over the run.
    pub worst_noise: Volts,
}

impl WaveformTrace {
    /// `true` when the margin was violated at least once.
    pub fn violated(&self) -> bool {
        !self.violation_cycles.is_empty()
    }

    /// The first cycle at which a violation occurred, if any.
    pub fn first_violation(&self) -> Option<Cycles> {
        self.violation_cycles.first().copied()
    }
}

/// One tapped sample of the supply waveform: the CPU current driven into the
/// supply during a cycle and the inductive-noise voltage it produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaveformSample {
    /// Cycle index the sample was taken at.
    pub cycle: u64,
    /// CPU current drawn during the cycle.
    pub current: Amps,
    /// End-of-cycle inductive-noise voltage.
    pub noise: Volts,
}

/// A fixed-capacity ring buffer tapping the supply's per-cycle waveform.
///
/// The observability layer records every cycle's `(current, noise)` pair
/// here so that when a noise-margin violation or detector event fires, the
/// cycles *leading up to it* are still available and can be dumped as a
/// compact trace window (the paper's Figure 3/4-style voltage traces).
/// Recording is a pair of array writes — it never touches the supply state,
/// so a tapped run is bit-exact with an untapped one.
#[derive(Debug, Clone)]
pub struct WaveformRing {
    samples: Vec<WaveformSample>,
    capacity: usize,
    head: usize,
}

impl WaveformRing {
    /// Creates an empty ring holding at most `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "waveform ring needs a nonzero capacity");
        Self {
            samples: Vec::with_capacity(capacity),
            capacity,
            head: 0,
        }
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of samples currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when nothing has been recorded since creation/[`Self::clear`].
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Records one cycle's sample, evicting the oldest once full.
    pub fn record(&mut self, cycle: u64, current: Amps, noise: Volts) {
        let sample = WaveformSample {
            cycle,
            current,
            noise,
        };
        if self.samples.len() < self.capacity {
            self.samples.push(sample);
        } else {
            self.samples[self.head] = sample;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// The held samples in chronological order (oldest first).
    pub fn snapshot(&self) -> Vec<WaveformSample> {
        let mut out = Vec::with_capacity(self.samples.len());
        out.extend_from_slice(&self.samples[self.head..]);
        out.extend_from_slice(&self.samples[..self.head]);
        out
    }

    /// Discards all samples; capacity is unchanged.
    pub fn clear(&mut self) {
        self.samples.clear();
        self.head = 0;
    }
}

/// Simulates `n` cycles of the supply driven by `wave`, starting settled at
/// the waveform's cycle-0 current.
pub fn simulate_waveform<W: Waveform + ?Sized>(
    params: &SupplyParams,
    clock: Hertz,
    wave: &W,
    n: Cycles,
) -> WaveformTrace {
    let initial = wave.current_at(Cycles::new(0));
    let mut supply = PowerSupply::new(*params, clock, initial);
    let mut current = Vec::with_capacity(n.as_usize());
    let mut noise = Vec::with_capacity(n.as_usize());
    let mut violation_cycles = Vec::new();
    for c in 0..n.count() {
        let i = wave.current_at(Cycles::new(c));
        let out = supply.tick(i);
        current.push(i);
        noise.push(out.noise);
        if out.violation {
            violation_cycles.push(out.cycle);
        }
    }
    WaveformTrace {
        current,
        noise,
        violation_cycles,
        worst_noise: supply.worst_noise(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waveform::{Constant, PeriodicWave, Shape};

    const GHZ10: Hertz = Hertz::new(10e9);

    fn table1() -> SupplyParams {
        SupplyParams::isca04_table1()
    }

    #[test]
    fn constant_current_never_violates() {
        let trace = simulate_waveform(
            &table1(),
            GHZ10,
            &Constant::new(Amps::new(105.0)),
            Cycles::new(5_000),
        );
        assert!(!trace.violated());
        assert!(trace.worst_noise.abs().volts() < 1e-6);
    }

    #[test]
    fn figure3_square_wave_violates() {
        // Figure 3: a 34 A square wave at the resonant frequency from cycle
        // 100 to 500 drives the supply past the 50 mV margin.
        let wave = PeriodicWave::new(
            Shape::Square,
            Amps::new(70.0),
            Amps::new(34.0),
            Cycles::new(100),
            Cycles::new(100),
            Cycles::new(500),
        );
        let trace = simulate_waveform(&table1(), GHZ10, &wave, Cycles::new(1_000));
        assert!(trace.violated(), "worst noise = {}", trace.worst_noise);
        let first = trace.first_violation().unwrap();
        // Violation occurs during the stimulus after a few repetitions, not
        // instantly at onset.
        assert!(
            first.count() > 150 && first.count() < 520,
            "first violation at {first}"
        );
    }

    #[test]
    fn figure3_ringing_decays_after_stimulus() {
        let wave = PeriodicWave::new(
            Shape::Square,
            Amps::new(70.0),
            Amps::new(34.0),
            Cycles::new(100),
            Cycles::new(100),
            Cycles::new(500),
        );
        let trace = simulate_waveform(&table1(), GHZ10, &wave, Cycles::new(1_500));
        // Peak noise in successive post-stimulus periods decays ~66% per
        // period (Q = 2.83).
        let peak_in = |lo: usize, hi: usize| -> f64 {
            trace.noise[lo..hi]
                .iter()
                .map(|v| v.abs().volts())
                .fold(0.0, f64::max)
        };
        let p1 = peak_in(520, 620);
        let p2 = peak_in(620, 720);
        let p3 = peak_in(720, 820);
        let r1 = p2 / p1;
        let r2 = p3 / p2;
        let expect = table1().decay_per_period();
        assert!(
            (r1 - expect).abs() < 0.12,
            "decay ratio {r1} vs e^(-pi/Q) {expect}"
        );
        assert!(
            (r2 - expect).abs() < 0.12,
            "decay ratio {r2} vs e^(-pi/Q) {expect}"
        );
    }

    #[test]
    fn off_band_square_wave_is_absorbed() {
        // Same 34 A amplitude at a 20-cycle period (500 MHz), far outside the
        // 84–119-cycle resonance band: absorbed by the supply.
        let wave =
            PeriodicWave::sustained_square(Amps::new(70.0), Amps::new(34.0), Cycles::new(20));
        let trace = simulate_waveform(&table1(), GHZ10, &wave, Cycles::new(3_000));
        assert!(!trace.violated(), "worst = {}", trace.worst_noise);
    }

    #[test]
    fn small_resonant_wave_is_tolerated() {
        // Well below the resonant current variation threshold: sustained
        // resonant excitation never violates.
        let wave =
            PeriodicWave::sustained_square(Amps::new(70.0), Amps::new(10.0), Cycles::new(100));
        let trace = simulate_waveform(&table1(), GHZ10, &wave, Cycles::new(10_000));
        assert!(!trace.violated(), "worst = {}", trace.worst_noise);
    }

    #[test]
    fn tick_statistics_accumulate() {
        let mut s = PowerSupply::new(table1(), GHZ10, Amps::new(70.0));
        for c in 0..600u64 {
            let i = if (c / 50) % 2 == 0 { 90.0 } else { 50.0 };
            s.tick(Amps::new(i));
        }
        assert_eq!(s.cycles(), Cycles::new(600));
        assert!(
            s.violation_cycles() > 0,
            "40 A resonant swing should violate"
        );
        assert!(s.worst_noise().abs().volts() > 0.05);
        s.reset(Amps::new(70.0));
        assert_eq!(s.cycles(), Cycles::new(0));
        assert_eq!(s.violation_cycles(), 0);
        assert_eq!(s.noise().volts(), 0.0);
    }

    #[test]
    fn try_tick_rejects_non_finite_current_and_preserves_state() {
        let mut s = PowerSupply::new(table1(), GHZ10, Amps::new(70.0));
        for _ in 0..10 {
            s.tick(Amps::new(90.0));
        }
        let before = s.state();
        let cycles_before = s.cycles();
        let err = s
            .try_tick(Amps::new(f64::NAN))
            .expect_err("NaN current must fail");
        assert!(matches!(err, IntegrationError::NonFiniteState { .. }));
        assert_eq!(s.state(), before, "failed tick must not corrupt state");
        assert_eq!(s.cycles(), cycles_before);
        // The supply remains usable afterwards.
        let out = s.try_tick(Amps::new(90.0)).expect("recovers");
        assert_eq!(out.cycle, cycles_before);
    }

    #[test]
    #[should_panic(expected = "supply integration failed")]
    fn tick_panics_on_non_finite_current() {
        let mut s = PowerSupply::new(table1(), GHZ10, Amps::new(70.0));
        let _ = s.tick(Amps::new(f64::INFINITY));
    }

    #[test]
    #[should_panic(expected = "clock frequency")]
    fn bad_clock_panics() {
        let _ = PowerSupply::new(table1(), Hertz::new(0.0), Amps::new(70.0));
    }

    /// A deterministic current sequence mixing resonant swings, ramps, and
    /// quiet stretches, for batch-vs-serial comparisons.
    fn mixed_currents(n: usize) -> Vec<f64> {
        (0..n)
            .map(|c| {
                let swing = if (c / 50) % 2 == 0 { 20.0 } else { -20.0 };
                let ramp = (c % 137) as f64 * 0.11;
                70.0 + swing + ramp
            })
            .collect()
    }

    #[test]
    fn try_tick_batch_matches_serial_ticks_bit_exactly() {
        let currents = mixed_currents(3_000);
        for method in [Method::Heun, Method::Rk4] {
            let mut serial = PowerSupply::with_method(table1(), GHZ10, Amps::new(70.0), method);
            let mut batched = serial.clone();

            let mut serial_noise = Vec::new();
            for &i in &currents {
                serial_noise.push(serial.try_tick(Amps::new(i)).unwrap().noise.volts());
            }

            // Ragged batch sizes, including 1 and a remainder chunk.
            let mut batch_noise = Vec::new();
            for chunk in currents.chunks(257) {
                batched.try_tick_batch(chunk, &mut batch_noise).unwrap();
            }

            assert_eq!(serial_noise.len(), batch_noise.len());
            for (c, (a, b)) in serial_noise.iter().zip(&batch_noise).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "noise diverged at cycle {c} ({method:?})"
                );
            }
            assert_eq!(serial.state(), batched.state());
            assert_eq!(serial.cycles(), batched.cycles());
            assert_eq!(serial.violation_cycles(), batched.violation_cycles());
            assert_eq!(
                serial.worst_noise().volts().to_bits(),
                batched.worst_noise().volts().to_bits()
            );
        }
    }

    #[test]
    fn try_tick_batch_error_reports_index_and_preserves_prefix() {
        let mut currents = mixed_currents(100);
        currents[42] = f64::NAN;

        let mut reference = PowerSupply::new(table1(), GHZ10, Amps::new(70.0));
        for &i in &currents[..42] {
            reference.tick(Amps::new(i));
        }

        let mut batched = PowerSupply::new(table1(), GHZ10, Amps::new(70.0));
        let mut noise = Vec::new();
        let (k, err) = batched
            .try_tick_batch(&currents, &mut noise)
            .expect_err("NaN mid-batch must fail");
        assert_eq!(k, 42);
        assert!(matches!(err, IntegrationError::NonFiniteState { .. }));
        // The 42 completed cycles are emitted and the state is exactly the
        // serial state after cycle 41; the failed cycle is replayable.
        assert_eq!(noise.len(), 42);
        assert_eq!(batched.state(), reference.state());
        assert_eq!(batched.cycles(), reference.cycles());
        let out = batched.try_tick(Amps::new(70.0)).expect("replayable");
        assert_eq!(out.cycle, Cycles::new(42));
    }

    #[test]
    fn waveform_ring_keeps_the_newest_samples_in_order() {
        let mut ring = WaveformRing::new(4);
        assert!(ring.is_empty());
        for c in 0..3u64 {
            ring.record(c, Amps::new(c as f64), Volts::new(0.0));
        }
        assert_eq!(ring.len(), 3);
        let cycles: Vec<u64> = ring.snapshot().iter().map(|s| s.cycle).collect();
        assert_eq!(cycles, vec![0, 1, 2]);
        for c in 3..11u64 {
            ring.record(c, Amps::new(c as f64), Volts::new(0.1));
        }
        assert_eq!(ring.len(), 4, "capacity bounds the ring");
        let cycles: Vec<u64> = ring.snapshot().iter().map(|s| s.cycle).collect();
        assert_eq!(cycles, vec![7, 8, 9, 10], "oldest evicted, order kept");
        assert_eq!(ring.snapshot()[3].current, Amps::new(10.0));
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.capacity(), 4);
        ring.record(99, Amps::new(1.0), Volts::new(0.2));
        assert_eq!(ring.snapshot()[0].cycle, 99);
    }

    #[test]
    #[should_panic(expected = "nonzero capacity")]
    fn waveform_ring_rejects_zero_capacity() {
        let _ = WaveformRing::new(0);
    }

    #[test]
    fn heun_and_rk4_agree_on_resonant_drive() {
        let p = table1();
        let wave =
            PeriodicWave::sustained_square(Amps::new(70.0), Amps::new(20.0), Cycles::new(100));
        let mut heun = PowerSupply::with_method(p, GHZ10, Amps::new(80.0), Method::Heun);
        let mut rk4 = PowerSupply::with_method(p, GHZ10, Amps::new(80.0), Method::Rk4);
        let mut max_diff: f64 = 0.0;
        for c in 0..2_000u64 {
            let i = wave.current_at(Cycles::new(c));
            let a = heun.tick(i).noise.volts();
            let b = rk4.tick(i).noise.volts();
            max_diff = max_diff.max((a - b).abs());
        }
        assert!(max_diff < 2e-3, "integrator disagreement {max_diff} V");
    }
}
